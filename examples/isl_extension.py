#!/usr/bin/env python3
"""Inter-satellite links: what the paper's §4 extension buys.

The MP-LEO baseline omits ISLs — a satellite can only serve a terminal when
a same-party ground station is simultaneously in view.  This example builds
a deliberately hostile geometry (terminal far from any gateway), shows the
baseline engine failing, then turns on ISL forwarding and routes traffic
across the constellation.

Run:
    python examples/isl_extension.py
"""

import numpy as np

from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import walker_delta
from repro.ground.cities import TAIPEI
from repro.ground.sites import GroundStation, UserTerminal
from repro.links.isl import IslRouter, contact_graph
from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator
from repro.sim.isl_engine import IslBentPipeSimulator


def main() -> None:
    rng = np.random.default_rng(11)
    elements = walker_delta(40, 8, 1, inclination_deg=53.0, altitude_km=550.0)
    constellation = Constellation(
        [
            Satellite(sat_id=f"S-{index:02d}", elements=element, party="mpleo")
            for index, element in enumerate(elements)
        ]
    )

    terminal = UserTerminal(
        "ut-taipei", TAIPEI.latitude_deg, TAIPEI.longitude_deg,
        min_elevation_deg=25.0, party="mpleo", demand_mbps=100.0,
    )
    # Only gateway: Ireland — never co-visible with a satellite over Taipei.
    station = GroundStation(
        "gs-ireland", 53.35, -6.26, min_elevation_deg=10.0, party="mpleo"
    )
    grid = TimeGrid.hours(6.0, step_s=120.0)

    baseline = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
    print("Baseline bent pipe (gateway in Ireland only):")
    print(f"  served volume: {baseline.total_served_megabits / 8e3:.2f} GB, "
          f"sessions: {len(baseline.sessions)}")

    isl = IslBentPipeSimulator(
        constellation, [terminal], [station], grid
    ).run(np.random.default_rng(11))
    served_fraction = float((isl.served_mbps[0] > 0).mean())
    print("With ISL forwarding:")
    print(f"  served volume: {isl.total_served_megabits / 8e3:.2f} GB, "
          f"sessions: {len(isl.sessions)}, "
          f"served {100 * served_fraction:.1f}% of time steps")

    # Show one actual route at t=0 through the ISL graph.
    propagator = BatchPropagator(constellation.elements)
    positions = propagator.positions_eci(np.array([0.0]))[:, 0, :]
    graph = contact_graph(
        positions, [satellite.sat_id for satellite in constellation]
    )
    router = IslRouter(graph)
    path = router.route("S-00", "S-20")
    if path is not None:
        print(f"\nSample ISL route S-00 -> S-20: {' -> '.join(path.sat_ids)}")
        print(f"  {path.hops} hops, {1000 * path.total_delay_s:.1f} ms propagation")
    components = router.connected_components()
    print(f"ISL graph: {graph.number_of_edges()} links, "
          f"largest connected component {len(components[0])}/{len(constellation)}")


if __name__ == "__main__":
    main()
