#!/usr/bin/env python3
"""Bootstrapping a sparse MP-LEO network with delay-tolerant service (§4).

Early MP-LEO deployments are sparse — a handful of satellites cannot offer
continuous coverage, so who would pay?  The paper's answer: delay-tolerant
applications.  This example measures the store-and-forward wait times a
12-satellite seed constellation offers at the 21 cities and checks which
application classes it can already serve, plus the declining token issuance
that rewards the early participants.

Run:
    python examples/delay_tolerant_bootstrap.py
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.constellation.walker import walker_delta
from repro.constellation.satellite import Constellation, Satellite
from repro.core.bootstrap import (
    BULK_TRANSFER,
    DelayTolerantService,
    IOT_TELEMETRY,
    MESSAGING,
    early_adopter_issuance,
)
from repro.ground.cities import CITIES
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine


def main() -> None:
    elements = walker_delta(12, 4, 1, inclination_deg=53.0, altitude_km=550.0)
    seed_constellation = Constellation(
        [Satellite(sat_id=f"SEED-{i:02d}", elements=e) for i, e in enumerate(elements)]
    )
    print(f"Seed constellation: {len(seed_constellation)} satellites "
          "(4 planes x 3 satellites)")

    grid = TimeGrid.one_week(step_s=120.0)
    engine = VisibilityEngine(grid)
    terminals = [city.terminal(min_elevation_deg=25.0) for city in CITIES]
    masks = engine.site_coverage(seed_constellation, terminals)

    service = DelayTolerantService(grid)
    apps = (MESSAGING, IOT_TELEMETRY, BULK_TRANSFER)
    table = Table(
        "Delay-tolerant feasibility at the 21 cities (1 week)",
        ["app", "max wait budget", "feasible cities", "median p95 wait (min)"],
        precision=1,
    )
    for app in apps:
        results = [
            service.evaluate(app, terminal.name, mask)
            for terminal, mask in zip(terminals, masks)
        ]
        feasible = sum(result.feasible for result in results)
        p95s = [r.p95_wait_s for r in results if np.isfinite(r.p95_wait_s)]
        table.add_row(
            app.name,
            f"{app.max_wait_s / 60:.0f} min",
            f"{feasible}/{len(results)}",
            float(np.median(p95s)) / 60.0 if p95s else float("nan"),
        )
    table.print()

    print("\nEarly-adopter token issuance (halving yearly, weekly epochs):")
    for year in range(4):
        epoch = year * 52
        print(f"  year {year}: {early_adopter_issuance(epoch):7.1f} tokens/epoch")

    print("\nTakeaway: even 12 satellites serve IoT telemetry and bulk transfer")
    print("globally; token issuance bridges the gap until coverage is continuous.")


if __name__ == "__main__":
    main()
