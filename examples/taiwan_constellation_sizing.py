#!/usr/bin/env python3
"""How many satellites would Taiwan need? (the paper's §2 motivation)

Reproduces the Fig. 2 analysis at reduced fidelity: a receiver in central
Taipei, one simulated week, random Starlink-like samples of increasing
size.  Then asks the MP-LEO question: what does a 50-satellite
*contribution* buy inside a shared 1000-satellite constellation?

Run:
    python examples/taiwan_constellation_sizing.py
"""

from repro.analysis.reporting import Table
from repro.core.availability import (
    AVAILABILITY_CLASSES,
    mp_leo_contribution_plan,
)
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig2_coverage_vs_size import run_fig2
from repro.experiments.sharing_upside import run_sharing_upside


def main() -> None:
    config = ExperimentConfig(runs=5, step_s=300.0, seed=1)

    print("Simulating one week of coverage at Taipei "
          f"({config.runs} runs per point; this takes ~10s)...")
    result = run_fig2(config, sizes=(10, 50, 100, 500, 1000, 2000))

    table = Table(
        "Go-it-alone constellation sizing for Taipei",
        ["satellites", "time without coverage (%)", "longest gap (min)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(
            point.satellites,
            point.mean_uncovered_percent,
            point.mean_max_gap_s / 60.0,
        )
    table.print()

    print("\nConclusion: continuous national coverage needs ~1000+ satellites")
    print("(billions of dollars), almost all of it idle over other regions.\n")

    upside = run_sharing_upside(config, contributed=50, network_size=1000).upside
    print("The MP-LEO alternative: contribute 50 satellites to a shared")
    print("1000-satellite constellation instead:")
    print(f"  coverage alone (50 sats):   {100 * upside.alone_coverage_fraction:.1f}%")
    print(f"  coverage shared (network):  {100 * upside.shared_coverage_fraction:.1f}%")
    print(f"  equivalent go-it-alone constellation: "
          f">= {upside.equivalent_alone_satellites} satellites "
          f"({upside.satellite_multiplier:.0f}x the contribution)")

    # Availability planning from the measured curve (the §2 five-nines note).
    curve = [
        (point.satellites, 1.0 - point.mean_uncovered_percent / 100.0)
        for point in result.points
    ]
    print("\nAvailability planning from the measured curve (11 equal parties):")
    for label in ("two-nines", "three-nines", "five-nines"):
        target = AVAILABILITY_CLASSES[label]
        try:
            plan = mp_leo_contribution_plan(target, curve, party_count=11)
        except ValueError:
            print(f"  {label:>12s}: curve too coarse to extrapolate")
            continue
        print(f"  {label:>12s} ({100 * target:.3f}%): network of "
              f"{plan.network_size} satellites -> "
              f"{plan.contribution_per_party} per party")


if __name__ == "__main__":
    main()
