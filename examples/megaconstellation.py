#!/usr/bin/env python3
"""Megaconstellation contact planning on the analytic interval engine.

The dense grid engine materializes (or streams) an ``(S, N, T)`` boolean
tensor — at megaconstellation scale that axis product explodes: Starlink
Gen1 (4408) plus Kuiper (3236) is 7644 satellites, and three days at a
60 s step is 4320 samples, a ~700 M-element tensor *per elevation test*.
The event-driven engine of :mod:`repro.sim.intervals` never stores it:
one streamed coarse scan brackets every rise/set, root-finding sharpens
each edge to centisecond tolerance, and the result is just the contact
windows themselves — a few hundred thousand (rise, set) pairs.

Run:
    python examples/megaconstellation.py            # full 3-day, 7644 sats
    python examples/megaconstellation.py --quick    # 6 h smoke (CI-sized)
"""

from __future__ import annotations

import argparse
import gc
import time
import tracemalloc
from typing import Dict

from repro.constellation.satellite import Constellation
from repro.constellation.shells import (
    kuiper_like_constellation,
    starlink_like_constellation,
)
from repro.experiments.common import ALL_SITES, TAIPEI_INDEX
from repro.sim.clock import TimeGrid
from repro.sim.intervals import find_contact_intervals

#: Scan step of the coarse pass-detection grid.  Passes shorter than this
#: can slip between scan samples (same contract as the grid engine at the
#: same step); 120 s is comfortably below the few-minute LEO pass floor.
SCAN_STEP_S = 120.0

#: Bisection tolerance of each refined rise/set edge.
EDGE_TOLERANCE_S = 0.05


def build_megaconstellation() -> Constellation:
    """Starlink Gen1 + Kuiper: 7644 satellites across 8 shells."""
    starlink = starlink_like_constellation()
    kuiper = kuiper_like_constellation()
    return Constellation(
        list(starlink) + list(kuiper), name="starlink+kuiper"
    )


def run_megaconstellation(
    days: float = 3.0,
    step_s: float = SCAN_STEP_S,
    tolerance_s: float = EDGE_TOLERANCE_S,
    trace_memory: bool = True,
) -> Dict[str, float]:
    """Find every contact window; return the scoreboard the demo prints."""
    constellation = build_megaconstellation()
    sites = [city.terminal() for city in ALL_SITES]
    grid = TimeGrid(duration_s=days * 86_400.0, step_s=step_s)

    gc.collect()
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    contacts = find_contact_intervals(
        constellation, sites, grid, tolerance_s=tolerance_s
    )
    wall_s = time.perf_counter() - start
    peak_bytes = 0
    if trace_memory:
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    n_sites, n_sats, n_samples = len(sites), len(constellation), grid.count
    taipei = contacts.site_union(TAIPEI_INDEX)
    gaps = taipei.gap_lengths_s()
    return {
        "satellites": n_sats,
        "sites": n_sites,
        "days": days,
        "step_s": step_s,
        "samples": n_samples,
        "contacts": contacts.n_contacts,
        "wall_s": wall_s,
        "peak_mib": peak_bytes / 2**20,
        "intervals_mib": contacts.nbytes() / 2**20,
        "dense_tensor_mib": n_sites * n_sats * n_samples / 2**20,
        "packed_tensor_mib": n_sites * n_sats * ((n_samples + 7) // 8) / 2**20,
        "taipei_coverage_fraction": taipei.coverage_fraction,
        "taipei_max_gap_s": float(gaps.max()) if gaps.size else 0.0,
        "mean_site_coverage": float(contacts.coverage_fractions().mean()),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="6-hour horizon instead of 3 days (smoke-test sized)",
    )
    parser.add_argument(
        "--days", type=float, default=None,
        help="horizon in days (default: 3, or 0.25 with --quick)",
    )
    args = parser.parse_args()
    days = args.days if args.days is not None else (0.25 if args.quick else 3.0)

    result = run_megaconstellation(days=days)
    print(f"Constellation:  {result['satellites']} satellites "
          f"(Starlink Gen1 + Kuiper), {result['sites']} ground sites")
    print(f"Horizon:        {result['days']:g} days, scanned at "
          f"{result['step_s']:.0f} s ({result['samples']} samples)")
    print(f"Contacts found: {result['contacts']} windows "
          f"in {result['wall_s']:.1f} s wall "
          f"(peak {result['peak_mib']:.0f} MiB traced)")
    print(f"Interval store: {result['intervals_mib']:.1f} MiB vs "
          f"{result['dense_tensor_mib']:.0f} MiB dense / "
          f"{result['packed_tensor_mib']:.0f} MiB packed tensor")
    print(f"Taipei:         {100 * result['taipei_coverage_fraction']:.2f}% "
          f"covered, longest gap "
          f"{result['taipei_max_gap_s'] / 60:.1f} min")
    print(f"All 22 sites:   {100 * result['mean_site_coverage']:.2f}% "
          f"mean coverage")


if __name__ == "__main__":
    main()
