#!/usr/bin/env python3
"""A full MP-LEO lifecycle: contribute, serve, verify, bill, govern.

Three parties (Taiwan, Korea, and a commercial ISP) pool satellites into a
shared constellation.  The example then runs one day of the bent-pipe
engine, settles the spare-capacity trades on a token ledger, distributes
proof-of-coverage rewards, and shows why no single party can deny service
to a region.

Run:
    python examples/mpleo_marketplace.py
"""

import numpy as np

from repro import MultiPartyConstellation, Party, Satellite, TimeGrid
from repro.constellation.walker import walker_delta
from repro.core.governance import CommandKind, GovernanceBoard
from repro.core.incentives import ProofOfCoverageEpoch
from repro.core.ledger import TokenLedger
from repro.core.market import DataMarket, FlatPricing
from repro.core.robustness import largest_party_withdrawal
from repro.core.sharing import exchange_matrix
from repro.ground.cities import CITIES, TAIPEI, city_by_name
from repro.ground.gsaas import GroundStationPool
from repro.ground.sites import UserTerminal
from repro.sim.engine import BentPipeSimulator

PARTIES = (
    ("taiwan", TAIPEI),
    ("korea", city_by_name("Seoul")),
    ("isp", city_by_name("London")),
)


def build_registry(rng: np.random.Generator) -> MultiPartyConstellation:
    """Each party contributes 16 satellites, interleaved across one shell."""
    elements = walker_delta(48, 8, 1, inclination_deg=53.0, altitude_km=550.0)
    registry = MultiPartyConstellation()
    for index, (name, _) in enumerate(PARTIES):
        registry.join(Party(name, launch_budget=16))
        satellites = [
            Satellite(sat_id=f"{name.upper()}-{slot:02d}", elements=element)
            for slot, element in enumerate(elements[index::3])
        ]
        registry.contribute(name, satellites)
    return registry


def main() -> None:
    rng = np.random.default_rng(7)
    registry = build_registry(rng)
    constellation = registry.constellation()
    print(f"Shared constellation: {len(constellation)} satellites, "
          f"stakes {registry.stakes()}")

    # -- Ground segment: each party rents GSaaS capacity near home. -------
    pool = GroundStationPool()
    terminals, stations = [], []
    for name, city in PARTIES:
        terminals.append(
            UserTerminal(
                f"ut-{name}", city.latitude_deg, city.longitude_deg,
                min_elevation_deg=25.0, party=name, demand_mbps=150.0,
            )
        )
        stations.append(
            pool.rent_nearest(name, city.latitude_deg, city.longitude_deg)
        )
    print(f"Rented stations: {[station.name for station in stations]}")

    # -- One day of bent-pipe service. ------------------------------------
    grid = TimeGrid.hours(24.0, step_s=120.0)
    result = BentPipeSimulator(constellation, terminals, stations, grid).run(rng)
    print(f"\nSessions: {len(result.sessions)}, "
          f"served {result.total_served_megabits / 8e3:.1f} GB total, "
          f"{result.spare_capacity_megabits() / 8e3:.1f} GB across parties")

    names = [name for name, _ in PARTIES]
    matrix = exchange_matrix(result.sessions, names)
    print("Exchange matrix (GB consumed by row-party on column-party sats):")
    header = "          " + "  ".join(f"{name:>8s}" for name in names)
    print(header)
    for i, name in enumerate(names):
        cells = "  ".join(f"{matrix[i, j] / 8e3:8.2f}" for j in range(len(names)))
        print(f"  {name:>8s}{cells}")

    # -- Billing: settle spare-capacity trades on the ledger. -------------
    ledger = TokenLedger()
    for name in names:
        ledger.mint(name, 10_000.0, memo="bootstrap stake")
    market = DataMarket(pricing=FlatPricing(0.001))
    invoices = market.bill(result.sessions)
    transfers = market.settle(invoices, ledger)
    print(f"\nMarket: {len(invoices)} invoices, net transfers: "
          f"{ {pair: round(amount, 2) for pair, amount in transfers.items()} }")

    # -- Proof-of-coverage rewards. ----------------------------------------
    verifiers = [city.terminal(min_elevation_deg=10.0) for city in CITIES[:6]]
    epoch = ProofOfCoverageEpoch(
        constellation=constellation, verifiers=verifiers, grid=grid
    )
    epoch.generate_proofs(rng, pings_per_verifier=300)
    minted = epoch.distribute(ledger, reward_pool=1_000.0)
    provider_rewards = {k: round(v, 1) for k, v in minted.items() if k in names}
    print(f"Proof-of-coverage rewards to providers: {provider_rewards}")
    print(f"Ledger verifies: {ledger.verify()}, balances: "
          f"{ {k: round(v, 1) for k, v in ledger.balances().items() if k in names} }")

    # -- Governance: nobody can unilaterally deny a region. ---------------
    board = GovernanceBoard(registry.stakes())
    proposal = board.propose("isp", CommandKind.DENY_REGION, "Taipei")
    print(f"\nGovernance: 'isp' proposes denying service over Taipei -> "
          f"approved={board.is_approved(proposal.proposal_id)} "
          f"(needs 2/3 stake, has {board.approval_stake(proposal.proposal_id):.2f})")

    # -- Robustness: what if the largest party walks? ----------------------
    impact = largest_party_withdrawal(registry, TimeGrid.hours(24.0, step_s=300.0),
                                      CITIES[:6])
    print(f"Largest-party exit: coverage {100 * impact.base_fraction:.1f}% -> "
          f"{100 * impact.reduced_fraction:.1f}% "
          f"({impact.reduction_percent:.1f} points lost; degraded, not dead)")


if __name__ == "__main__":
    main()
