#!/usr/bin/env python3
"""Quickstart: coverage of a LEO constellation, in ~30 lines.

Builds a synthetic Starlink-like pool, samples a 1000-satellite
constellation from it (the paper's Fig. 2 methodology), and reports how
well it covers a user terminal in Taipei over one simulated day.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import TimeGrid, VisibilityEngine, sample_constellation, starlink_like_constellation
from repro.ground.cities import TAIPEI
from repro.sim.coverage import coverage_stats


def main() -> None:
    rng = np.random.default_rng(42)
    pool = starlink_like_constellation()
    constellation = sample_constellation(pool, 1000, rng)
    print(f"Sampled {len(constellation)} of {len(pool)} satellites")

    grid = TimeGrid.hours(24.0, step_s=60.0)
    engine = VisibilityEngine(grid)
    terminal = TAIPEI.terminal()  # 25 deg elevation mask, like Starlink.

    mask = engine.site_coverage(constellation, [terminal])[0]
    stats = coverage_stats(mask, grid.step_s)

    print(f"Site: {terminal.name} ({terminal.latitude_deg:.2f}N, "
          f"{terminal.longitude_deg:.2f}E)")
    print(f"Covered:       {stats.covered_percent:.2f}% of the day")
    print(f"Longest gap:   {stats.max_gap_s / 60:.1f} minutes")
    print(f"Gap count:     {stats.gap_count}")

    counts = engine.visible_counts(constellation, [terminal])[0]
    print(f"Visible satellites: mean {counts.mean():.1f}, max {counts.max()}")


if __name__ == "__main__":
    main()
