#!/usr/bin/env python3
"""Fig. 1a — the orbital motion of one LEO satellite across three hours.

Propagates a Starlink-like satellite (53 deg / 546 km) for three hours and
renders its ground track on an ASCII world grid, demonstrating the paper's
core premise: the satellite sweeps different longitudes each orbit, so it
cannot park over any one region.

Run:
    python examples/ground_track.py
"""

import numpy as np

from repro.orbits import J2Propagator, OrbitalElements, subsatellite_point
from repro.orbits.frames import gmst_rad

GRID_COLS = 72  # 5 degrees of longitude per column.
GRID_ROWS = 19  # ~9.5 degrees of latitude per row.


def render_track(latitudes, longitudes) -> str:
    """Plot lat/lon points on an ASCII map, 0-9 showing time order."""
    grid = [[" "] * GRID_COLS for _ in range(GRID_ROWS)]
    for index, (lat, lon) in enumerate(zip(latitudes, longitudes)):
        row = int((90.0 - lat) / 180.0 * (GRID_ROWS - 1))
        col = int((lon % 360.0) / 360.0 * (GRID_COLS - 1))
        marker = str(index * 10 // len(latitudes))  # 0 early ... 9 late.
        grid[row][col] = marker
    border = "+" + "-" * GRID_COLS + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def main() -> None:
    elements = OrbitalElements.from_degrees(
        altitude_km=546.0, inclination_deg=53.0, raan_deg=10.0
    )
    propagator = J2Propagator(elements)

    times = np.arange(0.0, 3 * 3600.0, 30.0)  # Three hours, 30 s steps.
    latitudes, longitudes = [], []
    for time_s in times:
        position = propagator.position_eci(time_s)
        lat, lon = subsatellite_point(position, float(gmst_rad(time_s)))
        latitudes.append(float(lat))
        longitudes.append(float(lon))

    print(f"Orbital period: {elements.period_s / 60:.1f} minutes "
          f"({3 * 3600 / elements.period_s:.1f} orbits in 3 hours)")
    print("Ground track (digits 0->9 show time order; note the westward "
          "shift of each successive orbit):\n")
    print(render_track(latitudes, longitudes))

    # Quantify the per-orbit longitude shift Fig. 1a illustrates.
    equator_crossings = [
        lon
        for lat, lon, next_lat in zip(latitudes, longitudes, latitudes[1:])
        if lat <= 0.0 < next_lat
    ]
    if len(equator_crossings) >= 2:
        shift = (equator_crossings[0] - equator_crossings[1]) % 360.0
        print(f"\nAscending-node longitude shift per orbit: {shift:.1f} deg "
              "(Earth rotates under the fixed orbital plane)")


if __name__ == "__main__":
    main()
