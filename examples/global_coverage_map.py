#!/usr/bin/env python3
"""Global coverage maps: what "global coverage" actually looks like.

Renders area-weighted coverage grids for three constellation designs and
reports the global coverage fraction and Jain fairness (coverage equity) of
each — the quantitative version of the paper's Fig. 1b intuition that
region-specific designs waste their satellites.

Run:
    python examples/global_coverage_map.py
"""

import numpy as np

from repro.analysis.heatmap import compute_coverage_grid, coverage_equity
from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import walker_delta, walker_star
from repro.core.placement import clustered_design
from repro.sim.clock import TimeGrid


def _constellation(elements, prefix):
    return Constellation(
        [
            Satellite(sat_id=f"{prefix}-{index:03d}", elements=element)
            for index, element in enumerate(elements)
        ]
    )


def main() -> None:
    grid = TimeGrid.hours(12.0, step_s=300.0)
    designs = {
        "Walker delta 53 deg (Starlink-style, 120 sats)": _constellation(
            walker_delta(120, 12, 1, inclination_deg=53.0, altitude_km=550.0), "WD"
        ),
        "Walker star 87.9 deg (OneWeb-style polar, 120 sats)": _constellation(
            walker_star(120, 12, 1, inclination_deg=87.9, altitude_km=1200.0), "WS"
        ),
        "Clustered anti-pattern (120 sats, one phase window)": clustered_design(
            120, np.random.default_rng(0)
        ),
    }

    for name, constellation in designs.items():
        result = compute_coverage_grid(
            constellation, grid, lat_step_deg=10.0, lon_step_deg=6.0
        )
        print(f"\n=== {name} ===")
        print(result.render_ascii())
        print(f"global coverage (area-weighted): "
              f"{100 * result.global_coverage_fraction:.1f}%   "
              f"coverage equity (Jain): {coverage_equity(result):.3f}")

    print("\nReading: rows are 10-degree latitude bands (N to S), darker is "
          "better covered.")
    print("The 53-degree shell concentrates on the populated mid-latitudes; "
          "the polar shell covers the poles at lower density; the clustered "
          "design leaves most longitudes dark — the waste MP-LEO's "
          "interleaved ownership avoids.")


if __name__ == "__main__":
    main()
