#!/usr/bin/env python3
"""Where should the next satellite go? (the paper's §3.3 design study)

Demonstrates the incentive-aligned placement machinery:

1. the Fig. 4b phase sweep — between two satellites of a 12-satellite
   plane, the midpoint wins;
2. the Fig. 4c factor comparison — changing inclination beats changing
   altitude or phase;
3. a greedy gap-filling design vs random and clustered baselines.

Run:
    python examples/constellation_design.py
"""

import numpy as np

from repro.analysis.reporting import Series, Table
from repro.core.placement import (
    PlacementScorer,
    clustered_design,
    greedy_gap_filling_design,
    random_design,
)
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig4b_phase_sweep import run_fig4b
from repro.experiments.fig4c_design_factors import run_fig4c
from repro.constellation.shells import starlink_like_constellation
from repro.ground.cities import CITIES
from repro.sim.clock import TimeGrid


def main() -> None:
    config = ExperimentConfig(runs=1, step_s=300.0)

    # -- Fig. 4b: the phase sweep. -----------------------------------------
    print("Sweeping 29 phase positions between two satellites "
          "(12-satellite plane, 53 deg / 546 km)...")
    fig4b = run_fig4b(config)
    series = Series("Coverage gain vs phase offset", "offset (deg)", "gain (h)")
    for point in fig4b.points[::4]:
        series.add_point(point.phase_offset_deg, round(point.gain_hours, 3))
    series.print()
    print(f"Best offset: {fig4b.best_offset_deg():.0f} deg — the midpoint, "
          "i.e. the farthest point from existing satellites.")

    # -- Fig. 4c: which orbital factor matters most? -----------------------
    fig4c = run_fig4c(config)
    table = Table("Coverage gain by design factor", ["factor", "gain (min)"],
                  precision=0)
    for label, gain in fig4c.ranking():
        table.add_row(label, gain * 60.0)
    table.print()

    # -- Strategy comparison at a fixed budget. -----------------------------
    print("\nDesigning a 10-satellite constellation three ways "
          "(population-weighted coverage over the 21 cities, 1 week)...")
    grid = TimeGrid.one_week(step_s=300.0)
    rng = np.random.default_rng(3)
    pool = starlink_like_constellation()

    strategies = {
        "gap-filling (greedy)": greedy_gap_filling_design(
            10, grid, rng, candidates_per_round=24
        ),
        "random from pool": random_design(10, pool, rng),
        "clustered (anti-pattern)": clustered_design(10, rng),
    }
    comparison = Table("Placement strategies", ["strategy", "weighted coverage %"],
                       precision=2)
    for name, design in strategies.items():
        coverage = PlacementScorer(design, grid, CITIES).base_fraction
        comparison.add_row(name, 100.0 * coverage)
    comparison.print()

    print("\nThe gap-filling strategy is also the individually rational one:")
    print("a party that fills the biggest hole gets exclusive customers there.")


if __name__ == "__main__":
    main()
