"""Setup shim.

The offline environment has setuptools but no `wheel` package, so pip's
PEP-517 editable path (which shells out to bdist_wheel) fails.  This shim
lets `pip install -e . --no-build-isolation` fall back to the legacy
`setup.py develop` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
