"""Ablation — detecting a service-denying party (§4's trust question).

Simulates a denial attack: a two-party constellation runs the bent-pipe
engine normally, then one party's guest-serving sessions are suppressed
(what its denial would look like in the session log).  The auditor must
flag the attacker from visibility ground truth + the log, and leave the
honest party clean.
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import walker_delta
from repro.core.audit import audit_service_denial, slashing_amounts
from repro.ground.cities import TAIPEI, city_by_name
from repro.ground.sites import GroundStation, UserTerminal
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator
from repro.sim.visibility import VisibilityEngine


def _scenario():
    elements = walker_delta(24, 6, 1, inclination_deg=53.0, altitude_km=550.0)
    satellites = [
        Satellite(
            sat_id=f"S-{index}",
            elements=element,
            party="honest" if index % 2 == 0 else "denier",
        )
        for index, element in enumerate(elements)
    ]
    constellation = Constellation(satellites)
    seoul = city_by_name("Seoul")
    terminals = [
        UserTerminal("ut-h", TAIPEI.latitude_deg, TAIPEI.longitude_deg,
                     min_elevation_deg=25.0, party="honest", demand_mbps=100.0),
        UserTerminal("ut-d", seoul.latitude_deg, seoul.longitude_deg,
                     min_elevation_deg=25.0, party="denier", demand_mbps=100.0),
    ]
    stations = [
        GroundStation("gs-h", 24.0, 121.0, min_elevation_deg=10.0, party="honest"),
        GroundStation("gs-d", 37.0, 127.5, min_elevation_deg=10.0, party="denier"),
    ]
    return constellation, terminals, stations


def _run(config):
    constellation, terminals, stations = _scenario()
    grid = TimeGrid.hours(24.0, step_s=config.step_s)
    result = BentPipeSimulator(constellation, terminals, stations, grid).run(
        config.rng(salt=107)
    )
    # The attack: the 'denier' never actually carries guest traffic.
    attacked_log = [
        session
        for session in result.sessions
        if not (session.sat_party == "denier" and session.is_spare_capacity)
    ]
    visibility = VisibilityEngine(grid).visibility(constellation, terminals)
    reports = audit_service_denial(
        visibility,
        [terminal.party for terminal in terminals],
        [satellite.party for satellite in constellation],
        attacked_log,
        [satellite.sat_id for satellite in constellation],
        grid.duration_s,
    )
    slashes = slashing_amounts(
        reports, {"honest": 1000.0, "denier": 1000.0}, slash_rate=0.1
    )
    return reports, slashes


def test_ablation_audit(benchmark, bench_config, report):
    reports, slashes = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1
    )

    table = Table(
        "Ablation: service-denial audit after a simulated denial attack (24 h)",
        ["party", "opportunity", "served", "denial score", "flagged", "slashed"],
        precision=3,
    )
    for item in reports:
        table.add_row(
            item.party,
            item.opportunity_fraction,
            item.service_fraction,
            item.denial_score,
            str(item.suspicious),
            slashes.get(item.party, 0.0),
        )
    report(table)

    by_party = {item.party: item for item in reports}
    assert by_party["denier"].suspicious
    assert not by_party["honest"].suspicious
    assert slashes.get("denier", 0.0) > 0.0
    assert "honest" not in slashes
