"""§2 claim — "a participant contributing just 50 satellites can get
coverage worth over 1000 satellites by trading off their spare capacities".
"""



from repro.analysis.reporting import Table
from repro.experiments.sharing_upside import run_sharing_upside


def test_sharing_upside(benchmark, bench_config, shared_pool_visibility, report):
    result = benchmark.pedantic(
        lambda: run_sharing_upside(bench_config, contributed=50, network_size=1000),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Sec. 2 claim: coverage worth of a 50-satellite contribution in a "
        "1000-satellite MP-LEO",
        ["metric", "value"],
        precision=3,
    )
    upside = result.upside
    table.add_row("alone coverage (50 sats)", upside.alone_coverage_fraction)
    table.add_row("shared coverage (1000 sats)", upside.shared_coverage_fraction)
    table.add_row("equivalent go-it-alone sats", upside.equivalent_alone_satellites)
    table.add_row("satellite multiplier", upside.satellite_multiplier)
    report(table)

    calibration = Table(
        "Go-it-alone calibration curve", ["satellites", "weighted coverage"],
        precision=3,
    )
    for size, coverage in result.calibration:
        calibration.add_row(size, coverage)
    report(calibration)

    # The paper's claim: worth over 1000 satellites, i.e. >= 20x.
    assert upside.equivalent_alone_satellites >= 1000
    assert upside.satellite_multiplier >= 20.0
