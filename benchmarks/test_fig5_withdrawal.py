"""Fig. 5 — coverage loss when half the constellation denies service.

Paper anchors: L=200 loses 24.17% of the week's coverage (1 day 16 h);
the loss shrinks with scale, down to 0.37% at L=2000.
"""



from repro.analysis.reporting import Table
from repro.experiments.fig5_withdrawal import DEFAULT_SIZES, run_fig5


def test_fig5_withdrawal(benchmark, bench_config, shared_pool_visibility, report):
    result = benchmark.pedantic(
        lambda: run_fig5(bench_config, sizes=DEFAULT_SIZES),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Fig. 5: weighted coverage loss when L/2 of L satellites withdraw",
        ["L", "loss %", "std", "lost time (h/week)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(
            point.satellites,
            point.mean_reduction_percent,
            point.std_reduction_percent,
            point.mean_lost_hours,
        )
    report(table)

    losses = {p.satellites: p.mean_reduction_percent for p in result.points}
    # Monotone: bigger constellations are more robust.
    values = [losses[size] for size in DEFAULT_SIZES]
    assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
    # Paper anchors: ~24% at L=200, <1% at L=2000.
    assert 15.0 < losses[200] < 35.0
    assert losses[2000] < 1.5
