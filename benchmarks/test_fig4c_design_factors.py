"""Fig. 4c — inclination vs altitude vs phase for an added satellite.

Paper anchors: a different-inclination (43 deg) addition gains the most
(~1 h 11 m); different-altitude and different-phase additions still gain
over 30 minutes each.
"""



from repro.analysis.reporting import Table
from repro.experiments.fig4c_design_factors import run_fig4c


def test_fig4c_design_factors(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: run_fig4c(bench_config), rounds=1, iterations=1
    )

    table = Table(
        "Fig. 4c: coverage gain by design factor (base: 4 sats, 53 deg / 546 km)",
        ["factor", "gain (h)", "gain (min)"],
        precision=2,
    )
    for label, gain in result.ranking():
        table.add_row(label, gain, gain * 60.0)
    report(table)

    gains = result.gains_hours
    # Paper anchor: inclination wins, at roughly 1 h 11 m.
    assert result.ranking()[0][0] == "inclination"
    assert 0.8 < gains["inclination"] < 1.6
    # The other two factors still gain over 30 minutes.
    assert gains["altitude"] > 0.5
    assert gains["phase"] > 0.5
