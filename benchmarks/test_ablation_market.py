"""Ablation — pricing policy effects on the MP-LEO data market (§3.2, §4).

Runs the bent-pipe engine over a two-party shared constellation and bills
the spare-capacity sessions under flat vs congestion pricing.  Congestion
pricing shifts revenue toward satellites that actually carry load; total
traded volume is identical (pricing does not change the physics).
"""

import numpy as np


from repro.analysis.reporting import Table
from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import walker_delta
from repro.core.auction import Bid, asks_from_spare_capacity, clear_double_auction
from repro.core.market import CongestionPricing, DataMarket, FlatPricing
from repro.ground.cities import TAIPEI
from repro.ground.sites import GroundStation, UserTerminal
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator


def _two_party_scenario():
    elements = walker_delta(24, 6, 1, inclination_deg=53.0, altitude_km=550.0)
    satellites = [
        Satellite(
            sat_id=f"S-{index}",
            elements=element,
            party="alpha" if index % 2 == 0 else "beta",
        )
        for index, element in enumerate(elements)
    ]
    constellation = Constellation(satellites)
    terminals = [
        UserTerminal(
            "ut-alpha", TAIPEI.latitude_deg, TAIPEI.longitude_deg,
            min_elevation_deg=25.0, party="alpha", demand_mbps=200.0,
        ),
        UserTerminal(
            "ut-beta", 37.57, 126.98,
            min_elevation_deg=25.0, party="beta", demand_mbps=200.0,
        ),
    ]
    stations = [
        GroundStation("gs-alpha", 24.0, 121.0, min_elevation_deg=10.0, party="alpha"),
        GroundStation("gs-beta", 37.0, 127.5, min_elevation_deg=10.0, party="beta"),
    ]
    return constellation, terminals, stations


def _run(config):
    constellation, terminals, stations = _two_party_scenario()
    grid = TimeGrid.hours(24.0, step_s=config.step_s)
    result = BentPipeSimulator(constellation, terminals, stations, grid).run(
        config.rng(salt=102)
    )
    utilization = {
        sat_id: float(load.mean() > 0.0) * float((load > 0).mean())
        for sat_id, load in zip(
            result.sat_ids, result.satellite_load_mbps
        )
    }
    outcomes = {}
    for name, pricing in (
        ("flat", FlatPricing(0.001)),
        ("congestion", CongestionPricing(0.001, slope=4.0)),
    ):
        market = DataMarket(pricing=pricing)
        invoices = market.bill(result.sessions, utilization_by_sat=utilization)
        outcomes[name] = {
            "invoices": len(invoices),
            "revenue": sum(invoice.tokens for invoice in invoices),
        }
    outcomes["traded_megabits"] = result.spare_capacity_megabits()

    # Dynamic price discovery (§4): auction next-day spare capacity.  Supply
    # is each party's measured spare-capacity rate; demand is two buyers
    # with different willingness to pay.
    spare_rate_by_party = {}
    for session in result.sessions:
        if session.is_spare_capacity:
            spare_rate_by_party[session.sat_party] = (
                spare_rate_by_party.get(session.sat_party, 0.0)
                + session.rate_mbps * session.duration_s / grid.duration_s
            )
    auction = clear_double_auction(
        bids=[
            Bid("alpha", quantity=30.0, price=0.004),
            Bid("beta", quantity=30.0, price=0.002),
        ],
        asks=asks_from_spare_capacity(spare_rate_by_party, reserve_price=0.001),
    )
    outcomes["auction"] = auction
    return outcomes


def test_ablation_market(benchmark, bench_config, report):
    outcomes = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)

    table = Table(
        "Ablation: market outcomes by pricing policy (2-party MP-LEO, 24 h)",
        ["policy", "invoices", "total revenue (tokens)"],
        precision=2,
    )
    for name in ("flat", "congestion"):
        table.add_row(name, outcomes[name]["invoices"], outcomes[name]["revenue"])
    report(table)

    assert outcomes["traded_megabits"] > 0.0, "scenario must trade spare capacity"
    assert outcomes["flat"]["invoices"] == outcomes["congestion"]["invoices"]
    # Congestion pricing charges at least the flat base, more under load.
    assert outcomes["congestion"]["revenue"] >= outcomes["flat"]["revenue"]

    auction = outcomes["auction"]
    auction_table = Table(
        "Ablation: spot-auction price discovery for spare capacity",
        ["metric", "value"],
        precision=4,
    )
    auction_table.add_row("cleared", str(auction.cleared))
    if auction.cleared:
        auction_table.add_row("clearing price (tokens/Mb)", auction.clearing_price)
        auction_table.add_row("traded rate (Mbps)", auction.traded_quantity)
        auction_table.add_row("trades", len(auction.trades))
    report(auction_table)
    assert auction.cleared
    # Uniform price sits between the reserve and the top bid.
    assert 0.001 <= auction.clearing_price <= 0.004
