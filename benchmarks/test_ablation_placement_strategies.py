"""Ablation — placement strategies (§3.3's design choice, made explicit).

Compares three ways a party might deploy a fixed budget of satellites:

* gap-filling (the paper's incentive-aligned strategy),
* random sampling from a Starlink-like pool,
* clustering in a narrow phase window (the anti-pattern).

The paper's argument predicts gap-filling >= random >> clustered on
population-weighted coverage.
"""

import numpy as np


from repro.analysis.reporting import Table
from repro.core.placement import (
    PlacementScorer,
    clustered_design,
    greedy_gap_filling_design,
    random_design,
)
from repro.experiments.common import starlink_pool
from repro.ground.cities import CITIES
from repro.sim.clock import TimeGrid

BUDGET = 12


def _run(config):
    grid = TimeGrid.one_week(step_s=max(config.step_s, 300.0))
    pool = starlink_pool()
    rng = config.rng(salt=101)

    designs = {
        "gap-filling": greedy_gap_filling_design(
            BUDGET, grid, rng, candidates_per_round=24
        ),
        "random": random_design(BUDGET, pool, rng),
        "clustered": clustered_design(BUDGET, rng, phase_spread_deg=10.0),
    }
    coverages = {
        name: PlacementScorer(design, grid, CITIES).base_fraction
        for name, design in designs.items()
    }
    return coverages


def test_ablation_placement_strategies(benchmark, bench_config, report):
    coverages = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)

    table = Table(
        f"Ablation: weighted city coverage by placement strategy "
        f"({BUDGET} satellites, 1 week)",
        ["strategy", "weighted coverage"],
        precision=4,
    )
    for name, value in sorted(coverages.items(), key=lambda item: -item[1]):
        table.add_row(name, value)
    report(table)

    assert coverages["gap-filling"] >= coverages["random"]
    assert coverages["random"] > coverages["clustered"]
    # Clustering wastes most of the budget (the paper's warning).
    assert coverages["gap-filling"] > 1.5 * coverages["clustered"]
