"""Ablation — downlink scheduling policies on a rented GSaaS ground segment.

An MP-LEO party's feeder problem: 60 satellites carrying its traffic, four
rented GSaaS antennas, each able to track one satellite at a time.  Compares
the antenna-assignment policies on delivered volume and fairness.
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.constellation.sampling import sample_constellation
from repro.experiments.common import ENGINE_INTERVALS, default_context, starlink_pool
from repro.ground.gsaas import GroundStationPool
from repro.sim.clock import TimeGrid
from repro.sim.intervals import find_contact_intervals
from repro.sim.scheduling import SchedulingPolicy, compare_policies
from repro.sim.visibility import VisibilityEngine

FLEET = 60
ANTENNAS = ("seoul", "sydney", "ireland", "ohio")


def _run(config):
    rng = config.rng(salt=109)
    constellation = sample_constellation(starlink_pool(), FLEET, rng)
    pool = GroundStationPool()
    stations = [pool.rent("party", site) for site in ANTENNAS]
    grid = TimeGrid.hours(24.0, step_s=config.step_s)
    if default_context().engine == ENGINE_INTERVALS:
        windows = find_contact_intervals(constellation, stations, grid)
    else:
        windows = VisibilityEngine(grid).visibility(constellation, stations)
    return compare_policies(
        windows, grid, downlink_rate_mbps=800.0, generation_rate_mbps=20.0
    )


def test_ablation_scheduling(benchmark, bench_config, report):
    outcomes = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)

    table = Table(
        f"Ablation: downlink scheduling ({FLEET} satellites, "
        f"{len(ANTENNAS)} GSaaS antennas, 24 h)",
        ["policy", "delivered %", "fairness (Jain)", "antenna busy %"],
        precision=3,
    )
    for policy, result in outcomes.items():
        table.add_row(
            policy.value,
            100.0 * result.delivery_fraction,
            result.fairness_index(),
            100.0 * float(result.station_busy_fraction.mean()),
        )
    report(table)

    max_backlog = outcomes[SchedulingPolicy.MAX_BACKLOG]
    first_visible = outcomes[SchedulingPolicy.FIRST_VISIBLE]
    # Backlog-aware scheduling delivers at least as much as the naive policy.
    assert (
        max_backlog.total_downlinked_megabits
        >= first_visible.total_downlinked_megabits - 1e-6
    )
    # Every policy respects conservation.
    for result in outcomes.values():
        np.testing.assert_allclose(
            result.generated_megabits,
            result.downlinked_megabits + result.remaining_backlog_megabits,
        )
