"""Fig. 3 — satellite idle time vs number of cities served.

Paper anchors: serving one major city leaves satellites idle ~99% of the
time; idle time falls monotonically as cities are added.
"""



from repro.analysis.reporting import Series
from repro.experiments.fig3_idle_vs_cities import run_fig3


def test_fig3_idle_vs_cities(benchmark, bench_config, shared_pool_visibility, report):
    city_counts = tuple(range(1, 22))
    result = benchmark.pedantic(
        lambda: run_fig3(bench_config, city_counts=city_counts),
        rounds=1,
        iterations=1,
    )

    series = Series(
        "Fig. 3: satellite idle time vs cities served (1 week)",
        "cities",
        "mean idle %",
        precision=2,
    )
    for point in result.points:
        series.add_point(point.cities, point.mean_idle_percent)
    report(series)

    idle = {p.cities: p.mean_idle_percent for p in result.points}
    # Paper anchor: one city -> ~99% idle.
    assert idle[1] > 98.0
    # Monotone decreasing in the number of cities.
    values = [idle[count] for count in city_counts]
    assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
    # Global sharing materially improves utilization.
    assert idle[21] < idle[1] - 5.0
