"""Parallel Monte-Carlo identity benchmarks.

Runs the two heaviest Monte-Carlo figures serially and with a 4-worker
process pool and asserts the results are *exactly* equal — the runner's
determinism contract (order-independent per-run seeds + ordered reduction)
means ``--parallel`` may only change wall-clock, never a number.

The recorded wall time for each entry is the parallel leg alone
(:func:`record_wall`), so bench-compare can track parallel overhead/speedup
across PRs.  On multi-core runners the parallel leg should win; on a
single-core container it pays pool + shared-memory overhead and loses —
either way the *identity* assertion is the point of these benchmarks.
"""

import time
from dataclasses import replace

from repro.experiments.fig2_coverage_vs_size import DEFAULT_SIZES, run_fig2
from repro.experiments.fig3_idle_vs_cities import run_fig3

PARALLEL_WORKERS = 4


def test_fig2_parallel_matches_serial(
    bench_config, shared_pool_visibility, record_wall
):
    serial = run_fig2(replace(bench_config, parallel=1), sizes=DEFAULT_SIZES)
    start = time.perf_counter()
    parallel = run_fig2(
        replace(bench_config, parallel=PARALLEL_WORKERS), sizes=DEFAULT_SIZES
    )
    record_wall(time.perf_counter() - start)
    # Exact equality, point by point: same floats, same gaps.
    assert parallel.points == serial.points


def test_fig3_parallel_matches_serial(
    bench_config, shared_pool_visibility, record_wall
):
    serial = run_fig3(replace(bench_config, parallel=1))
    start = time.perf_counter()
    parallel = run_fig3(replace(bench_config, parallel=PARALLEL_WORKERS))
    record_wall(time.perf_counter() - start)
    assert parallel.points == serial.points
