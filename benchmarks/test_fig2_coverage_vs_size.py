"""Fig. 2 — percentage of time without coverage vs constellation size.

Paper anchors: 100 satellites -> >50% time uncovered with gaps over an
hour; >=1000 satellites -> >=99.5% coverage.
"""



from repro.analysis.reporting import Table
from repro.experiments.fig2_coverage_vs_size import DEFAULT_SIZES, run_fig2


def test_fig2_coverage_vs_size(benchmark, bench_config, shared_pool_visibility, report):
    result = benchmark.pedantic(
        lambda: run_fig2(bench_config, sizes=DEFAULT_SIZES),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Fig. 2: % time without coverage at Taipei (1 week)",
        ["satellites", "uncovered %", "std", "mean max gap (h)", "worst gap (h)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(
            point.satellites,
            point.mean_uncovered_percent,
            point.std_uncovered_percent,
            point.mean_max_gap_s / 3600.0,
            point.max_max_gap_s / 3600.0,
        )
    report(table)

    uncovered = {p.satellites: p.mean_uncovered_percent for p in result.points}
    # Monotone decreasing in constellation size.
    series = [uncovered[size] for size in DEFAULT_SIZES]
    assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
    # Paper anchors.
    assert uncovered[100] > 50.0
    assert uncovered[1000] < 1.5
    # "Continuous gaps of up to over an hour" at 100 satellites.
    point_100 = next(p for p in result.points if p.satellites == 100)
    assert point_100.max_max_gap_s > 3600.0
