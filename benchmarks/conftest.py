"""Shared benchmark infrastructure.

Each benchmark regenerates one table/figure of the paper at the
configuration below and prints the series the figure reports.  Output is
written through ``sys.__stdout__`` so the rows appear even under pytest's
capture (no ``-s`` needed).

The expensive artifact — packed visibility of the full synthetic Starlink
pool at the 22 experiment sites over one week — is built once per session
and shared by every benchmark through :mod:`repro.experiments.common`'s
module-level cache; each ``benchmark()`` measurement therefore times the
figure's analysis, not the shared propagation.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig

#: The configuration every figure benchmark runs at.  The paper uses 100
#: Monte-Carlo runs; 20 runs at 120 s steps reproduces every figure shape in
#: minutes of wall clock (EXPERIMENTS.md records the resulting numbers).
BENCH_CONFIG = ExperimentConfig(runs=20, step_s=120.0, seed=2024)


@pytest.fixture
def report(capfd):
    """Print a Table/Series to the real stdout, bypassing pytest capture.

    pytest captures at the file-descriptor level by default, so plain
    ``print`` (and even ``sys.__stdout__``) would be swallowed; disabling
    the capture fixture for the duration of the write is the supported way
    to emit the paper-style rows unconditionally.
    """

    def _report(renderable) -> None:
        with capfd.disabled():
            print("\n" + renderable.render(), flush=True)

    return _report


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def shared_pool_visibility(bench_config):
    """Force the one-time pool propagation outside any timed region."""
    from repro.experiments.common import pool_visibility

    return pool_visibility(bench_config)
