"""Shared benchmark infrastructure.

Each benchmark regenerates one table/figure of the paper at the
configuration below and prints the series the figure reports.  Output is
written through ``sys.__stdout__`` so the rows appear even under pytest's
capture (no ``-s`` needed).

The expensive artifact — packed visibility of the full synthetic Starlink
pool at the 22 experiment sites over one week — is built once per session
and shared by every benchmark through :mod:`repro.experiments.common`'s
module-level cache; each ``benchmark()`` measurement therefore times the
figure's analysis, not the shared propagation.

At session end the harness writes a benchmark record (by default
``benchmarks/BENCH_PR1.json``; override with the ``REPRO_BENCH_OUT`` env
var): per-figure wall-clock, the observability layer's span aggregates
(propagation / visibility / analysis phases), and the full metrics
snapshot.  The committed BENCH_PR1.json is the first point of the repo's
perf trajectory — diff a fresh record against it with
``python -m repro bench-compare``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.common import ExperimentConfig
from repro.obs import metrics as obs_metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace as obs_trace

#: The configuration every figure benchmark runs at.  The paper uses 100
#: Monte-Carlo runs; 20 runs at 120 s steps reproduces every figure shape in
#: minutes of wall clock (EXPERIMENTS.md records the resulting numbers).
#: ``REPRO_BENCH_PARALLEL`` sets the Monte-Carlo worker count for the whole
#: session (results are identical for every value; only wall-clock moves).
BENCH_CONFIG = ExperimentConfig(
    runs=20, step_s=120.0, seed=2024,
    parallel=int(os.environ.get("REPRO_BENCH_PARALLEL", "1")),
)

#: Where the machine-readable benchmark record lands.  CI's bench-smoke job
#: points REPRO_BENCH_OUT elsewhere so the committed records stay put.
#: BENCH_PR1.json is the frozen pre-runner baseline; BENCH_PR3.json is the
#: unified-runner record; BENCH_PR5.json the streaming-kernel record;
#: BENCH_PR8.json the analytic-contact-intervals record; BENCH_PR10.json
#: is the current record (subset-query kernels + warm worker pool).
BENCH_REPORT_PATH = Path(
    os.environ.get("REPRO_BENCH_OUT", Path(__file__).parent / "BENCH_PR10.json")
)

#: Per-test wall-clock, filled by the autouse timer fixture.
_TEST_SECONDS: Dict[str, float] = {}

#: Extra per-test measurements (e.g. peak traced MiB) merged into the
#: record's figure entries alongside wall_s.
_TEST_EXTRAS: Dict[str, Dict[str, float]] = {}


@pytest.fixture
def report(capfd):
    """Print a Table/Series to the real stdout, bypassing pytest capture.

    pytest captures at the file-descriptor level by default, so plain
    ``print`` (and even ``sys.__stdout__``) would be swallowed; disabling
    the capture fixture for the duration of the write is the supported way
    to emit the paper-style rows unconditionally.
    """

    def _report(renderable) -> None:
        with capfd.disabled():
            print("\n" + renderable.render(), flush=True)

    return _report


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def shared_pool_visibility(bench_config):
    """Force the one-time pool propagation outside any timed region."""
    from repro.experiments.common import pool_visibility

    return pool_visibility(bench_config)


@pytest.fixture(autouse=True)
def _time_benchmark(request):
    """Record each benchmark's wall clock for the session perf report.

    ``setdefault`` so a test that measured a more precise interval itself
    (via :func:`record_wall`) keeps its own number.
    """
    start = time.perf_counter()
    yield
    _TEST_SECONDS.setdefault(request.node.name, time.perf_counter() - start)


@pytest.fixture
def record_wall(request):
    """Record an explicitly measured wall time for this benchmark's entry.

    The parallel-identity benchmarks run the figure twice (serial then
    parallel) and want the record to carry only the parallel leg, not the
    comparison overhead.
    """

    def _record(seconds: float) -> None:
        _TEST_SECONDS[request.node.name] = seconds

    return _record


@pytest.fixture
def record_extra(request):
    """Attach extra numeric measurements to this benchmark's record entry
    (merged next to ``wall_s`` — e.g. ``peak_mib``, ``contacts``)."""

    def _record(**values: float) -> None:
        _TEST_EXTRAS.setdefault(request.node.name, {}).update(
            {key: float(value) for key, value in values.items()}
        )

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write the benchmark record: per-figure timings + span aggregates."""
    if not _TEST_SECONDS:
        return  # Collection-only / empty runs leave no record to write.
    record = {
        "schema": 2,
        "config": {
            "runs": BENCH_CONFIG.runs,
            "step_s": BENCH_CONFIG.step_s,
            "seed": BENCH_CONFIG.seed,
            "min_elevation_deg": BENCH_CONFIG.min_elevation_deg,
            "duration_s": BENCH_CONFIG.duration_s,
            "parallel": BENCH_CONFIG.parallel,
        },
        "exit_status": int(exitstatus),
        "figures": {
            name: {"wall_s": seconds, **_TEST_EXTRAS.get(name, {})}
            for name, seconds in sorted(_TEST_SECONDS.items())
        },
        "span_stats": obs_trace.stats(),
        "metrics": obs_metrics.snapshot(),
        "dropped": {
            "spans": obs_trace.TRACER.dropped_records,
            "timeline_events": obs_timeline.TIMELINE.dropped,
        },
        "memory": obs_trace.TRACER.memory_summary(),
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            # Records from hosts with different core counts are not
            # wall-clock comparable (bench-compare --report-only exists
            # for exactly that); the count makes the skew diagnosable.
            "cpus": os.cpu_count(),
            "created_unix": time.time(),
        },
    }
    BENCH_REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    BENCH_REPORT_PATH.write_text(json.dumps(record, indent=2) + "\n")
