"""Fig. 6 — coverage loss when the largest of 11 parties exits, vs skew.

Paper anchors: equal stakes minimize the loss; at 10:1 skew the loss is
~5.5% of the week (~10 h of no coverage) but the network stays
service-able.
"""



from repro.analysis.reporting import Table
from repro.experiments.fig6_party_skew import DEFAULT_SKEWS, run_fig6


def test_fig6_party_skew(benchmark, bench_config, shared_pool_visibility, report):
    result = benchmark.pedantic(
        lambda: run_fig6(bench_config, skews=DEFAULT_SKEWS),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Fig. 6: weighted coverage loss when the largest of 11 parties exits "
        "(1000 satellites)",
        ["skew (r:1:...:1)", "largest party sats", "loss %", "std", "lost (h/week)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(
            point.skew,
            point.largest_party_satellites,
            point.mean_reduction_percent,
            point.std_reduction_percent,
            point.mean_lost_hours,
        )
    report(table)

    losses = {p.skew: p.mean_reduction_percent for p in result.points}
    # Equal contributions minimize the damage.
    assert losses[1] == min(losses.values())
    # Loss grows with skew (allow sampling noise between adjacent points).
    assert losses[10] > losses[5] > losses[1]
    # Paper anchors: the paper's 91-satellite exit costs little; the
    # 500-satellite exit costs ~5-10% but the network survives.
    assert losses[1] < 2.0
    assert 3.0 < losses[10] < 12.0
