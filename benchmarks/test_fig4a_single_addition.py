"""Fig. 4a — coverage gained by adding one satellite to a base constellation.

Paper anchors: adding to a 1-satellite base gains >1 h of weighted coverage
on average; gains shrink as the base grows (100, 500).
"""



from repro.analysis.reporting import Table
from repro.experiments.fig4a_single_addition import run_fig4a


def test_fig4a_single_addition(benchmark, bench_config, shared_pool_visibility, report):
    result = benchmark.pedantic(
        lambda: run_fig4a(bench_config, base_sizes=(1, 100, 500)),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Fig. 4a: weighted coverage gain from one added satellite (1 week)",
        ["base size", "mean gain (h)", "max gain (h)", "min gain (h)"],
        precision=3,
    )
    for point in result.points:
        table.add_row(
            point.base_satellites,
            point.mean_gain_hours,
            point.max_gain_hours,
            point.min_gain_hours,
        )
    report(table)

    gains = {p.base_satellites: p.mean_gain_hours for p in result.points}
    # Paper anchor: ~1 h mean gain on a single-satellite base.
    assert gains[1] > 0.6
    # Diminishing returns with base size.
    assert gains[1] > gains[100] > gains[500]
    # Gains never negative (coverage is monotone in satellites).
    assert all(p.min_gain_hours >= 0.0 for p in result.points)
