"""Ablation — sensitivity of Fig. 2-style coverage to the elevation mask.

Every figure in the paper hides a terminal elevation-mask assumption.  This
ablation quantifies it: the same 500-satellite sample is evaluated at
Taipei under 10/25/40-degree masks.  A 10-degree mask roughly triples the
footprint area of a 25-degree mask, so uncovered time collapses; a
40-degree mask shrinks it sharply.
"""

import numpy as np


from repro.analysis.reporting import Table
from repro.constellation.sampling import sample_constellation
from repro.experiments.common import starlink_pool
from repro.ground.cities import TAIPEI
from repro.sim.coverage import coverage_stats
from repro.sim.visibility import VisibilityEngine

MASKS_DEG = (10.0, 25.0, 40.0)
SAMPLE_SIZE = 500


def _run(config):
    grid = config.grid()
    engine = VisibilityEngine(grid)
    pool = starlink_pool()
    sites = [TAIPEI.terminal(min_elevation_deg=mask) for mask in MASKS_DEG]
    rows = []
    rng = config.rng(salt=100)
    uncovered = {mask: [] for mask in MASKS_DEG}
    for _ in range(max(3, config.runs // 4)):
        subset = sample_constellation(pool, SAMPLE_SIZE, rng)
        masks = engine.site_coverage(subset, sites)
        for mask, coverage in zip(MASKS_DEG, masks):
            stats = coverage_stats(coverage, grid.step_s)
            uncovered[mask].append(stats.uncovered_percent)
    for mask in MASKS_DEG:
        rows.append((mask, float(np.mean(uncovered[mask]))))
    return rows


def test_ablation_elevation_mask(benchmark, bench_config, report):
    rows = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)

    table = Table(
        f"Ablation: uncovered % at Taipei vs elevation mask "
        f"({SAMPLE_SIZE} satellites, 1 week)",
        ["mask (deg)", "uncovered %"],
        precision=2,
    )
    for mask, value in rows:
        table.add_row(mask, value)
    report(table)

    by_mask = dict(rows)
    # Coverage strictly degrades as the mask tightens.
    assert by_mask[10.0] < by_mask[25.0] < by_mask[40.0]
    # The effect is large: the mask is a first-order hidden parameter.
    assert by_mask[40.0] > 2.0 * by_mask[10.0]
