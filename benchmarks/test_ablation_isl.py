"""Ablation — bent pipe vs inter-satellite links (§3.1 vs §4).

The paper's baseline architecture requires a satellite to see the user
terminal *and* a same-party ground station simultaneously; §4 proposes ISLs
as future work.  This ablation measures what ISLs buy: coverage at Taipei
with a deliberately sparse ground segment (two stations), with and without
ISL forwarding.
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.constellation.sampling import sample_constellation
from repro.experiments.common import starlink_pool
from repro.ground.cities import TAIPEI
from repro.ground.sites import GroundStation
from repro.links.isl import isl_visibility, relayable_with_isl
from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine

SAMPLE_SIZE = 300
STATIONS = (
    GroundStation("gs-ireland", 53.35, -6.26, min_elevation_deg=10.0),
    GroundStation("gs-oregon", 45.52, -122.68, min_elevation_deg=10.0),
)


def _run(config):
    grid = TimeGrid.hours(24.0, step_s=300.0)
    engine = VisibilityEngine(grid)
    rng = config.rng(salt=103)
    constellation = sample_constellation(starlink_pool(), SAMPLE_SIZE, rng)

    terminal = TAIPEI.terminal()
    terminal_vis = engine.visibility(constellation, [terminal])[0]  # (N, T)
    station_vis = engine.visibility(constellation, list(STATIONS)).any(axis=0)

    propagator = BatchPropagator(constellation.elements)
    times = grid.times_s
    positions = propagator.positions_eci(times)  # (N, T, 3)

    bent_pipe_covered = 0
    isl_covered = 0
    for step in range(times.size):
        term = terminal_vis[:, step]
        stat = station_vis[:, step]
        if (term & stat).any():
            bent_pipe_covered += 1
            isl_covered += 1
            continue
        if not term.any():
            continue
        feasible = isl_visibility(positions[:, step, :])
        if relayable_with_isl(term, stat, feasible).any():
            isl_covered += 1

    total = times.size
    return {
        "terminal_only": float(terminal_vis.any(axis=0).mean()),
        "bent_pipe": bent_pipe_covered / total,
        "isl": isl_covered / total,
    }


def test_ablation_isl(benchmark, bench_config, report):
    coverage = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)

    table = Table(
        f"Ablation: bent pipe vs ISL forwarding at Taipei "
        f"({SAMPLE_SIZE} satellites, 2 distant gateways, 24 h)",
        ["architecture", "covered fraction"],
        precision=3,
    )
    table.add_row("satellite overhead (upper bound)", coverage["terminal_only"])
    table.add_row("bent pipe (paper baseline)", coverage["bent_pipe"])
    table.add_row("bent pipe + ISL forwarding", coverage["isl"])
    report(table)

    # ISLs can only help, and are bounded by raw satellite visibility.
    assert coverage["bent_pipe"] <= coverage["isl"] <= coverage["terminal_only"]
    # With only two distant gateways, ISLs recover a large part of the gap
    # between the bent-pipe baseline and the visibility upper bound.
    gap = coverage["terminal_only"] - coverage["bent_pipe"]
    recovered = coverage["isl"] - coverage["bent_pipe"]
    if gap > 0.05:
        assert recovered > 0.3 * gap
