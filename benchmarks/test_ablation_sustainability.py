"""Ablation — the sustainability argument (§1/§6), quantified.

The paper's third strike against independent constellations: "increased
orbital congestion, with higher risks of collisions."  This ablation
compares the orbital environment of 11 independent 1000-satellite
constellations (each giving its country full coverage) against one shared
1000-satellite MP-LEO delivering the same coverage to all 11 — counting
objects, nearest-neighbor distances, and shell densities.  The economics
side prices both alternatives per party.
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.constellation.congestion import (
    conjunction_analysis,
    independent_vs_shared_occupancy,
    shell_occupancy,
)
from repro.constellation.sampling import sample_indices
from repro.core.economics import CostModel, compare_deployments
from repro.experiments.common import default_context, starlink_pool
from repro.sim.clock import TimeGrid

PARTIES = 11
PER_PARTY = 1000


def _run(config):
    rng = config.rng(salt=108)
    # The O(N^2) conjunction screen dominates; ~1.5 h at 10-minute sampling
    # is plenty to rank the two environments.
    grid = TimeGrid.hours(1.5, step_s=600.0)
    pool = starlink_pool()
    # Subset the context-cached pool propagator instead of re-deriving
    # batch state from elements per constellation.
    pool_propagator = default_context().pool_propagator()

    shared_idx = sample_indices(pool, PER_PARTY, rng)
    shared = pool.take(shared_idx, name="shared")
    # 11 independent constellations jammed into the same altitude regime:
    # model as 11 independently sampled 400-satellite sub-constellations
    # (capped to keep the O(N^2) conjunction screen tractable; densities
    # scale linearly so the ranking is unaffected).
    independent_idx = sample_indices(pool, min(PARTIES * 400, len(pool)), rng)
    independent_sample = pool.take(independent_idx, name="independent-sample")

    shared_report = conjunction_analysis(
        shared, grid, threshold_m=50_000.0,
        propagator=pool_propagator.subset(shared_idx),
    )
    independent_report = conjunction_analysis(
        independent_sample, grid, threshold_m=50_000.0,
        propagator=pool_propagator.subset(independent_idx),
    )
    counts = independent_vs_shared_occupancy(PER_PARTY, PARTIES, PER_PARTY)

    model = CostModel()
    economics = compare_deployments(
        0.995, PER_PARTY, PER_PARTY // PARTIES + 1, model=model
    )
    peak_density = {
        "shared": max(
            report.density_per_million_km3 for report in shell_occupancy(shared)
        ),
        "independent": max(
            report.density_per_million_km3
            for report in shell_occupancy(independent_sample)
        ),
    }
    return shared_report, independent_report, counts, economics, peak_density


def test_ablation_sustainability(benchmark, bench_config, report):
    (shared_report, independent_report, counts,
     economics, peak_density) = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1
    )

    table = Table(
        "Ablation: orbital environment — shared MP-LEO vs independent "
        "constellations",
        ["metric", "shared (1000)", "independent (11x1000, sampled)"],
        precision=1,
    )
    table.add_row(
        "objects in orbit", counts["shared_total"], counts["independent_total"]
    )
    table.add_row(
        "median nearest neighbor (km)",
        shared_report.median_nearest_neighbor_m / 1000.0,
        independent_report.median_nearest_neighbor_m / 1000.0,
    )
    table.add_row(
        "<50 km approaches / day",
        shared_report.conjunction_rate_per_day,
        independent_report.conjunction_rate_per_day,
    )
    table.add_row(
        "peak shell density (/1e6 km^3)",
        peak_density["shared"],
        peak_density["independent"],
    )
    report(table)

    economics_table = Table(
        "Ablation: per-party economics for 99.5%-coverage service (10 years)",
        ["alternative", "satellites", "cost (USD B)"],
        precision=2,
    )
    economics_table.add_row(
        "go it alone", economics.go_it_alone_satellites,
        economics.go_it_alone_cost / 1e9,
    )
    economics_table.add_row(
        "MP-LEO contribution", economics.mp_leo_contribution,
        economics.mp_leo_cost / 1e9,
    )
    report(economics_table)

    # The paper's claims, measured:
    assert counts["orbital_objects_saved"] == 10_000
    assert (
        independent_report.median_nearest_neighbor_m
        < shared_report.median_nearest_neighbor_m
    )
    assert (
        independent_report.conjunction_rate_per_day
        >= shared_report.conjunction_rate_per_day
    )
    assert economics.cost_ratio > 5.0
