"""Fig. 1a — orbital motion of a LEO satellite across three hours.

The paper's motivating illustration: "the satellite covers different paths
on Earth during each orbit."  This benchmark regenerates the track and
verifies its quantitative content — the per-orbit westward shift of the
ground track and the latitude band the 53-degree inclination confines it
to — rather than matching pixels.
"""

from repro.analysis.reporting import Table
from repro.orbits.elements import OrbitalElements
from repro.orbits.groundtrack import compute_ground_track, nodal_shift_deg_per_orbit


def _run():
    elements = OrbitalElements.from_degrees(altitude_km=546.0, inclination_deg=53.0)
    track = compute_ground_track(elements, 3 * 3600.0, step_s=10.0)
    nodes = track.ascending_node_longitudes()
    return elements, track, nodes


def test_fig1a_ground_track(benchmark, report):
    elements, track, nodes = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Fig. 1a: 3-hour ground track of one 53 deg / 546 km satellite",
        ["metric", "value"],
        precision=2,
    )
    table.add_row("orbital period (min)", elements.period_s / 60.0)
    table.add_row("orbits in 3 h", 3 * 3600.0 / elements.period_s)
    table.add_row("max |latitude| (deg)", track.max_latitude_deg)
    table.add_row("ascending nodes seen", len(nodes))
    if len(nodes) >= 2:
        table.add_row(
            "westward shift per orbit (deg)", (nodes[0] - nodes[1]) % 360.0
        )
    table.add_row(
        "predicted shift (deg)", nodal_shift_deg_per_orbit(elements)
    )
    report(table)

    # The figure's content: different path each orbit (nonzero westward
    # shift), bounded by the inclination.
    assert track.max_latitude_deg <= 53.5
    assert len(nodes) >= 1
    predicted = nodal_shift_deg_per_orbit(elements)
    assert 20.0 < predicted < 30.0
    if len(nodes) >= 2:
        measured = (nodes[0] - nodes[1]) % 360.0
        assert abs(measured - predicted) < 1.0
