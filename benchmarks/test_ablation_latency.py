"""Ablation — LEO vs GEO bent-pipe latency (§2's "why not geostationary?").

The paper dismisses GEO because of "orders of magnitude degradation in
network latency (second-level)".  This ablation computes the bent-pipe
latency bounds for the paper's LEO altitudes and for GEO from pure
geometry.
"""

from repro.analysis.reporting import Table
from repro.links.latency import (
    GEO_ALTITUDE_KM,
    geo_vs_leo_round_trip_ms,
    latency_bounds_ms,
)

ALTITUDES_KM = (550.0, 570.0, 1200.0, GEO_ALTITUDE_KM)


def _run():
    rows = []
    for altitude in ALTITUDES_KM:
        best, worst = latency_bounds_ms(altitude, min_elevation_deg=25.0)
        rows.append((altitude, best, worst, 2 * worst))
    return rows


def test_ablation_latency(benchmark, bench_config, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Ablation: bent-pipe latency by altitude (25 deg mask)",
        ["altitude (km)", "best one-way (ms)", "worst one-way (ms)", "worst RTT (ms)"],
        precision=1,
    )
    for altitude, best, worst, rtt in rows:
        table.add_row(altitude, best, worst, rtt)
    report(table)

    leo_rtt, geo_rtt = geo_vs_leo_round_trip_ms(leo_altitude_km=550.0)
    # The paper's claims, measured: GEO is second-level...
    assert geo_rtt > 480.0
    # ...and more than an order of magnitude worse than LEO.
    assert geo_rtt > 10.0 * leo_rtt
    # Latency grows monotonically with altitude.
    worsts = [worst for _, _, worst, _ in rows]
    assert all(b > a for a, b in zip(worsts, worsts[1:]))
