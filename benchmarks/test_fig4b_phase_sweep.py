"""Fig. 4b — phase placement between two satellites of a 12-satellite plane.

Paper anchor: the midpoint (15 degrees from each neighbour) maximizes the
coverage improvement — "strategically positioning a satellite at the
farthest point from existing satellites maximizes coverage benefits."
"""



from repro.analysis.reporting import Series
from repro.experiments.fig4b_phase_sweep import run_fig4b


def test_fig4b_phase_sweep(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: run_fig4b(bench_config), rounds=1, iterations=1
    )

    series = Series(
        "Fig. 4b: coverage gain vs phase offset (12-sat plane, 53 deg / 546 km)",
        "phase offset (deg)",
        "gain (h)",
        precision=3,
    )
    for point in result.points:
        series.add_point(point.phase_offset_deg, point.gain_hours)
    report(series)

    # Paper anchor: the midpoint wins (1-degree sweep quantization).
    assert abs(result.best_offset_deg() - 15.0) <= 2.0
    # The curve rises toward the midpoint from both ends.
    gains = [point.gain_hours for point in result.points]
    midpoint_gain = max(gains)
    assert gains[0] < midpoint_gain
    assert gains[-1] < midpoint_gain
    # Rough symmetry around the midpoint.
    for left, right in zip(gains, reversed(gains)):
        assert abs(left - right) < 0.2
