"""Ablation — regional vs profit objectives (§3.2's observation).

Scores the same candidate pool under a country's objective (cover the home
city) and a company's objective (population-weighted global coverage) and
measures how aligned the two rankings are.  The paper observes the choices
are "often co-related, but do not exactly lead to the same outcomes".
"""

from repro.analysis.reporting import Table
from repro.core.objectives import objective_correlation
from repro.core.placement import gap_filling_candidates
from repro.sim.clock import TimeGrid

HOME_CITIES = ("Tokyo", "Taipei", "Sao Paulo", "London")
CANDIDATES = 32


def _run(config):
    grid = TimeGrid.one_week(step_s=max(config.step_s, 300.0))
    results = {}
    for home in HOME_CITIES:
        candidates = gap_filling_candidates(config.rng(salt=106), count=CANDIDATES)
        comparison = objective_correlation(None, candidates, grid, home)
        results[home] = comparison
    return results


def test_ablation_objectives(benchmark, bench_config, report):
    results = benchmark.pedantic(lambda: _run(bench_config), rounds=1, iterations=1)

    table = Table(
        f"Ablation: regional vs global placement objectives "
        f"({CANDIDATES} candidates)",
        ["home city", "rank correlation", "same best satellite"],
        precision=3,
    )
    for home, comparison in results.items():
        table.add_row(home, comparison.rank_correlation, str(comparison.same_winner))
    report(table)

    correlations = [c.rank_correlation for c in results.values()]
    # "Often co-related": strongly positive for most homes.  (High-latitude
    # homes like London can anti-correlate — polar candidates serve them but
    # not the tropics-weighted global objective — which is exactly the
    # paper's "do not exactly lead to the same outcomes" caveat.)
    assert sum(value > 0.5 for value in correlations) >= 3
    # ...but not a perfect match across the board.
    assert not all(value > 0.999 for value in correlations)
