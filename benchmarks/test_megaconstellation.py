"""Megaconstellation scale — the analytic interval engine's headline leg.

Runs the :mod:`examples.megaconstellation` workload at full size: 7644
satellites (Starlink Gen1 + Kuiper), all 22 experiment sites, three
simulated days.  The dense tensor at this scale would be ~700 M boolean
elements; the interval engine never allocates it — the benchmark records
wall clock and the tracemalloc peak alongside the contact count, and
gates that the peak stays an order of magnitude under the dense tensor.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

from repro.analysis.reporting import Series

_EXAMPLE = Path(__file__).parent.parent / "examples" / "megaconstellation.py"


def _load_example():
    spec = importlib.util.spec_from_file_location("megaconstellation", _EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_megaconstellation_intervals(report, record_wall, record_extra):
    example = _load_example()
    result = example.run_megaconstellation(days=3.0)

    # The example times the engine itself (tracemalloc included); record
    # that interval, not the constellation-construction overhead around it.
    record_wall(result["wall_s"])
    record_extra(
        peak_mib=result["peak_mib"],
        contacts=result["contacts"],
        satellites=result["satellites"],
        intervals_mib=result["intervals_mib"],
        dense_tensor_mib=result["dense_tensor_mib"],
    )

    series = Series(
        "Megaconstellation: 7644 sats x 22 sites x 3 days (intervals)",
        "metric",
        "value",
        precision=1,
    )
    series.add_point("wall (s)", result["wall_s"])
    series.add_point("peak (MiB)", result["peak_mib"])
    series.add_point("contacts (k)", result["contacts"] / 1e3)
    series.add_point("store (MiB)", result["intervals_mib"])
    series.add_point("dense tensor (MiB)", result["dense_tensor_mib"])
    report(series)

    assert result["satellites"] >= 6000
    assert result["days"] >= 3.0
    assert result["contacts"] > 100_000
    # The whole point: peak memory far below the dense (S, N, T) tensor.
    assert result["peak_mib"] < result["dense_tensor_mib"] / 2.0
    # Megaconstellation coverage at the experiment sites is essentially
    # continuous — a sanity anchor that the windows are real.
    assert result["mean_site_coverage"] > 0.99
