"""Memory ceiling — streaming reductions vs the materialized tensor.

The point of the streaming kernels is that a figure-sized reduction never
holds the full ``(S, N, T)`` visibility tensor: peak memory is bounded by
one ``(S, N, chunk)`` slab plus the reduction output.  This benchmark pins
that contract with ``tracemalloc`` at Fig. 3 scale — all 22 experiment
sites against the full synthetic Starlink pool over one simulated week —
and gates a >= 4x peak-allocation drop for the streaming path.

Both legs run at the *same* chunk size so the comparison isolates
materialize-then-reduce vs fused streaming (not chunk-size tuning), and
the results are asserted bit-identical, same as everywhere else.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np

from repro.analysis.reporting import Series
from repro.experiments.common import ALL_SITES, starlink_pool
from repro.sim.kernels import DEFAULT_STREAM_CHUNK
from repro.sim.visibility import VisibilityEngine

#: Acceptance floor: the streaming path must cut peak allocations by at
#: least this factor at figure scale.  The tensor alone is ~S*N*T bytes
#: (~0.5 GB here) while the streaming peak is one slab + output, so the
#: observed ratio is comfortably above 4 — the gate catches any change
#: that quietly re-materializes the tensor.
MIN_PEAK_RATIO = 4.0


def _traced_peak_bytes(thunk):
    """Run ``thunk`` under tracemalloc, returning (result, peak_bytes)."""
    gc.collect()
    tracemalloc.start()
    try:
        result = thunk()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_streaming_memory_ceiling(bench_config, report):
    grid = bench_config.grid()
    pool = starlink_pool()
    sites = [
        city.terminal(min_elevation_deg=bench_config.min_elevation_deg)
        for city in ALL_SITES
    ]
    # Same explicit chunk for both legs: the materialized path assembles
    # its (S, N, T) tensor from identical slabs, so the measured gap is
    # purely "held all at once" vs "reduced and dropped".
    engine = VisibilityEngine(grid, chunk_size=DEFAULT_STREAM_CHUNK)

    def materialized_leg():
        tensor = engine.visibility(pool, sites)
        activity = tensor.any(axis=0)  # Fig. 3's reduction, post-hoc.
        return activity

    def streaming_leg():
        return engine.satellite_activity(pool, sites)

    materialized, materialized_peak = _traced_peak_bytes(materialized_leg)
    streaming, streaming_peak = _traced_peak_bytes(streaming_leg)

    series = Series(
        "Memory ceiling: Fig. 3-sized satellite activity (peak MiB)",
        "path",
        "peak MiB",
        precision=1,
    )
    series.add_point("materialized", materialized_peak / 2**20)
    series.add_point("streaming", streaming_peak / 2**20)
    report(series)

    # Streaming is an optimization, never an approximation.
    assert np.array_equal(materialized, streaming)
    ratio = materialized_peak / max(streaming_peak, 1)
    assert ratio >= MIN_PEAK_RATIO, (
        f"streaming peak {streaming_peak / 2**20:.1f} MiB vs materialized "
        f"{materialized_peak / 2**20:.1f} MiB — ratio {ratio:.2f}x below "
        f"the {MIN_PEAK_RATIO}x ceiling contract"
    )
