"""Ablation — satellite failures and replenishment (§3.4's open question).

Simulates five years of attrition on a 500-satellite MP-LEO constellation
(5-year mean lifetime, 2% infant mortality) and reports the weighted-city
coverage trajectory with and without a steady replenishment program.
"""

from repro.analysis.reporting import Table
from repro.core.failures import (
    FailureModel,
    replenishment_rate_for_steady_state,
    simulate_attrition,
)
from repro.experiments.common import (
    default_context,
    starlink_pool,
    weighted_city_coverage,
)

FLEET = 500
HORIZON_YEARS = 5.0


def _run(config):
    rng = config.rng(salt=104)
    pool_size = len(starlink_pool())
    fleet_indices = rng.choice(pool_size, size=FLEET, replace=False)
    constellation = starlink_pool().take(fleet_indices)

    # One fleet-scoped precompute (engine-appropriate); every attrition
    # composition below is then a cheap masked subset query.  On a cold
    # cache this skips building geometry for the ~3900 pool satellites
    # the fleet never touches.
    query = default_context().subset_query(config, fleet_indices)

    def coverage_of(indices):
        return weighted_city_coverage(query, indices)

    model = FailureModel(mean_lifetime_years=5.0, infant_mortality_prob=0.02)
    steady_rate = int(round(replenishment_rate_for_steady_state(FLEET, model)))

    trajectories = {}
    for label, rate in (("no replenishment", 0), (f"{steady_rate}/yr", steady_rate)):
        points = simulate_attrition(
            constellation,
            model,
            config.rng(salt=105),  # Same failure draw for both arms.
            horizon_years=HORIZON_YEARS,
            epochs=6,
            replenish_per_year=rate,
        )
        rows = []
        for point in points:
            alive_pool_indices = fleet_indices[point.alive_indices]
            coverage = coverage_of(alive_pool_indices)
            rows.append((point.years, point.alive, coverage))
        trajectories[label] = rows
    return trajectories


def test_ablation_failures(benchmark, bench_config, report):
    trajectories = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1
    )

    for label, rows in trajectories.items():
        table = Table(
            f"Ablation: 5-year attrition of a {FLEET}-satellite MP-LEO "
            f"({label})",
            ["years", "alive", "weighted coverage"],
            precision=3,
        )
        for years, alive, coverage in rows:
            table.add_row(years, alive, coverage)
        report(table)

    unreplenished = trajectories["no replenishment"]
    replenished = next(v for k, v in trajectories.items() if k != "no replenishment")
    # Without replenishment the fleet decays toward exp(-1) of its size.
    assert unreplenished[-1][1] < unreplenished[0][1]
    # Replenishment holds both fleet size and coverage higher at the horizon.
    assert replenished[-1][1] > unreplenished[-1][1]
    assert replenished[-1][2] >= unreplenished[-1][2]
