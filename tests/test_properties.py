"""Cross-module property-based tests.

These exercise system-level invariants that unit tests state only for
hand-built cases: coverage algebra under random subsets, engine
conservation laws under random scenarios, and packed-vs-dense visibility
equivalence under random constellations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.sites import GroundStation, UserTerminal
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator
from repro.sim.visibility import VisibilityEngine, packed_visibility


def _random_constellation(draw_params):
    satellites = []
    for index, (altitude, inclination, raan, anomaly) in enumerate(draw_params):
        satellites.append(
            Satellite(
                sat_id=f"R-{index}",
                elements=OrbitalElements.from_degrees(
                    altitude_km=altitude,
                    inclination_deg=inclination,
                    raan_deg=raan,
                    mean_anomaly_deg=anomaly,
                ),
            )
        )
    return Constellation(satellites)


orbit_params = st.tuples(
    st.floats(400.0, 1500.0),
    st.floats(0.0, 179.0),
    st.floats(0.0, 359.9),
    st.floats(0.0, 359.9),
)


class TestCoverageMonotonicity:
    @given(st.lists(orbit_params, min_size=2, max_size=8), st.data())
    @settings(max_examples=20)
    def test_subset_coverage_never_exceeds_superset(self, params, data):
        """Removing satellites can only remove coverage."""
        constellation = _random_constellation(params)
        grid = TimeGrid(duration_s=1800.0, step_s=300.0)
        engine = VisibilityEngine(grid)
        site = UserTerminal("ut", 10.0, 20.0, min_elevation_deg=25.0)
        full = engine.site_coverage(constellation, [site])[0]

        keep = data.draw(
            st.lists(
                st.integers(0, len(constellation) - 1),
                min_size=1,
                max_size=len(constellation),
                unique=True,
            )
        )
        subset = engine.site_coverage(constellation.take(sorted(keep)), [site])[0]
        assert not np.any(subset & ~full)

    @given(st.lists(orbit_params, min_size=1, max_size=6))
    @settings(max_examples=20)
    def test_union_is_elementwise_or(self, params):
        """Coverage of a constellation is the OR of per-satellite coverage."""
        constellation = _random_constellation(params)
        grid = TimeGrid(duration_s=1800.0, step_s=300.0)
        engine = VisibilityEngine(grid)
        site = UserTerminal("ut", -30.0, 100.0, min_elevation_deg=25.0)
        combined = engine.site_coverage(constellation, [site])[0]
        visibility = engine.visibility(constellation, [site])[0]
        assert np.array_equal(combined, visibility.any(axis=0))


class TestPackedEquivalence:
    @given(st.lists(orbit_params, min_size=1, max_size=6))
    @settings(max_examples=15)
    def test_packed_matches_dense(self, params):
        constellation = _random_constellation(params)
        grid = TimeGrid(duration_s=1740.0, step_s=60.0)  # 29 steps: odd size.
        sites = [
            UserTerminal("a", 0.0, 0.0, min_elevation_deg=25.0),
            UserTerminal("b", 50.0, -120.0, min_elevation_deg=10.0),
        ]
        dense = VisibilityEngine(grid).visibility(constellation, sites)
        packed = packed_visibility(constellation, sites, grid)
        for site_index in range(2):
            assert np.array_equal(
                packed.site_mask(site_index), dense[site_index].any(axis=0)
            )
        assert np.allclose(
            packed.satellite_active_fractions(),
            dense.any(axis=0).mean(axis=1),
        )


class TestEngineConservation:
    @given(
        st.lists(orbit_params, min_size=1, max_size=5),
        st.floats(10.0, 500.0),
        st.floats(50.0, 2000.0),
    )
    @settings(max_examples=15)
    def test_served_bounded_by_demand_and_capacity(
        self, params, demand_mbps, capacity_mbps
    ):
        satellites = [
            Satellite(
                sat_id=f"R-{index}",
                elements=OrbitalElements.from_degrees(
                    altitude_km=altitude,
                    inclination_deg=inclination,
                    raan_deg=raan,
                    mean_anomaly_deg=anomaly,
                ),
                party="p",
                capacity_mbps=capacity_mbps,
            )
            for index, (altitude, inclination, raan, anomaly) in enumerate(params)
        ]
        constellation = Constellation(satellites)
        terminals = [
            UserTerminal(
                "ut-a", 0.0, 0.0, min_elevation_deg=25.0, party="p",
                demand_mbps=demand_mbps,
            ),
            UserTerminal(
                "ut-b", 20.0, 30.0, min_elevation_deg=25.0, party="p",
                demand_mbps=demand_mbps,
            ),
        ]
        stations = [
            GroundStation("gs", 5.0, 10.0, min_elevation_deg=10.0, party="p")
        ]
        grid = TimeGrid(duration_s=600.0, step_s=300.0)
        result = BentPipeSimulator(constellation, terminals, stations, grid).run(
            np.random.default_rng(0)
        )
        # Conservation laws: served <= demand, load <= capacity, and the
        # session log accounts for exactly the served volume.
        assert np.all(result.served_mbps <= result.demand_mbps + 1e-9)
        assert np.all(result.satellite_load_mbps <= capacity_mbps + 1e-9)
        session_volume = sum(s.volume_megabits for s in result.sessions)
        assert session_volume == pytest.approx(
            result.total_served_megabits, rel=1e-9, abs=1e-9
        )
