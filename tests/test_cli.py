"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.obs.export import SIM_PID, SPAN_PID, validate_chrome_trace


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.runs == 10
        assert args.step == 300.0
        assert args.seed == 2024
        assert args.duration == pytest.approx(7 * 86400.0)
        assert args.log_level is None
        assert args.metrics_out is None
        assert args.profile is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig5", "--runs", "3", "--step", "600", "--seed", "1"]
        )
        assert args.runs == 3
        assert args.step == 600.0
        assert args.seed == 1

    def test_parallel_defaults_to_one(self):
        args = build_parser().parse_args(["fig2"])
        assert args.parallel == 1

    def test_parallel_flag_parses(self):
        args = build_parser().parse_args(["fig3", "--parallel", "4"])
        assert args.parallel == 4

    def test_parallel_flows_into_config(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(["fig2", "--parallel", "2"])
        assert _config_from_args(args).parallel == 2

    @pytest.mark.parametrize("flag", ["--parallel", "--runs"])
    @pytest.mark.parametrize("bad", ["0", "-1", "two"])
    def test_positive_int_flags_rejected_at_parse_time(self, flag, bad, capsys):
        """Bad --runs/--parallel values must exit 2, never traceback."""
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["fig2", flag, bad])
        assert exc_info.value.code == 2
        assert "python -m repro list" in capsys.readouterr().err

    def test_observability_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig2", "--duration", "86400", "--log-level", "DEBUG",
                "--metrics-out", "run.json", "--profile", "run.pstats",
                "--trace-out", "trace.json", "--track-memory",
            ]
        )
        assert args.duration == 86400.0
        assert args.log_level == "DEBUG"
        assert args.metrics_out == "run.json"
        assert args.profile == "run.pstats"
        assert args.trace_out == "trace.json"
        assert args.track_memory is True

    def test_trace_flags_default_off(self):
        args = build_parser().parse_args(["fig2"])
        assert args.trace_out is None
        assert args.track_memory is False

    def test_engine_flag_parses(self):
        assert build_parser().parse_args(["fig2"]).engine == "grid"
        args = build_parser().parse_args(["fig2", "--engine", "intervals"])
        assert args.engine == "intervals"

    def test_engine_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["fig2", "--engine", "octree"])
        assert exc_info.value.code == 2

    def test_engine_flag_reaches_default_context(self, monkeypatch):
        """--engine intervals flips the context knob before the experiment
        runs, mirroring --chunk-size (never entering ExperimentConfig)."""
        from repro import cli
        from repro.experiments import common
        from repro.experiments.common import ExperimentContext

        scratch = ExperimentContext()
        monkeypatch.setattr(common, "_DEFAULT_CONTEXT", scratch)
        seen = {}
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig2",
            lambda config: seen.setdefault("engine", scratch.engine),
        )
        assert main(["fig2", "--engine", "intervals"]) == 0
        assert seen["engine"] == "intervals"

    def test_live_telemetry_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig2", "--live-status", "--metrics-format", "openmetrics",
                "--timeline-cap", "4096",
            ]
        )
        assert args.live_status is True
        assert args.metrics_format == "openmetrics"
        assert args.timeline_cap == 4096

    def test_live_telemetry_flags_default_off(self):
        args = build_parser().parse_args(["fig2"])
        assert args.live_status is False
        assert args.metrics_format == "json"
        assert args.timeline_cap is None

    def test_metrics_format_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(
                ["fig2", "--metrics-format", "prometheus-protobuf"]
            )
        assert exc_info.value.code == 2

    @pytest.mark.parametrize("bad", ["0", "-8", "many"])
    def test_timeline_cap_rejects_non_positive(self, bad, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["fig2", "--timeline-cap", bad])
        assert exc_info.value.code == 2

    def test_bench_compare_parses(self):
        args = build_parser().parse_args(
            ["bench-compare", "a.json", "b.json", "--threshold", "1.5"]
        )
        assert args.command == "bench-compare"
        assert args.bench_a == "a.json"
        assert args.bench_b == "b.json"
        assert args.threshold == 1.5
        assert args.report_only is False

    def test_bench_compare_requires_two_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-compare", "a.json"])

    def test_bench_compare_history_parses(self):
        args = build_parser().parse_args(
            ["bench-compare", "--history", "a.json", "b.json", "c.json", "d.json"]
        )
        assert args.history is True
        assert args.bench_a == "a.json"
        assert args.bench_b == "b.json"
        assert args.bench_more == ["c.json", "d.json"]

    def test_obs_diff_parses(self):
        args = build_parser().parse_args(["obs", "diff", "a.json", "b.json"])
        assert args.command == "obs"
        assert args.obs_command == "diff"
        assert args.report_a == "a.json"
        assert args.report_b == "b.json"

    def test_obs_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["obs"])
        assert exc_info.value.code == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_command_message_is_usable(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["fig99"])
        assert exc_info.value.code != 0
        captured = capsys.readouterr()
        assert "invalid choice" in captured.err
        assert "python -m repro list" in captured.err

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["--version"])
        assert exc_info.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        names = out.split("\n\n")[0].split()
        assert set(names) == set(EXPERIMENTS)

    def test_list_mentions_observability_flags(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for flag in (
            "--log-level", "--metrics-out", "--profile", "--duration",
            "--parallel",
        ):
            assert flag in out

    def test_parallel_worker_count_lands_in_run_report(self, capsys, tmp_path):
        """--parallel plumbs into ExperimentConfig and the run report."""
        import json

        path = tmp_path / "run.json"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--parallel", "2", "--metrics-out", str(path),
            ]
        ) == 0
        report = json.loads(path.read_text())
        assert report["config"]["parallel"] == 2

    def test_fig4c_runs(self, capsys):
        """fig4c is the cheapest experiment (no pool propagation)."""
        assert main(["fig4c", "--runs", "1", "--step", "600"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4c" in out
        assert "inclination" in out

    def test_fig4b_runs(self, capsys):
        assert main(["fig4b", "--runs", "1", "--step", "600"]) == 0
        out = capsys.readouterr().out
        assert "best offset" in out

    def test_metrics_out_writes_run_report(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--metrics-out", str(path)]
        ) == 0
        report = json.loads(path.read_text())
        assert report["command"] == "fig4c"
        assert report["config"]["runs"] == 1
        assert report["config"]["step_s"] == 600.0
        assert report["seed"] == 2024
        assert "experiment.fig4c" in report["span_stats"]
        assert "sim.engine.sessions" in report["metrics"]["counters"]
        assert "experiments.visibility_cache.hits" in report["metrics"]["counters"]

    def test_profile_writes_pstats(self, capsys, tmp_path):
        path = tmp_path / "run.pstats"
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--profile", str(path)]
        ) == 0
        assert path.exists() and path.stat().st_size > 0

    def test_duration_flag_shrinks_horizon(self, capsys):
        """A one-day fig4b run must parse and complete (smaller grid)."""
        assert main(
            ["fig4b", "--runs", "1", "--step", "900", "--duration", "86400"]
        ) == 0
        assert "best offset" in capsys.readouterr().out

    def test_tables_stay_on_stdout_with_logging_enabled(self, capsys):
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--log-level", "INFO"]
        ) == 0
        captured = capsys.readouterr()
        assert "Fig. 4c" in captured.out
        assert "Fig. 4c" not in captured.err

    def test_output_flags_create_missing_parent_dirs(self, capsys, tmp_path):
        """Nested output paths must be created, not rejected."""
        metrics = tmp_path / "reports" / "nested" / "run.json"
        trace = tmp_path / "traces" / "trace.json"
        pstats = tmp_path / "profiles" / "run.pstats"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
                "--profile", str(pstats),
            ]
        ) == 0
        assert metrics.exists()
        assert trace.exists()
        assert pstats.exists()

    def test_openmetrics_exposition_parses(self, capsys, tmp_path):
        """--metrics-format openmetrics writes a valid text exposition."""
        from repro.obs.expose import parse_openmetrics

        path = tmp_path / "metrics.om"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--metrics-out", str(path), "--metrics-format", "openmetrics",
            ]
        ) == 0
        text = path.read_text()
        families = parse_openmetrics(text)
        assert text.endswith("# EOF\n")
        assert any(name.startswith("sim_") for name in families)

    def test_live_status_lands_in_run_report_bus_section(
        self, capsys, tmp_path
    ):
        """--live-status keeps bus.live truthful in the report (sticky flag)."""
        from repro.obs.bus import default_bus

        path = tmp_path / "run.json"
        try:
            assert main(
                [
                    "fig4c", "--runs", "1", "--step", "600",
                    "--live-status", "--metrics-out", str(path),
                ]
            ) == 0
        finally:
            default_bus().reset()
        report = json.loads(path.read_text())
        assert report["schema"] == 3
        assert report["bus"]["live"] is True
        assert report["bus"]["frames_total"] > 0
        assert report["bus"]["failed_workers"] == []

    def test_timeline_cap_flows_into_report(self, capsys, tmp_path):
        from repro.obs import timeline as obs_timeline

        original = obs_timeline.TIMELINE.capacity
        path = tmp_path / "run.json"
        try:
            assert main(
                [
                    "fig4c", "--runs", "1", "--step", "600",
                    "--timeline-cap", "4096", "--metrics-out", str(path),
                ]
            ) == 0
            report = json.loads(path.read_text())
            assert report["timeline"]["capacity"] == 4096
        finally:
            obs_timeline.resize(original)

    def test_obs_diff_cli_round_trip(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--metrics-out", str(path)]
        ) == 0
        assert main(["obs", "diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "run diff: fig4c vs fig4c" in out

    def test_bench_compare_history_cli(self, capsys, tmp_path):
        def record(wall_s):
            return {
                "schema": 2,
                "figures": {"fig2": {"wall_s": wall_s}},
                "span_stats": {},
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            }

        paths = []
        for index, wall_s in enumerate([4.0, 2.0, 1.0]):
            path = tmp_path / f"bench{index}.json"
            path.write_text(json.dumps(record(wall_s)))
            paths.append(str(path))
        assert main(["bench-compare", "--history"] + paths) == 0
        assert "bench history" in capsys.readouterr().out
        # Three records without --history is a usage error, not a crash.
        with pytest.raises(SystemExit) as exc_info:
            main(["bench-compare"] + paths)
        assert exc_info.value.code == 2

    def test_track_memory_fills_report_memory_section(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--track-memory", "--metrics-out", str(path),
            ]
        ) == 0
        report = json.loads(path.read_text())
        assert report["memory"]["tracemalloc"] is True
        assert report["memory"]["sampled_spans"] > 0
        assert report["memory"]["peak_kb"] > 0.0


class TestTraceOut:
    def test_fig2_trace_round_trips_with_satellite_tracks(
        self, capsys, tmp_path
    ):
        """Acceptance: a fig2 run with --trace-out yields a valid Chrome
        trace with at least one satellite track, one contact slice, and the
        wall-clock spans."""
        from repro.experiments import common
        from repro.obs import timeline as obs_timeline
        from repro.obs import trace as obs_trace

        obs_timeline.reset()
        obs_trace.reset()  # Keep the span ring from overflowing mid-session.
        path = tmp_path / "trace.json"
        try:
            assert main(
                [
                    "fig2", "--runs", "1", "--step", "1800",
                    "--duration", "86400", "--trace-out", str(path),
                ]
            ) == 0
        finally:
            common.clear_caches()
            obs_timeline.reset()
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        events = document["traceEvents"]
        contacts = [e for e in events if e.get("name") == "contact"]
        assert contacts, "no contact slices in the trace"
        satellite_subjects = {e["args"]["subject"] for e in contacts}
        assert satellite_subjects, "no satellite tracks"
        track_labels = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["pid"] == SIM_PID and "tid" in e
        }
        assert satellite_subjects & track_labels
        span_names = {
            e["name"] for e in events if e["ph"] == "X" and e["pid"] == SPAN_PID
        }
        assert "experiment.fig2" in span_names

    def test_bench_compare_cli_exit_codes(self, capsys, tmp_path):
        def record(wall_s):
            return {
                "schema": 2,
                "figures": {"fig2": {"wall_s": wall_s}},
                "span_stats": {},
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            }

        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(record(1.0)))
        slow.write_text(json.dumps(record(2.0)))
        assert main(["bench-compare", str(base), str(base)]) == 0
        assert main(["bench-compare", str(base), str(slow)]) == 1
        assert main(
            ["bench-compare", str(base), str(slow), "--report-only"]
        ) == 0
        assert main(
            ["bench-compare", str(base), str(slow), "--threshold", "2.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
