"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.runs == 10
        assert args.step == 300.0
        assert args.seed == 2024

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig5", "--runs", "3", "--step", "600", "--seed", "1"]
        )
        assert args.runs == 3
        assert args.step == 600.0
        assert args.seed == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(EXPERIMENTS)

    def test_fig4c_runs(self, capsys):
        """fig4c is the cheapest experiment (no pool propagation)."""
        assert main(["fig4c", "--runs", "1", "--step", "600"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4c" in out
        assert "inclination" in out

    def test_fig4b_runs(self, capsys):
        assert main(["fig4b", "--runs", "1", "--step", "600"]) == 0
        out = capsys.readouterr().out
        assert "best offset" in out
