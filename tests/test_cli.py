"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.obs.export import SIM_PID, SPAN_PID, validate_chrome_trace


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.runs == 10
        assert args.step == 300.0
        assert args.seed == 2024
        assert args.duration == pytest.approx(7 * 86400.0)
        assert args.log_level is None
        assert args.metrics_out is None
        assert args.profile is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig5", "--runs", "3", "--step", "600", "--seed", "1"]
        )
        assert args.runs == 3
        assert args.step == 600.0
        assert args.seed == 1

    def test_parallel_defaults_to_one(self):
        args = build_parser().parse_args(["fig2"])
        assert args.parallel == 1

    def test_parallel_flag_parses(self):
        args = build_parser().parse_args(["fig3", "--parallel", "4"])
        assert args.parallel == 4

    def test_parallel_flows_into_config(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(["fig2", "--parallel", "2"])
        assert _config_from_args(args).parallel == 2

    @pytest.mark.parametrize("flag", ["--parallel", "--runs"])
    @pytest.mark.parametrize("bad", ["0", "-1", "two"])
    def test_positive_int_flags_rejected_at_parse_time(self, flag, bad, capsys):
        """Bad --runs/--parallel values must exit 2, never traceback."""
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["fig2", flag, bad])
        assert exc_info.value.code == 2
        assert "python -m repro list" in capsys.readouterr().err

    def test_observability_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig2", "--duration", "86400", "--log-level", "DEBUG",
                "--metrics-out", "run.json", "--profile", "run.pstats",
                "--trace-out", "trace.json", "--track-memory",
            ]
        )
        assert args.duration == 86400.0
        assert args.log_level == "DEBUG"
        assert args.metrics_out == "run.json"
        assert args.profile == "run.pstats"
        assert args.trace_out == "trace.json"
        assert args.track_memory is True

    def test_trace_flags_default_off(self):
        args = build_parser().parse_args(["fig2"])
        assert args.trace_out is None
        assert args.track_memory is False

    def test_bench_compare_parses(self):
        args = build_parser().parse_args(
            ["bench-compare", "a.json", "b.json", "--threshold", "1.5"]
        )
        assert args.command == "bench-compare"
        assert args.bench_a == "a.json"
        assert args.bench_b == "b.json"
        assert args.threshold == 1.5
        assert args.report_only is False

    def test_bench_compare_requires_two_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-compare", "a.json"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_command_message_is_usable(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["fig99"])
        assert exc_info.value.code != 0
        captured = capsys.readouterr()
        assert "invalid choice" in captured.err
        assert "python -m repro list" in captured.err

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["--version"])
        assert exc_info.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        names = out.split("\n\n")[0].split()
        assert set(names) == set(EXPERIMENTS)

    def test_list_mentions_observability_flags(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for flag in (
            "--log-level", "--metrics-out", "--profile", "--duration",
            "--parallel",
        ):
            assert flag in out

    def test_parallel_worker_count_lands_in_run_report(self, capsys, tmp_path):
        """--parallel plumbs into ExperimentConfig and the run report."""
        import json

        path = tmp_path / "run.json"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--parallel", "2", "--metrics-out", str(path),
            ]
        ) == 0
        report = json.loads(path.read_text())
        assert report["config"]["parallel"] == 2

    def test_fig4c_runs(self, capsys):
        """fig4c is the cheapest experiment (no pool propagation)."""
        assert main(["fig4c", "--runs", "1", "--step", "600"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4c" in out
        assert "inclination" in out

    def test_fig4b_runs(self, capsys):
        assert main(["fig4b", "--runs", "1", "--step", "600"]) == 0
        out = capsys.readouterr().out
        assert "best offset" in out

    def test_metrics_out_writes_run_report(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--metrics-out", str(path)]
        ) == 0
        report = json.loads(path.read_text())
        assert report["command"] == "fig4c"
        assert report["config"]["runs"] == 1
        assert report["config"]["step_s"] == 600.0
        assert report["seed"] == 2024
        assert "experiment.fig4c" in report["span_stats"]
        assert "sim.engine.sessions" in report["metrics"]["counters"]
        assert "experiments.visibility_cache.hits" in report["metrics"]["counters"]

    def test_profile_writes_pstats(self, capsys, tmp_path):
        path = tmp_path / "run.pstats"
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--profile", str(path)]
        ) == 0
        assert path.exists() and path.stat().st_size > 0

    def test_duration_flag_shrinks_horizon(self, capsys):
        """A one-day fig4b run must parse and complete (smaller grid)."""
        assert main(
            ["fig4b", "--runs", "1", "--step", "900", "--duration", "86400"]
        ) == 0
        assert "best offset" in capsys.readouterr().out

    def test_tables_stay_on_stdout_with_logging_enabled(self, capsys):
        assert main(
            ["fig4c", "--runs", "1", "--step", "600", "--log-level", "INFO"]
        ) == 0
        captured = capsys.readouterr()
        assert "Fig. 4c" in captured.out
        assert "Fig. 4c" not in captured.err

    def test_output_flags_create_missing_parent_dirs(self, capsys, tmp_path):
        """Nested output paths must be created, not rejected."""
        metrics = tmp_path / "reports" / "nested" / "run.json"
        trace = tmp_path / "traces" / "trace.json"
        pstats = tmp_path / "profiles" / "run.pstats"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
                "--profile", str(pstats),
            ]
        ) == 0
        assert metrics.exists()
        assert trace.exists()
        assert pstats.exists()

    def test_track_memory_fills_report_memory_section(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(
            [
                "fig4c", "--runs", "1", "--step", "600",
                "--track-memory", "--metrics-out", str(path),
            ]
        ) == 0
        report = json.loads(path.read_text())
        assert report["memory"]["tracemalloc"] is True
        assert report["memory"]["sampled_spans"] > 0
        assert report["memory"]["peak_kb"] > 0.0


class TestTraceOut:
    def test_fig2_trace_round_trips_with_satellite_tracks(
        self, capsys, tmp_path
    ):
        """Acceptance: a fig2 run with --trace-out yields a valid Chrome
        trace with at least one satellite track, one contact slice, and the
        wall-clock spans."""
        from repro.experiments import common
        from repro.obs import timeline as obs_timeline
        from repro.obs import trace as obs_trace

        obs_timeline.reset()
        obs_trace.reset()  # Keep the span ring from overflowing mid-session.
        path = tmp_path / "trace.json"
        try:
            assert main(
                [
                    "fig2", "--runs", "1", "--step", "1800",
                    "--duration", "86400", "--trace-out", str(path),
                ]
            ) == 0
        finally:
            common.clear_caches()
            obs_timeline.reset()
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        events = document["traceEvents"]
        contacts = [e for e in events if e.get("name") == "contact"]
        assert contacts, "no contact slices in the trace"
        satellite_subjects = {e["args"]["subject"] for e in contacts}
        assert satellite_subjects, "no satellite tracks"
        track_labels = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["pid"] == SIM_PID and "tid" in e
        }
        assert satellite_subjects & track_labels
        span_names = {
            e["name"] for e in events if e["ph"] == "X" and e["pid"] == SPAN_PID
        }
        assert "experiment.fig2" in span_names

    def test_bench_compare_cli_exit_codes(self, capsys, tmp_path):
        def record(wall_s):
            return {
                "schema": 2,
                "figures": {"fig2": {"wall_s": wall_s}},
                "span_stats": {},
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            }

        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(record(1.0)))
        slow.write_text(json.dumps(record(2.0)))
        assert main(["bench-compare", str(base), str(base)]) == 0
        assert main(["bench-compare", str(base), str(slow)]) == 1
        assert main(
            ["bench-compare", str(base), str(slow), "--report-only"]
        ) == 0
        assert main(
            ["bench-compare", str(base), str(slow), "--threshold", "2.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
