"""Tests for shared-memory transports (parent-side round trips): the
packed visibility tensor and the CSR contact-interval arrays."""

import pickle

import numpy as np
import pytest

from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.runner import shared
from repro.runner.shared import (
    PickledIntervalsFallback,
    SharedIntervalsHandle,
    SharedVisibilityHandle,
    attach_contact_intervals,
    attach_packed_visibility,
    ensure_shared_intervals,
    share_contact_intervals,
    share_packed_visibility,
    unlink_shared_visibility,
)
from repro.sim.clock import TimeGrid
from repro.sim.intervals import ContactIntervals
from repro.sim.visibility import PackedVisibility


def _tiny_visibility(seed: int = 0) -> PackedVisibility:
    """A small random tensor: 3 sites x 5 satellites x 20 samples."""
    rng = np.random.default_rng(seed)
    grid = TimeGrid(duration_s=20 * 60.0, step_s=60.0)
    n_times = grid.count
    bits = rng.random((3, 5, n_times)) < 0.3
    packed = np.packbits(bits, axis=2)
    return PackedVisibility(packed, n_times, grid)


def _tiny_contacts(seed: int = 0, n_sites: int = 2, n_sats: int = 3) -> ContactIntervals:
    """Small random CSR contact windows over a [0, 3600] horizon."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 4, size=n_sites * n_sats)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    total = int(offsets[-1])
    rises = np.sort(rng.uniform(0.0, 3000.0, size=total))
    return ContactIntervals(
        n_sites=n_sites,
        n_satellites=n_sats,
        start_s=0.0,
        end_s=3600.0,
        rise_s=rises,
        set_s=rises + rng.uniform(1.0, 600.0, size=total),
        truncated_start=rng.random(total) < 0.25,
        truncated_end=rng.random(total) < 0.25,
        pair_offsets=offsets,
    )


class TestShareAttachRoundTrip:
    def test_attached_tensor_is_equal(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        try:
            attached_segment, attached = attach_packed_visibility(handle)
            try:
                assert np.array_equal(attached.packed, visibility.packed)
                assert attached.n_times == visibility.n_times
                assert attached.grid == visibility.grid
                # Same coverage reductions through the shared pages.
                assert np.array_equal(
                    attached.site_mask(0), visibility.site_mask(0)
                )
            finally:
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_attach_is_a_view_not_a_copy(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        try:
            attached_segment, attached = attach_packed_visibility(handle)
            try:
                # Writing through the segment is visible in the view: the
                # attached array aliases the shared buffer.
                original = attached.packed[0, 0, 0]
                segment.buf[0] = int(original) ^ 0xFF
                assert attached.packed[0, 0, 0] == int(original) ^ 0xFF
            finally:
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_handle_is_picklable_and_small(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        try:
            payload = pickle.dumps(handle)
            # The whole point: the handle crosses the pipe, the tensor
            # does not.
            assert len(payload) < 10 * handle.nbytes + 4096
            restored = pickle.loads(payload)
            assert restored == handle
            assert restored.shape == tuple(visibility.packed.shape)
        finally:
            unlink_shared_visibility(segment)

    def test_handle_nbytes(self):
        handle = SharedVisibilityHandle(
            shm_name="x", shape=(3, 5, 4), n_times=20,
            grid=TimeGrid(duration_s=1200.0, step_s=60.0),
        )
        assert handle.nbytes == 3 * 5 * 4


class TestUnlink:
    def test_unlink_is_idempotent(self):
        segment, _ = share_packed_visibility(_tiny_visibility())
        unlink_shared_visibility(segment)
        unlink_shared_visibility(segment)  # Second call must not raise.

    def test_attach_after_unlink_fails(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        unlink_shared_visibility(segment)
        with pytest.raises(FileNotFoundError):
            attach_packed_visibility(handle)


class TestIntervalsRoundTrip:
    def test_attached_contacts_are_equal(self):
        contacts = _tiny_contacts()
        segment, handle = share_contact_intervals(contacts)
        try:
            attached_segment, attached = attach_contact_intervals(handle)
            try:
                assert attached.n_sites == contacts.n_sites
                assert attached.n_satellites == contacts.n_satellites
                assert attached.start_s == contacts.start_s
                assert attached.end_s == contacts.end_s
                for name in (
                    "rise_s", "set_s", "pair_offsets",
                    "truncated_start", "truncated_end",
                ):
                    got = getattr(attached, name)
                    want = getattr(contacts, name)
                    assert got.dtype == want.dtype
                    assert np.array_equal(got, want)
                # Same reductions through the shared pages.
                for s in range(contacts.n_sites):
                    assert attached.site_union(s) == contacts.site_union(s)
            finally:
                del attached
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_attach_is_a_view_not_a_copy(self):
        contacts = _tiny_contacts(seed=1)
        assert contacts.n_contacts > 0
        segment, handle = share_contact_intervals(contacts)
        try:
            attached_segment, attached = attach_contact_intervals(handle)
            try:
                # rise_s sits at offset 0: writing through the segment is
                # visible in the attached array (it aliases the buffer).
                patched = np.float64(1234.5)
                segment.buf[:8] = patched.tobytes()
                assert attached.rise_s[0] == patched
            finally:
                del attached
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_empty_contacts_round_trip(self):
        """Zero windows still exports (the 1-byte segment-size guard)."""
        empty = ContactIntervals(
            n_sites=1,
            n_satellites=2,
            start_s=0.0,
            end_s=100.0,
            rise_s=np.zeros(0),
            set_s=np.zeros(0),
            truncated_start=np.zeros(0, dtype=bool),
            truncated_end=np.zeros(0, dtype=bool),
            pair_offsets=np.zeros(3, dtype=np.int64),
        )
        segment, handle = share_contact_intervals(empty)
        try:
            attached_segment, attached = attach_contact_intervals(handle)
            try:
                assert attached.n_contacts == 0
                assert np.array_equal(attached.pair_offsets, empty.pair_offsets)
            finally:
                del attached
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_handle_is_picklable_and_small(self):
        contacts = _tiny_contacts()
        segment, handle = share_contact_intervals(contacts)
        try:
            payload = pickle.dumps(handle)
            assert len(payload) < 4096  # The arrays stay in the segment.
            restored = pickle.loads(payload)
            assert restored == handle
            assert restored.nbytes == handle.nbytes
        finally:
            unlink_shared_visibility(segment)

    def test_contacts_pickle_drops_segment(self):
        contacts = _tiny_contacts()
        segment, handle = share_contact_intervals(contacts)
        try:
            _, attached = attach_contact_intervals(handle)
            clone = pickle.loads(pickle.dumps(attached))
            assert clone.segment is None
            assert np.array_equal(clone.rise_s, contacts.rise_s)
        finally:
            unlink_shared_visibility(segment)


class TestEnsureSharedIntervals:
    CONFIG = ExperimentConfig(runs=1, step_s=900.0, duration_s=3600.0)

    def test_context_adopts_segment_and_reuses_it(self):
        context = ExperimentContext(engine="intervals")
        contacts = _tiny_contacts(seed=2)
        context.install_intervals(self.CONFIG, contacts)
        try:
            handle, owned = ensure_shared_intervals(context, self.CONFIG)
            assert owned is None  # The context always adopts the segment.
            assert isinstance(handle, SharedIntervalsHandle)
            assert contacts.segment is not None
            # The cached arrays were rebound onto segment views: the shared
            # copy is the only resident one.
            assert contacts.rise_s.base is not None
            # A second call reuses the adopted segment, no new export.
            again, _ = ensure_shared_intervals(context, self.CONFIG)
            assert again.shm_name == handle.shm_name
        finally:
            context.clear()
        assert contacts.segment is None  # clear() released it.

    def test_falls_back_to_pickle_when_shm_unavailable(self, monkeypatch):
        context = ExperimentContext(engine="intervals")
        contacts = _tiny_contacts(seed=3)
        context.install_intervals(self.CONFIG, contacts)

        def refuse(*args, **kwargs):
            raise OSError("no shared memory on this platform")

        monkeypatch.setattr(shared.shared_memory, "SharedMemory", refuse)
        try:
            handle, owned = ensure_shared_intervals(context, self.CONFIG)
            assert owned is None
            assert isinstance(handle, PickledIntervalsFallback)
            assert handle.contacts is contacts
            assert contacts.segment is None
        finally:
            context.clear()
