"""Tests for shared-memory visibility transport (parent-side round trip)."""

import pickle

import numpy as np
import pytest

from repro.runner.shared import (
    SharedVisibilityHandle,
    attach_packed_visibility,
    share_packed_visibility,
    unlink_shared_visibility,
)
from repro.sim.clock import TimeGrid
from repro.sim.visibility import PackedVisibility


def _tiny_visibility(seed: int = 0) -> PackedVisibility:
    """A small random tensor: 3 sites x 5 satellites x 20 samples."""
    rng = np.random.default_rng(seed)
    grid = TimeGrid(duration_s=20 * 60.0, step_s=60.0)
    n_times = grid.count
    bits = rng.random((3, 5, n_times)) < 0.3
    packed = np.packbits(bits, axis=2)
    return PackedVisibility(packed, n_times, grid)


class TestShareAttachRoundTrip:
    def test_attached_tensor_is_equal(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        try:
            attached_segment, attached = attach_packed_visibility(handle)
            try:
                assert np.array_equal(attached.packed, visibility.packed)
                assert attached.n_times == visibility.n_times
                assert attached.grid == visibility.grid
                # Same coverage reductions through the shared pages.
                assert np.array_equal(
                    attached.site_mask(0), visibility.site_mask(0)
                )
            finally:
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_attach_is_a_view_not_a_copy(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        try:
            attached_segment, attached = attach_packed_visibility(handle)
            try:
                # Writing through the segment is visible in the view: the
                # attached array aliases the shared buffer.
                original = attached.packed[0, 0, 0]
                segment.buf[0] = int(original) ^ 0xFF
                assert attached.packed[0, 0, 0] == int(original) ^ 0xFF
            finally:
                attached_segment.close()
        finally:
            unlink_shared_visibility(segment)

    def test_handle_is_picklable_and_small(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        try:
            payload = pickle.dumps(handle)
            # The whole point: the handle crosses the pipe, the tensor
            # does not.
            assert len(payload) < 10 * handle.nbytes + 4096
            restored = pickle.loads(payload)
            assert restored == handle
            assert restored.shape == tuple(visibility.packed.shape)
        finally:
            unlink_shared_visibility(segment)

    def test_handle_nbytes(self):
        handle = SharedVisibilityHandle(
            shm_name="x", shape=(3, 5, 4), n_times=20,
            grid=TimeGrid(duration_s=1200.0, step_s=60.0),
        )
        assert handle.nbytes == 3 * 5 * 4


class TestUnlink:
    def test_unlink_is_idempotent(self):
        segment, _ = share_packed_visibility(_tiny_visibility())
        unlink_shared_visibility(segment)
        unlink_shared_visibility(segment)  # Second call must not raise.

    def test_attach_after_unlink_fails(self):
        visibility = _tiny_visibility()
        segment, handle = share_packed_visibility(visibility)
        unlink_shared_visibility(segment)
        with pytest.raises(FileNotFoundError):
            attach_packed_visibility(handle)
