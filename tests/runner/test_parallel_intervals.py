"""Regression tests: ``--parallel N`` on the intervals engine is real.

The intervals engine used to fall back to serial execution with a warning
because :class:`~repro.sim.intervals.ContactIntervals` had no shared-memory
export.  These tests pin the replacement behavior: a parallel request on
the intervals engine spawns actual pool workers (asserted via the bus's
``worker.online`` / ``run.finished`` frames) and produces results
bit-identical to the serial path.
"""

import io

from repro.experiments.common import (
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
)
from repro.experiments.fig2_coverage_vs_size import Fig2Scenario
from repro.obs.bus import (
    RUN_FINISHED,
    WORKER_ONLINE,
    BusRecorder,
    TelemetryBus,
)
from repro.runner import MonteCarloRunner, run_scenario

#: Two points x two runs: four tasks, enough to occupy two workers.
CONFIG = ExperimentConfig(runs=2, step_s=600.0, seed=11, duration_s=21_600.0)
SIZES = (10, 50)


def live_bus() -> TelemetryBus:
    bus = TelemetryBus(heartbeat_s=0.05, stall_timeout_s=5.0)
    bus.enable_live(stream=io.StringIO(), interval_s=0.01)
    return bus


class TestParallelIntervals:
    def test_parallel_spawns_workers_and_matches_serial(self):
        serial_context = ExperimentContext(engine=ENGINE_INTERVALS)
        try:
            serial = run_scenario(
                Fig2Scenario(sizes=SIZES), CONFIG, context=serial_context
            )
        finally:
            serial_context.clear()

        bus = live_bus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        parallel_context = ExperimentContext(engine=ENGINE_INTERVALS)
        try:
            parallel = MonteCarloRunner(
                CONFIG, context=parallel_context, parallel=2, bus=bus
            ).run(Fig2Scenario(sizes=SIZES))
        finally:
            parallel_context.clear()

        # The pool genuinely spawned: both workers announced themselves and
        # every task finished inside the pool, not in a serial fallback.
        assert recorder.count(WORKER_ONLINE) == 2
        assert recorder.count(RUN_FINISHED) == len(SIZES) * CONFIG.runs
        assert serial.points == parallel.points

    def test_parallel_intervals_reuses_cached_segment(self):
        """The context adopts the shared segment on first use; a second
        parallel run against the same config reuses it instead of
        re-exporting (the cached arrays already live in the segment)."""
        context = ExperimentContext(engine=ENGINE_INTERVALS)
        try:
            first = MonteCarloRunner(CONFIG, context=context, parallel=2).run(
                Fig2Scenario(sizes=SIZES)
            )
            contacts = context.contact_intervals(CONFIG)
            assert contacts.segment is not None
            segment_name = contacts.segment.name
            second = MonteCarloRunner(CONFIG, context=context, parallel=2).run(
                Fig2Scenario(sizes=SIZES)
            )
            assert context.contact_intervals(CONFIG).segment.name == segment_name
            assert first.points == second.points
        finally:
            context.clear()
