"""Tests for the persistent warm worker pool (the ISSUE-10 tentpole).

One CLI invocation running several scenarios must pay the pool spawn cost
once: the runner parks its ``PersistentPool`` on the ``ExperimentContext``,
and every later scenario with the same pool key (engine, backend, config,
world, live-ness) reuses the warm workers.  Contracts pinned here:

* batch and live parallel collection across >= 2 scenarios reuse ONE pool
  object (asserted by identity and by ``scenarios_served``);
* in live mode each worker publishes ``worker.online`` once per process
  lifetime, so the frame count across all scenarios equals the worker
  count — the observable proof that no respawn happened;
* warm-pool results stay bit-identical to serial execution;
* ``context.clear()`` disposes the adopted pool, and a key change (e.g. a
  different config) retires the old pool and spawns a fresh one.

Scenarios are module-level classes so the pool can pickle them under any
start method.
"""

import io
from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.obs.bus import WORKER_ONLINE, BusRecorder, TelemetryBus
from repro.runner import MonteCarloRunner, Scenario

CONFIG = ExperimentConfig(runs=4, step_s=900.0, seed=7)


@dataclass
class AlphaScenario(Scenario):
    """Cheap pool-free scenario: one random draw per run."""

    points: tuple = (10, 20, 30)

    name = "alpha"
    salt = 41
    uses_pool = False

    def sweep(self, config, context):
        return list(self.points)

    def run_one(self, ctx, run_index):
        return float(ctx.point) + float(ctx.rng.random())

    def reduce(self, point, point_index, samples, config):
        return (point, samples)


@dataclass
class BetaScenario(AlphaScenario):
    """A second scenario shape so reuse crosses scenario identities."""

    points: tuple = (5, 6)

    name = "beta"
    salt = 42


def live_bus(**kwargs) -> TelemetryBus:
    kwargs.setdefault("heartbeat_s", 0.05)
    kwargs.setdefault("stall_timeout_s", 5.0)
    bus = TelemetryBus(**kwargs)
    bus.enable_live(stream=io.StringIO(), interval_s=0.01)
    return bus


def _serial(scenario):
    return MonteCarloRunner(
        CONFIG, context=ExperimentContext(), parallel=1
    ).run(scenario)


class TestBatchReuse:
    def test_two_scenarios_share_one_pool(self):
        context = ExperimentContext()
        try:
            runner = MonteCarloRunner(CONFIG, context=context, parallel=2)
            alpha = runner.run(AlphaScenario())
            pool = context.worker_pool
            assert pool is not None and pool.alive
            beta = runner.run(BetaScenario())
            assert context.worker_pool is pool  # No respawn.
            assert pool.scenarios_served == 2
            assert alpha == _serial(AlphaScenario())
            assert beta == _serial(BetaScenario())
        finally:
            context.clear()

    def test_clear_disposes_pool(self):
        context = ExperimentContext()
        MonteCarloRunner(CONFIG, context=context, parallel=2).run(
            AlphaScenario()
        )
        pool = context.worker_pool
        assert pool.alive
        context.clear()
        assert context.worker_pool is None
        assert not pool.alive
        pool.dispose()  # Idempotent.

    def test_key_change_respawns(self):
        """A different config is a different pool key: the stale pool is
        retired and a fresh one adopted in its place."""
        context = ExperimentContext()
        try:
            MonteCarloRunner(CONFIG, context=context, parallel=2).run(
                AlphaScenario()
            )
            first = context.worker_pool
            other = ExperimentConfig(runs=4, step_s=900.0, seed=8)
            MonteCarloRunner(other, context=context, parallel=2).run(
                AlphaScenario()
            )
            second = context.worker_pool
            assert second is not first
            assert not first.alive
            assert second.alive
            assert second.scenarios_served == 1
        finally:
            context.clear()


class TestLiveReuse:
    def test_worker_online_once_across_scenarios(self):
        """Two live scenarios, one pool: exactly ``parallel`` worker.online
        frames in the whole transcript — workers came up once."""
        context = ExperimentContext()
        try:
            bus = live_bus()
            recorder = BusRecorder()
            bus.subscribe(recorder)
            runner = MonteCarloRunner(
                CONFIG, context=context, parallel=2, bus=bus
            )
            alpha = runner.run(AlphaScenario())
            pool = context.worker_pool
            beta = runner.run(BetaScenario())
            assert context.worker_pool is pool
            assert recorder.count(WORKER_ONLINE) == 2
            assert alpha == _serial(AlphaScenario())
            assert beta == _serial(BetaScenario())
        finally:
            context.clear()

    def test_live_and_batch_pools_do_not_mix(self):
        """Live-ness is part of the pool key: a batch runner after a live
        runner must not inherit the live pool (its workers hold a bus
        channel the batch path would leave dangling)."""
        context = ExperimentContext()
        try:
            MonteCarloRunner(
                CONFIG, context=context, parallel=2, bus=live_bus()
            ).run(AlphaScenario())
            live_pool = context.worker_pool
            MonteCarloRunner(CONFIG, context=context, parallel=2).run(
                AlphaScenario()
            )
            assert context.worker_pool is not live_pool
        finally:
            context.clear()
