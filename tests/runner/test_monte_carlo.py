"""Tests for the MonteCarloRunner: determinism, parallel identity, telemetry.

The toy scenarios here are module-level classes so the process pool can
pickle them under any multiprocessing start method.
"""

from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.obs import metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace as obs_trace
from repro.runner import MonteCarloRunner, Scenario, run_scenario

CONFIG = ExperimentConfig(runs=4, step_s=900.0, seed=7)


@dataclass
class ToyScenario(Scenario):
    """Cheap pool-free scenario: one random draw per run."""

    points: tuple = (10, 20, 30)

    name = "toy"
    salt = 99
    uses_pool = False

    def sweep(self, config, context):
        return list(self.points)

    def run_one(self, ctx, run_index):
        return float(ctx.point) + float(ctx.rng.random())

    def reduce(self, point, point_index, samples, config):
        return (point, samples)


@dataclass
class EmittingScenario(Scenario):
    """Pool-free scenario that narrates every run onto the timeline."""

    points: tuple = (1, 2)

    name = "toy_emit"
    salt = 98
    uses_pool = False

    def sweep(self, config, context):
        return list(self.points)

    def run_one(self, ctx, run_index):
        obs_timeline.emit(
            obs_timeline.PARTY_JOIN, t_s=0.0,
            subject=f"run-{ctx.point_index}-{ctx.run_index}",
        )
        return 0.0

    def reduce(self, point, point_index, samples, config):
        return len(samples)


@dataclass
class DeterministicScenario(Scenario):
    """Single point, single run — the fig4b/fig4c shape."""

    name = "toy_det"
    uses_pool = False

    def sweep(self, config, context):
        return ["only"]

    def runs_for(self, point, config):
        return 1

    def run_one(self, ctx, run_index):
        return 42.0

    def reduce(self, point, point_index, samples, config):
        return samples[0]


class TestCollect:
    def test_shapes_and_ordering(self):
        runner = MonteCarloRunner(CONFIG, context=ExperimentContext())
        points, samples = runner.collect(ToyScenario())
        assert points == [10, 20, 30]
        assert [len(s) for s in samples] == [CONFIG.runs] * 3
        # Samples carry their point's offset, in point order.
        for point, point_samples in zip(points, samples):
            assert all(point <= s < point + 1.0 for s in point_samples)

    def test_run_reduces_in_order(self):
        result = run_scenario(ToyScenario(), CONFIG, context=ExperimentContext())
        assert [point for point, _ in result] == [10, 20, 30]

    def test_deterministic_scenario_runs_once(self):
        runner = MonteCarloRunner(CONFIG, context=ExperimentContext())
        points, samples = runner.collect(DeterministicScenario())
        assert points == ["only"]
        assert samples == [[42.0]]


class TestOrderIndependence:
    def test_run_i_independent_of_total_runs(self):
        """Run i's sample is identical whether 4 or 16 runs were requested."""
        context = ExperimentContext()
        few = MonteCarloRunner(
            ExperimentConfig(runs=4, step_s=900.0, seed=7), context=context
        )
        many = MonteCarloRunner(
            ExperimentConfig(runs=16, step_s=900.0, seed=7), context=context
        )
        _, samples_few = few.collect(ToyScenario())
        _, samples_many = many.collect(ToyScenario())
        for point_few, point_many in zip(samples_few, samples_many):
            assert point_few == point_many[: len(point_few)]

    def test_runs_are_distinct(self):
        runner = MonteCarloRunner(CONFIG, context=ExperimentContext())
        _, samples = runner.collect(ToyScenario())
        for point_samples in samples:
            assert len(set(point_samples)) == len(point_samples)


class TestParallel:
    def test_parallel_matches_serial_exactly(self):
        serial = run_scenario(
            ToyScenario(), CONFIG, context=ExperimentContext(), parallel=1
        )
        parallel = run_scenario(
            ToyScenario(), CONFIG, context=ExperimentContext(), parallel=2
        )
        assert serial == parallel

    def test_parallel_merges_worker_spans(self):
        name = "runner.run.toy"
        before = obs_trace.stats().get(name, {}).get("count", 0)
        run_scenario(ToyScenario(), CONFIG, context=ExperimentContext(), parallel=2)
        after = obs_trace.stats()[name]["count"]
        assert after - before == 3 * CONFIG.runs

    def test_parallel_merges_worker_timeline_events(self):
        obs_timeline.reset()
        try:
            run_scenario(
                EmittingScenario(), CONFIG, context=ExperimentContext(), parallel=2
            )
            events = obs_timeline.events(kind=obs_timeline.PARTY_JOIN)
            subjects = [event.subject for event in events]
            expected = [
                f"run-{pi}-{ri}" for pi in range(2) for ri in range(CONFIG.runs)
            ]
            # Merged in (point, run) order, exactly once each.
            assert subjects == expected
        finally:
            obs_timeline.reset()

    def test_parallel_counts_runs_in_metrics(self):
        counter = metrics.counter("runner.runs")
        before = counter.value
        run_scenario(ToyScenario(), CONFIG, context=ExperimentContext(), parallel=2)
        assert counter.value - before == 3 * CONFIG.runs
        assert metrics.gauge("runner.workers").value == 2

    def test_serial_fallback_for_single_task(self):
        """A 1-task scenario never pays for a process pool."""
        result = run_scenario(
            DeterministicScenario(),
            ExperimentConfig(runs=4, step_s=900.0, seed=7, parallel=8),
            context=ExperimentContext(),
        )
        assert result == [42.0]
        assert metrics.gauge("runner.workers").value == 1


class TestValidation:
    def test_parallel_must_be_positive(self):
        with pytest.raises(ValueError, match="parallel"):
            MonteCarloRunner(CONFIG, context=ExperimentContext(), parallel=0)

    def test_runs_must_be_positive(self):
        with pytest.raises(ValueError, match="runs"):
            MonteCarloRunner(
                ExperimentConfig(runs=0, step_s=900.0), context=ExperimentContext()
            )

    def test_config_parallel_is_the_default(self):
        runner = MonteCarloRunner(
            ExperimentConfig(runs=1, step_s=900.0, parallel=3),
            context=ExperimentContext(),
        )
        assert runner.parallel == 3

    def test_sweep_validation_raises_before_any_run(self):
        @dataclass
        class Bad(ToyScenario):
            def sweep(self, config, context):
                raise ValueError("bad sweep")

        with pytest.raises(ValueError, match="bad sweep"):
            MonteCarloRunner(CONFIG, context=ExperimentContext()).collect(Bad())


class TestFig2SeedRegression:
    """Regression for the run-order RNG coupling the old fig2 loop had.

    The sequential generator made run i's sampled subset depend on ``runs``
    and on every preceding draw; the runner derives per-run seeds instead.
    """

    # One simulated day at 30-minute steps: small enough to build the
    # visibility tensor in seconds, real enough to exercise the kernel.
    SMALL = dict(step_s=1800.0, duration_s=86400.0, seed=2024)

    def test_fig2_run_i_sample_identical_for_5_and_20_runs(self):
        from repro.experiments.fig2_coverage_vs_size import Fig2Scenario

        context = ExperimentContext()
        scenario = Fig2Scenario(sizes=(50,))
        _, five = MonteCarloRunner(
            ExperimentConfig(runs=5, **self.SMALL), context=context
        ).collect(scenario)
        _, twenty = MonteCarloRunner(
            ExperimentConfig(runs=20, **self.SMALL), context=context
        ).collect(scenario)
        assert five[0] == twenty[0][:5]
        # Sanity: the runs genuinely differ from one another.
        assert len(set(twenty[0])) > 1

    def test_fig2_sampled_indices_depend_only_on_coordinates(self):
        """The exact indices drawn by fig2's kernel for (point, run) are a
        pure function of the seed coordinates."""
        from repro.runner import run_rng

        pool_size, size = 4408, 50
        for run_index in range(5):
            a = run_rng(2024, 2, 0, run_index).choice(
                pool_size, size=size, replace=False
            )
            b = run_rng(2024, 2, 0, run_index).choice(
                pool_size, size=size, replace=False
            )
            assert np.array_equal(a, b)
