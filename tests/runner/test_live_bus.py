"""Tests for the live telemetry path of the MonteCarloRunner.

Pins the ISSUE-6 tentpole contracts:

* with a live bus and ``--parallel N``, workers stream ``run.started`` /
  ``run.finished`` / ``heartbeat`` frames *during* execution (asserted via
  a captured bus transcript);
* the live incremental merge produces telemetry bit-identical to the batch
  merge under the deterministic projection (everything except wall-clock
  quantities);
* a SIGKILLed worker is detected by missed heartbeats, its lost tasks
  re-run in-process with exact results, the failure lands in the bus
  summary / run report, and already-merged telemetry survives.

Scenarios are module-level classes so the pool can pickle them under any
start method.
"""

import io
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.obs import metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace as obs_trace
from repro.obs.bus import (
    HEARTBEAT,
    RUN_FINISHED,
    RUN_STARTED,
    SCENARIO_FINISHED,
    SCENARIO_STARTED,
    WORKER_FAILED,
    WORKER_ONLINE,
    BusRecorder,
    TelemetryBus,
)
from repro.runner import MonteCarloRunner, Scenario

CONFIG = ExperimentConfig(runs=4, step_s=900.0, seed=7)


@dataclass
class ToyScenario(Scenario):
    points: tuple = (10, 20, 30)

    name = "toy"
    salt = 99
    uses_pool = False

    def sweep(self, config, context):
        return list(self.points)

    def run_one(self, ctx, run_index):
        return float(ctx.point) + float(ctx.rng.random())

    def reduce(self, point, point_index, samples, config):
        return (point, samples)


@dataclass
class EmittingScenario(Scenario):
    """Narrates every run onto the timeline (merge-order probe)."""

    points: tuple = (1, 2)

    name = "toy_emit"
    salt = 98
    uses_pool = False

    def sweep(self, config, context):
        return list(self.points)

    def run_one(self, ctx, run_index):
        obs_timeline.emit(
            obs_timeline.PARTY_JOIN, t_s=0.0,
            subject=f"run-{ctx.point_index}-{ctx.run_index}",
        )
        return float(ctx.point_index * 100 + ctx.run_index)

    def reduce(self, point, point_index, samples, config):
        return len(samples)


@dataclass
class SleepyScenario(Scenario):
    """Slow enough per run that worker heartbeats fire mid-task."""

    name = "toy_sleepy"
    salt = 97
    uses_pool = False

    def sweep(self, config, context):
        return [0]

    def runs_for(self, point, config):
        return 4

    def run_one(self, ctx, run_index):
        time.sleep(0.15)
        return float(run_index)

    def reduce(self, point, point_index, samples, config):
        return samples


@dataclass
class ExplodingScenario(ToyScenario):
    def run_one(self, ctx, run_index):
        raise RuntimeError("kernel exploded")


@dataclass
class KillScenario(Scenario):
    """SIGKILLs its worker on task (0, 1) — only inside a pool process, so
    the parent's serial rerun of the lost task survives."""

    name = "toy_kill"
    salt = 96
    uses_pool = False

    def sweep(self, config, context):
        return [1, 2]

    def runs_for(self, point, config):
        return 3

    def run_one(self, ctx, run_index):
        obs_timeline.emit(
            obs_timeline.PARTY_JOIN, t_s=0.0,
            subject=f"run-{ctx.point_index}-{ctx.run_index}",
        )
        if (
            (ctx.point_index, ctx.run_index) == (0, 1)
            and multiprocessing.parent_process() is not None
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        return float(ctx.point_index * 100 + ctx.run_index)

    def reduce(self, point, point_index, samples, config):
        return samples


def live_bus(**kwargs) -> TelemetryBus:
    """A private live-mode bus rendering to a throwaway buffer."""
    kwargs.setdefault("heartbeat_s", 0.05)
    kwargs.setdefault("stall_timeout_s", 5.0)
    bus = TelemetryBus(**kwargs)
    bus.enable_live(stream=io.StringIO(), interval_s=0.01)
    return bus


def _reset_collectors():
    obs_trace.TRACER.reset()
    metrics.REGISTRY.reset()
    obs_timeline.TIMELINE.reset()


def telemetry_projection():
    """The deterministic projection of the global collectors.

    Everything a (scenario, config)-pure run must reproduce exactly:
    timeline events, span structure (names/depth/parent/order), span and
    histogram observation counts, and every counter/gauge that is not
    wall-clock- or transport-dependent.  Excluded: span start/duration
    times, histogram sums/bucket splits, ``*_s`` gauges, and ``bus.*``
    instruments (the live transport necessarily publishes frames the batch
    path does not).
    """
    trace_snap = obs_trace.TRACER.snapshot()
    metric_snap = metrics.REGISTRY.snapshot()
    timeline_snap = obs_timeline.TIMELINE.snapshot()
    return {
        "spans": [
            (rec["name"], rec["depth"], rec["parent"])
            for rec in trace_snap["records"]
        ],
        "span_counts": {
            name: stats["count"] for name, stats in trace_snap["stats"].items()
        },
        "counters": {
            name: value
            for name, value in metric_snap["counters"].items()
            if not name.startswith("bus.")
        },
        "gauges": {
            name: value
            for name, value in metric_snap["gauges"].items()
            if not name.endswith("_s") and not name.startswith("bus.")
        },
        "histogram_counts": {
            name: data["count"]
            for name, data in metric_snap["histograms"].items()
        },
        "timeline_events": timeline_snap["events"],
        "timeline_counts": timeline_snap["counts_by_kind"],
    }


class TestLiveParallel:
    def test_results_match_serial_exactly(self):
        serial = MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=1,
            bus=TelemetryBus(),
        ).run(ToyScenario())
        live = MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=3, bus=live_bus()
        ).run(ToyScenario())
        assert serial == live

    def test_transcript_streams_progress_frames(self):
        """Workers publish run frames *during* execution: the transcript
        interleaves per-task frames between scenario start and finish."""
        bus = live_bus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=3, bus=bus
        ).collect(ToyScenario())
        kinds = recorder.kinds()
        assert kinds[0] == SCENARIO_STARTED
        assert kinds[-1] == SCENARIO_FINISHED
        tasks = 3 * CONFIG.runs
        assert recorder.count(RUN_STARTED) == tasks
        assert recorder.count(RUN_FINISHED) == tasks
        assert recorder.count(WORKER_ONLINE) == 3
        # Every run frame arrived between the scenario frames (streamed,
        # not batched after the fact).
        first, last = kinds.index(SCENARIO_STARTED), kinds.index(SCENARIO_FINISHED)
        assert all(first < kinds.index(k) < last for k in (RUN_STARTED, RUN_FINISHED))
        # The JSON transcript strips heavy payloads but keeps task indices.
        transcript = recorder.transcript()
        finished = [r for r in transcript if r["kind"] == RUN_FINISHED]
        assert all("sample" not in r["payload"] for r in finished)
        assert all("point_index" in r["payload"] for r in finished)

    def test_heartbeats_flow_during_slow_tasks(self):
        bus = live_bus(heartbeat_s=0.05)
        recorder = BusRecorder()
        bus.subscribe(recorder)
        MonteCarloRunner(
            ExperimentConfig(runs=1, step_s=900.0, seed=7),
            context=ExperimentContext(), parallel=2, bus=bus,
        ).collect(SleepyScenario())
        assert recorder.count(HEARTBEAT) > 0
        # Heartbeats carry the worker's progress payload.
        beat = next(f for f in recorder.frames if f.kind == HEARTBEAT)
        assert "runs_done" in beat.payload

    def test_live_status_renders_progress_lines(self):
        stream = io.StringIO()
        bus = TelemetryBus(heartbeat_s=0.05, stall_timeout_s=5.0)
        bus.enable_live(stream=stream, interval_s=0.0)
        MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=2, bus=bus
        ).collect(ToyScenario())
        lines = stream.getvalue().splitlines()
        assert lines, "no live-status lines rendered"
        assert any("[live] toy:" in line for line in lines)
        done = f"{3 * CONFIG.runs}/{3 * CONFIG.runs}"
        assert any(done in line for line in lines)

    def test_serial_publishes_frames_when_bus_active(self):
        bus = TelemetryBus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=1, bus=bus
        ).collect(ToyScenario())
        assert recorder.count(RUN_FINISHED) == 3 * CONFIG.runs
        assert recorder.count(SCENARIO_STARTED) == 1

    def test_inactive_bus_publishes_nothing(self):
        bus = TelemetryBus()
        before = metrics.counter("bus.frames_published").value
        MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=1, bus=bus
        ).collect(ToyScenario())
        assert metrics.counter("bus.frames_published").value == before
        assert bus.summary()["frames_total"] == 0


class TestLiveMergeIdentity:
    def test_live_merge_matches_batch_merge_projection(self):
        """The regression-enforced bit-identity: live incremental merge ==
        batch merge under the deterministic projection."""
        scenario = EmittingScenario()
        _reset_collectors()
        try:
            MonteCarloRunner(
                CONFIG, context=ExperimentContext(), parallel=2,
                bus=TelemetryBus(),
            ).collect(scenario)
            batch = telemetry_projection()
            _reset_collectors()
            MonteCarloRunner(
                CONFIG, context=ExperimentContext(), parallel=2,
                bus=live_bus(),
            ).collect(scenario)
            live = telemetry_projection()
        finally:
            _reset_collectors()
        assert live == batch
        # And the merge genuinely happened in (point, run) order.
        subjects = [e["subject"] for e in live["timeline_events"]]
        assert subjects == [
            f"run-{pi}-{ri}" for pi in range(2) for ri in range(CONFIG.runs)
        ]

    def test_live_samples_bitwise_equal_to_serial(self):
        _, serial = MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=1,
            bus=TelemetryBus(),
        ).collect(ToyScenario())
        _, live = MonteCarloRunner(
            CONFIG, context=ExperimentContext(), parallel=4, bus=live_bus()
        ).collect(ToyScenario())
        assert serial == live


class TestWorkerDeath:
    def _run_kill(self, bus):
        config = ExperimentConfig(runs=3, step_s=900.0, seed=7)
        runner = MonteCarloRunner(
            config, context=ExperimentContext(), parallel=2, bus=bus
        )
        return runner.collect(KillScenario())

    def test_killed_worker_recovers_exact_results(self):
        bus = live_bus(heartbeat_s=0.1, stall_timeout_s=1.2)
        recorder = BusRecorder()
        bus.subscribe(recorder)
        _, samples = self._run_kill(bus)
        assert samples == [
            [0.0, 1.0, 2.0],
            [100.0, 101.0, 102.0],
        ]
        # Usually exactly one (the killed worker); recovery fallbacks may
        # add an unattributed entry when its frames died unflushed.
        assert recorder.count(WORKER_FAILED) >= 1

    def test_failure_recorded_in_bus_summary_and_report(self):
        bus = live_bus(heartbeat_s=0.1, stall_timeout_s=1.2)
        self._run_kill(bus)
        failures = bus.summary()["failed_workers"]
        assert failures
        for failure in failures:
            assert failure["worker"]
            assert failure["reason"]
        # The killed task is recorded against its owner when the run.started
        # frame flushed before the SIGKILL, or against the synthetic
        # "unknown" entry (possibly among other swept tasks) when the
        # worker's death also took its unflushed frames — or the whole
        # queue — with it.
        assert any([0, 1] in failure["lost_tasks"] for failure in failures)

    def test_partial_frames_do_not_corrupt_merged_telemetry(self):
        """Already-merged telemetry survives; the rerun task's events land
        exactly once, in (point, run) order."""
        obs_timeline.reset()
        rerun_counter = metrics.counter("runner.rerun_tasks")
        before = rerun_counter.value
        try:
            bus = live_bus(heartbeat_s=0.1, stall_timeout_s=1.2)
            self._run_kill(bus)
            events = obs_timeline.events(kind=obs_timeline.PARTY_JOIN)
            subjects = [event.subject for event in events]
            assert subjects == [
                f"run-{pi}-{ri}" for pi in range(2) for ri in range(3)
            ]
        finally:
            obs_timeline.reset()
        assert rerun_counter.value - before >= 1


class TestWorkerException:
    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="kernel exploded"):
            MonteCarloRunner(
                CONFIG, context=ExperimentContext(), parallel=2, bus=live_bus()
            ).collect(ExplodingScenario())
