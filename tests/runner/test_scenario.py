"""Tests for the Scenario protocol and order-independent seed derivation."""

import numpy as np
import pytest

from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.runner import RunContext, Scenario, run_rng, run_seed_sequence

CONFIG = ExperimentConfig(runs=3, step_s=900.0, seed=7)


class TestSeedDerivation:
    def test_same_coordinates_same_stream(self):
        a = run_rng(2024, 2, 1, 3).integers(0, 2**31, size=8)
        b = run_rng(2024, 2, 1, 3).integers(0, 2**31, size=8)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "other",
        [(2025, 2, 1, 3), (2024, 3, 1, 3), (2024, 2, 0, 3), (2024, 2, 1, 4)],
        ids=["seed", "salt", "point", "run"],
    )
    def test_any_coordinate_changes_the_stream(self, other):
        base = run_rng(2024, 2, 1, 3).integers(0, 2**31, size=8)
        changed = run_rng(*other).integers(0, 2**31, size=8)
        assert not np.array_equal(base, changed)

    def test_seed_sequence_state_is_stateless(self):
        """The derivation is a pure function — no spawn counter involved."""
        first = run_seed_sequence(7, 5, 2, 9)
        again = run_seed_sequence(7, 5, 2, 9)
        assert list(first.generate_state(4)) == list(again.generate_state(4))

    def test_matches_spawn_key_contract(self):
        expected = np.random.SeedSequence(7, spawn_key=(5, 2, 9))
        derived = run_seed_sequence(7, 5, 2, 9)
        assert list(derived.generate_state(4)) == list(expected.generate_state(4))


class TestRunContext:
    def test_pool_size_reads_the_context_pool(self):
        context = ExperimentContext()
        ctx = RunContext(
            config=CONFIG, context=context, point=10, point_index=0,
            run_index=0, rng=run_rng(7, 0, 0, 0),
        )
        assert ctx.pool_size() == len(context.pool())

    def test_visibility_reads_installed_tensor(self):
        """An installed tensor (the parallel-worker path) is what kernels see."""
        context = ExperimentContext()
        sentinel = object()
        context.install_visibility(CONFIG, sentinel)
        ctx = RunContext(
            config=CONFIG, context=context, point=10, point_index=0,
            run_index=0, rng=run_rng(7, 0, 0, 0),
        )
        assert ctx.visibility() is sentinel


class TestScenarioDefaults:
    def test_runs_for_defaults_to_config_runs(self):
        class Minimal(Scenario):
            def sweep(self, config, context):
                return [1]

            def run_one(self, ctx, run_index):
                return 0.0

            def reduce(self, point, point_index, samples, config):
                return samples

        scenario = Minimal()
        assert scenario.runs_for(1, CONFIG) == CONFIG.runs
        assert scenario.finalize(["rows"], CONFIG) == ["rows"]

    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            Scenario()  # type: ignore[abstract]
