"""Tests for gap-distribution analytics."""

import numpy as np
import pytest

from repro.analysis.gaps import (
    GapDistribution,
    gap_timeline_events,
    pooled_gap_distribution,
    survival_curve,
)
from repro.obs import timeline as obs_timeline


class TestGapDistribution:
    def test_empty(self):
        dist = GapDistribution.from_gaps(np.array([]))
        assert dist.count == 0
        assert dist.max_s == 0.0

    def test_single_gap(self):
        dist = GapDistribution.from_gaps(np.array([120.0]))
        assert dist.count == 1
        assert dist.mean_s == 120.0
        assert dist.median_s == 120.0
        assert dist.max_s == 120.0

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(0)
        dist = GapDistribution.from_gaps(rng.exponential(300.0, size=1000))
        assert dist.median_s <= dist.p90_s <= dist.p99_s <= dist.max_s

    def test_from_mask(self):
        mask = np.array([True, False, False, True, False, True])
        dist = GapDistribution.from_mask(mask, 60.0)
        assert dist.count == 2
        assert dist.total_s == 180.0

    def test_pooled(self):
        masks = [
            np.array([True, False, True]),
            np.array([False, False, True]),
        ]
        dist = pooled_gap_distribution(masks, 60.0)
        assert dist.count == 2
        assert dist.total_s == 180.0

    def test_pooled_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            pooled_gap_distribution([], 60.0)


class TestGapTimelineEvents:
    """Hand-computed timelines: every edge case gets explicit flags."""

    def test_interior_gap(self):
        # Covered, 2 uncovered steps, covered: one gap [60, 180).
        mask = np.array([True, False, False, True])
        events = gap_timeline_events(mask, 60.0, site="taipei", emit=False)
        assert [event.kind for event in events] == ["gap.open", "gap.close"]
        open_event, close_event = events
        assert open_event.t_s == 60.0
        assert close_event.t_s == 180.0
        assert open_event.attrs["gap_s"] == pytest.approx(120.0)
        assert "at_run_start" not in open_event.attrs
        assert "at_run_end" not in close_event.attrs

    def test_run_start_gap_flagged(self):
        mask = np.array([False, False, True, True])
        events = gap_timeline_events(mask, 60.0, site="taipei", emit=False)
        assert events[0].t_s == 0.0
        assert events[0].attrs["at_run_start"] is True
        assert "at_run_end" not in events[1].attrs

    def test_run_end_gap_flagged(self):
        mask = np.array([True, True, False])
        events = gap_timeline_events(mask, 60.0, site="taipei", emit=False)
        assert events[1].t_s == pytest.approx(180.0)
        assert events[1].attrs["at_run_end"] is True
        assert "at_run_start" not in events[0].attrs

    def test_never_covered_carries_both_flags(self):
        """Zero-length contact: the site never sees a satellite at all."""
        events = gap_timeline_events(
            np.zeros(4, dtype=bool), 30.0, site="taipei", emit=False
        )
        assert len(events) == 2
        assert events[0].attrs["at_run_start"] is True
        assert events[1].attrs["at_run_end"] is True
        assert events[0].attrs["gap_s"] == pytest.approx(120.0)

    def test_fully_covered_emits_nothing(self):
        events = gap_timeline_events(
            np.ones(5, dtype=bool), 60.0, site="taipei", emit=False
        )
        assert events == []

    def test_single_step_contact_splits_gap(self):
        # One covered sample in the middle: two gaps around it.
        mask = np.array([False, True, False])
        events = gap_timeline_events(mask, 60.0, site="taipei", emit=False)
        assert [event.kind for event in events] == [
            "gap.open", "gap.close", "gap.open", "gap.close",
        ]
        assert events[1].t_s == 60.0  # First gap closes as the contact rises.
        assert events[2].t_s == 120.0  # Second opens as it sets.

    def test_start_offset_shifts_times(self):
        mask = np.array([False, True])
        events = gap_timeline_events(
            mask, 60.0, site="taipei", start_s=1000.0, emit=False
        )
        assert events[0].t_s == 1000.0
        assert events[0].attrs["at_run_start"] is True

    def test_emit_records_on_global_timeline(self):
        obs_timeline.reset()
        try:
            gap_timeline_events(
                np.array([True, False, True]), 60.0, site="taipei"
            )
            recorded = obs_timeline.events(kind=obs_timeline.GAP_OPEN)
            assert len(recorded) == 1
            assert recorded[0].subject == "taipei"
        finally:
            obs_timeline.reset()

    def test_rejects_2d_mask(self):
        with pytest.raises(ValueError, match="1-D"):
            gap_timeline_events(
                np.zeros((2, 2), dtype=bool), 60.0, site="x", emit=False
            )


class TestSurvivalCurve:
    def test_empty_gaps(self):
        assert survival_curve([], [10.0, 20.0]) == [0.0, 0.0]

    def test_known_values(self):
        gaps = [10.0, 20.0, 30.0, 40.0]
        curve = survival_curve(gaps, [0.0, 25.0, 50.0])
        assert curve == [1.0, 0.5, 0.0]

    def test_nonincreasing(self):
        rng = np.random.default_rng(1)
        gaps = rng.exponential(100.0, size=500)
        curve = survival_curve(gaps, np.linspace(0, 1000, 20))
        assert all(b <= a for a, b in zip(curve, curve[1:]))
