"""Tests for gap-distribution analytics."""

import numpy as np
import pytest

from repro.analysis.gaps import (
    GapDistribution,
    pooled_gap_distribution,
    survival_curve,
)


class TestGapDistribution:
    def test_empty(self):
        dist = GapDistribution.from_gaps(np.array([]))
        assert dist.count == 0
        assert dist.max_s == 0.0

    def test_single_gap(self):
        dist = GapDistribution.from_gaps(np.array([120.0]))
        assert dist.count == 1
        assert dist.mean_s == 120.0
        assert dist.median_s == 120.0
        assert dist.max_s == 120.0

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(0)
        dist = GapDistribution.from_gaps(rng.exponential(300.0, size=1000))
        assert dist.median_s <= dist.p90_s <= dist.p99_s <= dist.max_s

    def test_from_mask(self):
        mask = np.array([True, False, False, True, False, True])
        dist = GapDistribution.from_mask(mask, 60.0)
        assert dist.count == 2
        assert dist.total_s == 180.0

    def test_pooled(self):
        masks = [
            np.array([True, False, True]),
            np.array([False, False, True]),
        ]
        dist = pooled_gap_distribution(masks, 60.0)
        assert dist.count == 2
        assert dist.total_s == 180.0

    def test_pooled_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            pooled_gap_distribution([], 60.0)


class TestSurvivalCurve:
    def test_empty_gaps(self):
        assert survival_curve([], [10.0, 20.0]) == [0.0, 0.0]

    def test_known_values(self):
        gaps = [10.0, 20.0, 30.0, 40.0]
        curve = survival_curve(gaps, [0.0, 25.0, 50.0])
        assert curve == [1.0, 0.5, 0.0]

    def test_nonincreasing(self):
        rng = np.random.default_rng(1)
        gaps = rng.exponential(100.0, size=500)
        curve = survival_curve(gaps, np.linspace(0, 1000, 20))
        assert all(b <= a for a, b in zip(curve, curve[1:]))
