"""Tests for global coverage grids."""

import numpy as np
import pytest

from repro.analysis.heatmap import (
    CoverageGrid,
    compute_coverage_grid,
    coverage_equity,
)
from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import walker_delta
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid.hours(3.0, step_s=300.0)


def _walker(count=40, inclination=53.0):
    elements = walker_delta(count, 8, 1, inclination_deg=inclination, altitude_km=550.0)
    return Constellation(
        [Satellite(sat_id=f"W-{i}", elements=e) for i, e in enumerate(elements)]
    )


class TestComputeCoverageGrid:
    def test_shapes(self, grid):
        result = compute_coverage_grid(
            _walker(), grid, lat_step_deg=30.0, lon_step_deg=30.0
        )
        assert result.latitudes_deg.shape == (6,)
        assert result.longitudes_deg.shape == (12,)
        assert result.covered_fraction.shape == (6, 12)

    def test_fractions_in_range(self, grid):
        result = compute_coverage_grid(
            _walker(), grid, lat_step_deg=30.0, lon_step_deg=30.0
        )
        assert np.all(result.covered_fraction >= 0.0)
        assert np.all(result.covered_fraction <= 1.0)

    def test_53deg_walker_misses_poles(self, grid):
        result = compute_coverage_grid(
            _walker(inclination=53.0), grid, lat_step_deg=30.0, lon_step_deg=30.0
        )
        # Polar rows (|lat| = 75) see nothing at a 25-degree mask.
        assert result.covered_fraction[0].max() == 0.0
        assert result.covered_fraction[-1].max() == 0.0

    def test_mid_latitudes_covered(self, grid):
        result = compute_coverage_grid(
            _walker(count=80), grid, lat_step_deg=30.0, lon_step_deg=30.0
        )
        mid_rows = result.covered_fraction[1:-1]
        assert mid_rows.mean() > 0.0

    def test_rejects_bad_steps(self, grid):
        with pytest.raises(ValueError, match="steps"):
            compute_coverage_grid(_walker(), grid, lat_step_deg=0.0)


class TestGridMetrics:
    def _uniform_grid(self, value):
        lats = np.array([45.0, -45.0])
        lons = np.array([0.0, 90.0])
        return CoverageGrid(lats, lons, np.full((2, 2), value))

    def test_area_weights_sum_to_one(self):
        result = self._uniform_grid(0.5)
        assert result.area_weights().sum() == pytest.approx(1.0)

    def test_global_fraction_uniform(self):
        assert self._uniform_grid(0.7).global_coverage_fraction == pytest.approx(0.7)

    def test_equator_weighs_more_than_pole(self, grid):
        result = compute_coverage_grid(
            _walker(), grid, lat_step_deg=30.0, lon_step_deg=30.0
        )
        weights = result.area_weights()
        assert weights[2] > weights[0]  # 15 deg row vs 75 deg row.

    def test_band_coverage_rows(self):
        result = self._uniform_grid(0.5)
        bands = result.band_coverage()
        assert len(bands) == 2
        assert bands[0] == (45.0, 0.5)

    def test_render_ascii_dimensions(self):
        result = self._uniform_grid(0.999)
        rendered = result.render_ascii()
        lines = rendered.splitlines()
        assert len(lines) == 2
        assert all(len(line) == 2 for line in lines)
        assert rendered.count("@") == 4


class TestEquity:
    def test_uniform_coverage_perfectly_fair(self):
        lats = np.array([45.0, -45.0])
        lons = np.array([0.0, 90.0])
        result = CoverageGrid(lats, lons, np.full((2, 2), 0.6))
        assert coverage_equity(result) == pytest.approx(1.0)

    def test_concentrated_coverage_unfair(self):
        lats = np.array([45.0, -45.0])
        lons = np.array([0.0, 90.0])
        concentrated = np.zeros((2, 2))
        concentrated[0, 0] = 1.0
        result = CoverageGrid(lats, lons, concentrated)
        assert coverage_equity(result) < 0.5

    def test_zero_coverage_defined(self):
        lats = np.array([45.0])
        lons = np.array([0.0])
        result = CoverageGrid(lats, lons, np.zeros((1, 1)))
        assert coverage_equity(result) == 1.0

    def test_global_walker_fairer_than_clustered(self, grid):
        """The decentralization point: interleaved global designs spread
        coverage evenly; clustered ones concentrate it."""
        from repro.core.placement import clustered_design

        walker = compute_coverage_grid(
            _walker(count=80), grid, lat_step_deg=30.0, lon_step_deg=30.0
        )
        clustered = compute_coverage_grid(
            clustered_design(80, np.random.default_rng(0)),
            grid,
            lat_step_deg=30.0,
            lon_step_deg=30.0,
        )
        assert coverage_equity(walker) > coverage_equity(clustered)
