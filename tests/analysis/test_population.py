"""Tests for population-weighted metrics."""

import numpy as np
import pytest

from repro.analysis.population import (
    unweighted_city_coverage,
    weighted_city_coverage,
    weighted_coverage_from_masks,
)
from repro.ground.cities import CITIES
from repro.sim.clock import TimeGrid


class TestWeightedCityCoverage:
    def test_matches_manual(self, small_walker):
        grid = TimeGrid.hours(3.0, step_s=120.0)
        cities = CITIES[:3]
        fraction = weighted_city_coverage(small_walker, grid, cities)
        assert 0.0 <= fraction <= 1.0

    def test_more_satellites_more_coverage(self, small_walker):
        grid = TimeGrid.hours(6.0, step_s=120.0)
        cities = CITIES[:3]
        few = weighted_city_coverage(small_walker.take(range(5)), grid, cities)
        many = weighted_city_coverage(small_walker, grid, cities)
        assert many >= few

    def test_from_masks_weighting(self):
        # City 0 (largest population) fully covered, others uncovered.
        masks = np.zeros((3, 10), dtype=bool)
        masks[0] = True
        fraction = weighted_coverage_from_masks(masks, CITIES[:3])
        weights_total = sum(city.population_millions for city in CITIES[:3])
        expected = CITIES[0].population_millions / weights_total
        assert fraction == pytest.approx(expected)


class TestUnweighted:
    def test_mean(self):
        masks = np.array([[True, True], [False, False]])
        assert unweighted_city_coverage(masks) == pytest.approx(0.5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match=r"\(S, T\)"):
            unweighted_city_coverage(np.ones(5, dtype=bool))
