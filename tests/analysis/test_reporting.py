"""Tests for report rendering."""

import pytest

from repro.analysis.reporting import Series, Table


class TestTable:
    def test_render_contains_rows(self):
        table = Table("demo", ["n", "coverage"])
        table.add_row(100, 0.5)
        table.add_row(1000, 0.995)
        rendered = table.render()
        assert "demo" in rendered
        assert "100" in rendered
        assert "0.995" in rendered

    def test_alignment_consistent(self):
        table = Table("t", ["a", "b"])
        table.add_row("xx", 1)
        table.add_row("yyyy", 22)
        lines = table.render().splitlines()
        data_lines = lines[1:]
        assert len({len(line) for line in data_lines}) == 1

    def test_precision(self):
        table = Table("t", ["x"], precision=1)
        table.add_row(3.14159)
        assert "3.1" in table.render()
        assert "3.14" not in table.render()

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_empty_table_renders(self):
        table = Table("empty", ["a"])
        assert "empty" in table.render()

    def test_int_not_decimalized(self):
        table = Table("t", ["n"])
        table.add_row(1000)
        assert "1000" in table.render()
        assert "1000.000" not in table.render()


class TestSeries:
    def test_points_rendered(self):
        series = Series("fig2", "satellites", "uncovered %")
        series.add_point(100, 61.0)
        series.add_point(1000, 0.5)
        rendered = series.render()
        assert "fig2" in rendered
        assert "satellites -> uncovered %" in rendered
        assert "100" in rendered

    def test_accessors(self):
        series = Series("s", "x", "y")
        series.add_point(1, 10.0)
        series.add_point(2, 20.0)
        assert series.xs == [1.0, 2.0]
        assert series.ys == [10.0, 20.0]
