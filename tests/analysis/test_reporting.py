"""Tests for report rendering."""

import pytest

from repro.analysis.reporting import Series, Table


class TestTable:
    def test_render_contains_rows(self):
        table = Table("demo", ["n", "coverage"])
        table.add_row(100, 0.5)
        table.add_row(1000, 0.995)
        rendered = table.render()
        assert "demo" in rendered
        assert "100" in rendered
        assert "0.995" in rendered

    def test_alignment_consistent(self):
        table = Table("t", ["a", "b"])
        table.add_row("xx", 1)
        table.add_row("yyyy", 22)
        lines = table.render().splitlines()
        data_lines = lines[1:]
        assert len({len(line) for line in data_lines}) == 1

    def test_precision(self):
        table = Table("t", ["x"], precision=1)
        table.add_row(3.14159)
        assert "3.1" in table.render()
        assert "3.14" not in table.render()

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_empty_table_renders(self):
        table = Table("empty", ["a"])
        assert "empty" in table.render()

    def test_int_not_decimalized(self):
        table = Table("t", ["n"])
        table.add_row(1000)
        assert "1000" in table.render()
        assert "1000.000" not in table.render()


class TestTableRenderDetails:
    def test_title_line_format(self):
        table = Table("my title", ["a"])
        assert table.render().splitlines()[0] == "== my title =="

    def test_cells_right_justified_under_headers(self):
        table = Table("t", ["value"])
        table.add_row(7)
        header, rule, row = table.render().splitlines()[1:]
        assert header == "value"
        assert rule == "-" * len("value")
        assert row == "    7"

    def test_bool_rendered_as_word_not_number(self):
        table = Table("t", ["flag"], precision=2)
        table.add_row(True)
        rendered = table.render()
        assert "True" in rendered
        assert "1.00" not in rendered

    def test_string_cells_pass_through(self):
        table = Table("t", ["name", "x"], precision=1)
        table.add_row("inclination", 1.234)
        rendered = table.render()
        assert "inclination" in rendered
        assert "1.2" in rendered

    def test_print_goes_to_stdout(self, capsys):
        """Figure tables are contractually stdout (not the logging layer)."""
        table = Table("t", ["a"])
        table.add_row(1)
        table.print()
        captured = capsys.readouterr()
        assert "== t ==" in captured.out
        assert captured.err == ""


class TestSeries:
    def test_points_rendered(self):
        series = Series("fig2", "satellites", "uncovered %")
        series.add_point(100, 61.0)
        series.add_point(1000, 0.5)
        rendered = series.render()
        assert "fig2" in rendered
        assert "satellites -> uncovered %" in rendered
        assert "100" in rendered

    def test_accessors(self):
        series = Series("s", "x", "y")
        series.add_point(1, 10.0)
        series.add_point(2, 20.0)
        assert series.xs == [1.0, 2.0]
        assert series.ys == [10.0, 20.0]

    def test_precision_applies_to_both_axes(self):
        series = Series("s", "x", "y", precision=1)
        series.add_point(1.2345, 9.8765)
        rendered = series.render()
        assert "1.2 -> 9.9" in rendered
        assert "1.23" not in rendered

    def test_empty_series_renders_header_only(self):
        series = Series("s", "x", "y")
        lines = series.render().splitlines()
        assert lines == ["== s ==", "x -> y"]

    def test_print_goes_to_stdout(self, capsys):
        series = Series("s", "x", "y")
        series.add_point(1, 2)
        series.print()
        captured = capsys.readouterr()
        assert "1 -> 2" in captured.out
        assert captured.err == ""
