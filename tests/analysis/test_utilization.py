"""Tests for idle-time distribution and utilization-timeline analytics."""

import numpy as np
import pytest

from repro.analysis.utilization import (
    IdleTimeSummary,
    UtilizationTimeline,
    idle_reduction_series,
    party_utilization,
    satellite_utilization,
    utilization_from_events,
)
from repro.obs import timeline as obs_timeline
from repro.obs.timeline import TimelineEvent
from repro.sim.clock import TimeGrid


class TestIdleTimeSummary:
    def test_from_uniform_fractions(self):
        summary = IdleTimeSummary.from_fractions(np.full(100, 0.99))
        assert summary.mean == pytest.approx(0.99)
        assert summary.std == pytest.approx(0.0)
        assert summary.mean_percent == pytest.approx(99.0)

    def test_ordering(self):
        rng = np.random.default_rng(0)
        summary = IdleTimeSummary.from_fractions(rng.uniform(0.5, 1.0, 1000))
        assert summary.minimum <= summary.p10 <= summary.median
        assert summary.median <= summary.p90 <= summary.maximum

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            IdleTimeSummary.from_fractions(np.array([]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            IdleTimeSummary.from_fractions(np.array([1.2]))


class TestIdleReduction:
    def test_diff(self):
        series = idle_reduction_series([0.99, 0.97, 0.96])
        assert np.allclose(series, [0.02, 0.01])

    def test_rejects_short(self):
        with pytest.raises(ValueError, match="two points"):
            idle_reduction_series([0.99])


GRID = TimeGrid(duration_s=400.0, step_s=100.0)  # Samples at 0/100/200/300 s.


class TestUtilizationTimeline:
    def _timeline(self) -> UtilizationTimeline:
        return UtilizationTimeline(
            labels=["sat-a", "sat-b"],
            times_s=GRID.times_s,
            utilization=np.array(
                [[0.0, 0.5, 1.0, 0.5], [0.25, 0.25, 0.25, 0.25]]
            ),
        )

    def test_series_lookup(self):
        assert np.allclose(
            self._timeline().series("sat-a"), [0.0, 0.5, 1.0, 0.5]
        )

    def test_unknown_label_raises_keyerror(self):
        with pytest.raises(KeyError, match="sat-z"):
            self._timeline().series("sat-z")

    def test_mean_and_peak(self):
        timeline = self._timeline()
        assert timeline.mean_by_label() == {"sat-a": 0.5, "sat-b": 0.25}
        assert timeline.peak_by_label() == {"sat-a": 1.0, "sat-b": 0.25}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            UtilizationTimeline(
                labels=["a"], times_s=GRID.times_s, utilization=np.zeros((2, 4))
            )


class TestSatelliteUtilization:
    def test_hand_computed(self):
        load = np.array([[0.0, 50.0, 100.0, 50.0], [10.0, 10.0, 10.0, 10.0]])
        result = satellite_utilization(
            load, [100.0, 40.0], GRID, ["sat-a", "sat-b"]
        )
        assert np.allclose(result.series("sat-a"), [0.0, 0.5, 1.0, 0.5])
        assert np.allclose(result.series("sat-b"), [0.25, 0.25, 0.25, 0.25])

    def test_zero_capacity_reports_zero(self):
        result = satellite_utilization(
            np.array([[5.0, 5.0, 5.0, 5.0]]), [0.0], GRID, ["dead"]
        )
        assert np.allclose(result.series("dead"), 0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="load"):
            satellite_utilization(np.zeros((2, 3)), [1.0, 1.0], GRID, ["a", "b"])
        with pytest.raises(ValueError, match="sat ids"):
            satellite_utilization(np.zeros((2, 4)), [1.0, 1.0], GRID, ["a"])


class TestPartyUtilization:
    def test_pools_by_party(self):
        # Party tw owns two 100-Mbps satellites, party jp one 50-Mbps one.
        load = np.array(
            [
                [100.0, 0.0, 0.0, 0.0],
                [100.0, 100.0, 0.0, 0.0],
                [25.0, 25.0, 25.0, 25.0],
            ]
        )
        result = party_utilization(
            load, [100.0, 100.0, 50.0], GRID, ["tw", "tw", "jp"]
        )
        assert result.labels == ["jp", "tw"]
        assert np.allclose(result.series("tw"), [1.0, 0.5, 0.0, 0.0])
        assert np.allclose(result.series("jp"), [0.5, 0.5, 0.5, 0.5])

    def test_partyless_capacity_reports_zero(self):
        result = party_utilization(
            np.array([[10.0, 10.0, 10.0, 10.0]]), [0.0], GRID, ["ghost"]
        )
        assert np.allclose(result.series("ghost"), 0.0)


class TestUtilizationFromEvents:
    def test_grant_windows_become_busy_samples(self):
        events = [
            TimelineEvent(
                t_s=0.0, kind="allocation.grant", subject="sat-a",
                party="tw", duration_s=200.0,
            ),
            TimelineEvent(
                t_s=300.0, kind="allocation.grant", subject="sat-b",
                party="jp", duration_s=100.0,
            ),
        ]
        result = utilization_from_events(GRID, events)
        assert result.labels == ["sat-a", "sat-b"]
        assert np.allclose(result.series("sat-a"), [1.0, 1.0, 0.0, 0.0])
        assert np.allclose(result.series("sat-b"), [0.0, 0.0, 0.0, 1.0])

    def test_group_by_party(self):
        events = [
            TimelineEvent(
                t_s=0.0, kind="allocation.grant", subject="sat-a",
                party="tw", duration_s=100.0,
            ),
            TimelineEvent(
                t_s=200.0, kind="allocation.grant", subject="sat-b",
                party="tw", duration_s=100.0,
            ),
        ]
        result = utilization_from_events(GRID, events, by="party")
        assert result.labels == ["tw"]
        assert np.allclose(result.series("tw"), [1.0, 0.0, 1.0, 0.0])

    def test_defaults_to_global_timeline(self):
        obs_timeline.reset()
        try:
            obs_timeline.emit(
                obs_timeline.ALLOC_GRANT, 100.0, "sat-g", duration_s=100.0
            )
            result = utilization_from_events(GRID)
            assert result.labels == ["sat-g"]
            assert np.allclose(result.series("sat-g"), [0.0, 1.0, 0.0, 0.0])
        finally:
            obs_timeline.reset()

    def test_no_events_yields_empty(self):
        result = utilization_from_events(GRID, [])
        assert result.labels == []
        assert result.utilization.shape == (0, GRID.count)

    def test_rejects_unknown_by(self):
        with pytest.raises(ValueError, match="subject"):
            utilization_from_events(GRID, [], by="satellite")
