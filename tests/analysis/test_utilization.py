"""Tests for idle-time distribution analytics."""

import numpy as np
import pytest

from repro.analysis.utilization import IdleTimeSummary, idle_reduction_series


class TestIdleTimeSummary:
    def test_from_uniform_fractions(self):
        summary = IdleTimeSummary.from_fractions(np.full(100, 0.99))
        assert summary.mean == pytest.approx(0.99)
        assert summary.std == pytest.approx(0.0)
        assert summary.mean_percent == pytest.approx(99.0)

    def test_ordering(self):
        rng = np.random.default_rng(0)
        summary = IdleTimeSummary.from_fractions(rng.uniform(0.5, 1.0, 1000))
        assert summary.minimum <= summary.p10 <= summary.median
        assert summary.median <= summary.p90 <= summary.maximum

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            IdleTimeSummary.from_fractions(np.array([]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            IdleTimeSummary.from_fractions(np.array([1.2]))


class TestIdleReduction:
    def test_diff(self):
        series = idle_reduction_series([0.99, 0.97, 0.96])
        assert np.allclose(series, [0.02, 0.01])

    def test_rejects_short(self):
        with pytest.raises(ValueError, match="two points"):
            idle_reduction_series([0.99])
