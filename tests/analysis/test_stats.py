"""Tests for Monte-Carlo statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    Estimate,
    bootstrap_confidence_interval,
    mean_confidence_interval,
    runs_needed_for_half_width,
)


class TestMeanCI:
    def test_point_estimate(self):
        estimate = mean_confidence_interval([1.0, 2.0, 3.0])
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.count == 3

    def test_interval_contains_mean(self):
        estimate = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert estimate.ci_low <= estimate.mean <= estimate.ci_high

    def test_single_sample_degenerate(self):
        estimate = mean_confidence_interval([5.0])
        assert estimate.ci_low == estimate.ci_high == 5.0

    def test_more_samples_tighter(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(0, 1, 10))
        large = mean_confidence_interval(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_higher_confidence_wider(self):
        samples = list(np.random.default_rng(1).normal(0, 1, 50))
        ci90 = mean_confidence_interval(samples, confidence=0.90)
        ci99 = mean_confidence_interval(samples, confidence=0.99)
        assert ci99.half_width > ci90.half_width

    def test_coverage_calibration(self):
        """~95% of CIs should contain the true mean."""
        rng = np.random.default_rng(2)
        hits = 0
        trials = 400
        for _ in range(trials):
            samples = rng.normal(10.0, 2.0, 30)
            estimate = mean_confidence_interval(samples)
            if estimate.ci_low <= 10.0 <= estimate.ci_high:
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            mean_confidence_interval([])

    def test_rejects_unknown_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            mean_confidence_interval([1.0, 2.0], confidence=0.5)

    def test_str_format(self):
        text = str(mean_confidence_interval([1.0, 2.0, 3.0]))
        assert "3 runs" in text


class TestBootstrapCI:
    def test_interval_contains_mean_for_symmetric_data(self, rng):
        samples = rng.normal(5.0, 1.0, 100)
        estimate = bootstrap_confidence_interval(samples, rng)
        assert estimate.ci_low < 5.1
        assert estimate.ci_high > 4.9

    def test_close_to_normal_ci_for_gaussian(self, rng):
        samples = rng.normal(0.0, 1.0, 200)
        normal = mean_confidence_interval(samples)
        boot = bootstrap_confidence_interval(samples, rng)
        assert boot.half_width == pytest.approx(normal.half_width, rel=0.3)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            bootstrap_confidence_interval([], rng)
        with pytest.raises(ValueError, match="resamples"):
            bootstrap_confidence_interval([1.0, 2.0], rng, resamples=10)
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_confidence_interval([1.0, 2.0], rng, confidence=1.5)


class TestRunsNeeded:
    def test_formula(self):
        # std = 1, z = 1.96, target 0.1 -> ~385 runs.
        pilot = list(np.random.default_rng(3).normal(0, 1.0, 2000))
        needed = runs_needed_for_half_width(pilot, 0.1)
        assert 330 <= needed <= 440

    def test_constant_pilot_needs_one(self):
        assert runs_needed_for_half_width([5.0, 5.0, 5.0], 0.1) == 1

    def test_tighter_target_more_runs(self):
        pilot = list(np.random.default_rng(4).normal(0, 1.0, 100))
        assert runs_needed_for_half_width(pilot, 0.05) > runs_needed_for_half_width(
            pilot, 0.5
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="half-width"):
            runs_needed_for_half_width([1.0, 2.0], 0.0)
        with pytest.raises(ValueError, match="pilot"):
            runs_needed_for_half_width([1.0], 0.1)
