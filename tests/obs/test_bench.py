"""Tests for the benchmark comparison tool (the perf-regression gate)."""

import json

import pytest

from repro.obs.bench import (
    Delta,
    compare_benchmarks,
    comparison_summary,
    load_bench,
    render_comparison,
    render_history,
    run_bench_compare,
    run_bench_history,
    span_duration_percentiles,
)


def _record(figures, schema=2, span_stats=None, histograms=None):
    return {
        "schema": schema,
        "config": {"runs": 20, "step_s": 120.0, "seed": 2024},
        "exit_status": 0,
        "figures": {name: {"wall_s": wall} for name, wall in figures.items()},
        "span_stats": span_stats or {},
        "metrics": {
            "counters": {}, "gauges": {}, "histograms": histograms or {},
        },
        "meta": {},
    }


def _write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return str(path)


class TestLoadBench:
    def test_loads_both_schemas(self, tmp_path):
        for schema in (1, 2):
            path = _write(
                tmp_path, f"b{schema}.json",
                _record({"fig2": 1.0}, schema=schema),
            )
            assert load_bench(path)["schema"] == schema

    def test_rejects_unknown_schema(self, tmp_path):
        path = _write(tmp_path, "bad.json", _record({"fig2": 1.0}, schema=7))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            load_bench(path)

    def test_rejects_figureless_record(self, tmp_path):
        path = _write(tmp_path, "empty.json", _record({}))
        with pytest.raises(ValueError, match="no figures"):
            load_bench(path)


class TestDelta:
    def test_ratio(self):
        assert Delta("x", 2.0, 3.0).ratio == pytest.approx(1.5)

    def test_zero_base_zero_new(self):
        assert Delta("x", 0.0, 0.0).ratio == 1.0

    def test_zero_base_nonzero_new(self):
        assert Delta("x", 0.0, 1.0).ratio == float("inf")


class TestCompare:
    def test_no_regression_under_threshold(self):
        result = compare_benchmarks(
            _record({"fig2": 1.0, "fig3": 2.0}),
            _record({"fig2": 1.1, "fig3": 2.1}),
        )
        assert not result.regressed
        assert result.exit_code() == 0

    def test_synthetic_2x_slowdown_regresses(self):
        """The acceptance fixture: a 2x slowdown must trip the gate."""
        result = compare_benchmarks(
            _record({"fig2": 1.0}), _record({"fig2": 2.0})
        )
        assert result.regressed
        assert [delta.name for delta in result.regressions] == ["fig2"]
        assert result.exit_code() == 1
        assert result.exit_code(report_only=True) == 0

    def test_noise_floor_suppresses_fast_figures(self):
        # 2 ms -> 8 ms is a 4x ratio but below the 10 ms floor: not flagged.
        result = compare_benchmarks(
            _record({"micro": 0.002}), _record({"micro": 0.008})
        )
        assert not result.regressed

    def test_disjoint_figures_reported(self):
        result = compare_benchmarks(
            _record({"fig2": 1.0, "old": 1.0}),
            _record({"fig2": 1.0, "new": 1.0}),
        )
        assert result.only_in_base == ["old"]
        assert result.only_in_new == ["new"]

    def test_span_totals_compared(self):
        result = compare_benchmarks(
            _record({"fig2": 1.0}, span_stats={"visibility.build": {
                "count": 1, "total_s": 3.0, "min_s": 3.0, "max_s": 3.0}}),
            _record({"fig2": 1.0}, span_stats={"visibility.build": {
                "count": 1, "total_s": 4.5, "min_s": 4.5, "max_s": 4.5}}),
        )
        assert len(result.spans) == 1
        assert result.spans[0].ratio == pytest.approx(1.5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="positive"):
            compare_benchmarks(
                _record({"fig2": 1.0}), _record({"fig2": 1.0}), threshold=0.0
            )

    def test_cpu_count_mismatch_warns_report_only(self):
        """Records from hosts with differing CPU counts get a warning in
        the comparison and the rendering, but never a nonzero exit —
        cross-host wall clocks are incomparable, not regressed."""
        base = _record({"fig2": 1.0})
        base["meta"] = {"cpus": 1}
        new = _record({"fig2": 1.05})
        new["meta"] = {"cpus": 8}
        result = compare_benchmarks(base, new)
        assert len(result.warnings) == 1
        assert "CPU counts" in result.warnings[0]
        assert "base: 1" in result.warnings[0]
        assert "new: 8" in result.warnings[0]
        assert "WARNING:" in render_comparison(result)
        assert result.exit_code() == 0

    def test_matching_cpu_counts_do_not_warn(self):
        base = _record({"fig2": 1.0})
        base["meta"] = {"cpus": 4}
        new = _record({"fig2": 1.0})
        new["meta"] = {"cpus": 4}
        result = compare_benchmarks(base, new)
        assert result.warnings == []
        assert "WARNING:" not in render_comparison(result)

    def test_missing_meta_cpus_tolerated(self):
        """Schema-1 records and empty meta blocks carry no CPU count; the
        comparison must stay silent rather than guess."""
        schema1 = _record({"fig2": 1.0}, schema=1)
        schema1.pop("meta", None)
        empty_meta = _record({"fig2": 1.0})
        counted = _record({"fig2": 1.0})
        counted["meta"] = {"cpus": 2}
        for base, new in (
            (schema1, counted), (counted, empty_meta), (schema1, empty_meta),
        ):
            assert compare_benchmarks(base, new).warnings == []


class TestPercentiles:
    def test_extracted_from_span_histograms(self):
        record = _record(
            {"fig2": 1.0},
            histograms={
                "trace.span_seconds.visibility.build": {
                    "buckets": [1.0, 2.0, 4.0],
                    "counts": [0, 10, 0, 0],
                    "sum": 15.0,
                    "count": 10,
                },
                "unrelated.histogram": {
                    "buckets": [1.0], "counts": [5, 0], "sum": 1.0, "count": 5,
                },
            },
        )
        percentiles = span_duration_percentiles(record)
        assert set(percentiles) == {"visibility.build"}
        assert percentiles["visibility.build"]["p50"] == pytest.approx(1.5)
        assert percentiles["visibility.build"]["p99"] <= 2.0

    def test_in_comparison_and_rendering(self):
        new = _record(
            {"fig2": 1.0},
            histograms={
                "trace.span_seconds.analysis.fig2": {
                    "buckets": [1.0], "counts": [4, 0], "sum": 2.0, "count": 4,
                }
            },
        )
        result = compare_benchmarks(_record({"fig2": 1.0}), new)
        assert "analysis.fig2" in result.percentiles
        rendered = render_comparison(result)
        assert "p95_s" in rendered


class TestRendering:
    def test_regression_flagged_in_table(self):
        result = compare_benchmarks(
            _record({"fig2": 1.0}), _record({"fig2": 3.0})
        )
        rendered = render_comparison(result)
        assert "REGRESSION" in rendered
        assert "FAIL" in rendered

    def test_clean_run_says_ok(self):
        result = compare_benchmarks(
            _record({"fig2": 1.0}), _record({"fig2": 1.0})
        )
        rendered = render_comparison(result)
        assert "OK" in rendered
        assert "REGRESSION" not in rendered

    def test_summary_line(self):
        result = compare_benchmarks(
            _record({"fig2": 1.0}), _record({"fig2": 2.0})
        )
        summary = comparison_summary(result)
        assert "1 regressed" in summary
        assert "fig2" in summary


class TestHistory:
    def test_trajectory_table_rows_and_ratio(self):
        paths = ["benchmarks/BENCH_PR1.json", "BENCH_PR3.json", "BENCH_PR5.json"]
        records = [
            _record({"fig2": 4.0, "fig3": 1.0}),
            _record({"fig2": 2.0, "fig3": 1.0}),
            _record({"fig2": 1.0, "fig3": 1.0, "fig4c": 0.5}),
        ]
        text = render_history(paths, records)
        assert "3 records, 3 figures" in text
        # Labels are basenames without .json.
        assert "BENCH_PR1" in text
        assert "benchmarks" not in text
        [fig2_row] = [l for l in text.splitlines() if l.startswith("fig2")]
        assert "4.0000" in fig2_row and "1.0000" in fig2_row
        assert "0.25x" in fig2_row  # last/first cumulative movement
        # A figure absent from early records renders "-" and no ratio.
        [fig4c_row] = [l for l in text.splitlines() if l.startswith("fig4c")]
        assert "-" in fig4c_row

    def test_run_bench_history_always_exits_zero(self, tmp_path):
        paths = [
            _write(tmp_path, "a.json", _record({"fig2": 1.0})),
            _write(tmp_path, "b.json", _record({"fig2": 9.0})),
        ]
        lines = []
        assert run_bench_history(paths, print_fn=lines.append) == 0
        assert "bench history" in lines[0]

    def test_needs_two_records(self, tmp_path):
        path = _write(tmp_path, "a.json", _record({"fig2": 1.0}))
        with pytest.raises(ValueError, match="at least two"):
            run_bench_history([path])

    def test_accepts_mixed_schemas(self, tmp_path):
        paths = [
            _write(tmp_path, "a.json", _record({"fig2": 1.0}, schema=1)),
            _write(tmp_path, "b.json", _record({"fig2": 2.0}, schema=2)),
        ]
        assert run_bench_history(paths, print_fn=lambda _: None) == 0


class TestRunBenchCompare:
    def test_exit_zero_under_threshold(self, tmp_path):
        base = _write(tmp_path, "base.json", _record({"fig2": 1.0}))
        new = _write(tmp_path, "new.json", _record({"fig2": 1.1}))
        lines = []
        assert run_bench_compare(base, new, print_fn=lines.append) == 0
        assert any("OK" in line for line in lines)

    def test_exit_nonzero_on_slowdown(self, tmp_path):
        base = _write(tmp_path, "base.json", _record({"fig2": 1.0}))
        new = _write(tmp_path, "new.json", _record({"fig2": 2.0}))
        lines = []
        assert run_bench_compare(base, new, print_fn=lines.append) == 1
        assert any("FAIL" in line for line in lines)

    def test_report_only_exits_zero(self, tmp_path):
        base = _write(tmp_path, "base.json", _record({"fig2": 1.0}))
        new = _write(tmp_path, "new.json", _record({"fig2": 2.0}))
        lines = []
        assert run_bench_compare(
            base, new, report_only=True, print_fn=lines.append
        ) == 0
        assert any("report-only" in line for line in lines)

    def test_custom_threshold(self, tmp_path):
        base = _write(tmp_path, "base.json", _record({"fig2": 1.0}))
        new = _write(tmp_path, "new.json", _record({"fig2": 1.4}))
        assert run_bench_compare(base, new, print_fn=lambda _: None) == 1
        assert run_bench_compare(
            base, new, threshold=1.5, print_fn=lambda _: None
        ) == 0
