"""Tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.obs import timeline as obs_timeline
from repro.obs.export import (
    SIM_PID,
    SPAN_PID,
    chrome_trace,
    span_trace_events,
    timeline_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeline import TimelineEvent
from repro.obs.trace import SpanRecord


def _span(name="phase", start=0.0, dur=1.0, depth=0, parent=None, mem=None):
    return SpanRecord(
        name=name, start_s=start, duration_s=dur, depth=depth, parent=parent,
        mem_peak_kb=mem,
    )


class TestSpanEvents:
    def test_complete_events_in_microseconds(self):
        events = span_trace_events([_span(start=2.0, dur=0.5)])
        slices = [event for event in events if event["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == pytest.approx(2e6)
        assert slices[0]["dur"] == pytest.approx(5e5)
        assert slices[0]["pid"] == SPAN_PID

    def test_metadata_names_the_process(self):
        events = span_trace_events([])
        names = [event["args"]["name"] for event in events if event["ph"] == "M"]
        assert any("wall clock" in name for name in names)

    def test_memory_counter_emitted_when_sampled(self):
        events = span_trace_events([_span(mem=128.0)])
        counters = [event for event in events if event["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"]["kb"] == 128.0

    def test_no_counter_without_memory(self):
        events = span_trace_events([_span()])
        assert not [event for event in events if event["ph"] == "C"]


class TestTimelineEvents:
    def test_contact_begin_with_hint_becomes_slice(self):
        events = timeline_trace_events(
            [
                TimelineEvent(
                    t_s=100.0, kind="contact.begin", subject="sat-1",
                    attrs={"duration_hint_s": 300.0},
                ),
                TimelineEvent(t_s=400.0, kind="contact.end", subject="sat-1"),
            ]
        )
        slices = [event for event in events if event.get("ph") == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "contact"
        assert slices[0]["dur"] == pytest.approx(3e8)
        # The end marker is folded into the slice, not emitted separately.
        assert not [e for e in events if e.get("name") == "contact.end"]

    def test_contact_begin_without_hint_degrades_to_instant(self):
        events = timeline_trace_events(
            [TimelineEvent(t_s=0.0, kind="contact.begin", subject="sat-1")]
        )
        instants = [event for event in events if event.get("ph") == "i"]
        assert len(instants) == 1

    def test_windowed_kind_becomes_slice(self):
        events = timeline_trace_events(
            [
                TimelineEvent(
                    t_s=60.0, kind="allocation.grant", subject="sat-1",
                    duration_s=120.0,
                )
            ]
        )
        slices = [event for event in events if event.get("ph") == "X"]
        assert slices[0]["dur"] == pytest.approx(1.2e8)

    def test_one_track_per_subject(self):
        events = timeline_trace_events(
            [
                TimelineEvent(t_s=0.0, kind="handover", subject="sat-1"),
                TimelineEvent(t_s=1.0, kind="handover", subject="sat-2"),
                TimelineEvent(t_s=2.0, kind="handover", subject="sat-1"),
            ]
        )
        tids = {
            event["tid"]
            for event in events
            if event["ph"] != "M" and event["pid"] == SIM_PID
        }
        assert len(tids) == 2
        labels = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and "tid" in event
        }
        assert labels == {"sat-1", "sat-2"}

    def test_partyless_subjectless_event_lands_on_run_track(self):
        events = timeline_trace_events(
            [TimelineEvent(t_s=0.0, kind="market.settlement", subject="")]
        )
        labels = [
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and "tid" in event
        ]
        assert labels == ["(run)"]


class TestDocument:
    def test_round_trip_and_validate(self, tmp_path):
        obs_timeline.reset()
        try:
            obs_timeline.emit(
                obs_timeline.CONTACT_BEGIN, 0.0, "sat-1",
                duration_hint_s=600.0,
            )
            path = tmp_path / "trace.json"
            written = write_chrome_trace(str(path))
            loaded = json.loads(path.read_text())
            assert loaded == written
            validate_chrome_trace(loaded)
            assert loaded["displayTimeUnit"] == "ms"
        finally:
            obs_timeline.reset()

    def test_explicit_sources(self):
        document = chrome_trace(
            spans=[_span()],
            timeline_events=[
                TimelineEvent(t_s=0.0, kind="gap.open", subject="taipei")
            ],
        )
        validate_chrome_trace(document)
        pids = {
            event["pid"]
            for event in document["traceEvents"]
            if event["ph"] != "M"
        }
        assert pids == {SPAN_PID, SIM_PID}

    def test_validate_rejects_non_trace(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_validate_rejects_missing_ts(self):
        document = {
            "traceEvents": [{"ph": "i", "pid": 1, "name": "x", "s": "t"}]
        }
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(document)

    def test_validate_rejects_complete_without_dur(self):
        document = {
            "traceEvents": [{"ph": "X", "pid": 1, "name": "x", "ts": 0.0}]
        }
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(document)
