"""Schema-3 run-report round-trip and back-compat upgrades (schemas 1, 2).

Complements tests/obs/test_obs.py's report tests with the ISSUE-6 surface:
the ``bus`` section, and ``load_run_report`` upgrades from committed
schema-1 and schema-2 fixtures.
"""

import io
import json

import pytest

from repro.obs.bus import SCENARIO_STARTED, default_bus
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    collect_run_report,
    load_run_report,
    upgrade_report,
    validate_run_report,
    write_run_report,
)


def schema1_fixture():
    return {
        "schema": 1,
        "command": "fig2",
        "config": {"seed": 3},
        "seed": 3,
        "spans": [],
        "span_stats": {"analysis.fig2": {"count": 1, "total_s": 2.0,
                                         "min_s": 2.0, "max_s": 2.0}},
        "dropped_spans": 0,
        "metrics": {"counters": {"runner.runs": 4.0}, "gauges": {},
                    "histograms": {}},
        "meta": {"python": "3.11.0"},
    }


def schema2_fixture():
    fixture = schema1_fixture()
    fixture["schema"] = 2
    fixture["timeline"] = {
        "events": [{"t_s": 0.0, "kind": "party.join", "subject": "acme"}],
        "capacity": 65536,
        "dropped": 0,
        "total_emitted": 1,
        "counts_by_kind": {"party.join": 1},
    }
    fixture["memory"] = {
        "tracemalloc": False, "sampled_spans": 0, "span_peak_kb": None,
        "current_kb": None, "peak_kb": None,
    }
    return fixture


class TestSchema3RoundTrip:
    def test_write_load_validate(self, tmp_path):
        path = tmp_path / "run.json"
        written = write_run_report(str(path), command="fig2")
        loaded = load_run_report(str(path))
        assert loaded == written
        assert loaded["schema"] == REPORT_SCHEMA_VERSION == 3
        validate_run_report(loaded)

    def test_bus_section_reflects_default_bus(self):
        bus = default_bus()
        bus.reset()
        try:
            bus.enable_live(stream=io.StringIO())
            bus.publish(SCENARIO_STARTED, scenario="fig2", tasks=4, workers=2)
            bus.disable_live()
            report = collect_run_report(command="fig2")
        finally:
            bus.reset()
        assert report["bus"]["live"] is True  # sticky past disable_live()
        assert report["bus"]["frames_total"] == 1
        assert report["bus"]["frames_by_kind"] == {SCENARIO_STARTED: 1}
        assert report["bus"]["scenarios"] == ["fig2"]
        assert report["bus"]["failed_workers"] == []

    def test_validate_rejects_gutted_bus_section(self):
        report = collect_run_report()
        report["bus"] = {"live": False}
        with pytest.raises(ValueError, match="'bus' missing"):
            validate_run_report(report)


class TestUpgrades:
    def test_schema1_gains_timeline_memory_and_bus(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(schema1_fixture()))
        loaded = load_run_report(str(path))
        assert loaded["schema"] == REPORT_SCHEMA_VERSION
        assert loaded["schema_original"] == 1
        assert loaded["timeline"]["events"] == []
        assert loaded["memory"]["tracemalloc"] is False
        assert loaded["bus"]["live"] is False
        assert loaded["bus"]["frames_total"] == 0
        validate_run_report(loaded)

    def test_schema2_keeps_timeline_gains_bus(self, tmp_path):
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(schema2_fixture()))
        loaded = load_run_report(str(path))
        assert loaded["schema"] == REPORT_SCHEMA_VERSION
        assert loaded["schema_original"] == 2
        # The schema-2 timeline is preserved verbatim, not blanked.
        assert loaded["timeline"]["events"][0]["subject"] == "acme"
        assert loaded["bus"]["frames_by_kind"] == {}
        validate_run_report(loaded)

    def test_current_schema_passes_through_untouched(self):
        report = collect_run_report()
        assert upgrade_report(report) is report
        assert "schema_original" not in report

    def test_supported_schemas_pinned(self):
        assert SUPPORTED_SCHEMAS == (1, 2, 3)

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported run-report schema"):
            upgrade_report({"schema": 4})
