"""Tests for the ring-buffered simulation event timeline."""

import json
import threading

import pytest

from repro.obs import timeline as obs_timeline
from repro.obs.timeline import Timeline, TimelineEvent


class TestEmit:
    def test_emit_and_query(self):
        timeline = Timeline(capacity=16)
        event = timeline.emit(
            obs_timeline.HANDOVER, 120.0, "terminal-1", from_sat="a", to_sat="b"
        )
        assert event.kind == "handover"
        assert event.attrs == {"from_sat": "a", "to_sat": "b"}
        assert timeline.events() == [event]

    def test_unknown_kind_rejected(self):
        timeline = Timeline(capacity=4)
        with pytest.raises(ValueError, match="unknown timeline event kind"):
            timeline.emit("contact.begun", 0.0, "sat-1")

    def test_negative_duration_rejected(self):
        timeline = Timeline(capacity=4)
        with pytest.raises(ValueError, match="non-negative"):
            timeline.emit(obs_timeline.ALLOC_GRANT, 0.0, "sat-1", duration_s=-1.0)

    def test_windowed_event_stop(self):
        timeline = Timeline(capacity=4)
        event = timeline.emit(
            obs_timeline.ALLOC_GRANT, 100.0, "sat-1", duration_s=60.0
        )
        assert event.stop_s == pytest.approx(160.0)

    def test_emit_event_validates(self):
        timeline = Timeline(capacity=4)
        with pytest.raises(ValueError, match="unknown"):
            timeline.emit_event(
                TimelineEvent(t_s=0.0, kind="nope", subject="x")
            )


class TestRing:
    def test_overwrites_oldest_and_counts_drops(self):
        timeline = Timeline(capacity=3)
        for index in range(5):
            timeline.emit(obs_timeline.HANDOVER, float(index), f"t-{index}")
        assert len(timeline) == 3
        assert timeline.dropped == 2
        assert timeline.total_emitted == 5
        # The survivors are the three newest, oldest first.
        assert [event.t_s for event in timeline.events()] == [2.0, 3.0, 4.0]

    def test_counts_by_kind_survive_cap(self):
        timeline = Timeline(capacity=2)
        for index in range(4):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.emit(obs_timeline.GAP_OPEN, 9.0, "site")
        assert timeline.counts_by_kind() == {"gap.open": 1, "handover": 4}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Timeline(capacity=0)

    def test_reset(self):
        timeline = Timeline(capacity=2)
        for index in range(4):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.reset()
        assert len(timeline) == 0
        assert timeline.dropped == 0
        assert timeline.events() == []
        assert timeline.counts_by_kind() == {}


class TestQueries:
    def _populated(self) -> Timeline:
        timeline = Timeline(capacity=16)
        timeline.emit(obs_timeline.CONTACT_BEGIN, 0.0, "sat-1", party="tw")
        timeline.emit(obs_timeline.CONTACT_BEGIN, 10.0, "sat-2", party="jp")
        timeline.emit(obs_timeline.CONTACT_END, 20.0, "sat-1", party="tw")
        return timeline

    def test_filter_by_kind(self):
        events = self._populated().events(kind=obs_timeline.CONTACT_BEGIN)
        assert [event.subject for event in events] == ["sat-1", "sat-2"]

    def test_filter_by_subject(self):
        events = self._populated().events(subject="sat-1")
        assert len(events) == 2

    def test_filter_by_party(self):
        events = self._populated().events(party="jp")
        assert [event.subject for event in events] == ["sat-2"]

    def test_snapshot_is_json_ready(self):
        snapshot = self._populated().snapshot()
        json.dumps(snapshot)
        assert snapshot["total_emitted"] == 3
        assert snapshot["dropped"] == 0
        assert snapshot["counts_by_kind"]["contact.begin"] == 2
        assert snapshot["events"][0]["kind"] == "contact.begin"

    def test_to_dict_omits_empty_fields(self):
        record = TimelineEvent(t_s=1.0, kind="handover", subject="t").to_dict()
        assert record == {"t_s": 1.0, "kind": "handover", "subject": "t"}


class TestGlobalHelpers:
    def test_module_emit_and_extend(self):
        obs_timeline.reset()
        try:
            obs_timeline.emit(obs_timeline.PARTY_JOIN, 0.0, "tw", party="tw")
            added = obs_timeline.extend(
                [
                    TimelineEvent(t_s=5.0, kind="gap.open", subject="taipei"),
                    TimelineEvent(t_s=9.0, kind="gap.close", subject="taipei"),
                ]
            )
            assert added == 2
            assert len(obs_timeline.events()) == 3
            assert obs_timeline.snapshot()["counts_by_kind"]["party.join"] == 1
        finally:
            obs_timeline.reset()

    def test_thread_safety_no_lost_counts(self):
        timeline = Timeline(capacity=64)

        def hammer():
            for index in range(200):
                timeline.emit(obs_timeline.HANDOVER, float(index), "t")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timeline.total_emitted == 800
        assert timeline.dropped == 800 - 64
        assert len(timeline) == 64
