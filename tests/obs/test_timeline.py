"""Tests for the ring-buffered simulation event timeline."""

import json
import threading

import pytest

from repro.obs import timeline as obs_timeline
from repro.obs.timeline import Timeline, TimelineEvent


class TestEmit:
    def test_emit_and_query(self):
        timeline = Timeline(capacity=16)
        event = timeline.emit(
            obs_timeline.HANDOVER, 120.0, "terminal-1", from_sat="a", to_sat="b"
        )
        assert event.kind == "handover"
        assert event.attrs == {"from_sat": "a", "to_sat": "b"}
        assert timeline.events() == [event]

    def test_unknown_kind_rejected(self):
        timeline = Timeline(capacity=4)
        with pytest.raises(ValueError, match="unknown timeline event kind"):
            timeline.emit("contact.begun", 0.0, "sat-1")

    def test_negative_duration_rejected(self):
        timeline = Timeline(capacity=4)
        with pytest.raises(ValueError, match="non-negative"):
            timeline.emit(obs_timeline.ALLOC_GRANT, 0.0, "sat-1", duration_s=-1.0)

    def test_windowed_event_stop(self):
        timeline = Timeline(capacity=4)
        event = timeline.emit(
            obs_timeline.ALLOC_GRANT, 100.0, "sat-1", duration_s=60.0
        )
        assert event.stop_s == pytest.approx(160.0)

    def test_emit_event_validates(self):
        timeline = Timeline(capacity=4)
        with pytest.raises(ValueError, match="unknown"):
            timeline.emit_event(
                TimelineEvent(t_s=0.0, kind="nope", subject="x")
            )


class TestRing:
    def test_overwrites_oldest_and_counts_drops(self):
        timeline = Timeline(capacity=3)
        for index in range(5):
            timeline.emit(obs_timeline.HANDOVER, float(index), f"t-{index}")
        assert len(timeline) == 3
        assert timeline.dropped == 2
        assert timeline.total_emitted == 5
        # The survivors are the three newest, oldest first.
        assert [event.t_s for event in timeline.events()] == [2.0, 3.0, 4.0]

    def test_counts_by_kind_survive_cap(self):
        timeline = Timeline(capacity=2)
        for index in range(4):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.emit(obs_timeline.GAP_OPEN, 9.0, "site")
        assert timeline.counts_by_kind() == {"gap.open": 1, "handover": 4}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Timeline(capacity=0)

    def test_reset(self):
        timeline = Timeline(capacity=2)
        for index in range(4):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.reset()
        assert len(timeline) == 0
        assert timeline.dropped == 0
        assert timeline.events() == []
        assert timeline.counts_by_kind() == {}


class TestQueries:
    def _populated(self) -> Timeline:
        timeline = Timeline(capacity=16)
        timeline.emit(obs_timeline.CONTACT_BEGIN, 0.0, "sat-1", party="tw")
        timeline.emit(obs_timeline.CONTACT_BEGIN, 10.0, "sat-2", party="jp")
        timeline.emit(obs_timeline.CONTACT_END, 20.0, "sat-1", party="tw")
        return timeline

    def test_filter_by_kind(self):
        events = self._populated().events(kind=obs_timeline.CONTACT_BEGIN)
        assert [event.subject for event in events] == ["sat-1", "sat-2"]

    def test_filter_by_subject(self):
        events = self._populated().events(subject="sat-1")
        assert len(events) == 2

    def test_filter_by_party(self):
        events = self._populated().events(party="jp")
        assert [event.subject for event in events] == ["sat-2"]

    def test_snapshot_is_json_ready(self):
        snapshot = self._populated().snapshot()
        json.dumps(snapshot)
        assert snapshot["total_emitted"] == 3
        assert snapshot["dropped"] == 0
        assert snapshot["counts_by_kind"]["contact.begin"] == 2
        assert snapshot["events"][0]["kind"] == "contact.begin"

    def test_to_dict_omits_empty_fields(self):
        record = TimelineEvent(t_s=1.0, kind="handover", subject="t").to_dict()
        assert record == {"t_s": 1.0, "kind": "handover", "subject": "t"}


class TestResize:
    def test_grow_keeps_everything(self):
        timeline = Timeline(capacity=3)
        for index in range(3):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.resize(8)
        assert timeline.capacity == 8
        assert [event.t_s for event in timeline.events()] == [0.0, 1.0, 2.0]
        assert timeline.dropped == 0
        # The grown ring accepts new events past the old cap.
        for index in range(3, 8):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        assert len(timeline) == 8
        assert timeline.dropped == 0

    def test_shrink_keeps_newest_counts_discards(self):
        timeline = Timeline(capacity=8)
        for index in range(6):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.resize(2)
        assert timeline.capacity == 2
        assert [event.t_s for event in timeline.events()] == [4.0, 5.0]
        assert timeline.dropped == 4
        assert timeline.total_emitted == 6  # aggregates untouched

    def test_shrink_of_wrapped_ring(self):
        timeline = Timeline(capacity=3)
        for index in range(5):  # ring wrapped, oldest = 2.0
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.resize(2)
        assert [event.t_s for event in timeline.events()] == [3.0, 4.0]
        assert timeline.dropped == 2 + 1  # ring overwrites + resize discard

    def test_resize_to_same_capacity_is_noop(self):
        timeline = Timeline(capacity=4)
        timeline.emit(obs_timeline.HANDOVER, 0.0, "t")
        timeline.resize(4)
        assert len(timeline) == 1
        assert timeline.dropped == 0

    def test_resized_ring_wraps_correctly(self):
        timeline = Timeline(capacity=8)
        for index in range(4):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        timeline.resize(3)
        for index in range(4, 6):
            timeline.emit(obs_timeline.HANDOVER, float(index), "t")
        assert [event.t_s for event in timeline.events()] == [3.0, 4.0, 5.0]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Timeline(capacity=4).resize(0)

    def test_module_level_resize(self):
        obs_timeline.reset()
        original = obs_timeline.TIMELINE.capacity
        try:
            obs_timeline.resize(5)
            assert obs_timeline.TIMELINE.capacity == 5
        finally:
            obs_timeline.resize(original)
            obs_timeline.reset()


class TestConfiguredCapacity:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(obs_timeline.CAPACITY_ENV, raising=False)
        assert obs_timeline.configured_capacity() == obs_timeline.DEFAULT_CAPACITY

    def test_blank_value_means_default(self, monkeypatch):
        monkeypatch.setenv(obs_timeline.CAPACITY_ENV, "  ")
        assert obs_timeline.configured_capacity() == obs_timeline.DEFAULT_CAPACITY

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(obs_timeline.CAPACITY_ENV, "1024")
        assert obs_timeline.configured_capacity() == 1024

    @pytest.mark.parametrize("raw", ["zero", "1.5", "0", "-3"])
    def test_bad_values_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(obs_timeline.CAPACITY_ENV, raw)
        with pytest.raises(ValueError, match="positive integer"):
            obs_timeline.configured_capacity()

    def test_initial_capacity_survives_bad_env(self, monkeypatch):
        """Import-time sizing warns and falls back instead of crashing."""
        monkeypatch.setenv(obs_timeline.CAPACITY_ENV, "garbage")
        with pytest.warns(UserWarning, match="positive integer"):
            assert obs_timeline._initial_capacity() == obs_timeline.DEFAULT_CAPACITY


class TestGlobalHelpers:
    def test_module_emit_and_extend(self):
        obs_timeline.reset()
        try:
            obs_timeline.emit(obs_timeline.PARTY_JOIN, 0.0, "tw", party="tw")
            added = obs_timeline.extend(
                [
                    TimelineEvent(t_s=5.0, kind="gap.open", subject="taipei"),
                    TimelineEvent(t_s=9.0, kind="gap.close", subject="taipei"),
                ]
            )
            assert added == 2
            assert len(obs_timeline.events()) == 3
            assert obs_timeline.snapshot()["counts_by_kind"]["party.join"] == 1
        finally:
            obs_timeline.reset()

    def test_thread_safety_no_lost_counts(self):
        timeline = Timeline(capacity=64)

        def hammer():
            for index in range(200):
                timeline.emit(obs_timeline.HANDOVER, float(index), "t")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timeline.total_emitted == 800
        assert timeline.dropped == 800 - 64
        assert len(timeline) == 64
