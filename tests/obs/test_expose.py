"""Tests for repro.obs.expose: OpenMetrics rendering and line validation."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.expose import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
    write_openmetrics,
)

SNAPSHOT = {
    "counters": {"sim.kernels.slabs_streamed": 12.0, "runner.runs": 3.0},
    "gauges": {"runner.workers": 4.0, "sim.kernels.cull_ratio": 0.625},
    "histograms": {
        "trace.wall": {
            "buckets": [0.1, 1.0],
            "counts": [2, 1, 1],  # last bucket is the +inf overflow
            "sum": 3.5,
            "count": 4,
        }
    },
}


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("sim.kernels.slab_bytes") == "sim_kernels_slab_bytes"

    def test_illegal_characters_sanitized(self):
        assert metric_name("a-b c%d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert metric_name("2fast") == "_2fast"


class TestRender:
    def test_counter_gets_total_suffix(self):
        text = render_openmetrics(SNAPSHOT)
        assert "# TYPE sim_kernels_slabs_streamed counter" in text
        assert "sim_kernels_slabs_streamed_total 12" in text

    def test_gauge_is_bare_sample(self):
        text = render_openmetrics(SNAPSHOT)
        assert "# TYPE runner_workers gauge" in text
        assert "\nrunner_workers 4\n" in text
        assert "sim_kernels_cull_ratio 0.625" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(SNAPSHOT)
        assert 'trace_wall_bucket{le="0.1"} 2' in text
        assert 'trace_wall_bucket{le="1"} 3' in text
        assert 'trace_wall_bucket{le="+Inf"} 4' in text
        assert "trace_wall_sum 3.5" in text
        assert "trace_wall_count 4" in text

    def test_document_ends_with_eof(self):
        assert render_openmetrics(SNAPSHOT).endswith("# EOF\n")

    def test_default_snapshot_is_live_registry(self):
        obs_metrics.counter("expose.test.counter").inc(5)
        text = render_openmetrics()
        assert "expose_test_counter_total 5" in text


class TestParse:
    def test_round_trip(self):
        samples = parse_openmetrics(render_openmetrics(SNAPSHOT))
        assert samples["sim_kernels_slabs_streamed_total"] == 12.0
        assert samples["runner_workers"] == 4.0
        assert samples['trace_wall_bucket{le="+Inf"}'] == 4.0
        assert samples["trace_wall_count"] == 4.0

    def test_live_registry_round_trip(self):
        samples = parse_openmetrics(render_openmetrics())
        assert samples  # every default instrument made it through validation

    @pytest.mark.parametrize(
        "text,message",
        [
            ("# TYPE a counter\na_total 1\n", "does not end with # EOF"),
            ("# TYPE a counter\n\na_total 1\n# EOF\n", "blank line"),
            ("# EOF\nstray 1\n", "content after # EOF"),
            ("# TYPE a widget\n# EOF\n", "unknown type"),
            ("# TYPE a counter extra\n# EOF\n", "malformed TYPE"),
            ("undeclared 1\n# EOF\n", "has no TYPE"),
            ("# TYPE a gauge\na one\n# EOF\n", "non-numeric value"),
            ("# TYPE a gauge\na 1\na 2\n# EOF\n", "duplicate sample"),
            (
                "# TYPE a counter\n# TYPE a counter\n# EOF\n",
                "duplicate TYPE",
            ),
            ("# TYPE a gauge\na{le=}1 1\n# EOF\n", "malformed"),
        ],
    )
    def test_rejects_malformed_documents(self, text, message):
        with pytest.raises(ValueError, match=message):
            parse_openmetrics(text)

    def test_comments_are_tolerated(self):
        text = "# TYPE a gauge\n# HELP a something\na 1\n# EOF\n"
        assert parse_openmetrics(text) == {"a": 1.0}


class TestWrite:
    def test_writes_file_and_returns_text(self, tmp_path):
        path = tmp_path / "metrics.txt"
        text = write_openmetrics(str(path), SNAPSHOT)
        assert path.read_text() == text
        parse_openmetrics(path.read_text())
