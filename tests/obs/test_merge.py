"""Tests for the cross-process observability merge primitives.

The parallel Monte-Carlo runner ships each worker run's trace snapshot,
metrics snapshot, and timeline events back to the parent and folds them in;
these tests pin the fold semantics the runner relies on.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineEvent
from repro.obs.trace import Tracer


def _worker_tracer_with_spans():
    worker = Tracer()
    for _ in range(2):
        with worker.span("kernel"):
            time.sleep(0.001)
    return worker


class TestTracerMerge:
    def test_stats_fold_in(self):
        worker = _worker_tracer_with_spans()
        parent = Tracer()
        with parent.span("kernel"):
            time.sleep(0.001)
        own_total = parent.stats()["kernel"]["total_s"]
        merged = parent.merge_snapshot(worker.snapshot())
        assert merged == 2
        stats = parent.stats()["kernel"]
        worker_stats = worker.stats()["kernel"]
        assert stats["count"] == 3
        assert stats["total_s"] == pytest.approx(
            own_total + worker_stats["total_s"]
        )
        assert stats["min_s"] <= worker_stats["min_s"]
        assert stats["max_s"] >= worker_stats["max_s"]

    def test_new_names_appear(self):
        worker = _worker_tracer_with_spans()
        parent = Tracer()
        parent.merge_snapshot(worker.snapshot())
        assert parent.stats()["kernel"]["count"] == 2

    def test_records_shift_by_offset(self):
        worker = _worker_tracer_with_spans()
        parent = Tracer()
        offset = 123.0
        parent.merge_snapshot(worker.snapshot(), start_offset_s=offset)
        starts = [record.start_s for record in parent.records]
        worker_starts = [record.start_s for record in worker.records]
        assert starts == pytest.approx([s + offset for s in worker_starts])

    def test_record_cap_counts_drops(self):
        worker = _worker_tracer_with_spans()
        parent = Tracer(max_records=1)
        parent.merge_snapshot(worker.snapshot())
        assert len(parent.records) == 1
        assert parent.dropped_records == 1

    def test_worker_drops_carry_over(self):
        worker = _worker_tracer_with_spans()
        snapshot = worker.snapshot()
        snapshot["dropped_records"] = 7
        parent = Tracer()
        parent.merge_snapshot(snapshot)
        assert parent.dropped_records == 7

    def test_now_s_advances(self):
        tracer = Tracer()
        first = tracer.now_s()
        time.sleep(0.001)
        assert tracer.now_s() > first


class TestMetricsMerge:
    def test_counters_add(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("runs").inc(5)
        parent.counter("runs").inc(2)
        parent.merge(worker.snapshot())
        assert parent.counter("runs").value == 7

    def test_gauges_take_incoming_value(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.gauge("depth").set(3.0)
        parent.gauge("depth").set(9.0)
        parent.merge(worker.snapshot())
        assert parent.gauge("depth").value == 3.0

    def test_untouched_zero_gauges_do_not_clobber(self):
        """A reset-but-never-set worker gauge must not zero the parent's."""
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.gauge("depth")  # Registered, left at the reset default.
        parent.gauge("depth").set(9.0)
        parent.merge(worker.snapshot())
        assert parent.gauge("depth").value == 9.0

    def test_histograms_merge_bucketwise(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        for value in (0.002, 0.02, 5.0):
            worker.histogram("wall").observe(value)
        parent.histogram("wall").observe(0.002)
        parent.merge(worker.snapshot())
        merged = parent.histogram("wall")
        assert merged.count == 4
        assert merged.sum == pytest.approx(0.002 + 0.02 + 5.0 + 0.002)
        assert sum(merged.counts) == 4

    def test_zero_count_histograms_skipped(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("idle")  # Registered but never observed.
        parent.merge(worker.snapshot())
        assert parent.snapshot()["histograms"] == {}

    def test_mismatched_buckets_skipped_not_corrupted(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("wall", buckets=(1.0, 2.0)).observe(1.5)
        parent.histogram("wall", buckets=(10.0, 20.0)).observe(15.0)
        parent.merge(worker.snapshot())
        untouched = parent.histogram("wall")
        assert untouched.count == 1
        assert untouched.sum == pytest.approx(15.0)


class TestTimelineEventFromDict:
    def test_round_trip(self):
        event = TimelineEvent(
            t_s=120.0, kind="handover", subject="taipei-term",
            party="p1", duration_s=0.0, attrs={"from": "s1", "to": "s2"},
        )
        assert TimelineEvent.from_dict(event.to_dict()) == event

    def test_missing_optionals_default(self):
        event = TimelineEvent.from_dict(
            {"t_s": 1, "kind": "gap.open", "subject": "Taipei"}
        )
        assert event.party == ""
        assert event.duration_s == 0.0
        assert event.attrs == {}
        assert event.t_s == 1.0
