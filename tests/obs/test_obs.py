"""Tests for the observability layer: metrics registry, spans, run reports."""

import json
import logging

import pytest

from repro.experiments.common import ExperimentConfig
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    collect_run_report,
    write_run_report,
)
from repro.obs.trace import Tracer, profile


class TestCounters:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("x").inc(-1)

    def test_name_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(-1.0)
        assert gauge.value == 1.5


class TestHistograms:
    def test_bucket_placement(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)   # bucket 0 (<= 1)
        histogram.observe(5.0)   # bucket 1 (<= 10)
        histogram.observe(100.0)  # overflow (+inf)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(105.5)
        assert histogram.mean == pytest.approx(105.5 / 3)

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_snapshot_layout(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snapshot)  # Must be JSON-serializable as-is.

    def test_reset_zeroes_in_place(self):
        """Module-level instrument references survive a reset."""
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record.name: record for record in tracer.records}
        assert by_name["inner"].parent == "outer"
        assert by_name["inner"].depth == 1
        assert by_name["outer"].parent is None
        assert by_name["outer"].depth == 0
        # The inner span finishes first.
        assert tracer.records[0].name == "inner"

    def test_stats_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        stats = tracer.stats()["phase"]
        assert stats["count"] == 3
        assert stats["total_s"] >= stats["max_s"] >= stats["min_s"] >= 0.0

    def test_record_cap_keeps_aggregates(self):
        tracer = Tracer(max_records=2)
        for _ in range(5):
            with tracer.span("phase"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped_records == 3
        assert tracer.stats()["phase"]["count"] == 5

    def test_timed_decorator(self):
        tracer = Tracer()

        @tracer.timed("named")
        def work():
            return 42

        assert work() == 42
        assert tracer.stats()["named"]["count"] == 1

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.stats()["failing"]["count"] == 1
        assert tracer._stack() == []

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        tracer.reset()
        assert tracer.records == []
        assert tracer.stats() == {}

    def test_profile_writes_pstats(self, tmp_path):
        out = tmp_path / "run.pstats"
        with profile(str(out)):
            sum(range(1000))
        assert out.exists() and out.stat().st_size > 0

    def test_profile_disabled_on_falsy_path(self):
        with profile(None):
            pass  # Must be a no-op.


class TestLogging:
    def test_logger_hierarchy(self):
        assert obs_log.get_logger("sim.engine").name == "repro.sim.engine"
        assert obs_log.get_logger("repro.core.market").name == "repro.core.market"
        assert obs_log.get_logger().name == "repro"

    def test_resolve_level_env(self, monkeypatch):
        monkeypatch.setenv(obs_log.ENV_VAR, "DEBUG")
        assert obs_log.resolve_level() == logging.DEBUG
        assert obs_log.resolve_level("ERROR") == logging.ERROR

    def test_resolve_level_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.resolve_level("LOUD")

    def test_configure_idempotent(self):
        root = obs_log.configure_logging("INFO")
        obs_log.configure_logging("DEBUG")
        handlers = [
            handler for handler in root.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(handlers) == 1
        assert root.level == logging.DEBUG


class TestRunReport:
    def test_round_trip_schema(self, tmp_path):
        """write -> json.load preserves the pinned top-level layout."""
        config = ExperimentConfig(runs=2, step_s=600.0, seed=11)
        path = tmp_path / "run.json"
        written = write_run_report(str(path), command="fig2", config=config)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert set(loaded) == {
            "schema", "command", "config", "seed", "spans", "span_stats",
            "dropped_spans", "metrics", "meta",
        }
        assert loaded["schema"] == REPORT_SCHEMA_VERSION
        assert loaded["command"] == "fig2"
        assert loaded["seed"] == 11
        assert loaded["config"]["step_s"] == 600.0
        assert loaded["config"]["duration_s"] == ExperimentConfig().duration_s

    def test_standard_counters_always_present(self):
        """Engine/cache/market counters appear even in runs that skip them,
        so "zero" is distinguishable from "not measured"."""
        report = collect_run_report()
        counters = report["metrics"]["counters"]
        for name in (
            "sim.engine.sessions",
            "sim.engine.allocations",
            "sim.engine.handovers",
            "experiments.visibility_cache.hits",
            "experiments.visibility_cache.misses",
            "core.market.invoices",
            "sim.visibility.pairs",
        ):
            assert name in counters

    def test_spans_land_in_report(self):
        obs_trace.TRACER.reset()
        with obs_trace.span("unit.test.phase"):
            pass
        report = collect_run_report()
        assert "unit.test.phase" in report["span_stats"]
        names = [record["name"] for record in report["spans"]]
        assert "unit.test.phase" in names
        obs_trace.TRACER.reset()

    def test_dict_config_and_extra(self, tmp_path):
        path = tmp_path / "run.json"
        report = write_run_report(
            str(path), config={"seed": 5, "knob": "a"}, extra={"note": "hi"}
        )
        assert report["seed"] == 5
        assert report["extra"] == {"note": "hi"}

    def test_global_metrics_reset_preserves_module_instruments(self):
        """obs_metrics.reset() must not orphan instrumented modules."""
        from repro.experiments import common

        obs_metrics.reset()
        common.clear_caches()
        common.starlink_pool()  # miss
        common.starlink_pool()  # hit
        counters = obs_metrics.snapshot()["counters"]
        assert counters["experiments.pool_cache.misses"] == 1
        assert counters["experiments.pool_cache.hits"] == 1
        common.clear_caches()
        obs_metrics.reset()
