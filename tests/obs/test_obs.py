"""Tests for the observability layer: metrics registry, spans, run reports."""

import json
import logging

import pytest

from repro.experiments.common import ExperimentConfig
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, percentile_from_counts
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    collect_run_report,
    load_run_report,
    upgrade_report,
    validate_run_report,
    write_run_report,
)
from repro.obs.trace import SPAN_SECONDS_PREFIX, Tracer, profile, track_memory


class TestCounters:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("x").inc(-1)

    def test_name_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(-1.0)
        assert gauge.value == 1.5


class TestHistograms:
    def test_bucket_placement(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)   # bucket 0 (<= 1)
        histogram.observe(5.0)   # bucket 1 (<= 10)
        histogram.observe(100.0)  # overflow (+inf)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(105.5)
        assert histogram.mean == pytest.approx(105.5 / 3)

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("h", buckets=(2.0, 1.0))


class TestPercentiles:
    def test_interpolates_within_bucket(self):
        # 10 observations all land in the (1, 2] bucket: the median sits
        # halfway through it by linear interpolation.
        assert percentile_from_counts(
            (1.0, 2.0, 4.0), (0, 10, 0, 0), 50.0
        ) == pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        assert percentile_from_counts((4.0,), (8, 0), 50.0) == pytest.approx(2.0)

    def test_spans_buckets(self):
        # 4 in (0,1], 4 in (1,2]: p25 is mid-first-bucket, p75 mid-second.
        buckets, counts = (1.0, 2.0), (4, 4, 0)
        assert percentile_from_counts(buckets, counts, 25.0) == pytest.approx(0.5)
        assert percentile_from_counts(buckets, counts, 75.0) == pytest.approx(1.5)

    def test_overflow_clamps_to_last_bound(self):
        assert percentile_from_counts((1.0, 2.0), (0, 0, 5), 99.0) == 2.0

    def test_empty_returns_zero(self):
        assert percentile_from_counts((1.0,), (0, 0), 95.0) == 0.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError, match="\\[0, 100\\]"):
            percentile_from_counts((1.0,), (0, 0), 101.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="counts"):
            percentile_from_counts((1.0, 2.0), (1, 1), 50.0)

    def test_histogram_method_delegates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            histogram.observe(1.5)
        assert histogram.percentile(50.0) == pytest.approx(1.5)
        assert histogram.percentile(0.0) == pytest.approx(1.0)


class TestRegistry:
    def test_snapshot_layout(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snapshot)  # Must be JSON-serializable as-is.

    def test_reset_zeroes_in_place(self):
        """Module-level instrument references survive a reset."""
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record.name: record for record in tracer.records}
        assert by_name["inner"].parent == "outer"
        assert by_name["inner"].depth == 1
        assert by_name["outer"].parent is None
        assert by_name["outer"].depth == 0
        # The inner span finishes first.
        assert tracer.records[0].name == "inner"

    def test_stats_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        stats = tracer.stats()["phase"]
        assert stats["count"] == 3
        assert stats["total_s"] >= stats["max_s"] >= stats["min_s"] >= 0.0

    def test_record_cap_keeps_aggregates(self):
        tracer = Tracer(max_records=2)
        for _ in range(5):
            with tracer.span("phase"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped_records == 3
        assert tracer.stats()["phase"]["count"] == 5

    def test_timed_decorator(self):
        tracer = Tracer()

        @tracer.timed("named")
        def work():
            return 42

        assert work() == 42
        assert tracer.stats()["named"]["count"] == 1

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.stats()["failing"]["count"] == 1
        assert tracer._stack() == []

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        tracer.reset()
        assert tracer.records == []
        assert tracer.stats() == {}

    def test_profile_writes_pstats(self, tmp_path):
        out = tmp_path / "run.pstats"
        with profile(str(out)):
            sum(range(1000))
        assert out.exists() and out.stat().st_size > 0

    def test_profile_disabled_on_falsy_path(self):
        with profile(None):
            pass  # Must be a no-op.


class TestMemorySampling:
    def test_spans_record_peaks_under_track_memory(self):
        tracer = Tracer()
        with track_memory():
            with tracer.span("alloc"):
                buffer = bytearray(512 * 1024)
                del buffer
        record = tracer.records[0]
        assert record.mem_peak_kb is not None
        assert record.mem_peak_kb >= 512.0

    def test_nested_peak_propagates_to_parent(self):
        """An inner allocation spike must count toward the outer span."""
        tracer = Tracer()
        with track_memory():
            with tracer.span("outer"):
                with tracer.span("inner"):
                    buffer = bytearray(512 * 1024)
                    del buffer
        by_name = {record.name: record for record in tracer.records}
        assert by_name["outer"].mem_peak_kb >= by_name["inner"].mem_peak_kb

    def test_no_sampling_without_tracemalloc(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        assert tracer.records[0].mem_peak_kb is None
        assert tracer.memory_summary() == {"sampled_spans": 0.0, "peak_kb": None}

    def test_track_memory_falsy_is_noop(self):
        import tracemalloc

        with track_memory(False):
            assert not tracemalloc.is_tracing()

    def test_memory_summary_reports_max(self):
        tracer = Tracer()
        with track_memory():
            with tracer.span("a"):
                buffer = bytearray(256 * 1024)
                del buffer
            with tracer.span("b"):
                pass
        summary = tracer.memory_summary()
        assert summary["sampled_spans"] == 2.0
        assert summary["peak_kb"] >= 256.0


class TestDurationHistograms:
    def test_global_tracer_feeds_span_histograms(self):
        obs_trace.TRACER.reset()
        name = "unit.test.duration_histogram"
        with obs_trace.span(name):
            pass
        snapshot = obs_metrics.snapshot()["histograms"]
        assert snapshot[SPAN_SECONDS_PREFIX + name]["count"] >= 1

    def test_plain_tracer_does_not_observe(self):
        tracer = Tracer()
        with tracer.span("unit.test.unobserved"):
            pass
        histograms = obs_metrics.snapshot()["histograms"]
        assert SPAN_SECONDS_PREFIX + "unit.test.unobserved" not in histograms


class TestLogging:
    def test_logger_hierarchy(self):
        assert obs_log.get_logger("sim.engine").name == "repro.sim.engine"
        assert obs_log.get_logger("repro.core.market").name == "repro.core.market"
        assert obs_log.get_logger().name == "repro"

    def test_resolve_level_env(self, monkeypatch):
        monkeypatch.setenv(obs_log.ENV_VAR, "DEBUG")
        assert obs_log.resolve_level() == logging.DEBUG
        assert obs_log.resolve_level("ERROR") == logging.ERROR

    def test_resolve_level_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.resolve_level("LOUD")

    def test_configure_idempotent(self):
        root = obs_log.configure_logging("INFO")
        obs_log.configure_logging("DEBUG")
        handlers = [
            handler for handler in root.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(handlers) == 1
        assert root.level == logging.DEBUG


class TestRunReport:
    def test_round_trip_schema(self, tmp_path):
        """write -> json.load preserves the pinned top-level layout."""
        config = ExperimentConfig(runs=2, step_s=600.0, seed=11)
        path = tmp_path / "run.json"
        written = write_run_report(str(path), command="fig2", config=config)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert set(loaded) == {
            "schema", "command", "config", "seed", "spans", "span_stats",
            "dropped_spans", "timeline", "memory", "metrics", "bus", "meta",
        }
        assert loaded["schema"] == REPORT_SCHEMA_VERSION
        assert loaded["command"] == "fig2"
        assert loaded["seed"] == 11
        assert loaded["config"]["step_s"] == 600.0
        assert loaded["config"]["duration_s"] == ExperimentConfig().duration_s

    def test_standard_counters_always_present(self):
        """Engine/cache/market counters appear even in runs that skip them,
        so "zero" is distinguishable from "not measured"."""
        report = collect_run_report()
        counters = report["metrics"]["counters"]
        for name in (
            "sim.engine.sessions",
            "sim.engine.allocations",
            "sim.engine.handovers",
            "experiments.visibility_cache.hits",
            "experiments.visibility_cache.misses",
            "core.market.invoices",
            "sim.visibility.pairs",
        ):
            assert name in counters

    def test_spans_land_in_report(self):
        obs_trace.TRACER.reset()
        with obs_trace.span("unit.test.phase"):
            pass
        report = collect_run_report()
        assert "unit.test.phase" in report["span_stats"]
        names = [record["name"] for record in report["spans"]]
        assert "unit.test.phase" in names
        obs_trace.TRACER.reset()

    def test_dict_config_and_extra(self, tmp_path):
        path = tmp_path / "run.json"
        report = write_run_report(
            str(path), config={"seed": 5, "knob": "a"}, extra={"note": "hi"}
        )
        assert report["seed"] == 5
        assert report["extra"] == {"note": "hi"}

    def test_timeline_and_memory_sections_present(self):
        obs_timeline.reset()
        obs_timeline.emit(obs_timeline.HANDOVER, 60.0, "terminal-1")
        report = collect_run_report()
        assert report["timeline"]["events"][-1]["kind"] == "handover"
        assert report["timeline"]["dropped"] == 0
        assert report["memory"]["tracemalloc"] is False
        obs_timeline.reset()

    def test_drop_warning_logged(self, caplog):
        obs_timeline.reset()
        small = obs_timeline.Timeline(capacity=2)
        for index in range(5):
            small.emit(obs_timeline.HANDOVER, float(index), "t")
        original = obs_timeline.TIMELINE
        obs_timeline.TIMELINE = small
        # configure_logging() stops "repro" records from propagating to the
        # root logger, which is where caplog listens.
        repro_logger = logging.getLogger("repro")
        original_propagate = repro_logger.propagate
        repro_logger.propagate = True
        try:
            with caplog.at_level(logging.WARNING, logger="repro.obs.report"):
                report = collect_run_report()
        finally:
            obs_timeline.TIMELINE = original
            repro_logger.propagate = original_propagate
        assert report["timeline"]["dropped"] == 3
        assert any("dropped" in message for message in caplog.messages)

    def test_validate_current_schema(self):
        validate_run_report(collect_run_report())

    def test_validate_rejects_missing_keys(self):
        report = collect_run_report()
        report.pop("timeline")
        with pytest.raises(ValueError, match="missing keys"):
            validate_run_report(report)

    def test_schema1_upgrade(self, tmp_path):
        legacy = {
            "schema": 1,
            "command": "fig2",
            "config": {"seed": 3},
            "seed": 3,
            "spans": [],
            "span_stats": {},
            "dropped_spans": 0,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "meta": {},
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        loaded = load_run_report(str(path))
        assert loaded["schema"] == REPORT_SCHEMA_VERSION
        assert loaded["schema_original"] == 1
        assert loaded["timeline"]["events"] == []
        assert loaded["memory"]["tracemalloc"] is False
        validate_run_report(loaded)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported run-report schema"):
            upgrade_report({"schema": 99})

    def test_global_metrics_reset_preserves_module_instruments(self):
        """obs_metrics.reset() must not orphan instrumented modules."""
        from repro.experiments import common

        obs_metrics.reset()
        common.clear_caches()
        common.starlink_pool()  # miss
        common.starlink_pool()  # hit
        counters = obs_metrics.snapshot()["counters"]
        assert counters["experiments.pool_cache.misses"] == 1
        assert counters["experiments.pool_cache.hits"] == 1
        common.clear_caches()
        obs_metrics.reset()
