"""Unit tests for repro.obs.bus: frames, publishers, recorder, status, bus."""

import io
import multiprocessing
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.bus import (
    DEFAULT_HEARTBEAT_S,
    FRAME_KINDS,
    HEARTBEAT,
    MAIN_WORKER,
    RUN_FINISHED,
    RUN_STARTED,
    SCENARIO_FINISHED,
    SCENARIO_STARTED,
    WORKER_FAILED,
    WORKER_ONLINE,
    BusRecorder,
    Frame,
    LiveStatus,
    TelemetryBus,
    WorkerPublisher,
    bus_summary,
    default_bus,
    empty_bus_summary,
)


class _ListChannel:
    """In-process stand-in for BusChannel (no queue needed)."""

    def __init__(self):
        self.frames = []

    def put(self, frame):
        self.frames.append(frame)


class TestFrame:
    def test_to_dict_round_trips_payload(self):
        frame = Frame(
            kind=RUN_FINISHED, worker="worker-1", seq=3, wall_unix=12.5,
            payload={"point_index": 0, "run_index": 2},
        )
        record = frame.to_dict()
        assert record["kind"] == RUN_FINISHED
        assert record["worker"] == "worker-1"
        assert record["seq"] == 3
        assert record["payload"] == {"point_index": 0, "run_index": 2}
        # The payload is copied, not aliased.
        record["payload"]["point_index"] = 9
        assert frame.payload["point_index"] == 0

    def test_kind_vocabulary_is_closed(self):
        assert FRAME_KINDS == {
            SCENARIO_STARTED, SCENARIO_FINISHED, RUN_STARTED, RUN_FINISHED,
            WORKER_ONLINE, WORKER_FAILED, HEARTBEAT,
        }


class TestWorkerPublisher:
    def test_publishes_sequenced_frames(self):
        channel = _ListChannel()
        publisher = WorkerPublisher(channel, "worker-42")
        publisher.publish(WORKER_ONLINE, pid=42)
        publisher.publish(RUN_STARTED, point_index=0, run_index=0)
        assert [f.seq for f in channel.frames] == [0, 1]
        assert all(f.worker == "worker-42" for f in channel.frames)
        assert channel.frames[0].payload == {"pid": 42}

    def test_rejects_unknown_kind(self):
        publisher = WorkerPublisher(_ListChannel(), "worker-1")
        with pytest.raises(ValueError, match="unknown frame kind"):
            publisher.publish("made.up")

    def test_heartbeat_thread_publishes_status(self):
        channel = _ListChannel()
        publisher = WorkerPublisher(channel, "worker-1")
        thread = publisher.start_heartbeats(0.02, lambda: {"runs_done": 7})
        assert thread.daemon
        deadline = time.time() + 2.0
        while not channel.frames and time.time() < deadline:
            time.sleep(0.01)
        assert channel.frames
        beat = channel.frames[0]
        assert beat.kind == HEARTBEAT
        assert beat.payload == {"runs_done": 7}


class TestBusRecorder:
    def _frame(self, kind, **payload):
        return Frame(kind=kind, worker="worker-1", seq=0, wall_unix=0.0,
                     payload=payload)

    def test_counts_and_kinds(self):
        recorder = BusRecorder()
        recorder(self._frame(RUN_STARTED))
        recorder(self._frame(RUN_FINISHED))
        recorder(self._frame(RUN_FINISHED))
        assert recorder.kinds() == [RUN_STARTED, RUN_FINISHED, RUN_FINISHED]
        assert recorder.count(RUN_FINISHED) == 2

    def test_transcript_strips_heavy_payloads(self):
        recorder = BusRecorder()
        recorder(self._frame(
            RUN_FINISHED, point_index=1, run_index=2, wall_s=0.5,
            sample=[1.0], trace={"records": []}, metrics={}, events=[],
        ))
        [record] = recorder.transcript()
        assert record["payload"] == {
            "point_index": 1, "run_index": 2, "wall_s": 0.5,
        }

    def test_keep_payloads_false_drops_everything(self):
        recorder = BusRecorder(keep_payloads=False)
        recorder(self._frame(RUN_FINISHED, sample=[1.0]))
        assert recorder.frames[0].payload == {}


class TestLiveStatus:
    def _frame(self, kind, worker="worker-1", wall_unix=0.0, **payload):
        return Frame(kind=kind, worker=worker, seq=0, wall_unix=wall_unix,
                     payload=payload)

    def _started(self, tasks=10, workers=4, wall_unix=0.0):
        return self._frame(
            SCENARIO_STARTED, worker=MAIN_WORKER, wall_unix=wall_unix,
            scenario="fig2", tasks=tasks, workers=workers,
        )

    def test_progress_and_eta(self):
        status = LiveStatus(stream=io.StringIO(), interval_s=0.0)
        status(self._started(tasks=10, wall_unix=100.0))
        assert status.eta_s(now_unix=105.0) is None
        for _ in range(5):
            status(self._frame(RUN_FINISHED))
        # 5 done in 5 s -> 5 remaining at 1/s.
        assert status.eta_s(now_unix=105.0) == pytest.approx(5.0)
        line = status.status_line(now_unix=105.0)
        assert "fig2: 5/10 (50%)" in line
        assert "eta 5s" in line
        assert "4 workers" in line

    def test_stale_and_failed_workers_render(self):
        status = LiveStatus(
            stream=io.StringIO(), interval_s=0.0, stall_timeout_s=1.0
        )
        status(self._started(workers=2))
        status(self._frame(HEARTBEAT, worker="worker-1", wall_unix=0.5))
        status(self._frame(HEARTBEAT, worker="worker-2", wall_unix=9.0))
        assert status.stale_workers(now_unix=10.0) == ["worker-1"]
        line = status.status_line(now_unix=10.0)
        assert "1 stalled (worker-1)" in line
        status(self._frame(WORKER_FAILED, worker="worker-1", wall_unix=10.0))
        assert status.stale_workers(now_unix=10.0) == []
        assert "1 failed" in status.status_line(now_unix=10.0)

    def test_render_throttled_by_interval(self):
        stream = io.StringIO()
        status = LiveStatus(stream=stream, interval_s=3600.0)
        status(self._started())  # forced
        for _ in range(50):
            status(self._frame(RUN_FINISHED))  # all throttled
        assert len(stream.getvalue().splitlines()) == 1


class TestTelemetryBus:
    def test_publish_dispatches_and_accounts(self):
        bus = TelemetryBus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        bus.publish(SCENARIO_STARTED, scenario="fig2", tasks=4, workers=1)
        bus.publish(RUN_FINISHED, worker="worker-9", point_index=0, run_index=0)
        assert recorder.count(SCENARIO_STARTED) == 1
        summary = bus.summary()
        assert summary["frames_total"] == 2
        assert summary["frames_by_kind"] == {
            RUN_FINISHED: 1, SCENARIO_STARTED: 1,
        }
        assert summary["scenarios"] == ["fig2"]
        assert "worker-9" in summary["workers"]
        assert summary["workers"]["worker-9"]["frames"] == 1

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown frame kind"):
            TelemetryBus().publish("nope")

    def test_validates_heartbeat_configuration(self):
        with pytest.raises(ValueError, match="heartbeat_s"):
            TelemetryBus(heartbeat_s=0.0)
        with pytest.raises(ValueError, match="must exceed"):
            TelemetryBus(heartbeat_s=1.0, stall_timeout_s=0.5)

    def test_active_tracks_live_and_subscribers(self):
        bus = TelemetryBus()
        assert not bus.active
        recorder = BusRecorder()
        bus.subscribe(recorder)
        assert bus.active
        bus.unsubscribe(recorder)
        assert not bus.active
        bus.enable_live(stream=io.StringIO())
        assert bus.active
        bus.disable_live()
        assert not bus.active

    def test_live_flag_is_sticky_in_summary(self):
        """The CLI disables live before writing the report; the report must
        still say the run was live."""
        bus = TelemetryBus()
        bus.enable_live(stream=io.StringIO())
        bus.disable_live()
        assert bus.summary()["live"] is True
        bus.reset()
        assert bus.summary()["live"] is False

    def test_failing_subscriber_is_dropped_not_fatal(self):
        bus = TelemetryBus()
        dropped = obs_metrics.counter("bus.frames_dropped")
        before = dropped.value

        def bad(frame):
            raise RuntimeError("boom")

        recorder = BusRecorder()
        bus.subscribe(bad)
        bus.subscribe(recorder)
        bus.publish(HEARTBEAT)
        bus.publish(HEARTBEAT)
        assert recorder.count(HEARTBEAT) == 2
        assert dropped.value - before == 1  # dropped once, then gone

    def test_worker_failure_accounting(self):
        bus = TelemetryBus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        bus.record_worker_failure(
            "worker-7", "no heartbeat for 2.0s", lost_tasks=((0, 1), (1, 0))
        )
        assert recorder.count(WORKER_FAILED) == 1
        [failure] = bus.summary()["failed_workers"]
        assert failure == {
            "worker": "worker-7",
            "reason": "no heartbeat for 2.0s",
            "lost_tasks": [[0, 1], [1, 0]],
        }

    def test_heartbeat_age_and_stale_workers(self):
        bus = TelemetryBus(heartbeat_s=0.1, stall_timeout_s=1.0)
        assert bus.heartbeat_age_s("worker-1") == float("inf")
        bus.dispatch(Frame(
            kind=HEARTBEAT, worker="worker-1", seq=0, wall_unix=100.0
        ))
        bus.dispatch(Frame(
            kind=HEARTBEAT, worker="worker-2", seq=0, wall_unix=104.5
        ))
        assert bus.heartbeat_age_s("worker-1", now_unix=105.0) == pytest.approx(5.0)
        assert bus.stale_workers(now_unix=105.0) == ["worker-1"]
        bus.record_worker_failure("worker-1", "stalled")
        assert bus.stale_workers(now_unix=105.0) == []

    def test_channel_round_trip(self):
        bus = TelemetryBus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        channel = bus.open_channel(multiprocessing.get_context())
        publisher = WorkerPublisher(channel, "worker-1")
        publisher.publish(RUN_FINISHED, point_index=0, run_index=0)
        deadline = time.time() + 5.0
        while recorder.count(RUN_FINISHED) == 0 and time.time() < deadline:
            bus.drain(channel, timeout_s=0.1)
        assert recorder.count(RUN_FINISHED) == 1
        assert recorder.frames[0].worker == "worker-1"

    def test_reset_clears_accounting_keeps_subscribers(self):
        bus = TelemetryBus()
        recorder = BusRecorder()
        bus.subscribe(recorder)
        bus.publish(SCENARIO_STARTED, scenario="fig2")
        bus.reset()
        summary = bus.summary()
        assert summary["frames_total"] == 0
        assert summary["scenarios"] == []
        bus.publish(HEARTBEAT)
        assert recorder.count(HEARTBEAT) == 1


class TestModuleHelpers:
    def test_default_bus_is_shared(self):
        assert default_bus() is default_bus()

    def test_bus_summary_reflects_default_bus(self):
        bus = default_bus()
        bus.reset()
        try:
            bus.publish(HEARTBEAT)
            assert bus_summary()["frames_total"] == 1
        finally:
            bus.reset()

    def test_empty_bus_summary_shape_matches_live_summary(self):
        assert set(empty_bus_summary()) == set(TelemetryBus().summary())

    def test_default_heartbeat_sane(self):
        assert 0 < DEFAULT_HEARTBEAT_S < 5.0
