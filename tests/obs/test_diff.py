"""Tests for repro.obs.diff: run-report comparison tooling."""

import json

import pytest

from repro.obs.diff import (
    DiffRow,
    derived_ratios,
    diff_reports,
    render_diff,
    run_obs_diff,
)


def make_report(
    schema=3,
    command="fig2",
    seed=7,
    span_totals=None,
    counters=None,
    timeline=None,
    bus=None,
):
    report = {
        "schema": schema,
        "command": command,
        "config": {"seed": seed},
        "seed": seed,
        "spans": [],
        "span_stats": {
            name: {"count": 1, "total_s": total, "min_s": total, "max_s": total}
            for name, total in (span_totals or {}).items()
        },
        "dropped_spans": 0,
        "metrics": {
            "counters": dict(counters or {}),
            "gauges": {},
            "histograms": {},
        },
        "meta": {},
    }
    if schema >= 2:
        report["timeline"] = {
            "events": [], "capacity": 65536, "dropped": 0,
            "total_emitted": 0, "counts_by_kind": {},
        }
        report["timeline"].update(timeline or {})
        report["memory"] = {
            "tracemalloc": False, "sampled_spans": 0, "span_peak_kb": None,
            "current_kb": None, "peak_kb": None,
        }
    if schema >= 3:
        report["bus"] = {
            "live": False, "frames_total": 0, "frames_by_kind": {},
            "workers": {}, "failed_workers": [], "scenarios": [],
        }
        report["bus"].update(bus or {})
    return report


class TestDiffRow:
    def test_delta_and_ratio(self):
        row = DiffRow("x", 2.0, 6.0)
        assert row.delta == 4.0
        assert row.ratio == 3.0
        assert row.rel_change == 2.0

    def test_missing_side_yields_none(self):
        assert DiffRow("x", None, 1.0).delta is None
        assert DiffRow("x", 1.0, None).ratio is None
        assert DiffRow("x", 0.0, 1.0).ratio is None  # no divide-by-zero


class TestDerivedRatios:
    def test_cull_ratio_and_hit_rates(self):
        report = make_report(counters={
            "sim.visibility.culled_pairs": 75.0,
            "sim.kernels.pairs_evaluated": 25.0,
            "experiments.visibility_cache.hits": 9.0,
            "experiments.visibility_cache.misses": 1.0,
            "sim.kernels.threshold_cache.hits": 0.0,
            "sim.kernels.threshold_cache.misses": 4.0,
        })
        ratios = derived_ratios(report)
        assert ratios["cull_ratio"] == pytest.approx(0.75)
        assert ratios["visibility_cache_hit_rate"] == pytest.approx(0.9)
        assert ratios["threshold_cache_hit_rate"] == 0.0
        # Counters absent entirely -> None, not zero.
        assert ratios["pool_cache_hit_rate"] is None

    def test_zero_activity_is_none(self):
        report = make_report(counters={
            "sim.visibility.culled_pairs": 0.0,
            "sim.kernels.pairs_evaluated": 0.0,
            "experiments.geometry_cache.hits": 0.0,
            "experiments.geometry_cache.misses": 0.0,
        })
        ratios = derived_ratios(report)
        assert ratios["cull_ratio"] is None
        assert ratios["geometry_cache_hit_rate"] is None


class TestDiffReports:
    def test_sections_and_rows(self):
        a = make_report(
            span_totals={"analysis.fig2": 4.0},
            counters={"runner.runs": 8.0, "only.in.a": 1.0},
            timeline={"total_emitted": 10},
        )
        b = make_report(
            span_totals={"analysis.fig2": 2.0},
            counters={"runner.runs": 8.0, "only.in.b": 2.0},
            bus={"frames_total": 5, "failed_workers": [{"worker": "w"}]},
        )
        diff = diff_reports(a, b)
        assert diff["commands"] == ("fig2", "fig2")
        assert diff["seeds"] == (7, 7)
        [span_row] = [r for r in diff["spans"] if r.name == "analysis.fig2"]
        assert span_row.ratio == pytest.approx(0.5)
        by_name = {row.name: row for row in diff["counters"]}
        assert by_name["only.in.a"].b is None
        assert by_name["only.in.b"].a is None
        assert by_name["runner.runs"].delta == 0.0
        timeline = {row.name: row for row in diff["timeline"]}
        assert timeline["timeline.total_emitted"].a == 10.0
        bus = {row.name: row for row in diff["bus"]}
        assert bus["bus.frames_total"].b == 5.0
        assert bus["bus.failed_workers"].delta == 1.0

    def test_upgrades_older_schemas_first(self):
        """A schema-1 baseline diffs cleanly against a schema-3 run."""
        a = make_report(schema=1)
        b = make_report(schema=3, bus={"frames_total": 3})
        diff = diff_reports(a, b)
        bus = {row.name: row for row in diff["bus"]}
        assert bus["bus.frames_total"].a == 0.0
        assert bus["bus.frames_total"].b == 3.0


class TestRender:
    def test_renders_moved_rows_elides_stable_ones(self):
        a = make_report(
            span_totals={"analysis.fig2": 4.0},
            counters={"stable.counter": 100.0, "moved.counter": 10.0},
        )
        b = make_report(
            span_totals={"analysis.fig2": 2.0},
            counters={"stable.counter": 100.0, "moved.counter": 30.0},
        )
        text = render_diff(diff_reports(a, b))
        assert "analysis.fig2" in text
        assert "moved.counter" in text
        assert "x3.00" in text
        assert "stable.counter" not in text
        assert "1 more within 1%" in text

    def test_seed_mismatch_called_out(self):
        a = make_report(seed=7)
        b = make_report(seed=8)
        text = render_diff(diff_reports(a, b))
        assert "seeds differ: 7 vs 8" in text


class TestCliEntry:
    def test_run_obs_diff_loads_and_prints(self, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text(json.dumps(make_report(
            counters={"runner.runs": 4.0})))
        path_b.write_text(json.dumps(make_report(
            schema=2, counters={"runner.runs": 8.0})))
        printed = []
        code = run_obs_diff(str(path_a), str(path_b), print_fn=printed.append)
        assert code == 0
        assert printed
        assert "runner.runs" in printed[0]
