"""Tests for propagation latency."""

import numpy as np
import pytest

from repro.constants import EARTH_MEAN_RADIUS_M, SPEED_OF_LIGHT
from repro.links.latency import (
    GEO_ALTITUDE_KM,
    GEO_RADIUS_M,
    bent_pipe_latency,
    geo_vs_leo_round_trip_ms,
    latency_bounds_ms,
    latency_distribution_ms,
)


class TestBentPipeLatency:
    def test_zenith_hops(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        latency = bent_pipe_latency(radius, 90.0, 90.0)
        expected_hop = 550_000.0 / SPEED_OF_LIGHT
        assert latency.uplink_s == pytest.approx(expected_hop, rel=1e-6)
        assert latency.one_way_s == pytest.approx(2 * expected_hop, rel=1e-6)
        assert latency.round_trip_s == pytest.approx(4 * expected_hop, rel=1e-6)

    def test_low_elevation_longer(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        zenith = bent_pipe_latency(radius, 90.0, 90.0)
        grazing = bent_pipe_latency(radius, 25.0, 25.0)
        assert grazing.one_way_s > zenith.one_way_s

    def test_processing_added(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        without = bent_pipe_latency(radius, 90.0, 90.0)
        with_proc = bent_pipe_latency(radius, 90.0, 90.0, processing_s=0.005)
        assert with_proc.one_way_s - without.one_way_s == pytest.approx(0.005)

    def test_ms_properties(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        latency = bent_pipe_latency(radius, 90.0, 90.0)
        assert latency.one_way_ms == pytest.approx(1000 * latency.one_way_s)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="radius"):
            bent_pipe_latency(EARTH_MEAN_RADIUS_M, 90.0, 90.0)
        with pytest.raises(ValueError, match="processing"):
            bent_pipe_latency(
                EARTH_MEAN_RADIUS_M + 1e5, 90.0, 90.0, processing_s=-1.0
            )


class TestPaperComparison:
    def test_geo_round_trip_is_second_level(self):
        """§2: GEO latency is 'second-level'."""
        _, geo_ms = geo_vs_leo_round_trip_ms()
        assert geo_ms > 480.0  # ~0.5 s bent-pipe round trip.

    def test_leo_round_trip_tens_of_ms(self):
        leo_ms, _ = geo_vs_leo_round_trip_ms(leo_altitude_km=550.0)
        assert 5.0 < leo_ms < 40.0

    def test_orders_of_magnitude_gap(self):
        """§2: 'orders of magnitude degradation in network latency'."""
        leo_ms, geo_ms = geo_vs_leo_round_trip_ms()
        assert geo_ms > 10.0 * leo_ms

    def test_geo_altitude_about_36000km(self):
        assert GEO_ALTITUDE_KM == pytest.approx(35_793.0, abs=100.0)


class TestBounds:
    def test_best_below_worst(self):
        best, worst = latency_bounds_ms(550.0)
        assert best < worst

    def test_higher_altitude_higher_latency(self):
        low_best, _ = latency_bounds_ms(550.0)
        high_best, _ = latency_bounds_ms(1200.0)
        assert high_best > low_best


class TestDistribution:
    def test_shape_and_monotonicity(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        elevations = np.array([25.0, 45.0, 90.0])
        latencies = latency_distribution_ms(radius, elevations)
        assert latencies.shape == (3,)
        assert latencies[0] > latencies[1] > latencies[2]

    def test_2d_input(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        elevations = np.full((2, 3), 45.0)
        assert latency_distribution_ms(radius, elevations).shape == (2, 3)
