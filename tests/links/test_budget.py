"""Tests for link budgets."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.links.budget import (
    KU_BAND_GATEWAY_DOWNLINK,
    KU_BAND_USER_UPLINK,
    LinkBudget,
    antenna_gain_db,
    free_space_path_loss_db,
)


class TestFreeSpacePathLoss:
    def test_known_value(self):
        # Classic check: 1 km at 2.4 GHz ~ 100.1 dB.
        assert free_space_path_loss_db(1000.0, 2.4e9) == pytest.approx(100.1, abs=0.1)

    def test_leo_ku_band_magnitude(self):
        # 1000 km at 14 GHz ~ 175.4 dB.
        assert free_space_path_loss_db(1.0e6, 14.0e9) == pytest.approx(175.4, abs=0.2)

    def test_six_db_per_distance_doubling(self):
        near = free_space_path_loss_db(1.0e5, 12.0e9)
        far = free_space_path_loss_db(2.0e5, 12.0e9)
        assert far - near == pytest.approx(6.02, abs=0.01)

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError, match="distance"):
            free_space_path_loss_db(0.0, 1e9)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            free_space_path_loss_db(1000.0, 0.0)

    @given(st.floats(1e3, 1e8), st.floats(1e9, 5e10))
    def test_monotone_in_distance_and_frequency(self, distance, frequency):
        loss = free_space_path_loss_db(distance, frequency)
        assert free_space_path_loss_db(distance * 2, frequency) > loss
        assert free_space_path_loss_db(distance, frequency * 2) > loss


class TestAntennaGain:
    def test_larger_dish_more_gain(self):
        small = antenna_gain_db(0.6, 12e9)
        large = antenna_gain_db(1.2, 12e9)
        assert large - small == pytest.approx(6.02, abs=0.01)

    def test_typical_vsats(self):
        # A 1.2 m dish at 12 GHz with 60% efficiency ~ 41.5 dBi.
        assert antenna_gain_db(1.2, 12e9) == pytest.approx(41.4, abs=0.5)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            antenna_gain_db(1.0, 1e9, efficiency=1.5)


class TestLinkBudget:
    def test_snr_decreases_with_range(self):
        budget = KU_BAND_USER_UPLINK
        assert budget.snr_db(600_000.0) > budget.snr_db(1_500_000.0)

    def test_user_uplink_closes_at_zenith(self):
        # At 550 km zenith range the representative uplink should close with
        # a healthy margin.
        assert KU_BAND_USER_UPLINK.snr_db(550_000.0) > 5.0

    def test_gateway_downlink_stronger_than_uplink(self):
        assert KU_BAND_GATEWAY_DOWNLINK.snr_db(1e6) > KU_BAND_USER_UPLINK.snr_db(1e6)

    def test_cn0_consistent_with_snr(self):
        budget = KU_BAND_USER_UPLINK
        distance = 800_000.0
        expected = budget.carrier_to_noise_density_dbhz(distance) - 10 * math.log10(
            budget.bandwidth_hz
        )
        assert budget.snr_db(distance) == pytest.approx(expected)

    def test_linear_snr_matches_db(self):
        budget = KU_BAND_USER_UPLINK
        distance = 700_000.0
        assert 10 * math.log10(budget.snr_linear(distance)) == pytest.approx(
            budget.snr_db(distance)
        )

    def test_extra_losses_reduce_snr(self):
        base = LinkBudget(30.0, 10.0, 12e9, 50e6, extra_losses_db=0.0)
        lossy = LinkBudget(30.0, 10.0, 12e9, 50e6, extra_losses_db=3.0)
        assert base.snr_db(1e6) - lossy.snr_db(1e6) == pytest.approx(3.0)

    def test_rejects_negative_losses(self):
        with pytest.raises(ValueError, match="losses"):
            LinkBudget(30.0, 10.0, 12e9, 50e6, extra_losses_db=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LinkBudget(30.0, 10.0, 12e9, 0.0)
