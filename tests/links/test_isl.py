"""Tests for inter-satellite links."""

import math

import numpy as np
import pytest

from repro.constants import EARTH_MEAN_RADIUS_M, SPEED_OF_LIGHT
from repro.links.isl import (
    IslRouter,
    contact_graph,
    isl_visibility,
    relayable_with_isl,
)

LEO_RADIUS = EARTH_MEAN_RADIUS_M + 550_000.0


def _ring_positions(count, radius=LEO_RADIUS):
    """Satellites evenly spaced around an equatorial ring."""
    angles = np.linspace(0.0, 2 * math.pi, count, endpoint=False)
    return np.stack(
        [radius * np.cos(angles), radius * np.sin(angles), np.zeros(count)],
        axis=1,
    )


class TestIslVisibility:
    def test_neighbors_linked(self):
        positions = _ring_positions(20)
        feasible = isl_visibility(positions)
        assert feasible[0, 1]
        assert feasible[0, 19]

    def test_symmetric_no_self_links(self):
        positions = _ring_positions(12)
        feasible = isl_visibility(positions)
        assert np.array_equal(feasible, feasible.T)
        assert not feasible.diagonal().any()

    def test_antipodal_blocked_by_earth(self):
        positions = _ring_positions(2)  # 180 degrees apart: LOS through Earth.
        feasible = isl_visibility(positions, max_range_m=1e9)
        assert not feasible[0, 1]

    def test_range_limit(self):
        positions = _ring_positions(8)  # Neighbors ~5300 km apart.
        near_only = isl_visibility(positions, max_range_m=1_000_000.0)
        assert not near_only.any()

    def test_grazing_altitude_tightens(self):
        # Two satellites whose LOS grazes at ~200 km altitude.
        angle = 2 * math.acos((EARTH_MEAN_RADIUS_M + 200_000.0) / LEO_RADIUS)
        positions = np.array(
            [
                [LEO_RADIUS, 0.0, 0.0],
                [
                    LEO_RADIUS * math.cos(angle),
                    LEO_RADIUS * math.sin(angle),
                    0.0,
                ],
            ]
        )
        open_at_80km = isl_visibility(
            positions, max_range_m=1e9, grazing_altitude_m=80_000.0
        )
        blocked_at_300km = isl_visibility(
            positions, max_range_m=1e9, grazing_altitude_m=300_000.0
        )
        assert open_at_80km[0, 1]
        assert not blocked_at_300km[0, 1]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(N, 3\)"):
            isl_visibility(np.zeros((3, 2)))


class TestContactGraph:
    def test_edges_and_weights(self):
        positions = _ring_positions(10)
        ids = [f"S{i}" for i in range(10)]
        graph = contact_graph(positions, ids)
        assert graph.has_edge("S0", "S1")
        expected = np.linalg.norm(positions[0] - positions[1])
        assert graph["S0"]["S1"]["distance_m"] == pytest.approx(expected)
        assert graph["S0"]["S1"]["delay_s"] == pytest.approx(
            expected / SPEED_OF_LIGHT
        )

    def test_id_count_validated(self):
        with pytest.raises(ValueError, match="ids"):
            contact_graph(_ring_positions(4), ["a", "b"])


class TestRouter:
    def test_multi_hop_route_around_earth(self):
        positions = _ring_positions(20)
        ids = [f"S{i}" for i in range(20)]
        router = IslRouter(contact_graph(positions, ids))
        path = router.route("S0", "S10")  # Antipodal: must hop around.
        assert path is not None
        assert path.hops >= 2
        assert path.sat_ids[0] == "S0"
        assert path.sat_ids[-1] == "S10"

    def test_route_delay_is_sum_of_hops(self):
        positions = _ring_positions(20)
        ids = [f"S{i}" for i in range(20)]
        graph = contact_graph(positions, ids)
        router = IslRouter(graph)
        path = router.route("S0", "S3")
        manual = sum(
            graph[a][b]["delay_s"] for a, b in zip(path.sat_ids, path.sat_ids[1:])
        )
        assert path.total_delay_s == pytest.approx(manual)

    def test_disconnected_returns_none(self):
        # Two tight clusters on opposite sides, no cross-links in range.
        cluster_a = _ring_positions(3) * 1.0
        cluster_b = -cluster_a
        positions = np.concatenate([cluster_a + [0, 0, 1e5], cluster_b])
        ids = [f"S{i}" for i in range(6)]
        graph = contact_graph(positions, ids, max_range_m=100_000.0)
        router = IslRouter(graph)
        assert router.route("S0", "S3") is None

    def test_unknown_node_raises(self):
        router = IslRouter(contact_graph(_ring_positions(3), ["a", "b", "c"]))
        with pytest.raises(KeyError):
            router.route("a", "zz")

    def test_reachable_set(self):
        positions = _ring_positions(10)
        ids = [f"S{i}" for i in range(10)]
        router = IslRouter(contact_graph(positions, ids))
        assert router.reachable_set("S0") == set(ids)

    def test_connected_components_ordering(self):
        positions = np.concatenate(
            [_ring_positions(6), _ring_positions(3) * 1.2 + [0, 0, 3e7]]
        )
        ids = [f"S{i}" for i in range(9)]
        graph = contact_graph(positions, ids, max_range_m=6_000_000.0)
        components = IslRouter(graph).connected_components()
        assert len(components[0]) >= len(components[-1])


class TestRelayableWithIsl:
    def test_direct_station_view_suffices(self):
        terminal = np.array([True, False])
        station = np.array([True, False])
        isl = np.zeros((2, 2), dtype=bool)
        result = relayable_with_isl(terminal, station, isl)
        assert list(result) == [True, False]

    def test_one_hop_forwarding(self):
        # Sat 0 sees the terminal only; sat 1 sees the station; they link.
        terminal = np.array([True, False])
        station = np.array([False, True])
        isl = np.array([[False, True], [True, False]])
        result = relayable_with_isl(terminal, station, isl)
        assert list(result) == [True, False]

    def test_no_isl_no_forwarding(self):
        terminal = np.array([True, False])
        station = np.array([False, True])
        isl = np.zeros((2, 2), dtype=bool)
        result = relayable_with_isl(terminal, station, isl)
        assert list(result) == [False, False]

    def test_multi_hop_chain(self):
        terminal = np.array([True, False, False, False])
        station = np.array([False, False, False, True])
        isl = np.zeros((4, 4), dtype=bool)
        for a, b in ((0, 1), (1, 2), (2, 3)):
            isl[a, b] = isl[b, a] = True
        assert relayable_with_isl(terminal, station, isl)[0]

    def test_hop_cap(self):
        terminal = np.array([True, False, False, False])
        station = np.array([False, False, False, True])
        isl = np.zeros((4, 4), dtype=bool)
        for a, b in ((0, 1), (1, 2), (2, 3)):
            isl[a, b] = isl[b, a] = True
        assert not relayable_with_isl(terminal, station, isl, max_hops=2)[0]
        assert relayable_with_isl(terminal, station, isl, max_hops=3)[0]

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="shape"):
            relayable_with_isl(
                np.array([True]), np.array([True, False]), np.zeros((2, 2), bool)
            )
