"""Tests for channel capacity models."""

import pytest
from hypothesis import given, strategies as st

from repro.links.channel import (
    MODCOD_TABLE,
    achievable_rate_bps,
    select_modcod,
    shannon_capacity_bps,
)


class TestShannon:
    def test_zero_snr_zero_capacity(self):
        assert shannon_capacity_bps(1e6, 0.0) == 0.0

    def test_snr_one_gives_bandwidth(self):
        # log2(1 + 1) = 1 bit/s/Hz.
        assert shannon_capacity_bps(1e6, 1.0) == pytest.approx(1e6)

    def test_known_point(self):
        # SNR 15 -> log2(16) = 4 b/s/Hz.
        assert shannon_capacity_bps(2e6, 15.0) == pytest.approx(8e6)

    def test_rejects_negative_snr(self):
        with pytest.raises(ValueError, match="SNR"):
            shannon_capacity_bps(1e6, -0.1)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            shannon_capacity_bps(0.0, 1.0)

    @given(st.floats(0.0, 1e6))
    def test_monotone_in_snr(self, snr):
        assert shannon_capacity_bps(1e6, snr + 1.0) > shannon_capacity_bps(1e6, snr)


class TestModcodTable:
    def test_sorted_by_threshold_overall_shape(self):
        efficiencies = [m.spectral_efficiency_bps_hz for m in MODCOD_TABLE]
        assert efficiencies[0] < efficiencies[-1]

    def test_all_below_shannon(self):
        """No MODCOD claims more than Shannon capacity at its threshold."""
        for modcod in MODCOD_TABLE:
            snr_linear = 10 ** (modcod.required_snr_db / 10.0)
            shannon = shannon_capacity_bps(1.0, snr_linear)
            assert modcod.spectral_efficiency_bps_hz < shannon


class TestSelectModcod:
    def test_outage_below_most_robust(self):
        assert select_modcod(-10.0) is None

    def test_high_snr_gets_top_modcod(self):
        chosen = select_modcod(25.0)
        assert chosen is not None
        assert chosen.name == "32APSK 9/10"

    def test_mid_snr(self):
        chosen = select_modcod(5.0)
        assert chosen is not None
        assert chosen.name == "QPSK 3/4"

    def test_threshold_boundary_inclusive(self):
        chosen = select_modcod(MODCOD_TABLE[0].required_snr_db)
        assert chosen is not None
        assert chosen.name == MODCOD_TABLE[0].name

    def test_picks_best_efficiency_not_last_threshold(self):
        # At 11 dB both 8PSK 8/9 (10.69 dB, 2.646) and 16APSK 3/4
        # (10.21 dB, 2.967) close; the higher-efficiency one must win.
        chosen = select_modcod(11.0)
        assert chosen is not None
        assert chosen.name == "16APSK 3/4"


class TestAchievableRate:
    def test_outage_is_zero(self):
        assert achievable_rate_bps(-20.0, 1e6) == 0.0

    def test_rate_scales_with_bandwidth(self):
        rate1 = achievable_rate_bps(10.0, 1e6)
        rate2 = achievable_rate_bps(10.0, 2e6)
        assert rate2 == pytest.approx(2 * rate1)

    def test_monotone_in_snr(self):
        rates = [achievable_rate_bps(snr, 1e6) for snr in range(-5, 20)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
