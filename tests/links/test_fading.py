"""Tests for rain attenuation and fade margins."""

import math

import numpy as np
import pytest

from repro.links.fading import (
    RainClimate,
    effective_path_km,
    fade_margin_db,
    rain_attenuation_db,
    rain_coefficients,
    specific_attenuation_db_per_km,
)


class TestCoefficients:
    def test_tabulated_point(self):
        k, alpha = rain_coefficients(12.0e9)
        assert k == pytest.approx(0.0188)
        assert alpha == pytest.approx(1.217)

    def test_interpolation_between_points(self):
        k12, _ = rain_coefficients(12.0e9)
        k15, _ = rain_coefficients(15.0e9)
        k13, _ = rain_coefficients(13.5e9)
        assert k12 < k13 < k15

    def test_clamped_at_ends(self):
        low_k, _ = rain_coefficients(1.0e9)
        table_low_k, _ = rain_coefficients(4.0e9)
        assert low_k == table_low_k

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            rain_coefficients(0.0)


class TestSpecificAttenuation:
    def test_zero_rain_zero_attenuation(self):
        assert specific_attenuation_db_per_km(0.0, 12e9) == 0.0

    def test_grows_with_rain_rate(self):
        light = specific_attenuation_db_per_km(5.0, 12e9)
        heavy = specific_attenuation_db_per_km(50.0, 12e9)
        assert heavy > light > 0.0

    def test_grows_with_frequency(self):
        ku = specific_attenuation_db_per_km(25.0, 12e9)
        ka = specific_attenuation_db_per_km(25.0, 20e9)
        assert ka > ku

    def test_ku_band_magnitude(self):
        # 25 mm/h at 12 GHz -> ~0.9 dB/km (published P.838 ballpark).
        gamma = specific_attenuation_db_per_km(25.0, 12e9)
        assert 0.5 < gamma < 2.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError, match="rain rate"):
            specific_attenuation_db_per_km(-1.0, 12e9)


class TestPathAndTotal:
    def test_zenith_path_is_rain_height(self):
        assert effective_path_km(90.0, rain_height_m=4000.0) == pytest.approx(4.0)

    def test_low_elevation_longer_path(self):
        assert effective_path_km(25.0) > effective_path_km(60.0)

    def test_floor_at_5_degrees(self):
        assert effective_path_km(1.0) == effective_path_km(5.0)

    def test_total_attenuation_combines(self):
        total = rain_attenuation_db(25.0, 12e9, 90.0, rain_height_m=4000.0)
        gamma = specific_attenuation_db_per_km(25.0, 12e9)
        assert total == pytest.approx(4.0 * gamma)


class TestClimate:
    def test_sample_fraction_rainy(self):
        climate = RainClimate(rainy_fraction=0.1)
        rng = np.random.default_rng(0)
        rates = climate.sample_rain_rates(50_000, rng)
        assert (rates > 0.0).mean() == pytest.approx(0.1, abs=0.01)

    def test_calibrated_exceedance(self):
        """The 0.01%-of-time rate should match the planning statistic."""
        climate = RainClimate(rate_exceeded_001_mm_h=42.0, rainy_fraction=0.06)
        rng = np.random.default_rng(1)
        rates = climate.sample_rain_rates(2_000_000, rng)
        measured = float(np.quantile(rates, 1.0 - 1e-4))
        assert measured == pytest.approx(42.0, rel=0.25)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RainClimate(rate_exceeded_001_mm_h=0.0)
        with pytest.raises(ValueError):
            RainClimate(rainy_fraction=0.0)

    def test_rejects_zero_count(self, rng):
        with pytest.raises(ValueError, match="count"):
            RainClimate().sample_rain_rates(0, rng)


class TestFadeMargin:
    def test_modest_target_needs_no_margin(self):
        # 90% availability: it rains less than 10% of the time.
        assert fade_margin_db(0.90, 12e9, 40.0) == 0.0

    def test_higher_availability_more_margin(self):
        m99 = fade_margin_db(0.99, 12e9, 40.0)
        m999 = fade_margin_db(0.999, 12e9, 40.0)
        m9999 = fade_margin_db(0.9999, 12e9, 40.0)
        assert 0.0 <= m99 < m999 < m9999

    def test_ka_needs_more_than_ku(self):
        ku = fade_margin_db(0.999, 12e9, 40.0)
        ka = fade_margin_db(0.999, 20e9, 40.0)
        assert ka > ku

    def test_tropical_worse_than_temperate(self):
        temperate = RainClimate(rate_exceeded_001_mm_h=42.0)
        tropical = RainClimate(rate_exceeded_001_mm_h=120.0)
        assert fade_margin_db(0.999, 12e9, 40.0, tropical) > fade_margin_db(
            0.999, 12e9, 40.0, temperate
        )

    def test_consistent_with_planning_statistic(self):
        """Margin at 99.99% equals attenuation at the R(0.01%) rate."""
        climate = RainClimate(rate_exceeded_001_mm_h=42.0)
        margin = fade_margin_db(0.9999, 12e9, 40.0, climate)
        direct = rain_attenuation_db(42.0, 12e9, 40.0)
        assert margin == pytest.approx(direct, rel=0.01)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target"):
            fade_margin_db(1.0, 12e9, 40.0)
