"""Tests for band plans and spectrum coordination."""

import pytest

from repro.links.spectrum import (
    BandPlan,
    BANDS_HZ,
    Channel,
    SpectrumConflictError,
    SpectrumCoordinator,
)


class TestChannel:
    def test_bounds(self):
        channel = Channel(0, 14.1e9, 62.5e6)
        assert channel.low_hz == pytest.approx(14.1e9 - 31.25e6)
        assert channel.high_hz == pytest.approx(14.1e9 + 31.25e6)

    def test_overlap_detection(self):
        a = Channel(0, 14.10e9, 62.5e6)
        b = Channel(1, 14.15e9, 62.5e6)
        c = Channel(2, 14.30e9, 62.5e6)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_adjacent_channels_do_not_overlap(self):
        a = Channel(0, 14.0e9, 50e6)
        b = Channel(1, 14.05e9, 50e6)
        assert not a.overlaps(b)


class TestBandPlan:
    def test_ku_uplink_channel_count(self):
        # 500 MHz of Ku uplink at 62.5 MHz channels = 8 channels.
        plan = BandPlan("Ku-uplink", 62.5e6)
        assert len(plan.channels) == 8

    def test_channels_within_band(self):
        plan = BandPlan("Ka-downlink", 100e6)
        low, high = BANDS_HZ["Ka-downlink"]
        for channel in plan.channels:
            assert channel.low_hz >= low - 1.0
            assert channel.high_hz <= high + 1.0

    def test_channels_disjoint(self):
        plan = BandPlan("Ku-uplink", 62.5e6, guard_hz=5e6)
        channels = plan.channels
        for a, b in zip(channels, channels[1:]):
            assert not a.overlaps(b)

    def test_guard_band_reduces_count(self):
        without = BandPlan("Ku-uplink", 50e6)
        with_guard = BandPlan("Ku-uplink", 50e6, guard_hz=25e6)
        assert len(with_guard.channels) < len(without.channels)

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError, match="unknown band"):
            BandPlan("S-band", 1e6)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            BandPlan("Ku-uplink", 0.0)


class TestCoordinator:
    def test_grant_and_release(self):
        coordinator = SpectrumCoordinator(BandPlan("Ku-uplink", 62.5e6))
        channel = coordinator.request("taiwan", "taipei")
        assert coordinator.granted_channels("taipei") == {channel.index: "taiwan"}
        coordinator.release("taiwan", "taipei", channel.index)
        assert coordinator.granted_channels("taipei") == {}

    def test_different_regions_independent(self):
        coordinator = SpectrumCoordinator(BandPlan("Ku-uplink", 62.5e6))
        a = coordinator.request("x", "taipei")
        b = coordinator.request("y", "seoul")
        assert a.index == b.index  # Same channel is fine across regions.

    def test_same_region_gets_distinct_channels(self):
        coordinator = SpectrumCoordinator(BandPlan("Ku-uplink", 62.5e6))
        a = coordinator.request("x", "taipei")
        b = coordinator.request("y", "taipei")
        assert a.index != b.index

    def test_exhaustion(self):
        plan = BandPlan("Ku-uplink", 250e6)  # Only 2 channels.
        coordinator = SpectrumCoordinator(plan)
        coordinator.request("a", "r")
        coordinator.request("b", "r")
        with pytest.raises(SpectrumConflictError, match="no free channels"):
            coordinator.request("c", "r")

    def test_release_wrong_party_rejected(self):
        coordinator = SpectrumCoordinator(BandPlan("Ku-uplink", 62.5e6))
        channel = coordinator.request("x", "r")
        with pytest.raises(KeyError, match="not held"):
            coordinator.release("y", "r", channel.index)

    def test_utilization(self):
        plan = BandPlan("Ku-uplink", 62.5e6)  # 8 channels.
        coordinator = SpectrumCoordinator(plan)
        assert coordinator.utilization("r") == 0.0
        coordinator.request("x", "r")
        coordinator.request("y", "r")
        assert coordinator.utilization("r") == pytest.approx(0.25)
