"""Tests for the transparent bent-pipe relay model."""

import math

import pytest

from repro.links.bentpipe import BentPipeLink, RelayMode, TransparentTransponder
from repro.links.budget import KU_BAND_GATEWAY_DOWNLINK, KU_BAND_USER_UPLINK


@pytest.fixture
def link():
    return BentPipeLink(
        uplink=KU_BAND_USER_UPLINK, downlink=KU_BAND_GATEWAY_DOWNLINK
    )


@pytest.fixture
def regen_link():
    return BentPipeLink(
        uplink=KU_BAND_USER_UPLINK,
        downlink=KU_BAND_GATEWAY_DOWNLINK,
        mode=RelayMode.REGENERATIVE,
    )


class TestSnrComposition:
    def test_transparent_below_both_hops(self, link):
        up = link.uplink.snr_linear(700_000.0)
        down = link.downlink.snr_linear(900_000.0)
        total = link.end_to_end_snr_linear(700_000.0, 900_000.0)
        assert total < up
        assert total < down

    def test_transparent_cascade_formula(self, link):
        up = link.uplink.snr_linear(700_000.0)
        down = link.downlink.snr_linear(900_000.0)
        total = link.end_to_end_snr_linear(700_000.0, 900_000.0)
        assert total == pytest.approx(1.0 / (1.0 / up + 1.0 / down))

    def test_regenerative_is_min(self, regen_link):
        up = regen_link.uplink.snr_linear(700_000.0)
        down = regen_link.downlink.snr_linear(900_000.0)
        total = regen_link.end_to_end_snr_linear(700_000.0, 900_000.0)
        assert total == pytest.approx(min(up, down))

    def test_regenerative_beats_transparent(self, link, regen_link):
        """Decode-and-forward never does worse than the noise cascade."""
        transparent = link.end_to_end_snr_linear(700_000.0, 900_000.0)
        regenerative = regen_link.end_to_end_snr_linear(700_000.0, 900_000.0)
        assert regenerative > transparent

    def test_balanced_hops_lose_3db(self):
        """Equal hop SNRs compose to exactly half (-3 dB) transparently."""
        from repro.links.budget import LinkBudget

        budget = LinkBudget(30.0, 10.0, 12e9, 50e6)
        link = BentPipeLink(uplink=budget, downlink=budget)
        single = budget.snr_db(1e6)
        total = link.end_to_end_snr_db(1e6, 1e6)
        assert single - total == pytest.approx(3.01, abs=0.01)

    def test_snr_db_matches_linear(self, link):
        linear = link.end_to_end_snr_linear(700_000.0, 900_000.0)
        assert link.end_to_end_snr_db(700_000.0, 900_000.0) == pytest.approx(
            10 * math.log10(linear)
        )


class TestRates:
    def test_shannon_rate_positive_at_leo_range(self, link):
        assert link.shannon_rate_bps(600_000.0, 800_000.0) > 1e8

    def test_achievable_below_shannon(self, link):
        shannon = link.shannon_rate_bps(600_000.0, 800_000.0)
        achievable = link.achievable_rate_bps(600_000.0, 800_000.0)
        assert 0.0 < achievable < shannon

    def test_rates_fall_with_range(self, link):
        near = link.achievable_rate_bps(600_000.0, 600_000.0)
        far = link.achievable_rate_bps(2_000_000.0, 2_000_000.0)
        assert far <= near

    def test_outage_at_extreme_range(self, link):
        assert link.achievable_rate_bps(5e8, 5e8) == 0.0

    def test_bandwidth_limited_by_narrower_hop(self):
        from repro.links.budget import LinkBudget

        wide = LinkBudget(40.0, 30.0, 12e9, 100e6)
        narrow = LinkBudget(40.0, 30.0, 12e9, 25e6)
        link = BentPipeLink(uplink=wide, downlink=narrow)
        symmetric = BentPipeLink(uplink=narrow, downlink=narrow)
        assert link.shannon_rate_bps(6e5, 6e5) == pytest.approx(
            symmetric.shannon_rate_bps(6e5, 6e5), rel=0.1
        )


class TestTransponder:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            TransparentTransponder(bandwidth_hz=0.0)
