"""End-to-end integration tests: the full MP-LEO lifecycle.

These scenarios wire multiple subsystems together the way a downstream user
would: build a shared constellation, run the bent-pipe engine, bill the
spare-capacity trades, reward coverage proofs, and survive a withdrawal.
"""

import numpy as np
import pytest

from repro import (
    Constellation,
    MultiPartyConstellation,
    Party,
    Satellite,
    TimeGrid,
    VisibilityEngine,
)
from repro.constellation.walker import walker_delta
from repro.core.governance import CommandKind, GovernanceBoard
from repro.core.incentives import ProofOfCoverageEpoch
from repro.core.ledger import TokenLedger
from repro.core.market import DataMarket, FlatPricing
from repro.core.robustness import largest_party_withdrawal
from repro.core.sharing import exchange_matrix, reciprocity_scores
from repro.ground.cities import CITIES, TAIPEI
from repro.ground.gsaas import GroundStationPool
from repro.ground.sites import GroundStation, UserTerminal
from repro.sim.engine import BentPipeSimulator


@pytest.fixture(scope="module")
def mp_leo_registry():
    """Two parties contributing interleaved halves of a Walker constellation."""
    elements = walker_delta(36, 6, 1, inclination_deg=53.0, altitude_km=550.0)
    registry = MultiPartyConstellation()
    registry.join(Party("taiwan", launch_budget=18))
    registry.join(Party("korea", launch_budget=18))
    taiwan_sats = [
        Satellite(sat_id=f"TW-{index}", elements=element)
        for index, element in enumerate(elements[::2])
    ]
    korea_sats = [
        Satellite(sat_id=f"KR-{index}", elements=element)
        for index, element in enumerate(elements[1::2])
    ]
    registry.contribute("taiwan", taiwan_sats)
    registry.contribute("korea", korea_sats)
    return registry


class TestSharedConstellationLifecycle:
    def test_stakes_are_equal(self, mp_leo_registry):
        stakes = mp_leo_registry.stakes()
        assert stakes["taiwan"] == pytest.approx(0.5)
        assert stakes["korea"] == pytest.approx(0.5)

    def test_shared_beats_own_half(self, mp_leo_registry):
        """The core MP-LEO value proposition: shared > go-it-alone."""
        grid = TimeGrid.hours(12.0, step_s=120.0)
        engine = VisibilityEngine(grid)
        terminal = TAIPEI.terminal()
        full = mp_leo_registry.constellation()
        own = full.by_party("taiwan")
        shared_cov = engine.site_coverage(full, [terminal])[0].mean()
        alone_cov = engine.site_coverage(own, [terminal])[0].mean()
        assert shared_cov > alone_cov

    def test_withdrawal_degrades_not_destroys(self, mp_leo_registry):
        grid = TimeGrid.hours(12.0, step_s=120.0)
        impact = largest_party_withdrawal(mp_leo_registry, grid, CITIES[:5])
        assert impact.reduction_fraction >= 0.0
        assert impact.reduced_fraction > 0.0  # Network still serviceable.


class TestEngineMarketLoop:
    @pytest.fixture(scope="class")
    def run_result(self, mp_leo_registry):
        constellation = mp_leo_registry.constellation()
        terminals = [
            UserTerminal(
                "ut-taipei", TAIPEI.latitude_deg, TAIPEI.longitude_deg,
                min_elevation_deg=25.0, party="taiwan", demand_mbps=100.0,
            ),
            UserTerminal(
                "ut-seoul", 37.57, 126.98,
                min_elevation_deg=25.0, party="korea", demand_mbps=100.0,
            ),
        ]
        pool = GroundStationPool()
        stations = [
            pool.rent_nearest("taiwan", TAIPEI.latitude_deg, TAIPEI.longitude_deg),
            pool.rent_nearest("korea", 37.57, 126.98),
        ]
        grid = TimeGrid.hours(12.0, step_s=120.0)
        simulator = BentPipeSimulator(constellation, terminals, stations, grid)
        return simulator.run(np.random.default_rng(0))

    def test_both_parties_served(self, run_result):
        assert run_result.served_mbps.sum(axis=1).min() > 0.0

    def test_spare_capacity_traded(self, run_result):
        """With interleaved ownership, each party rides the other's sats."""
        assert run_result.spare_capacity_megabits() > 0.0

    def test_market_settlement_balances(self, run_result):
        ledger = TokenLedger()
        ledger.mint("taiwan", 1e6)
        ledger.mint("korea", 1e6)
        market = DataMarket(pricing=FlatPricing(0.001))
        invoices = market.bill(run_result.sessions)
        market.settle(invoices, ledger)
        assert ledger.verify()
        assert ledger.total_supply == pytest.approx(2e6)

    def test_exchange_matrix_consistent_with_sessions(self, run_result):
        matrix = exchange_matrix(run_result.sessions, ["taiwan", "korea"])
        traded = matrix[0, 1] + matrix[1, 0]
        assert traded == pytest.approx(run_result.spare_capacity_megabits())

    def test_reciprocity_roughly_balanced(self, run_result):
        matrix = exchange_matrix(run_result.sessions, ["taiwan", "korea"])
        scores = reciprocity_scores(matrix)
        assert np.all(np.abs(scores) < 0.9)  # Neither is a pure free-rider.


class TestIncentiveLoop:
    def test_proofs_fund_both_parties(self, mp_leo_registry):
        constellation = mp_leo_registry.constellation()
        grid = TimeGrid.hours(6.0, step_s=120.0)
        verifiers = [city.terminal(min_elevation_deg=10.0) for city in CITIES[:4]]
        epoch = ProofOfCoverageEpoch(
            constellation=constellation, verifiers=verifiers, grid=grid
        )
        epoch.generate_proofs(np.random.default_rng(1), pings_per_verifier=200)
        ledger = TokenLedger()
        minted = epoch.distribute(ledger, reward_pool=1000.0)
        assert ledger.total_supply == pytest.approx(1000.0)
        assert minted.get("taiwan", 0.0) > 0.0
        assert minted.get("korea", 0.0) > 0.0

    def test_governance_protects_regions(self, mp_leo_registry):
        board = GovernanceBoard(mp_leo_registry.stakes())
        proposal = board.propose("taiwan", CommandKind.DENY_REGION, "seoul")
        # Taiwan alone (50%) cannot deny service to Korea's region.
        assert not board.is_approved(proposal.proposal_id)
