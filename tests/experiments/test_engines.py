"""Engine-switch tests: experiments on analytic intervals vs the grid.

The intervals engine must be a drop-in execution knob: identical RNG
draws, the same sweep structure, and figure-level numbers that agree with
the grid engine up to the documented one-step-per-edge budget (which
shrinks as the scan step shrinks — the grid converges to the analytic
answer, not the other way round).
"""

import numpy as np
import pytest

from repro.experiments.common import (
    ENGINE_GRID,
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
)
from repro.experiments.fig2_coverage_vs_size import Fig2Scenario
from repro.experiments.fig3_idle_vs_cities import Fig3Scenario
from repro.experiments.sharing_upside import SharingUpsideScenario
from repro.runner import run_scenario

#: Short horizon, moderate step: small enough for tests, fine enough that
#: grid quantization stays within a few percentage points of analytic.
CONFIG = ExperimentConfig(runs=2, step_s=120.0, seed=11, duration_s=21_600.0)


@pytest.fixture(scope="module")
def grid_context():
    context = ExperimentContext(engine=ENGINE_GRID)
    yield context
    context.clear()


@pytest.fixture(scope="module")
def intervals_context():
    context = ExperimentContext(engine=ENGINE_INTERVALS)
    yield context
    context.clear()


class TestContextEngine:
    def test_default_is_grid(self):
        assert ExperimentContext().engine == ENGINE_GRID

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ExperimentContext(engine="octree")

    def test_interval_cache_hits(self, intervals_context):
        config = ExperimentConfig(runs=1, step_s=900.0, duration_s=10_800.0)
        a = intervals_context.contact_intervals(config)
        b = intervals_context.contact_intervals(config)
        assert a is b

    def test_clear_releases_intervals(self, intervals_context):
        config = ExperimentConfig(runs=1, step_s=900.0, duration_s=10_800.0)
        a = intervals_context.contact_intervals(config)
        intervals_context.clear()
        b = intervals_context.contact_intervals(config)
        assert a is not b


class TestFig2OnIntervals:
    def test_agrees_with_grid_within_budget(self, grid_context, intervals_context):
        scenario = Fig2Scenario(sizes=(100, 500, 2000))
        on_grid = run_scenario(scenario, CONFIG, context=grid_context)
        on_intervals = run_scenario(scenario, CONFIG, context=intervals_context)
        for g, i in zip(on_grid.points, on_intervals.points):
            assert g.satellites == i.satellites
            # Identical subsets; only edge quantization differs.
            assert i.mean_uncovered_percent == pytest.approx(
                g.mean_uncovered_percent, abs=3.0
            )
            assert i.mean_max_gap_s == pytest.approx(
                g.mean_max_gap_s, abs=2.0 * CONFIG.step_s
            )

    def test_uncovered_decreases_with_size(self, intervals_context):
        result = run_scenario(
            Fig2Scenario(sizes=(50, 500, 2000)), CONFIG,
            context=intervals_context,
        )
        uncovered = [p.mean_uncovered_percent for p in result.points]
        assert uncovered == sorted(uncovered, reverse=True)

    def test_deterministic(self, intervals_context):
        scenario = Fig2Scenario(sizes=(100,))
        a = run_scenario(scenario, CONFIG, context=intervals_context)
        b = run_scenario(scenario, CONFIG, context=intervals_context)
        assert a.points == b.points


class TestFig3OnIntervals:
    def test_agrees_with_grid_within_budget(self, grid_context, intervals_context):
        scenario = Fig3Scenario(city_counts=(1, 21), sample_size=50)
        on_grid = run_scenario(scenario, CONFIG, context=grid_context)
        on_intervals = run_scenario(scenario, CONFIG, context=intervals_context)
        for g, i in zip(on_grid.points, on_intervals.points):
            assert g.cities == i.cities
            assert i.mean_idle_percent == pytest.approx(
                g.mean_idle_percent, abs=3.0
            )

    def test_idle_decreases_with_cities(self, intervals_context):
        result = run_scenario(
            Fig3Scenario(city_counts=(1, 10, 21), sample_size=50), CONFIG,
            context=intervals_context,
        )
        idle = [p.mean_idle_percent for p in result.points]
        assert idle == sorted(idle, reverse=True)


class TestSharingOnIntervals:
    def test_runs_end_to_end(self, intervals_context):
        result = run_scenario(
            SharingUpsideScenario(calibration_sizes=(10, 50, 200, 1000)),
            CONFIG, context=intervals_context,
        )
        upside = result.upside
        assert upside.shared_coverage_fraction > upside.alone_coverage_fraction
        assert upside.satellite_multiplier > 1.0

    def test_same_subsets_as_grid(self, grid_context, intervals_context):
        """Both engines must draw identical satellite samples: the
        calibration curve orderings match point for point."""
        scenario = SharingUpsideScenario(calibration_sizes=(10, 100, 1000))
        on_grid = run_scenario(scenario, CONFIG, context=grid_context)
        on_intervals = run_scenario(scenario, CONFIG, context=intervals_context)
        for (size_g, cov_g), (size_i, cov_i) in zip(
            on_grid.calibration, on_intervals.calibration
        ):
            assert size_g == size_i
            assert cov_i == pytest.approx(cov_g, abs=0.06)


class TestParallelFallback:
    def test_intervals_forces_serial(self, intervals_context):
        """The intervals engine has no shared-memory export: a parallel
        request must fall back to the in-process path, results unchanged."""
        scenario = Fig3Scenario(city_counts=(1,), sample_size=20)
        serial = run_scenario(scenario, CONFIG, context=intervals_context)
        parallel = run_scenario(
            scenario, CONFIG, context=intervals_context, parallel=2
        )
        assert serial.points == parallel.points
