"""Engine-switch tests: experiments on analytic intervals vs the grid.

The intervals engine must be a drop-in execution knob: identical RNG
draws, the same sweep structure, and figure-level numbers that agree with
the grid engine up to the documented one-step-per-edge budget (which
shrinks as the scan step shrinks — the grid converges to the analytic
answer, not the other way round).

The checks ride the directory-wide ``engine`` fixture (see conftest):
every test here runs once per engine against a module-cached grid-engine
reference, so the grid pass doubles as a determinism check (default
context == explicit grid context) and the intervals pass is the
cross-engine agreement check.
"""

import pytest

from repro.experiments import common
from repro.experiments.common import (
    ENGINE_GRID,
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
)
from repro.experiments.fig2_coverage_vs_size import Fig2Scenario
from repro.experiments.fig3_idle_vs_cities import Fig3Scenario
from repro.experiments.fig4a_single_addition import Fig4aScenario
from repro.experiments.fig5_withdrawal import Fig5Scenario
from repro.experiments.fig6_party_skew import Fig6Scenario
from repro.experiments.sharing_upside import SharingUpsideScenario
from repro.runner import run_scenario

#: Short horizon, moderate step: small enough for tests, fine enough that
#: grid quantization stays within a few percentage points of analytic.
CONFIG = ExperimentConfig(runs=2, step_s=120.0, seed=11, duration_s=21_600.0)


@pytest.fixture(scope="module", autouse=True)
def _clear_caches_after():
    yield
    common.clear_caches()


@pytest.fixture(scope="module")
def grid_reference():
    """Scenario results on an explicit grid-engine context, cached per
    scenario so both engine params compare against the same reference."""
    context = ExperimentContext(engine=ENGINE_GRID)
    cache = {}

    def compute(name, factory):
        if name not in cache:
            cache[name] = run_scenario(factory(), CONFIG, context=context)
        return cache[name]

    yield compute
    context.clear()


class TestContextEngine:
    def test_default_is_grid(self):
        assert ExperimentContext().engine == ENGINE_GRID

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ExperimentContext(engine="octree")

    def test_interval_cache_hits(self):
        context = ExperimentContext(engine=ENGINE_INTERVALS)
        config = ExperimentConfig(runs=1, step_s=900.0, duration_s=10_800.0)
        a = context.contact_intervals(config)
        b = context.contact_intervals(config)
        assert a is b
        context.clear()

    def test_clear_releases_intervals(self):
        context = ExperimentContext(engine=ENGINE_INTERVALS)
        config = ExperimentConfig(runs=1, step_s=900.0, duration_s=10_800.0)
        a = context.contact_intervals(config)
        context.clear()
        b = context.contact_intervals(config)
        assert a is not b
        context.clear()


class TestFig2Matrix:
    def _scenario(self):
        return Fig2Scenario(sizes=(100, 500, 2000))

    def test_agrees_with_grid_reference(self, engine, grid_reference):
        result = run_scenario(self._scenario(), CONFIG)
        reference = grid_reference("fig2", self._scenario)
        if engine == ENGINE_GRID:
            assert result.points == reference.points
            return
        for g, i in zip(reference.points, result.points):
            assert g.satellites == i.satellites
            # Identical subsets; only edge quantization differs.
            assert i.mean_uncovered_percent == pytest.approx(
                g.mean_uncovered_percent, abs=3.0
            )
            assert i.mean_max_gap_s == pytest.approx(
                g.mean_max_gap_s, abs=2.0 * CONFIG.step_s
            )

    def test_uncovered_decreases_with_size(self):
        result = run_scenario(Fig2Scenario(sizes=(50, 500, 2000)), CONFIG)
        uncovered = [p.mean_uncovered_percent for p in result.points]
        assert uncovered == sorted(uncovered, reverse=True)

    def test_deterministic(self):
        scenario = Fig2Scenario(sizes=(100,))
        a = run_scenario(scenario, CONFIG)
        b = run_scenario(scenario, CONFIG)
        assert a.points == b.points


class TestFig3Matrix:
    def _scenario(self):
        return Fig3Scenario(city_counts=(1, 21), sample_size=50)

    def test_agrees_with_grid_reference(self, engine, grid_reference):
        result = run_scenario(self._scenario(), CONFIG)
        reference = grid_reference("fig3", self._scenario)
        if engine == ENGINE_GRID:
            assert result.points == reference.points
            return
        for g, i in zip(reference.points, result.points):
            assert g.cities == i.cities
            assert i.mean_idle_percent == pytest.approx(
                g.mean_idle_percent, abs=3.0
            )

    def test_idle_decreases_with_cities(self):
        result = run_scenario(
            Fig3Scenario(city_counts=(1, 10, 21), sample_size=50), CONFIG
        )
        idle = [p.mean_idle_percent for p in result.points]
        assert idle == sorted(idle, reverse=True)


class TestFig4aMatrix:
    def _scenario(self):
        return Fig4aScenario(base_sizes=(1, 100))

    def test_agrees_with_grid_reference(self, engine, grid_reference):
        result = run_scenario(self._scenario(), CONFIG)
        reference = grid_reference("fig4a", self._scenario)
        if engine == ENGINE_GRID:
            assert result.points == reference.points
            return
        for g, i in zip(reference.points, result.points):
            assert g.base_satellites == i.base_satellites
            assert i.mean_gain_hours == pytest.approx(
                g.mean_gain_hours, abs=0.5
            )


class TestFig5Matrix:
    def _scenario(self):
        return Fig5Scenario(sizes=(200, 1000))

    def test_agrees_with_grid_reference(self, engine, grid_reference):
        result = run_scenario(self._scenario(), CONFIG)
        reference = grid_reference("fig5", self._scenario)
        if engine == ENGINE_GRID:
            assert result.points == reference.points
            return
        for g, i in zip(reference.points, result.points):
            assert g.satellites == i.satellites
            assert i.mean_reduction_percent == pytest.approx(
                g.mean_reduction_percent, abs=3.0
            )


class TestFig6Matrix:
    def _scenario(self):
        return Fig6Scenario(skews=(1, 10))

    def test_agrees_with_grid_reference(self, engine, grid_reference):
        result = run_scenario(self._scenario(), CONFIG)
        reference = grid_reference("fig6", self._scenario)
        if engine == ENGINE_GRID:
            assert result.points == reference.points
            return
        for g, i in zip(reference.points, result.points):
            assert g.skew == i.skew
            assert g.largest_party_satellites == i.largest_party_satellites
            assert i.mean_reduction_percent == pytest.approx(
                g.mean_reduction_percent, abs=3.0
            )


class TestSharingMatrix:
    def _scenario(self):
        return SharingUpsideScenario(calibration_sizes=(10, 100, 1000))

    def test_same_subsets_as_grid(self, engine, grid_reference):
        """Both engines must draw identical satellite samples: the
        calibration curve orderings match point for point."""
        result = run_scenario(self._scenario(), CONFIG)
        reference = grid_reference("sharing", self._scenario)
        if engine == ENGINE_GRID:
            assert result.calibration == reference.calibration
            return
        for (size_g, cov_g), (size_i, cov_i) in zip(
            reference.calibration, result.calibration
        ):
            assert size_g == size_i
            assert cov_i == pytest.approx(cov_g, abs=0.06)

    def test_runs_end_to_end(self):
        result = run_scenario(
            SharingUpsideScenario(calibration_sizes=(10, 50, 200, 1000)),
            CONFIG,
        )
        upside = result.upside
        assert upside.shared_coverage_fraction > upside.alone_coverage_fraction
        assert upside.satellite_multiplier > 1.0
