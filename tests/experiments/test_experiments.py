"""Tests for the figure experiment harness.

These use a coarse configuration (15-minute steps, 3 runs) so the whole
module runs in a few seconds; the benchmark suite runs the full-fidelity
versions.  Assertions target structure and the figure-level qualitative
shapes that survive coarse sampling.
"""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig2_coverage_vs_size import run_fig2
from repro.experiments.fig3_idle_vs_cities import run_fig3
from repro.experiments.fig4a_single_addition import run_fig4a
from repro.experiments.fig4b_phase_sweep import run_fig4b
from repro.experiments.fig4c_design_factors import run_fig4c
from repro.experiments.fig5_withdrawal import run_fig5
from repro.experiments.fig6_party_skew import run_fig6
from repro.experiments.sharing_upside import run_sharing_upside

COARSE = ExperimentConfig(runs=3, step_s=900.0, seed=7)


@pytest.fixture(scope="module", autouse=True)
def _clear_caches_after():
    yield
    common.clear_caches()


class TestCommon:
    def test_pool_cached(self):
        assert common.starlink_pool() is common.starlink_pool()

    def test_visibility_cached(self):
        a = common.pool_visibility(COARSE)
        b = common.pool_visibility(COARSE)
        assert a is b

    def test_city_weights_sum_to_one(self):
        assert common.city_weights().sum() == pytest.approx(1.0)

    def test_all_sites_layout(self):
        assert common.ALL_SITES[common.TAIPEI_INDEX].name == "Taipei"
        assert len(common.CITY_INDICES) == 21

    def test_default_duration_is_one_week(self):
        assert ExperimentConfig().duration_s == pytest.approx(7 * 86400.0)
        assert ExperimentConfig().grid().duration_s == pytest.approx(7 * 86400.0)

    def test_duration_flows_into_grid(self):
        config = ExperimentConfig(step_s=900.0, duration_s=2 * 86400.0)
        assert config.grid().duration_s == 2 * 86400.0
        assert config.grid().count == 192

    def test_duration_in_visibility_cache_key(self):
        """Regression: two configs differing only in horizon must not alias
        to one cached tensor (the key once omitted duration_s)."""
        short = ExperimentConfig(runs=1, step_s=1800.0, duration_s=86400.0)
        week = ExperimentConfig(runs=1, step_s=1800.0)
        vis_short = common.pool_visibility(short)
        vis_week = common.pool_visibility(week)
        assert vis_short is not vis_week
        assert vis_short.n_times == short.grid().count
        assert vis_week.n_times == week.grid().count
        # Each entry still hits on an exact-match config.
        assert common.pool_visibility(short) is vis_short


class TestFig2:
    def test_monotone_coverage(self):
        result = run_fig2(COARSE, sizes=(10, 100, 1000))
        uncovered = [p.mean_uncovered_percent for p in result.points]
        assert uncovered[0] > uncovered[1] > uncovered[2]

    def test_paper_anchor_100_sats(self):
        result = run_fig2(COARSE, sizes=(100,))
        assert result.points[0].mean_uncovered_percent > 40.0

    def test_paper_anchor_1000_sats(self, grid_anchor):
        result = run_fig2(COARSE, sizes=(1000,))
        assert result.points[0].mean_uncovered_percent < 5.0

    def test_series_accessor(self):
        result = run_fig2(COARSE, sizes=(10, 100))
        series = result.uncovered_percent_series()
        assert [x for x, _ in series] == [10, 100]

    def test_oversize_rejected(self):
        with pytest.raises(ValueError, match="exceeds pool"):
            run_fig2(COARSE, sizes=(10_000,))


class TestFig3:
    def test_idle_decreases_with_cities(self):
        result = run_fig3(COARSE, city_counts=(1, 10, 21), sample_size=200)
        idle = [p.mean_idle_percent for p in result.points]
        assert idle[0] > idle[1] > idle[2]

    def test_paper_anchor_one_city(self):
        result = run_fig3(COARSE, city_counts=(1,), sample_size=200)
        assert result.points[0].mean_idle_percent > 97.0

    def test_bad_city_count_rejected(self):
        with pytest.raises(ValueError, match="city count"):
            run_fig3(COARSE, city_counts=(25,))

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError, match="sample_size"):
            run_fig3(COARSE, sample_size=10_000)


class TestFig4a:
    def test_diminishing_returns(self):
        result = run_fig4a(COARSE, base_sizes=(1, 500))
        gains = {p.base_satellites: p.mean_gain_hours for p in result.points}
        assert gains[1] > gains[500]

    def test_gains_nonnegative(self):
        result = run_fig4a(COARSE, base_sizes=(1, 100))
        assert all(p.min_gain_hours >= 0.0 for p in result.points)

    def test_max_at_least_mean(self):
        result = run_fig4a(COARSE, base_sizes=(100,))
        point = result.points[0]
        assert point.max_gain_hours >= point.mean_gain_hours


class TestFig4b:
    def test_midpoint_wins(self):
        result = run_fig4b(ExperimentConfig(runs=1, step_s=300.0))
        assert result.best_offset_deg() == pytest.approx(15.0, abs=2.0)

    def test_symmetry(self):
        result = run_fig4b(ExperimentConfig(runs=1, step_s=300.0))
        gains = result.gain_series()
        # Gain at offset d ~ gain at offset 30 - d.
        for (x1, g1), (x2, g2) in zip(gains, reversed(gains)):
            assert g1 == pytest.approx(g2, abs=0.15)

    def test_all_gains_nonnegative(self):
        result = run_fig4b(ExperimentConfig(runs=1, step_s=300.0))
        assert all(gain >= 0.0 for _, gain in result.gain_series())


class TestFig4c:
    def test_inclination_wins(self):
        result = run_fig4c(ExperimentConfig(runs=1, step_s=300.0))
        ranking = result.ranking()
        assert ranking[0][0] == "inclination"

    def test_all_factors_help(self):
        result = run_fig4c(ExperimentConfig(runs=1, step_s=300.0))
        assert all(gain > 0.25 for gain in result.gains_hours.values())


class TestFig5:
    def test_loss_decreases_with_scale(self):
        result = run_fig5(COARSE, sizes=(200, 2000))
        losses = {p.satellites: p.mean_reduction_percent for p in result.points}
        assert losses[200] > losses[2000]

    def test_paper_anchor_small_constellation(self, grid_anchor):
        result = run_fig5(COARSE, sizes=(200,))
        assert result.points[0].mean_reduction_percent > 10.0

    def test_paper_anchor_large_constellation(self, grid_anchor):
        result = run_fig5(COARSE, sizes=(2000,))
        assert result.points[0].mean_reduction_percent < 3.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            run_fig5(COARSE, withdraw_fraction=1.0)


class TestFig6:
    def test_skew_increases_loss(self):
        result = run_fig6(COARSE, skews=(1, 10))
        losses = {p.skew: p.mean_reduction_percent for p in result.points}
        assert losses[10] > losses[1]

    def test_largest_party_sizes(self):
        result = run_fig6(COARSE, skews=(1, 10))
        sizes = {p.skew: p.largest_party_satellites for p in result.points}
        assert sizes[1] == 91
        assert sizes[10] == 500

    def test_network_survives_worst_skew(self):
        """Paper: even at 10:1 the network remains service-able."""
        result = run_fig6(COARSE, skews=(10,))
        assert result.points[0].mean_reduction_percent < 15.0


class TestSharingUpside:
    def test_paper_claim(self):
        result = run_sharing_upside(COARSE)
        upside = result.upside
        assert upside.shared_coverage_fraction > upside.alone_coverage_fraction
        # 50 contributed satellites buy coverage worth >= 1000 (the claim).
        assert upside.equivalent_alone_satellites >= 1000
        assert upside.satellite_multiplier >= 20.0

    def test_calibration_monotone(self):
        result = run_sharing_upside(COARSE)
        coverages = [coverage for _, coverage in result.calibration]
        assert all(b >= a - 0.02 for a, b in zip(coverages, coverages[1:]))

    def test_bad_contribution_rejected(self):
        with pytest.raises(ValueError, match="contributed"):
            run_sharing_upside(COARSE, contributed=0)
