"""Engine matrix for the experiment tests.

Every test in this directory runs once per visibility engine: the autouse
``engine`` fixture flips the default context's engine knob between ``grid``
and ``intervals`` (module-scoped, so pytest groups the runs and each
engine's cached artifacts are built once per module).  Tests that need to
know which engine is active take ``engine`` as an argument; everything
else just runs twice and must pass on both.
"""

import pytest

from repro.experiments import common
from repro.experiments.common import ENGINES


@pytest.fixture(params=ENGINES, autouse=True, scope="module")
def engine(request):
    """The active engine for the default context; restores on teardown."""
    context = common.default_context()
    previous = context.engine
    context.engine = request.param
    yield request.param
    context.engine = previous


@pytest.fixture
def grid_anchor(engine):
    """Skip on the intervals engine: the paper anchors are calibrated on
    the sampled-grid measure at the coarse test step, where the
    continuous-time interval measure legitimately diverges (the per-edge
    budget scales with the step; cross-engine agreement at a fine step is
    pinned by test_engines)."""
    if engine != common.ENGINE_GRID:
        pytest.skip("paper anchor calibrated on the sampled-grid measure")
