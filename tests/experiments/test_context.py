"""Tests for ExperimentContext cache keying/lifetime and the city-weight cache."""

import gc
import weakref

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentContext,
    visibility_cache_key,
)


class TestVisibilityCacheKeying:
    def test_key_fields(self):
        config = ExperimentConfig(step_s=300.0, min_elevation_deg=25.0,
                                  duration_s=86400.0)
        assert visibility_cache_key(config, pool_seed=3) == (
            3, 300.0, 25.0, 86400.0,
        )

    def test_distinct_configs_never_alias(self):
        """Every config field the tensor depends on separates cache entries."""
        base = ExperimentConfig(step_s=300.0, duration_s=86400.0)
        variants = [
            (base, 1),  # pool seed
            (ExperimentConfig(step_s=600.0, duration_s=86400.0), 0),
            (ExperimentConfig(step_s=300.0, min_elevation_deg=40.0,
                              duration_s=86400.0), 0),
            (ExperimentConfig(step_s=300.0, duration_s=2 * 86400.0), 0),
        ]
        keys = {visibility_cache_key(base, 0)}
        for config, pool_seed in variants:
            keys.add(visibility_cache_key(config, pool_seed))
        assert len(keys) == 1 + len(variants)

    def test_statistical_knobs_do_not_split_the_cache(self):
        """runs/seed/parallel don't change the tensor — one entry serves all."""
        a = ExperimentConfig(runs=3, seed=1, parallel=1, step_s=300.0)
        b = ExperimentConfig(runs=50, seed=99, parallel=8, step_s=300.0)
        assert visibility_cache_key(a) == visibility_cache_key(b)

    def test_install_and_lookup_share_the_key(self):
        context = ExperimentContext()
        config = ExperimentConfig(step_s=900.0, duration_s=86400.0)
        sentinel = object()
        context.install_visibility(config, sentinel, pool_seed=2)
        cached = context.cached_visibility()
        assert cached[visibility_cache_key(config, 2)] is sentinel
        # A different pool seed does not see the installed tensor.
        assert visibility_cache_key(config, 0) not in cached


class TestContextLifetime:
    def test_contexts_are_isolated(self):
        first, second = ExperimentContext(), ExperimentContext()
        config = ExperimentConfig(step_s=900.0)
        first.install_visibility(config, object())
        assert second.cached_visibility() == {}

    def test_clear_releases_entries(self):
        """clear() must actually free the tensors, not just forget the keys."""
        context = ExperimentContext()
        config = ExperimentConfig(step_s=900.0)

        class Tensor:  # Weakref-able stand-in for a PackedVisibility.
            pass

        tensor = Tensor()
        ref = weakref.ref(tensor)
        context.install_visibility(config, tensor)
        del tensor
        assert ref() is not None  # The cache keeps it alive...
        context.clear()
        gc.collect()
        assert ref() is None  # ...and clear() lets it go.
        assert context.cached_visibility() == {}

    def test_clear_releases_pools(self):
        context = ExperimentContext()
        context.pool()
        assert context.cached_pool_seeds() == (0,)
        context.clear()
        assert context.cached_pool_seeds() == ()

    def test_module_clear_caches_clears_default_context(self):
        config = ExperimentConfig(step_s=900.0)
        sentinel = object()
        common.default_context().install_visibility(config, sentinel)
        common.clear_caches()
        assert common.default_context().cached_visibility() == {}


class TestCityWeightCache:
    def test_same_array_returned(self):
        assert common.city_weights() is common.city_weights()

    def test_read_only(self):
        weights = common.city_weights()
        with pytest.raises(ValueError):
            weights[0] = 1.0

    def test_normalized(self):
        weights = common.city_weights()
        assert weights.shape == (len(common.CITY_INDICES),)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0.0).all()

    def test_weighted_coverage_uses_city_rows(self):
        """The weighted reduction equals the manual dot over city sites."""

        class StubVisibility:
            def coverage_fractions(self, sat_indices):
                return np.linspace(0.0, 1.0, len(common.ALL_SITES))

        stub = StubVisibility()
        fractions = stub.coverage_fractions(None)
        expected = float(
            common.city_weights() @ fractions[list(common.CITY_INDICES)]
        )
        got = common.weighted_city_coverage_fraction(stub, np.arange(3))
        assert got == pytest.approx(expected)
        # Taipei (site 0) carries zero coverage in the stub, so any leak of
        # the non-city row would lower the weighted value.
        assert got > 0.0
