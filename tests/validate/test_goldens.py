"""Tests for the golden-figure regression snapshots."""

import dataclasses
import json
import os

import pytest

from repro.validate import goldens


class TestCompareValues:
    def test_exact_scalars(self):
        assert goldens.compare_values(3, 3) == []
        assert goldens.compare_values("a", "a") == []
        assert goldens.compare_values(True, True) == []
        assert goldens.compare_values(None, None) == []

    def test_float_within_tolerance(self):
        assert goldens.compare_values(1.0, 1.0 + 1e-9) == []

    def test_float_beyond_tolerance(self):
        mismatches = goldens.compare_values(1.0, 1.1)
        assert len(mismatches) == 1
        assert "beyond tolerance" in mismatches[0]

    def test_int_float_compare_numerically(self):
        assert goldens.compare_values(2, 2.0) == []

    def test_bool_never_equals_number(self):
        assert goldens.compare_values(True, 1) != []
        assert goldens.compare_values(0, False) != []

    def test_nested_path_annotation(self):
        mismatches = goldens.compare_values(
            {"points": [{"x": 1.0}]}, {"points": [{"x": 2.0}]}
        )
        assert mismatches == [
            "values.points[0].x: 1.0 != golden 2.0 (beyond tolerance)"
        ]

    def test_missing_and_extra_keys(self):
        mismatches = goldens.compare_values({"a": 1}, {"b": 1})
        assert "values.a: not in golden" in mismatches
        assert "values.b: missing from actual" in mismatches

    def test_length_mismatch(self):
        mismatches = goldens.compare_values([1, 2], [1, 2, 3])
        assert mismatches == ["values: length 2 != golden 3"]

    def test_type_mismatch(self):
        assert goldens.compare_values("1", 1) != []

    def test_custom_tolerances(self):
        assert goldens.compare_values(1.0, 1.05, rtol=0.1) == []
        assert goldens.compare_values(1.0, 1.05, rtol=1e-6) != []


class TestCommittedSnapshots:
    """The nine snapshots shipped in the package are well-formed."""

    @pytest.mark.parametrize("name", sorted(goldens.GOLDEN_EXPERIMENTS))
    def test_snapshot_committed(self, name):
        snapshot = goldens.load_snapshot(name)
        assert snapshot is not None, f"missing golden for {name}"
        assert snapshot["schema"] == goldens.GOLDEN_SCHEMA_VERSION
        assert snapshot["name"] == name
        assert snapshot["config"] == dataclasses.asdict(goldens.GOLDEN_CONFIG)
        assert goldens._count_leaves(snapshot["values"]) > 0

    def test_registry_matches_files(self):
        stems = {
            os.path.splitext(f)[0]
            for f in os.listdir(goldens.GOLDEN_DIR)
            if f.endswith(".json")
        }
        assert stems == set(goldens.GOLDEN_EXPERIMENTS)

    def test_fig1a_matches_committed_golden(self):
        """End-to-end: the cheapest experiment reproduces its snapshot."""
        check = goldens.check_golden("fig1a")
        assert check.ok, check.details
        assert check.details["mismatches"] == []
        assert check.details["fields_compared"] == 6


class TestCheckGolden:
    """check_golden behaviors, isolated from the committed files."""

    @pytest.fixture
    def sandbox(self, tmp_path, monkeypatch):
        monkeypatch.setattr(goldens, "GOLDEN_DIR", str(tmp_path))
        monkeypatch.setitem(
            goldens.GOLDEN_EXPERIMENTS, "fig1a", lambda: {"x": 1.0, "n": 3}
        )
        return tmp_path

    def test_missing_snapshot_fails(self, sandbox):
        check = goldens.check_golden("fig1a")
        assert not check.ok
        assert "--update-goldens" in check.details["error"]

    def test_update_writes_and_passes(self, sandbox):
        check = goldens.check_golden("fig1a", update=True)
        assert check.ok
        assert check.details["updated"]
        with open(goldens.golden_path("fig1a"), encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["values"] == {"x": 1.0, "n": 3}

    def test_roundtrip_passes(self, sandbox):
        goldens.check_golden("fig1a", update=True)
        check = goldens.check_golden("fig1a")
        assert check.ok
        assert check.details["fields_compared"] == 2

    def test_drift_fails(self, sandbox, monkeypatch):
        goldens.check_golden("fig1a", update=True)
        monkeypatch.setitem(
            goldens.GOLDEN_EXPERIMENTS, "fig1a", lambda: {"x": 2.0, "n": 3}
        )
        check = goldens.check_golden("fig1a")
        assert not check.ok
        assert any("values.x" in m for m in check.details["mismatches"])

    def test_schema_mismatch_fails(self, sandbox):
        goldens.check_golden("fig1a", update=True)
        path = goldens.golden_path("fig1a")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["schema"] = 0
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        check = goldens.check_golden("fig1a")
        assert not check.ok
        assert "re-capture" in check.details["error"]

    def test_config_mismatch_fails_before_value_diff(self, sandbox):
        goldens.check_golden("fig1a", update=True)
        path = goldens.golden_path("fig1a")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["config"]["seed"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        check = goldens.check_golden("fig1a")
        assert not check.ok
        assert any("config.seed" in m for m in check.details["config_mismatches"])
        assert "mismatches" not in check.details

    def test_snapshot_file_is_deterministic(self, sandbox):
        first = goldens.check_golden("fig1a", update=True)
        with open(first.details["path"], encoding="utf-8") as handle:
            content_a = handle.read()
        second = goldens.check_golden("fig1a", update=True)
        with open(second.details["path"], encoding="utf-8") as handle:
            content_b = handle.read()
        assert content_a == content_b
        assert content_a.endswith("\n")
