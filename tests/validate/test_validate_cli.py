"""Tests for the ``python -m repro validate`` CLI entry point."""

import json

import pytest

import repro.validate as validate_pkg
from repro.cli import build_parser, main
from repro.obs.report import validate_run_report
from repro.validate.result import ValidationReport, failed, passed
from repro.validate import validate_validation_report


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.mode == "quick"
        assert args.seed is None
        assert args.report is None
        assert not args.update_goldens

    def test_full_flag(self):
        assert build_parser().parse_args(["validate", "--full"]).mode == "full"

    def test_quick_full_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--quick", "--full"])

    def test_seed_and_report(self):
        args = build_parser().parse_args(
            ["validate", "--seed", "7", "--report", "out.json"]
        )
        assert args.seed == 7
        assert args.report == "out.json"


@pytest.fixture
def fake_run(monkeypatch):
    """Stub run_validation; records the call and controls the verdict."""
    state = {"calls": [], "report": None}

    def stub(mode="quick", seed=0, update_goldens=False):
        state["calls"].append({"mode": mode, "seed": seed, "update": update_goldens})
        return state["report"]

    monkeypatch.setattr(validate_pkg, "run_validation", stub)
    state["report"] = ValidationReport(mode="quick", seed=2024, checks=[passed("a")])
    return state


class TestMain:
    def test_green_run_exits_zero(self, fake_run):
        assert main(["validate"]) == 0
        assert fake_run["calls"] == [
            {"mode": "quick", "seed": 2024, "update": False}
        ]

    def test_red_run_exits_one(self, fake_run):
        fake_run["report"] = ValidationReport(
            mode="quick", seed=2024, checks=[failed("a", error="x")]
        )
        assert main(["validate"]) == 1

    def test_flags_reach_runner(self, fake_run):
        fake_run["report"] = ValidationReport(mode="full", seed=7, checks=[])
        assert main(["validate", "--full", "--seed", "7", "--update-goldens"]) == 0
        assert fake_run["calls"] == [{"mode": "full", "seed": 7, "update": True}]

    def test_report_file_embeds_validation(self, fake_run, tmp_path):
        report_path = tmp_path / "nested" / "validation.json"
        assert main(["validate", "--report", str(report_path)]) == 0
        with open(report_path, encoding="utf-8") as handle:
            document = json.load(handle)
        validate_run_report(document)
        validate_validation_report(document["extra"]["validation"])
        assert document["command"] == "validate"
        assert document["extra"]["validation"]["ok"] is True

    def test_failing_run_still_writes_report(self, fake_run, tmp_path):
        fake_run["report"] = ValidationReport(
            mode="quick", seed=2024, checks=[failed("a", error="x")]
        )
        report_path = tmp_path / "validation.json"
        assert main(["validate", "--report", str(report_path)]) == 1
        with open(report_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["extra"]["validation"]["ok"] is False

    def test_listed_in_cli_help(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "validate --quick|--full" in out
