"""Tests for the seeded property-fuzz harness."""

import pytest

from repro.validate import fuzz


class TestInvariantsPass:
    """Every registered invariant holds on a handful of seeded trials."""

    @pytest.mark.parametrize("name", sorted(fuzz.INVARIANTS))
    def test_invariant_green(self, name):
        check = fuzz.run_invariant(seed=5, name=name, trials=2)
        assert check.ok, check.details["failures"]
        assert check.name == f"fuzz.{name}"
        assert check.details["trials"] == 2
        assert check.details["seed"] == 5


class TestHarnessMechanics:
    def test_registry_covers_documented_invariants(self):
        assert set(fuzz.INVARIANTS) == {
            "radius_bounds",
            "unit_norms",
            "scalar_batch_state",
            "visibility_split",
            "raan_drift_sign",
            "kepler_wrap",
            "interval_algebra",
            "intervals_shm_roundtrip",
        }

    def test_failures_are_collected_not_raised(self, monkeypatch):
        calls = []

        def flaky(rng):
            calls.append(None)
            if len(calls) % 2 == 0:
                raise AssertionError(f"boom {len(calls)}")

        monkeypatch.setitem(fuzz.INVARIANTS, "radius_bounds", flaky)
        check = fuzz.run_invariant(seed=1, name="radius_bounds", trials=4)
        assert not check.ok
        assert [f["trial"] for f in check.details["failures"]] == [1, 3]
        assert "boom" in check.details["failures"][0]["message"]
        assert "replay_trial(1, 'radius_bounds'" in check.details["replay"]

    def test_replay_trial_reproduces_rng(self, monkeypatch):
        draws = []

        def record(rng):
            draws.append(rng.uniform(size=3).tolist())

        monkeypatch.setitem(fuzz.INVARIANTS, "unit_norms", record)
        fuzz.run_invariant(seed=9, name="unit_norms", trials=3)
        run_draws = list(draws)
        draws.clear()
        fuzz.replay_trial(seed=9, invariant="unit_norms", trial=1)
        assert draws == [run_draws[1]]

    def test_replay_raises_on_red_trial(self, monkeypatch):
        def always_red(rng):
            raise AssertionError("still red")

        monkeypatch.setitem(fuzz.INVARIANTS, "kepler_wrap", always_red)
        with pytest.raises(AssertionError, match="still red"):
            fuzz.replay_trial(seed=1, invariant="kepler_wrap", trial=0)

    def test_trials_are_independent_of_count(self, monkeypatch):
        """Trial t draws the same inputs whether the run has 2 or 5 trials."""
        draws = []

        def record(rng):
            draws.append(float(rng.uniform()))

        monkeypatch.setitem(fuzz.INVARIANTS, "raan_drift_sign", record)
        fuzz.run_invariant(seed=4, name="raan_drift_sign", trials=2)
        short = list(draws)
        draws.clear()
        fuzz.run_invariant(seed=4, name="raan_drift_sign", trials=5)
        assert draws[:2] == short

    def test_run_all_invariants(self):
        checks = fuzz.run_all_invariants(seed=5, trials=1)
        assert [c.name for c in checks] == [f"fuzz.{n}" for n in fuzz.INVARIANTS]
        assert all(c.ok for c in checks)
