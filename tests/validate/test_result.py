"""Tests for validation check results and the report schema."""

import pytest

from repro.validate.result import (
    STATUS_ERROR,
    STATUS_FAIL,
    STATUS_PASS,
    VALIDATION_KEYS,
    VALIDATION_SCHEMA_VERSION,
    CheckResult,
    ValidationReport,
    failed,
    passed,
    timed_check,
    validate_validation_report,
)


class TestCheckResult:
    def test_passed_helper(self):
        check = passed("oracle.x", max_error_m=0.5)
        assert check.ok
        assert check.status == STATUS_PASS
        assert check.details == {"max_error_m": 0.5}

    def test_failed_helper(self):
        check = failed("oracle.x", reason="drift")
        assert not check.ok
        assert check.status == STATUS_FAIL

    def test_to_dict_keys(self):
        entry = passed("a").to_dict()
        assert set(entry) == {"name", "status", "details", "elapsed_s"}

    def test_timed_check_stamps_elapsed(self):
        holder = []
        with timed_check(holder):
            holder.append(passed("a"))
        assert holder[0].elapsed_s >= 0.0

    def test_timed_check_empty_holder_is_harmless(self):
        with timed_check([]):
            pass


class TestValidationReport:
    def _report(self, *checks):
        return ValidationReport(mode="quick", seed=1, checks=list(checks))

    def test_ok_requires_all_pass(self):
        assert self._report(passed("a"), passed("b")).ok
        assert not self._report(passed("a"), failed("b")).ok

    def test_empty_report_is_ok(self):
        assert self._report().ok

    def test_counts(self):
        report = self._report(
            passed("a"),
            failed("b"),
            CheckResult(name="c", status=STATUS_ERROR),
        )
        assert report.counts == {"pass": 1, "fail": 1, "error": 1}

    def test_failures_include_errors(self):
        error = CheckResult(name="c", status=STATUS_ERROR)
        report = self._report(passed("a"), error)
        assert report.failures() == [error]

    def test_to_dict_layout(self):
        document = self._report(passed("a")).to_dict()
        assert set(document) == VALIDATION_KEYS
        assert document["schema"] == VALIDATION_SCHEMA_VERSION
        validate_validation_report(document)


class TestSchemaValidation:
    def _valid(self):
        return ValidationReport(mode="quick", seed=1, checks=[passed("a")]).to_dict()

    def test_accepts_valid(self):
        validate_validation_report(self._valid())

    def test_rejects_missing_key(self):
        document = self._valid()
        del document["counts"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_validation_report(document)

    def test_rejects_wrong_schema(self):
        document = self._valid()
        document["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            validate_validation_report(document)

    def test_rejects_non_list_checks(self):
        document = self._valid()
        document["checks"] = {}
        with pytest.raises(ValueError, match="list"):
            validate_validation_report(document)

    def test_rejects_check_missing_field(self):
        document = self._valid()
        del document["checks"][0]["elapsed_s"]
        with pytest.raises(ValueError, match="elapsed_s"):
            validate_validation_report(document)

    def test_rejects_unknown_status(self):
        document = self._valid()
        document["checks"][0]["status"] = "maybe"
        with pytest.raises(ValueError, match="status"):
            validate_validation_report(document)
