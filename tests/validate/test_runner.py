"""Tests for validation orchestration (profiles, runner, rendering)."""

import pytest

from repro.validate import fuzz, goldens, oracles, runner
from repro.validate.result import STATUS_ERROR, passed
from repro.validate.runner import (
    FULL,
    PROFILES,
    QUICK,
    render_validation_report,
    run_validation,
)


class TestProfiles:
    def test_registry(self):
        assert PROFILES == {"quick": QUICK, "full": FULL}

    def test_full_is_strictly_heavier(self):
        assert FULL.fuzz_trials > QUICK.fuzz_trials
        assert FULL.propagator_satellites > QUICK.propagator_satellites
        assert FULL.propagator_step_s < QUICK.propagator_step_s
        assert FULL.visibility_step_s <= QUICK.visibility_step_s
        assert FULL.packed_subsets > QUICK.packed_subsets

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown validation mode"):
            run_validation(mode="medium")


@pytest.fixture
def stubbed_checks(monkeypatch):
    """Replace the expensive checks with instant pass-throughs."""
    calls = []

    def stub(name):
        def check(*args, **kwargs):
            calls.append((name, args, kwargs))
            return passed(name)

        return check

    monkeypatch.setattr(
        oracles, "check_propagator_agreement", stub("oracle.propagator")
    )
    monkeypatch.setattr(oracles, "check_visibility_oracle", stub("oracle.visibility"))
    monkeypatch.setattr(oracles, "check_packed_agreement", stub("oracle.packed"))
    monkeypatch.setattr(oracles, "check_fused_agreement", stub("oracle.fused"))
    monkeypatch.setattr(
        oracles, "check_interval_agreement", stub("oracle.intervals")
    )
    monkeypatch.setattr(
        oracles, "check_backend_agreement", stub("oracle.backends")
    )
    monkeypatch.setattr(
        fuzz, "run_invariant",
        lambda seed, name, trials: passed(f"fuzz.{name}", trials=trials),
    )
    monkeypatch.setattr(
        goldens, "check_golden",
        lambda name, update=False: passed(f"golden.{name}", updated=update),
    )
    return calls


class TestRunValidation:
    def test_check_order_and_names(self, stubbed_checks):
        report = run_validation(mode="quick", seed=3)
        names = [check.name for check in report.checks]
        expected = (
            ["oracle.propagator", "oracle.visibility", "oracle.packed",
             "oracle.fused", "oracle.intervals", "oracle.backends"]
            + [f"fuzz.{name}" for name in fuzz.INVARIANTS]
            + [f"golden.{name}" for name in goldens.GOLDEN_EXPERIMENTS]
        )
        assert names == expected
        assert report.ok
        assert report.mode == "quick"
        assert report.seed == 3

    def test_profile_sizes_reach_checks(self, stubbed_checks):
        run_validation(mode="full", seed=3)
        propagator = next(c for c in stubbed_checks if c[0] == "oracle.propagator")
        assert propagator[2]["n_satellites"] == FULL.propagator_satellites
        fuzz_checks = [c for c in stubbed_checks if c[0].startswith("fuzz")]
        assert not fuzz_checks  # fuzz goes through run_invariant, stubbed whole.

    def test_update_goldens_flag_propagates(self, stubbed_checks):
        report = run_validation(mode="quick", seed=3, update_goldens=True)
        assert report.goldens_updated
        for check in report.checks:
            if check.name.startswith("golden."):
                assert check.details["updated"]

    def test_crashed_check_becomes_error(self, stubbed_checks, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(oracles, "check_propagator_agreement", explode)
        report = run_validation(mode="quick", seed=3)
        crashed = report.checks[0]
        assert crashed.status == STATUS_ERROR
        assert "kaboom" in crashed.details["exception"]
        assert not report.ok
        assert report.counts["error"] == 1

    def test_elapsed_stamped(self, stubbed_checks):
        report = run_validation(mode="quick", seed=3)
        assert all(check.elapsed_s >= 0.0 for check in report.checks)


class TestRendering:
    def test_render_green_report(self, stubbed_checks, capsys):
        report = run_validation(mode="quick", seed=3)
        render_validation_report(report)
        out = capsys.readouterr().out
        assert "repro validate --quick (seed 3)" in out
        assert "-> OK" in out
        assert "oracle.propagator" in out

    def test_render_failure_details(self, stubbed_checks, monkeypatch, capsys):
        monkeypatch.setattr(
            goldens, "check_golden",
            lambda name, update=False: runner.CheckResult(
                name=f"golden.{name}", status="fail",
                details={"rtol": 1e-6, "atol": 1e-9, "fields_compared": 5,
                         "mismatches": ["values.x: 1 != golden 2"]},
            ),
        )
        report = run_validation(mode="quick", seed=3)
        render_validation_report(report)
        out = capsys.readouterr().out
        assert "-> FAILED" in out
        assert "values.x: 1 != golden 2" in out
        assert "5 fields, 1 drifted" in out

    def test_real_quick_run_summarizes_oracles(self, capsys):
        """One real (unstubbed) oracle row renders with its measurements."""
        check = oracles.check_propagator_agreement(
            seed=7, n_satellites=2, duration_s=3_600.0, step_s=1_200.0
        )
        assert "max error" in runner._summarize_details(check)
