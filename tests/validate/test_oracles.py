"""Tests for the differential oracle cross-checks.

Each oracle is exercised twice: once on healthy inputs (the check must
pass) and once with a fault injected (the check must have teeth and fail).
"""

import numpy as np
import pytest

from repro.validate import gen, oracles


class TestPropagatorOracle:
    def test_passes_on_healthy_paths(self):
        check = oracles.check_propagator_agreement(
            seed=7, n_satellites=4, duration_s=7_200.0, step_s=600.0
        )
        assert check.ok, check.details
        assert check.details["max_error_m"] < check.details["threshold_m"]
        assert check.details["worst_batch"] in ("circular", "mixed")

    def test_fails_when_threshold_impossible(self):
        """A sub-float-precision threshold must trip the gate (teeth)."""
        check = oracles.check_propagator_agreement(
            seed=7, n_satellites=2, duration_s=3_600.0, step_s=600.0,
            max_error_m=0.0,
        )
        assert not check.ok


class TestMaxRunLength:
    def test_empty_mask(self):
        assert oracles._max_run_length(np.zeros((2, 5), dtype=bool)) == 0

    def test_full_mask(self):
        assert oracles._max_run_length(np.ones((2, 5), dtype=bool)) == 5

    def test_interior_run(self):
        mask = np.array([[False, True, True, True, False, True]])
        assert oracles._max_run_length(mask) == 3


class TestEdgeAdjacent:
    def test_endpoints_always_adjacent(self):
        near = oracles._edge_adjacent(np.zeros((1, 6), dtype=bool))
        assert near[0, 0] and near[0, -1]
        assert not near[0, 2]

    def test_transition_marks_both_sides(self):
        mask = np.array([[False, False, True, True, False, False, False]])
        near = oracles._edge_adjacent(mask)
        # Samples 1-4 touch the two transitions; 5 is interior (endpoint 6 ok).
        assert near[0, 1] and near[0, 2] and near[0, 3] and near[0, 4]
        assert not near[0, 5]

    def test_union_over_masks(self):
        a = np.array([[False, True, False, False, False, False]])
        b = np.array([[False, False, False, True, False, False]])
        near = oracles._edge_adjacent(a, b)
        assert near[0, 1] and near[0, 3]


class TestVisibilityOracle:
    def test_passes_on_circular_domain(self):
        check = oracles.check_visibility_oracle(
            seed=11, n_satellites=8, n_sites=3, duration_s=7_200.0, step_s=60.0
        )
        assert check.ok, check.details
        assert check.details["interior_disagreements"] == 0
        assert (
            check.details["max_disagreement_run_steps"]
            <= check.details["edge_budget_steps"]
        )

    def test_fails_on_interior_disagreement(self, monkeypatch):
        """Shifting the exact-elevation reference must break the oracle."""
        real_elevation = oracles.elevation_deg

        def shifted(site_ecef, sat_ecef):
            return real_elevation(site_ecef, sat_ecef) - 10.0

        monkeypatch.setattr(oracles, "elevation_deg", shifted)
        check = oracles.check_visibility_oracle(
            seed=11, n_satellites=8, n_sites=3, duration_s=7_200.0, step_s=60.0
        )
        assert not check.ok
        assert check.details["disagreeing_samples"] > 0


class TestPackedOracle:
    def test_passes_including_empty_selections(self):
        check = oracles.check_packed_agreement(
            seed=13, n_satellites=12, n_sites=4, duration_s=3_600.0,
            step_s=60.0, n_subsets=3,
        )
        assert check.ok, check.details
        # (None, None) + three empty-selection spellings + 3 * n_subsets.
        assert check.details["selections"] == 13
        assert check.details["mismatches"] == []

    def test_reduction_reference_catches_corruption(self):
        """Flipping one packed bit must surface as a reduction mismatch."""
        rng = gen.trial_rng(13, 3)
        elements = gen.random_elements(rng, 6, max_eccentricity=0.0)
        sites = gen.random_sites(rng, 3)
        grid = gen.random_grid(rng, min_samples=32, max_samples=64)

        from repro.sim.visibility import VisibilityEngine, packed_visibility

        visible = VisibilityEngine(grid).visibility(elements, sites)
        packed = packed_visibility(elements, sites, grid)
        packed.packed[0, 0, 0] ^= 0x80  # Flip the first sample's bit.
        mismatches = oracles._unpacked_reductions_match(packed, visible, None, None)
        assert mismatches


class TestGenerators:
    def test_elements_in_domain(self):
        rng = gen.trial_rng(3, 9)
        elements = gen.random_elements(rng, 50, gen.MAX_DOMAIN_ECCENTRICITY)
        for element in elements:
            altitude_km = (element.semi_major_axis_m - 6.371e6) / 1e3
            assert 350.0 < altitude_km < 1500.0
            assert 0.0 <= element.eccentricity <= gen.MAX_DOMAIN_ECCENTRICITY
            assert (
                gen.INCLINATION_DEG_RANGE[0]
                <= element.inclination_deg
                <= gen.INCLINATION_DEG_RANGE[1]
            )

    def test_circular_by_default(self):
        rng = gen.trial_rng(3, 10)
        elements = gen.random_elements(rng, 20)
        assert all(element.eccentricity == 0.0 for element in elements)

    def test_grid_steps_are_integer_seconds(self):
        rng = gen.trial_rng(3, 11)
        for _ in range(20):
            grid = gen.random_grid(rng)
            assert grid.step_s == int(grid.step_s)
            assert grid.count >= 16

    def test_trial_rng_is_stateless(self):
        a = gen.trial_rng(42, 1, 2, 3).uniform(size=4)
        b = gen.trial_rng(42, 1, 2, 3).uniform(size=4)
        c = gen.trial_rng(42, 1, 2, 4).uniform(size=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_sites_have_valid_masks(self):
        rng = gen.trial_rng(3, 12)
        sites = gen.random_sites(rng, 30)
        for site in sites:
            assert -85.0 <= site.latitude_deg <= 85.0
            assert 5.0 <= site.min_elevation_deg <= 40.0


class TestIntervalOracle:
    def test_passes_on_healthy_engines(self):
        check = oracles.check_interval_agreement(
            seed=7, n_satellites=8, n_sites=3,
            duration_s=10_800.0, step_s=120.0,
        )
        assert check.ok, check.details["mismatches"]
        assert check.details["contacts"] > 0
        assert check.details["mismatches"] == []

    def test_fails_without_refinement_budget(self, monkeypatch):
        """Shifting every refined edge by two steps must trip the
        resampling identity (teeth)."""
        from repro.sim import intervals as intervals_module

        original = intervals_module.find_contact_intervals

        def corrupted(*args, **kwargs):
            contacts = original(*args, **kwargs)
            contacts.rise_s = contacts.rise_s + 240.0
            contacts.set_s = contacts.set_s + 240.0
            return contacts

        monkeypatch.setattr(
            intervals_module, "find_contact_intervals", corrupted
        )
        check = oracles.check_interval_agreement(
            seed=7, n_satellites=8, n_sites=3,
            duration_s=10_800.0, step_s=120.0,
        )
        assert not check.ok
        assert any(
            "pair_resample" in m for m in check.details["mismatches"]
        )

    def test_vacuous_comparison_fails(self, monkeypatch):
        """Zero contacts (e.g. a broken scan) must fail, not pass."""
        from repro.ground.sites import GroundSite

        def unreachable_sites(rng, count):
            return [
                GroundSite(
                    name=f"blind-{index}", latitude_deg=0.0,
                    longitude_deg=float(index), min_elevation_deg=89.99,
                )
                for index in range(count)
            ]

        monkeypatch.setattr(gen, "random_sites", unreachable_sites)
        check = oracles.check_interval_agreement(
            seed=7, n_satellites=2, n_sites=1,
            duration_s=3_600.0, step_s=600.0,
        )
        assert not check.ok
        assert check.details["contacts"] == 0
        assert any("vacuous" in m for m in check.details["mismatches"])
