"""Tests for the city database."""

import pytest

from repro.ground.cities import (
    CITIES,
    TAIPEI,
    city_by_name,
    population_weights,
    terminals_for_cities,
    top_cities,
)


class TestCityDatabase:
    def test_twenty_one_cities(self):
        assert len(CITIES) == 21

    def test_one_city_per_country(self):
        countries = [city.country for city in CITIES]
        assert len(countries) == len(set(countries))

    def test_melbourne_present(self):
        assert any(city.name == "Melbourne" for city in CITIES)

    def test_sorted_by_population_except_melbourne(self):
        populations = [city.population_millions for city in CITIES[:-1]]
        assert populations == sorted(populations, reverse=True)

    def test_all_major_continents_present(self):
        countries = {city.country for city in CITIES}
        # Asia, Americas, Europe, Africa, Oceania all represented.
        assert "Japan" in countries  # Asia
        assert "United States" in countries  # North America
        assert "Brazil" in countries  # South America
        assert "United Kingdom" in countries  # Europe
        assert "Nigeria" in countries  # Africa
        assert "Australia" in countries  # Oceania

    def test_coordinates_valid(self):
        for city in CITIES:
            assert -90.0 <= city.latitude_deg <= 90.0
            assert -180.0 <= city.longitude_deg <= 180.0

    def test_taipei(self):
        assert TAIPEI.country == "Taiwan"
        assert TAIPEI.latitude_deg == pytest.approx(25.03, abs=0.1)


class TestLookup:
    def test_by_name(self):
        assert city_by_name("Tokyo").country == "Japan"

    def test_case_insensitive(self):
        assert city_by_name("tokyo").name == "Tokyo"

    def test_taipei_lookup(self):
        assert city_by_name("Taipei") is TAIPEI

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown city"):
            city_by_name("Atlantis")


class TestTopCities:
    def test_first_is_tokyo(self):
        assert top_cities(1)[0].name == "Tokyo"

    def test_counts(self):
        for count in (1, 5, 21):
            assert len(top_cities(count)) == count

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            top_cities(0)
        with pytest.raises(ValueError):
            top_cities(22)


class TestTerminalsAndWeights:
    def test_terminals_for_cities(self):
        terminals = terminals_for_cities(CITIES[:3], min_elevation_deg=30.0)
        assert len(terminals) == 3
        assert all(terminal.min_elevation_deg == 30.0 for terminal in terminals)
        assert terminals[0].name == "Tokyo"

    def test_weights_sum_to_one(self):
        weights = population_weights(CITIES)
        assert sum(weights) == pytest.approx(1.0)

    def test_weights_ordered_like_population(self):
        weights = population_weights(CITIES[:5])
        assert weights == sorted(weights, reverse=True)

    def test_city_terminal_method(self):
        terminal = TAIPEI.terminal(min_elevation_deg=10.0, party="taiwan")
        assert terminal.party == "taiwan"
        assert terminal.latitude_deg == TAIPEI.latitude_deg
