"""Tests for ground-station-as-a-service pools."""

import pytest

from repro.ground.gsaas import (
    AWS_LIKE_SITES,
    GroundStationPool,
    PoolExhaustedError,
)


class TestRent:
    def test_rent_returns_station(self):
        pool = GroundStationPool()
        station = pool.rent("taiwan", "seoul")
        assert station.party == "taiwan"
        assert station.rented
        assert "seoul" in station.name

    def test_unknown_site_rejected(self):
        with pytest.raises(KeyError, match="unknown GSaaS site"):
            GroundStationPool().rent("x", "narnia")

    def test_exhaustion(self):
        pool = GroundStationPool(antennas_per_site=1)
        pool.rent("a", "seoul")
        with pytest.raises(PoolExhaustedError, match="no free antennas"):
            pool.rent("b", "seoul")

    def test_available_antennas_decrements(self):
        pool = GroundStationPool(antennas_per_site=2)
        assert pool.available_antennas("seoul") == 2
        pool.rent("a", "seoul")
        assert pool.available_antennas("seoul") == 1

    def test_station_coordinates_match_site(self):
        pool = GroundStationPool()
        station = pool.rent("a", "sydney")
        expected = next(site for site in AWS_LIKE_SITES if site[0] == "sydney")
        assert station.latitude_deg == expected[1]
        assert station.longitude_deg == expected[2]


class TestRentNearest:
    def test_nearest_to_taipei_is_seoul(self):
        pool = GroundStationPool()
        station = pool.rent_nearest("taiwan", 25.03, 121.56)
        assert "seoul" in station.name

    def test_nearest_to_sao_paulo(self):
        pool = GroundStationPool()
        station = pool.rent_nearest("brazil", -23.55, -46.63)
        assert "sao-paulo" in station.name

    def test_falls_back_when_nearest_full(self):
        pool = GroundStationPool(antennas_per_site=1)
        pool.rent("a", "seoul")
        station = pool.rent_nearest("b", 25.03, 121.56)
        assert "seoul" not in station.name

    def test_full_pool_raises(self):
        pool = GroundStationPool(
            sites=(("only", 0.0, 0.0),), antennas_per_site=1
        )
        pool.rent("a", "only")
        with pytest.raises(PoolExhaustedError, match="fully rented"):
            pool.rent_nearest("b", 0.0, 0.0)


class TestAccounting:
    def test_rental_cost(self):
        pool = GroundStationPool(price_per_minute=5.0)
        assert pool.rental_cost(10.0) == 50.0

    def test_negative_minutes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GroundStationPool().rental_cost(-1.0)

    def test_rentals_by_party(self):
        pool = GroundStationPool()
        pool.rent("a", "seoul")
        pool.rent("a", "sydney")
        pool.rent("b", "ohio")
        assert pool.rentals_by_party() == {"a": 2, "b": 1}
