"""Tests for ground sites."""

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_M
from repro.ground.sites import GroundSite, GroundStation, UserTerminal


class TestGroundSite:
    def test_ecef_on_surface(self):
        site = GroundSite("equator", 0.0, 0.0)
        assert np.linalg.norm(site.position_ecef) == pytest.approx(EARTH_RADIUS_M)

    def test_unit_vector(self):
        site = GroundSite("x", 45.0, 45.0)
        assert np.linalg.norm(site.unit_ecef) == pytest.approx(1.0)

    def test_default_elevation_mask(self):
        assert GroundSite("x", 0.0, 0.0).min_elevation_deg == 25.0

    def test_bad_latitude_rejected(self):
        with pytest.raises(ValueError, match="latitude"):
            GroundSite("x", 91.0, 0.0)

    def test_bad_longitude_rejected(self):
        with pytest.raises(ValueError, match="longitude"):
            GroundSite("x", 0.0, -500.0)

    def test_bad_mask_rejected(self):
        with pytest.raises(ValueError, match="elevation mask"):
            GroundSite("x", 0.0, 0.0, min_elevation_deg=90.0)

    def test_altitude_raises_site(self):
        low = GroundSite("low", 10.0, 10.0, altitude_m=0.0)
        high = GroundSite("high", 10.0, 10.0, altitude_m=2000.0)
        assert np.linalg.norm(high.position_ecef) > np.linalg.norm(low.position_ecef)


class TestUserTerminal:
    def test_defaults(self):
        terminal = UserTerminal("ut", 0.0, 0.0)
        assert terminal.party == ""
        assert terminal.demand_mbps == 100.0

    def test_party(self):
        terminal = UserTerminal("ut", 0.0, 0.0, party="taiwan")
        assert terminal.party == "taiwan"

    def test_is_ground_site(self):
        assert isinstance(UserTerminal("ut", 0.0, 0.0), GroundSite)


class TestGroundStation:
    def test_defaults(self):
        station = GroundStation("gs", 0.0, 0.0)
        assert station.capacity_mbps == 10_000.0
        assert not station.rented

    def test_rented_flag(self):
        station = GroundStation("gs", 0.0, 0.0, rented=True)
        assert station.rented
