"""Shared fixtures for the test suite.

Tests use short horizons (hours, not the paper's week) so the whole suite
runs in seconds; the experiment-level tests that need longer horizons are
marked slow.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.constellation.satellite import Constellation, Satellite

# Property tests run numpy-heavy code whose first call pays JIT/allocation
# warmup; disable the wall-clock deadline so they never flake on slow CI.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
from repro.constellation.walker import single_plane, walker_delta
from repro.ground.cities import TAIPEI
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def leo_elements() -> OrbitalElements:
    """A Starlink-like circular orbit."""
    return OrbitalElements.from_degrees(
        altitude_km=550.0, inclination_deg=53.0, raan_deg=40.0, mean_anomaly_deg=10.0
    )


@pytest.fixture
def eccentric_elements() -> OrbitalElements:
    """A mildly eccentric orbit to exercise the general propagation path."""
    return OrbitalElements.from_degrees(
        altitude_km=700.0,
        inclination_deg=63.4,
        raan_deg=120.0,
        arg_perigee_deg=270.0,
        mean_anomaly_deg=45.0,
        eccentricity=0.05,
    )


@pytest.fixture
def short_grid() -> TimeGrid:
    """Six hours at one-minute steps."""
    return TimeGrid.hours(6.0, step_s=60.0)


@pytest.fixture
def tiny_grid() -> TimeGrid:
    """Ninety minutes (about one orbit) at 30-second steps."""
    return TimeGrid(duration_s=90 * 60.0, step_s=30.0)


@pytest.fixture
def small_walker() -> Constellation:
    """A 40-satellite Walker delta constellation."""
    elements = walker_delta(40, 8, 1, inclination_deg=53.0, altitude_km=550.0)
    return Constellation(
        [
            Satellite(sat_id=f"W-{index:03d}", elements=element)
            for index, element in enumerate(elements)
        ],
        name="walker-40",
    )


@pytest.fixture
def plane_of_four() -> Constellation:
    """Four satellites 90 degrees apart in one plane (Fig. 4c base)."""
    elements = single_plane(4, 53.0, 546.0)
    return Constellation(
        [
            Satellite(sat_id=f"P4-{index}", elements=element)
            for index, element in enumerate(elements)
        ],
        name="plane-4",
    )


@pytest.fixture
def taipei_terminal():
    return TAIPEI.terminal()
