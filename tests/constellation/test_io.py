"""Tests for constellation serialization."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.constellation.io import (
    from_json,
    from_tle_text,
    satellite_from_dict,
    satellite_to_dict,
    to_json,
    to_tle_text,
)
from repro.constellation.satellite import Constellation, Satellite
from repro.orbits.elements import OrbitalElements


def _sat(sat_id="S1", party="taiwan", **element_kwargs):
    defaults = dict(
        altitude_km=550.0, inclination_deg=53.0, raan_deg=42.0,
        mean_anomaly_deg=123.0,
    )
    defaults.update(element_kwargs)
    return Satellite(
        sat_id=sat_id,
        elements=OrbitalElements.from_degrees(**defaults),
        name=f"name-{sat_id}",
        party=party,
        capacity_mbps=500.0,
    )


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = Constellation([_sat("A"), _sat("B", party="korea")], name="demo")
        restored = from_json(to_json(original))
        assert restored.name == "demo"
        assert len(restored) == 2
        for before, after in zip(original, restored):
            assert after.sat_id == before.sat_id
            assert after.party == before.party
            assert after.capacity_mbps == before.capacity_mbps
            assert after.elements.semi_major_axis_m == pytest.approx(
                before.elements.semi_major_axis_m
            )
            assert after.elements.raan_rad == pytest.approx(before.elements.raan_rad)

    def test_output_is_valid_json(self):
        parsed = json.loads(to_json(Constellation([_sat()])))
        assert parsed["schema_version"] == 1
        assert len(parsed["satellites"]) == 1

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            from_json("{not json")

    def test_wrong_schema_rejected(self):
        payload = json.loads(to_json(Constellation([_sat()])))
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            from_json(json.dumps(payload))

    def test_defaults_applied(self):
        data = satellite_to_dict(_sat())
        del data["party"]
        del data["capacity_mbps"]
        restored = satellite_from_dict(data)
        assert restored.party == "unassigned"
        assert restored.capacity_mbps == 1000.0

    @given(
        st.floats(400.0, 2000.0),
        st.floats(1.0, 179.0),
        st.floats(0.0, 359.9),
        st.floats(0.0, 0.05),
    )
    def test_roundtrip_random_orbits(self, altitude, inclination, raan, ecc):
        satellite = Satellite(
            sat_id="X",
            elements=OrbitalElements.from_degrees(
                altitude_km=altitude,
                inclination_deg=inclination,
                raan_deg=raan,
                eccentricity=ecc,
            ),
        )
        restored = from_json(to_json(Constellation([satellite])))[0]
        assert restored.elements.inclination_deg == pytest.approx(inclination)
        assert restored.elements.eccentricity == pytest.approx(ecc)


class TestTleRoundtrip:
    def test_export_import(self):
        original = Constellation([_sat("A"), _sat("B", raan_deg=120.0)])
        text = to_tle_text(original)
        restored = from_tle_text(text)
        assert len(restored) == 2
        for before, after in zip(original, restored):
            assert after.elements.inclination_deg == pytest.approx(
                before.elements.inclination_deg, abs=1e-3
            )
            assert after.elements.semi_major_axis_m == pytest.approx(
                before.elements.semi_major_axis_m, rel=1e-6
            )

    def test_party_metadata_dropped_and_defaulted(self):
        original = Constellation([_sat("A", party="taiwan")])
        restored = from_tle_text(to_tle_text(original), party="imported")
        assert restored[0].party == "imported"

    def test_names_preserved(self):
        original = Constellation([_sat("A")])
        restored = from_tle_text(to_tle_text(original))
        assert restored[0].name == "name-A"
