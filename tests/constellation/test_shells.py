"""Tests for synthetic megaconstellation shells."""

import numpy as np
import pytest

from repro.constellation.shells import (
    KUIPER_SHELLS,
    ONEWEB_SHELLS,
    STARLINK_SHELLS,
    ShellSpec,
    build_shell,
    kuiper_like_constellation,
    oneweb_like_constellation,
    starlink_like_constellation,
)


class TestShellSpecs:
    def test_starlink_gen1_total(self):
        assert sum(shell.total_satellites for shell in STARLINK_SHELLS) == 4408

    def test_kuiper_total(self):
        assert sum(shell.total_satellites for shell in KUIPER_SHELLS) == 3236

    def test_oneweb_total(self):
        assert sum(shell.total_satellites for shell in ONEWEB_SHELLS) == 588

    def test_starlink_shells_divide_into_planes(self):
        for shell in STARLINK_SHELLS:
            assert shell.total_satellites % shell.planes == 0


class TestBuildShell:
    def test_exact_count(self):
        spec = ShellSpec("test", 100, 10, 1, 53.0, 550.0)
        assert len(build_shell(spec)) == 100

    def test_no_jitter_is_deterministic(self):
        spec = ShellSpec("test", 20, 4, 1, 53.0, 550.0)
        a = build_shell(spec)
        b = build_shell(spec)
        assert all(x.raan_rad == y.raan_rad for x, y in zip(a, b))

    def test_jitter_requires_rng(self):
        spec = ShellSpec("test", 20, 4, 1, 53.0, 550.0)
        with pytest.raises(ValueError, match="rng"):
            build_shell(spec, raan_jitter_deg=1.0)

    def test_jitter_perturbs(self):
        spec = ShellSpec("test", 20, 4, 1, 53.0, 550.0)
        clean = build_shell(spec)
        jittered = build_shell(
            spec, rng=np.random.default_rng(0), raan_jitter_deg=1.0, phase_jitter_deg=2.0
        )
        assert any(
            abs(a.raan_rad - b.raan_rad) > 1e-9 for a, b in zip(clean, jittered)
        )

    def test_jitter_is_seeded(self):
        spec = ShellSpec("test", 20, 4, 1, 53.0, 550.0)
        a = build_shell(spec, rng=np.random.default_rng(5), raan_jitter_deg=1.0)
        b = build_shell(spec, rng=np.random.default_rng(5), raan_jitter_deg=1.0)
        assert all(x.raan_rad == y.raan_rad for x, y in zip(a, b))

    def test_star_shell_uses_half_span(self):
        spec = ShellSpec("polar", 24, 6, 1, 87.9, 1200.0, star=True)
        raans = sorted({round(e.raan_deg, 3) for e in build_shell(spec)})
        assert raans[-1] < 180.0


class TestFullConstellations:
    def test_starlink_size_and_ids_unique(self):
        constellation = starlink_like_constellation(
            rng=np.random.default_rng(0)
        )
        assert len(constellation) == 4408  # Uniqueness enforced by constructor.

    def test_starlink_inclination_mix(self):
        constellation = starlink_like_constellation(rng=np.random.default_rng(0))
        inclinations = {
            round(satellite.elements.inclination_deg, 1)
            for satellite in constellation
        }
        assert {53.0, 53.2, 70.0, 97.6} <= inclinations

    def test_kuiper_size(self):
        assert len(kuiper_like_constellation(np.random.default_rng(0))) == 3236

    def test_oneweb_size(self):
        assert len(oneweb_like_constellation(np.random.default_rng(0))) == 588

    def test_default_rng_reproducible(self):
        a = starlink_like_constellation()
        b = starlink_like_constellation()
        assert a[0].elements.raan_rad == b[0].elements.raan_rad
