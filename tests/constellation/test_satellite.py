"""Tests for Satellite and Constellation containers."""

import pytest

from repro.constellation.satellite import (
    Constellation,
    Satellite,
    UNASSIGNED_PARTY,
    from_elements,
)
from repro.orbits.elements import OrbitalElements


def _sat(sat_id, party=UNASSIGNED_PARTY):
    return Satellite(
        sat_id=sat_id,
        elements=OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0),
        party=party,
    )


class TestSatellite:
    def test_defaults(self):
        satellite = _sat("S1")
        assert satellite.party == UNASSIGNED_PARTY
        assert satellite.capacity_mbps == 1000.0

    def test_owned_by(self):
        owned = _sat("S1").owned_by("taiwan")
        assert owned.party == "taiwan"
        assert owned.sat_id == "S1"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _sat("S1").party = "x"


class TestConstellation:
    def test_len_and_iter(self):
        constellation = Constellation([_sat("A"), _sat("B")])
        assert len(constellation) == 2
        assert [satellite.sat_id for satellite in constellation] == ["A", "B"]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Constellation([_sat("A"), _sat("A")])

    def test_get(self):
        constellation = Constellation([_sat("A"), _sat("B")])
        assert constellation.get("B").sat_id == "B"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            Constellation([_sat("A")]).get("Z")

    def test_contains(self):
        constellation = Constellation([_sat("A")])
        assert "A" in constellation
        assert "B" not in constellation

    def test_empty_constellation_allowed(self):
        assert len(Constellation([])) == 0

    def test_by_party(self):
        constellation = Constellation(
            [_sat("A", "x"), _sat("B", "y"), _sat("C", "x")]
        )
        assert len(constellation.by_party("x")) == 2
        assert len(constellation.by_party("z")) == 0

    def test_without_party(self):
        constellation = Constellation(
            [_sat("A", "x"), _sat("B", "y"), _sat("C", "x")]
        )
        remaining = constellation.without_party("x")
        assert [satellite.sat_id for satellite in remaining] == ["B"]

    def test_party_counts(self):
        constellation = Constellation(
            [_sat("A", "x"), _sat("B", "y"), _sat("C", "x")]
        )
        assert constellation.party_counts() == {"x": 2, "y": 1}

    def test_parties_sorted(self):
        constellation = Constellation([_sat("A", "z"), _sat("B", "a")])
        assert constellation.parties == ["a", "z"]

    def test_union(self):
        left = Constellation([_sat("A")])
        right = Constellation([_sat("B")])
        assert len(left.union(right)) == 2

    def test_union_id_collision_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Constellation([_sat("A")]).union(Constellation([_sat("A")]))

    def test_add(self):
        grown = Constellation([_sat("A")]).add(_sat("B"))
        assert len(grown) == 2

    def test_remove_ids(self):
        constellation = Constellation([_sat("A"), _sat("B"), _sat("C")])
        remaining = constellation.remove_ids(["A", "C"])
        assert [satellite.sat_id for satellite in remaining] == ["B"]

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            Constellation([_sat("A")]).remove_ids(["B"])

    def test_take(self):
        constellation = Constellation([_sat("A"), _sat("B"), _sat("C")])
        taken = constellation.take([2, 0])
        assert [satellite.sat_id for satellite in taken] == ["C", "A"]

    def test_assign_parties(self):
        constellation = Constellation([_sat("A"), _sat("B")])
        assigned = constellation.assign_parties(
            lambda index, satellite: f"party-{index}"
        )
        assert assigned.get("A").party == "party-0"
        assert assigned.get("B").party == "party-1"

    def test_immutability_of_source(self):
        constellation = Constellation([_sat("A")])
        constellation.add(_sat("B"))
        assert len(constellation) == 1

    def test_elements_accessor(self):
        constellation = Constellation([_sat("A"), _sat("B")])
        assert len(constellation.elements) == 2

    def test_repr(self):
        constellation = Constellation([_sat("A")], name="demo")
        assert "demo" in repr(constellation)
        assert "1 satellites" in repr(constellation)


class TestFromElements:
    def test_generates_ids(self):
        elements = [
            OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        ] * 3
        constellation = from_elements(elements, prefix="T")
        assert [satellite.sat_id for satellite in constellation] == [
            "T-00000",
            "T-00001",
            "T-00002",
        ]

    def test_party_applied(self):
        elements = [
            OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        ]
        constellation = from_elements(elements, party="korea")
        assert constellation[0].party == "korea"
