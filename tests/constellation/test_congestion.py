"""Tests for orbital congestion analysis."""

import numpy as np
import pytest

from repro.constellation.congestion import (
    conjunction_analysis,
    independent_vs_shared_occupancy,
    shell_occupancy,
)
from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import single_plane, walker_delta
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid


def _constellation_from(elements, prefix="C"):
    return Constellation(
        [
            Satellite(sat_id=f"{prefix}-{index}", elements=element)
            for index, element in enumerate(elements)
        ]
    )


@pytest.fixture
def grid():
    return TimeGrid(duration_s=3600.0, step_s=300.0)


class TestConjunctions:
    def test_well_spaced_plane_no_conjunctions(self, grid):
        constellation = _constellation_from(single_plane(12, 53.0, 550.0))
        report = conjunction_analysis(constellation, grid)
        assert report.conjunction_events == 0
        assert report.min_separation_m > 100_000.0

    def test_colocated_pair_conjunctions_every_step(self, grid):
        element = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        close = element.with_phase_shift(0.05)  # ~6 km along-track.
        constellation = _constellation_from([element, close])
        report = conjunction_analysis(constellation, grid, threshold_m=10_000.0)
        assert report.conjunction_events == grid.count

    def test_rate_normalization(self, grid):
        element = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        constellation = _constellation_from([element, element.with_phase_shift(0.05)])
        report = conjunction_analysis(constellation, grid)
        days = grid.duration_s / 86_400.0
        assert report.conjunction_rate_per_day == pytest.approx(
            report.conjunction_events / days
        )

    def test_denser_constellation_more_congested(self, grid):
        sparse = _constellation_from(
            walker_delta(20, 4, 1, inclination_deg=53.0, altitude_km=550.0)
        )
        dense = _constellation_from(
            walker_delta(200, 20, 1, inclination_deg=53.0, altitude_km=550.0)
        )
        sparse_report = conjunction_analysis(sparse, grid, threshold_m=200_000.0)
        dense_report = conjunction_analysis(dense, grid, threshold_m=200_000.0)
        assert (
            dense_report.median_nearest_neighbor_m
            < sparse_report.median_nearest_neighbor_m
        )

    def test_rejects_bad_inputs(self, grid):
        constellation = _constellation_from(single_plane(2, 53.0, 550.0))
        with pytest.raises(ValueError, match="threshold"):
            conjunction_analysis(constellation, grid, threshold_m=0.0)
        single = _constellation_from(single_plane(1, 53.0, 550.0))
        with pytest.raises(ValueError, match="two satellites"):
            conjunction_analysis(single, grid)


class TestOccupancy:
    def test_single_shell(self):
        constellation = _constellation_from(single_plane(10, 53.0, 550.0))
        reports = shell_occupancy(constellation, band_width_km=20.0)
        assert len(reports) == 1
        assert reports[0].satellite_count == 10
        assert reports[0].altitude_band_km[0] <= 550.0 < reports[0].altitude_band_km[1]

    def test_two_shells_separated(self):
        low = single_plane(5, 53.0, 550.0)
        high = single_plane(7, 53.0, 1200.0)
        constellation = _constellation_from(low + high)
        reports = shell_occupancy(constellation, band_width_km=20.0)
        counts = sorted(report.satellite_count for report in reports)
        assert counts == [5, 7]

    def test_density_positive(self):
        constellation = _constellation_from(single_plane(10, 53.0, 550.0))
        report = shell_occupancy(constellation)[0]
        assert report.density_per_million_km3 > 0.0
        assert report.shell_volume_km3 > 0.0

    def test_empty_constellation(self):
        assert shell_occupancy(Constellation([])) == []

    def test_rejects_bad_band(self):
        constellation = _constellation_from(single_plane(2, 53.0, 550.0))
        with pytest.raises(ValueError, match="band width"):
            shell_occupancy(constellation, band_width_km=0.0)


class TestIndependentVsShared:
    def test_paper_scenario(self):
        """11 countries each launching 1000 satellites vs one shared 1000."""
        outcome = independent_vs_shared_occupancy(1000, 11, 1000)
        assert outcome["independent_total"] == 11_000
        assert outcome["orbital_objects_saved"] == 10_000

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            independent_vs_shared_occupancy(0, 2, 100)
