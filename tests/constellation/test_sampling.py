"""Tests for constellation sampling."""

import numpy as np
import pytest

from repro.constellation.sampling import (
    sample_constellation,
    sample_elements,
    split_randomly,
)


class TestSampleConstellation:
    def test_size(self, small_walker, rng):
        assert len(sample_constellation(small_walker, 10, rng)) == 10

    def test_without_replacement(self, small_walker, rng):
        sampled = sample_constellation(small_walker, 40, rng)
        assert len({satellite.sat_id for satellite in sampled}) == 40

    def test_subset_of_source(self, small_walker, rng):
        sampled = sample_constellation(small_walker, 15, rng)
        source_ids = {satellite.sat_id for satellite in small_walker}
        assert all(satellite.sat_id in source_ids for satellite in sampled)

    def test_seeded_reproducible(self, small_walker):
        a = sample_constellation(small_walker, 10, np.random.default_rng(1))
        b = sample_constellation(small_walker, 10, np.random.default_rng(1))
        assert [s.sat_id for s in a] == [s.sat_id for s in b]

    def test_different_seeds_differ(self, small_walker):
        a = sample_constellation(small_walker, 10, np.random.default_rng(1))
        b = sample_constellation(small_walker, 10, np.random.default_rng(2))
        assert [s.sat_id for s in a] != [s.sat_id for s in b]

    def test_oversample_rejected(self, small_walker, rng):
        with pytest.raises(ValueError, match="cannot sample"):
            sample_constellation(small_walker, 41, rng)

    def test_negative_rejected(self, small_walker, rng):
        with pytest.raises(ValueError, match="non-negative"):
            sample_constellation(small_walker, -1, rng)

    def test_zero_sample(self, small_walker, rng):
        assert len(sample_constellation(small_walker, 0, rng)) == 0

    def test_sample_elements(self, small_walker, rng):
        elements = sample_elements(small_walker, 5, rng)
        assert len(elements) == 5


class TestSplitRandomly:
    def test_half_split_sizes(self, small_walker, rng):
        kept, withdrawn = split_randomly(small_walker, 0.5, rng)
        assert len(kept) == 20
        assert len(withdrawn) == 20

    def test_disjoint_and_complete(self, small_walker, rng):
        kept, withdrawn = split_randomly(small_walker, 0.3, rng)
        kept_ids = {satellite.sat_id for satellite in kept}
        withdrawn_ids = {satellite.sat_id for satellite in withdrawn}
        assert not kept_ids & withdrawn_ids
        assert len(kept_ids | withdrawn_ids) == 40

    def test_zero_fraction(self, small_walker, rng):
        kept, withdrawn = split_randomly(small_walker, 0.0, rng)
        assert len(kept) == 40
        assert len(withdrawn) == 0

    def test_full_fraction(self, small_walker, rng):
        kept, withdrawn = split_randomly(small_walker, 1.0, rng)
        assert len(kept) == 0
        assert len(withdrawn) == 40

    def test_bad_fraction_rejected(self, small_walker, rng):
        with pytest.raises(ValueError, match="fraction"):
            split_randomly(small_walker, 1.5, rng)
