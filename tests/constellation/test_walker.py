"""Tests for Walker pattern generators."""

import numpy as np
import pytest

from repro.constellation.walker import single_plane, walker_delta, walker_star


class TestWalkerDelta:
    def test_count(self):
        assert len(walker_delta(40, 8, 1, 53.0, 550.0)) == 40

    def test_plane_count(self):
        shell = walker_delta(40, 8, 1, 53.0, 550.0)
        raans = {round(element.raan_deg, 6) for element in shell}
        assert len(raans) == 8

    def test_nodes_span_360(self):
        shell = walker_delta(40, 8, 1, 53.0, 550.0)
        raans = sorted({round(element.raan_deg, 6) for element in shell})
        assert raans[0] == pytest.approx(0.0)
        assert raans[-1] == pytest.approx(360.0 * 7 / 8)

    def test_in_plane_spacing_uniform(self):
        shell = walker_delta(40, 8, 1, 53.0, 550.0)
        plane0 = sorted(
            element.mean_anomaly_deg
            for element in shell
            if abs(element.raan_deg) < 1e-9
        )
        gaps = np.diff(plane0)
        assert np.allclose(gaps, 72.0)

    def test_phasing_factor_offsets_planes(self):
        shell = walker_delta(40, 8, 1, 53.0, 550.0)
        plane0 = min(
            element.mean_anomaly_deg
            for element in shell
            if abs(element.raan_deg) < 1e-9
        )
        plane1 = min(
            element.mean_anomaly_deg
            for element in shell
            if abs(element.raan_deg - 45.0) < 1e-9
        )
        assert (plane1 - plane0) % 360.0 == pytest.approx(360.0 / 40.0)

    def test_common_inclination_and_altitude(self):
        shell = walker_delta(40, 8, 1, 53.0, 550.0)
        assert all(element.inclination_deg == pytest.approx(53.0) for element in shell)
        assert all(element.altitude_km == pytest.approx(550.0) for element in shell)

    def test_uneven_division_rejected(self):
        with pytest.raises(ValueError, match="divide evenly"):
            walker_delta(41, 8, 1, 53.0, 550.0)

    def test_bad_phasing_rejected(self):
        with pytest.raises(ValueError, match="phasing_factor"):
            walker_delta(40, 8, 8, 53.0, 550.0)

    def test_zero_satellites_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            walker_delta(0, 1, 0, 53.0, 550.0)


class TestWalkerStar:
    def test_nodes_span_180(self):
        shell = walker_star(24, 6, 1, 87.9, 1200.0)
        raans = sorted({round(element.raan_deg, 6) for element in shell})
        assert raans[-1] == pytest.approx(180.0 * 5 / 6)

    def test_count(self):
        assert len(walker_star(24, 6, 1, 87.9, 1200.0)) == 24


class TestSinglePlane:
    def test_uniform_spacing(self):
        plane = single_plane(12, 53.0, 546.0)
        anomalies = sorted(element.mean_anomaly_deg for element in plane)
        assert np.allclose(np.diff(anomalies), 30.0)

    def test_common_plane(self):
        plane = single_plane(12, 53.0, 546.0)
        assert len({element.raan_deg for element in plane}) == 1

    def test_phase_offset(self):
        plane = single_plane(4, 53.0, 546.0, phase_offset_deg=5.0)
        assert min(element.mean_anomaly_deg for element in plane) == pytest.approx(5.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            single_plane(0, 53.0, 546.0)
