"""Tests for the Fig. 4 design-space helpers."""

import pytest

from repro.constellation.design import (
    altitude_variant,
    fig4b_base_constellation,
    fig4c_base_constellation,
    inclination_variant,
    phase_sweep_candidates,
    phase_variant,
)


class TestFig4bBase:
    def test_twelve_satellites(self):
        assert len(fig4b_base_constellation()) == 12

    def test_thirty_degree_spacing(self):
        base = fig4b_base_constellation()
        anomalies = sorted(s.elements.mean_anomaly_deg for s in base)
        gaps = [b - a for a, b in zip(anomalies, anomalies[1:])]
        assert all(gap == pytest.approx(30.0) for gap in gaps)

    def test_paper_parameters(self):
        base = fig4b_base_constellation()
        assert base[0].elements.inclination_deg == pytest.approx(53.0)
        assert base[0].elements.altitude_km == pytest.approx(546.0)


class TestPhaseSweep:
    def test_29_candidates(self):
        base = fig4b_base_constellation()[0].elements
        candidates = phase_sweep_candidates(base)
        assert len(candidates) == 29

    def test_one_degree_spacing(self):
        base = fig4b_base_constellation()[0].elements
        candidates = phase_sweep_candidates(base)
        offsets = [
            (c.elements.mean_anomaly_deg - base.mean_anomaly_deg) % 360.0
            for c in candidates
        ]
        assert offsets[0] == pytest.approx(1.0)
        assert offsets[-1] == pytest.approx(29.0)

    def test_same_plane(self):
        base = fig4b_base_constellation()[0].elements
        for candidate in phase_sweep_candidates(base):
            assert candidate.elements.raan_rad == base.raan_rad
            assert candidate.elements.inclination_rad == base.inclination_rad

    def test_rejects_zero_positions(self):
        base = fig4b_base_constellation()[0].elements
        with pytest.raises(ValueError, match="positive"):
            phase_sweep_candidates(base, positions=0)


class TestFig4cVariants:
    def test_base_has_four(self):
        assert len(fig4c_base_constellation()) == 4

    def test_inclination_variant(self):
        base = fig4c_base_constellation()[0].elements
        variant = inclination_variant(base, 43.0)
        assert variant.elements.inclination_deg == pytest.approx(43.0)
        assert variant.elements.altitude_km == pytest.approx(base.altitude_km)

    def test_altitude_variant(self):
        base = fig4c_base_constellation()[0].elements
        variant = altitude_variant(base, 600.0)
        assert variant.elements.altitude_km == pytest.approx(600.0)
        assert variant.elements.inclination_rad == base.inclination_rad
        assert variant.elements.mean_anomaly_rad == base.mean_anomaly_rad

    def test_phase_variant(self):
        base = fig4c_base_constellation()[0].elements
        variant = phase_variant(base, 45.0)
        assert (
            variant.elements.mean_anomaly_deg - base.mean_anomaly_deg
        ) % 360.0 == pytest.approx(45.0)
        assert variant.elements.altitude_km == pytest.approx(base.altitude_km)
