"""Tests for the analytic contact-interval engine and its interval algebra."""

import numpy as np
import pytest

from repro.ground.sites import GroundSite
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid
from repro.sim.intervals import (
    ContactIntervals,
    IntervalSet,
    find_contact_intervals,
    grouped_union_seconds,
    sweep_count_steps,
)
from repro.sim.visibility import VisibilityEngine


@pytest.fixture
def sites():
    return [
        GroundSite(
            name="taipei", latitude_deg=25.0, longitude_deg=121.5,
            min_elevation_deg=25.0,
        ),
        GroundSite(
            name="quito", latitude_deg=-0.2, longitude_deg=-78.5,
            min_elevation_deg=25.0,
        ),
        GroundSite(
            name="oslo", latitude_deg=59.9, longitude_deg=10.7,
            min_elevation_deg=25.0,
        ),
    ]


class TestIntervalSetNormalization:
    def test_zero_length_dropped(self):
        s = IntervalSet([10.0, 40.0], [10.0, 50.0], 0.0, 100.0)
        assert s.count == 1
        assert s.starts[0] == 40.0 and s.stops[0] == 50.0

    def test_touching_intervals_merge(self):
        s = IntervalSet([0.0, 5.0, 10.0], [5.0, 10.0, 15.0], 0.0, 100.0)
        assert s.count == 1
        assert s.total_s == 15.0

    def test_overlapping_intervals_merge(self):
        s = IntervalSet([0.0, 3.0], [8.0, 12.0], 0.0, 100.0)
        assert s.count == 1
        assert s.total_s == 12.0

    def test_clipped_to_horizon(self):
        s = IntervalSet([-10.0, 90.0], [5.0, 200.0], 0.0, 100.0)
        assert np.all(s.starts >= 0.0) and np.all(s.stops <= 100.0)
        assert s.total_s == 15.0

    def test_outside_horizon_dropped(self):
        s = IntervalSet([-20.0, 150.0], [-5.0, 170.0], 0.0, 100.0)
        assert s.count == 0

    def test_unsorted_input(self):
        s = IntervalSet([50.0, 10.0], [60.0, 20.0], 0.0, 100.0)
        assert list(s.starts) == [10.0, 50.0]


class TestIntervalSetAlgebra:
    def test_complement_involution(self):
        s = IntervalSet([10.0, 40.0], [20.0, 70.0], 0.0, 100.0)
        assert s.complement().complement() == s

    def test_complement_of_empty_is_full(self):
        empty = IntervalSet.empty(5.0, 50.0)
        full = IntervalSet.full(5.0, 50.0)
        assert empty.complement() == full
        assert full.complement() == empty

    def test_complement_includes_boundary_gaps(self):
        s = IntervalSet([10.0], [20.0], 0.0, 100.0)
        gaps = s.complement()
        assert gaps.count == 2
        assert list(gaps.starts) == [0.0, 20.0]
        assert list(gaps.stops) == [10.0, 100.0]

    def test_full_horizon_contact_has_no_gaps(self):
        s = IntervalSet.full(0.0, 100.0)
        assert s.gap_lengths_s().size == 0
        assert s.coverage_fraction == 1.0

    def test_intersect_via_de_morgan(self):
        a = IntervalSet([0.0, 50.0], [30.0, 80.0], 0.0, 100.0)
        b = IntervalSet([20.0, 70.0], [60.0, 90.0], 0.0, 100.0)
        meet = a.intersect(b)
        assert list(meet.starts) == [20.0, 50.0, 70.0]
        assert list(meet.stops) == [30.0, 60.0, 80.0]

    def test_union_inclusion_exclusion(self):
        a = IntervalSet([0.0, 50.0], [30.0, 80.0], 0.0, 100.0)
        b = IntervalSet([20.0, 70.0], [60.0, 90.0], 0.0, 100.0)
        assert a.union(b).total_s + a.intersect(b).total_s == pytest.approx(
            a.total_s + b.total_s
        )

    def test_mismatched_horizons_rejected(self):
        a = IntervalSet([0.0], [1.0], 0.0, 10.0)
        b = IntervalSet([0.0], [1.0], 0.0, 20.0)
        with pytest.raises(ValueError):
            a.union(b)

    def test_sample_half_open_membership(self):
        s = IntervalSet([10.0], [20.0], 0.0, 100.0)
        got = s.sample([9.999, 10.0, 15.0, 19.999, 20.0])
        assert list(got) == [False, True, True, True, False]

    def test_gap_lengths(self):
        s = IntervalSet([10.0, 40.0], [20.0, 90.0], 0.0, 100.0)
        assert list(s.gap_lengths_s()) == [10.0, 20.0, 10.0]


class TestGroupedSweeps:
    def test_grouped_union_matches_per_group_sets(self):
        rng = np.random.default_rng(11)
        n_groups = 5
        starts, stops, groups = [], [], []
        for g in range(n_groups):
            for _ in range(rng.integers(0, 8)):
                a = float(rng.uniform(0.0, 900.0))
                starts.append(a)
                stops.append(a + float(rng.uniform(0.0, 200.0)))
                groups.append(g)
        seconds = grouped_union_seconds(
            np.array(starts), np.array(stops),
            np.array(groups, dtype=np.intp), n_groups,
        )
        for g in range(n_groups):
            rows = [i for i, grp in enumerate(groups) if grp == g]
            expect = IntervalSet(
                [starts[i] for i in rows], [stops[i] for i in rows],
                -1e9, 1e9,
            ).total_s
            assert seconds[g] == pytest.approx(expect)

    def test_empty_groups_are_zero(self):
        seconds = grouped_union_seconds(
            np.array([1.0]), np.array([2.0]), np.array([2], dtype=np.intp), 4
        )
        assert list(seconds) == [0.0, 0.0, 1.0, 0.0]

    def test_sweep_count_steps(self):
        times, counts = sweep_count_steps(
            np.array([10.0, 15.0, 30.0]), np.array([20.0, 25.0, 40.0]), 0.0
        )
        assert times[0] == 0.0 and counts[0] == 0
        # Count at a time = value of the last step at or before it.
        probe = {5.0: 0, 12.0: 1, 17.0: 2, 22.0: 1, 27.0: 0, 35.0: 1, 45.0: 0}
        for t, expect in probe.items():
            idx = np.searchsorted(times, t, side="right") - 1
            assert counts[idx] == expect, t


class TestEngineParity:
    """The analytic engine against the dense grid tensor."""

    def _check_parity(self, constellation, sites, grid):
        reference = VisibilityEngine(grid).visibility(constellation, sites)
        contacts = find_contact_intervals(constellation, sites, grid)
        times = grid.times_s
        n_sites, n_sats, _ = reference.shape
        assert contacts.n_sites == n_sites
        assert contacts.n_satellites == n_sats
        assert contacts.n_contacts > 0, "vacuous: no contacts in fixture"
        for s in range(n_sites):
            for n in range(n_sats):
                mask = reference[s, n]
                pair = contacts.pair(s, n)
                assert np.array_equal(pair.sample(times), mask), (s, n)
                runs = int(mask[0]) + int(
                    np.count_nonzero(~mask[:-1] & mask[1:])
                )
                assert contacts.pair_count(s, n) == runs, (s, n)
            union_mask = reference[s].any(axis=0)
            assert np.array_equal(
                contacts.site_union(s).sample(times), union_mask
            ), s
            assert np.array_equal(
                contacts.sample_counts(times, s), reference[s].sum(axis=0)
            ), s
        return reference, contacts

    def test_resample_identity_circular(self, small_walker, sites, short_grid):
        self._check_parity(small_walker, sites, short_grid)

    def test_resample_identity_eccentric(self, sites, short_grid):
        elements = [
            OrbitalElements.from_degrees(
                altitude_km=550.0 + 40.0 * index,
                inclination_deg=53.0 + index,
                raan_deg=36.0 * index,
                mean_anomaly_deg=45.0 * index,
                eccentricity=0.015,
            )
            for index in range(10)
        ]
        self._check_parity(elements, sites, short_grid)

    def test_coverage_within_edge_budget(self, small_walker, sites, short_grid):
        reference, contacts = self._check_parity(small_walker, sites, short_grid)
        step = short_grid.step_s
        for s in range(len(sites)):
            union = contacts.site_union(s)
            budget = 2.0 * union.count * step / contacts.span_s
            drift = abs(
                union.coverage_fraction - float(reference[s].any(axis=0).mean())
            )
            assert drift <= budget

    def test_truncation_flags(self, small_walker, sites, short_grid):
        reference = VisibilityEngine(short_grid).visibility(small_walker, sites)
        contacts = find_contact_intervals(small_walker, sites, short_grid)
        for s in range(len(sites)):
            for n in range(len(small_walker)):
                rises, falls, t_start, t_end = contacts.pair_windows(s, n)
                mask = reference[s, n]
                if rises.size == 0:
                    assert not mask.any()
                    continue
                assert bool(t_start[0]) == bool(mask[0]), (s, n)
                assert bool(t_end[-1]) == bool(mask[-1]), (s, n)
                # Interior windows are never truncated.
                assert not t_start[1:].any() and not t_end[:-1].any()
                if t_start[0]:
                    assert rises[0] == short_grid.start_s
                if t_end[-1]:
                    assert falls[-1] == contacts.end_s

    def test_unrefined_edges_sit_on_scan_samples(
        self, small_walker, sites, short_grid
    ):
        contacts = find_contact_intervals(
            small_walker, sites, short_grid, refine=False
        )
        step = short_grid.step_s
        for edges in (contacts.rise_s, contacts.set_s):
            offsets = (edges - short_grid.start_s) / step
            assert np.allclose(offsets, np.round(offsets))

    def test_refinement_is_chunk_invariant(self, small_walker, sites, short_grid):
        base = find_contact_intervals(small_walker, sites, short_grid)
        for chunk in (1, 7, 1_000_000):
            other = find_contact_intervals(
                small_walker, sites, short_grid, chunk_size=chunk
            )
            assert np.array_equal(base.pair_offsets, other.pair_offsets), chunk
            assert np.allclose(base.rise_s, other.rise_s, atol=1e-6), chunk
            assert np.allclose(base.set_s, other.set_s, atol=1e-6), chunk


class TestContactIntervalsReductions:
    @pytest.fixture
    def contacts(self, small_walker, sites, short_grid):
        return find_contact_intervals(small_walker, sites, short_grid)

    def test_coverage_fractions_match_site_unions(self, contacts):
        subset = np.array([0, 3, 5, 11, 20])
        fractions = contacts.coverage_fractions(subset)
        for s in range(contacts.n_sites):
            expect = contacts.site_union(s, subset).coverage_fraction
            assert fractions[s] == pytest.approx(expect)

    def test_active_fractions_match_satellite_unions(self, contacts):
        subset = np.array([2, 7, 13])
        active = contacts.satellite_active_fractions(subset, [0, 2])
        for row, sat in enumerate(subset):
            expect = contacts.satellite_union(int(sat), [0, 2]).coverage_fraction
            assert active[row] == pytest.approx(expect)

    def test_empty_selections(self, contacts):
        assert contacts.coverage_fractions([]).tolist() == [0.0] * contacts.n_sites
        assert contacts.satellite_active_fractions([], None).size == 0
        assert contacts.satellite_active_fractions([1, 2], []).tolist() == [0.0, 0.0]
        assert contacts.contact_count(sat_indices=[]) == 0
        assert contacts.site_union(0, []).count == 0

    def test_contact_count_totals(self, contacts):
        per_pair = sum(
            contacts.pair_count(s, n)
            for s in range(contacts.n_sites)
            for n in range(contacts.n_satellites)
        )
        assert contacts.contact_count() == per_pair == contacts.n_contacts

    def test_k_coverage_monotone_in_k(self, contacts):
        fractions = [
            contacts.k_coverage_fraction(0, k) for k in range(1, 5)
        ]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] == pytest.approx(
            contacts.site_union(0).coverage_fraction
        )


class TestUnitPositionsAt:
    """Paired per-element evaluation against the full state matrix."""

    @pytest.mark.parametrize("eccentricity", [0.0, 0.02])
    def test_matches_positions_eci(self, eccentricity):
        from repro.orbits.propagator import BatchPropagator

        elements = [
            OrbitalElements.from_degrees(
                altitude_km=550.0 + 25.0 * index,
                inclination_deg=40.0 + 5.0 * index,
                raan_deg=60.0 * index,
                mean_anomaly_deg=80.0 * index,
                eccentricity=eccentricity,
            )
            for index in range(5)
        ]
        propagator = BatchPropagator(elements)
        times = np.linspace(0.0, 7200.0, 9)
        full = propagator.positions_eci(times)  # (N, T, 3)
        full_units = full / np.linalg.norm(full, axis=-1, keepdims=True)
        sat_idx = np.array([0, 2, 4, 1, 3, 0])
        probe_t = times[np.array([1, 3, 5, 7, 0, 8])]
        units = propagator.unit_positions_at(sat_idx, probe_t)
        for row, (n, t) in enumerate(zip(sat_idx, [1, 3, 5, 7, 0, 8])):
            np.testing.assert_allclose(
                units[row], full_units[n, t], atol=1e-9
            )
