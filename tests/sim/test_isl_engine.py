"""Tests for the ISL-capable bent-pipe engine."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.sites import GroundStation, UserTerminal
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator
from repro.sim.isl_engine import IslBentPipeSimulator


def _equatorial_sat(sat_id, mean_anomaly_deg, party="p1"):
    return Satellite(
        sat_id=sat_id,
        elements=OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1,
            mean_anomaly_deg=mean_anomaly_deg,
        ),
        party=party,
        capacity_mbps=1000.0,
    )


@pytest.fixture
def split_geometry():
    """Terminal at lon 0; the only ground station ~49 deg east (visible from
    a satellite near lon 49, far outside the terminal-visible satellite's
    footprint).  Satellites at 16-degree phase spacing chain the two."""
    terminal = UserTerminal(
        "ut", 0.0, 0.0, min_elevation_deg=25.0, party="p1", demand_mbps=100.0
    )
    station = GroundStation("gs", 0.0, 49.0, min_elevation_deg=25.0, party="p1")
    satellites = [
        _equatorial_sat(f"S{i}", mean_anomaly_deg=float(16 * i)) for i in range(4)
    ]
    return Constellation(satellites), [terminal], [station]


class TestIslEngine:
    def test_baseline_cannot_serve_split_geometry(self, split_geometry, rng):
        constellation, terminals, stations = split_geometry
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        baseline = BentPipeSimulator(constellation, terminals, stations, grid)
        result = baseline.run(rng)
        assert result.served_mbps.sum() == 0.0

    def test_isl_serves_split_geometry(self, split_geometry, rng):
        constellation, terminals, stations = split_geometry
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        simulator = IslBentPipeSimulator(constellation, terminals, stations, grid)
        result = simulator.run(rng)
        assert result.served_mbps.sum() > 0.0
        assert result.sessions

    def test_hop_cap_restores_baseline(self, split_geometry, rng):
        """With enough hops the chain works; with too few it does not."""
        constellation, terminals, stations = split_geometry
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        generous = IslBentPipeSimulator(
            constellation, terminals, stations, grid, max_hops=4
        ).run(rng)
        stingy = IslBentPipeSimulator(
            constellation, terminals, stations, grid, max_hops=1
        ).run(rng)
        assert generous.served_mbps.sum() > 0.0
        assert stingy.served_mbps.sum() <= generous.served_mbps.sum()

    def test_isl_superset_of_baseline(self, rng):
        """Whenever the baseline serves, the ISL engine serves at least as
        much (forwarding only adds eligibility)."""
        terminal = UserTerminal(
            "ut", 0.0, 0.0, min_elevation_deg=25.0, party="p1", demand_mbps=100.0
        )
        station = GroundStation("gs", 0.5, 0.5, min_elevation_deg=10.0, party="p1")
        constellation = Constellation(
            [_equatorial_sat(f"S{i}", float(30 * i)) for i in range(6)]
        )
        grid = TimeGrid.hours(2.0, step_s=120.0)
        base = BentPipeSimulator(constellation, [terminal], [station], grid).run(
            np.random.default_rng(0)
        )
        isl = IslBentPipeSimulator(
            constellation, [terminal], [station], grid
        ).run(np.random.default_rng(0))
        assert isl.served_mbps.sum() >= base.served_mbps.sum() - 1e-9

    def test_rejects_bad_params(self, split_geometry):
        constellation, terminals, stations = split_geometry
        grid = TimeGrid(duration_s=60.0, step_s=60.0)
        with pytest.raises(ValueError, match="range"):
            IslBentPipeSimulator(
                constellation, terminals, stations, grid, max_isl_range_m=0.0
            )
        with pytest.raises(ValueError, match="hops"):
            IslBentPipeSimulator(
                constellation, terminals, stations, grid, max_hops=0
            )

    def test_sessions_attribute_parties(self, split_geometry, rng):
        constellation, terminals, stations = split_geometry
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        result = IslBentPipeSimulator(
            constellation, terminals, stations, grid
        ).run(rng)
        for session in result.sessions:
            assert session.terminal_party == "p1"
            assert session.sat_party == "p1"
