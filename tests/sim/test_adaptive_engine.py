"""Tests for the adaptive-rate (MODCOD-limited) engine mode."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.sites import GroundStation, UserTerminal
from repro.links.bentpipe import BentPipeLink
from repro.links.budget import (
    KU_BAND_GATEWAY_DOWNLINK,
    KU_BAND_USER_UPLINK,
    LinkBudget,
)
from repro.links.channel import achievable_rates_bps_array, achievable_rate_bps
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator


@pytest.fixture
def ku_link():
    return BentPipeLink(
        uplink=KU_BAND_USER_UPLINK, downlink=KU_BAND_GATEWAY_DOWNLINK
    )


@pytest.fixture
def overhead_setup():
    terminal = UserTerminal(
        "ut", 0.0, 0.0, min_elevation_deg=25.0, party="p1", demand_mbps=1e6
    )
    station = GroundStation("gs", 0.5, 0.5, min_elevation_deg=10.0, party="p1")
    satellite = Satellite(
        sat_id="S1",
        elements=OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1
        ),
        party="p1",
        capacity_mbps=1e9,
    )
    return Constellation([satellite]), [terminal], [station]


class TestVectorizedRates:
    def test_matches_scalar(self):
        snrs = np.array([-10.0, 0.0, 5.0, 11.0, 20.0])
        vectorized = achievable_rates_bps_array(snrs, 1e6)
        for snr, rate in zip(snrs, vectorized):
            assert rate == pytest.approx(achievable_rate_bps(float(snr), 1e6))

    def test_monotone(self):
        snrs = np.linspace(-5.0, 20.0, 100)
        rates = achievable_rates_bps_array(snrs, 1e6)
        assert np.all(np.diff(rates) >= 0.0)


class TestAdaptiveEngine:
    def test_rate_capped_by_link(self, overhead_setup, ku_link, rng):
        constellation, terminals, stations = overhead_setup
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        adaptive = BentPipeSimulator(
            constellation, terminals, stations, grid, link=ku_link
        ).run(rng)
        served = adaptive.served_mbps[0, 0]
        # The link closes (positive rate) but cannot serve the absurd
        # 1 Tbps demand: the MODCOD ladder caps well below it.
        assert 0.0 < served < 1e6
        # Sanity: cap is bounded by best-MODCOD * bandwidth.
        ceiling = 4.453 * 62.5e6 / 1e6
        assert served <= ceiling + 1e-6

    def test_no_link_serves_full_demand(self, overhead_setup, rng):
        constellation, terminals, stations = overhead_setup
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        geometric = BentPipeSimulator(
            constellation, terminals, stations, grid
        ).run(rng)
        assert geometric.served_mbps[0, 0] == pytest.approx(1e6)

    def test_weak_link_means_outage(self, overhead_setup, rng):
        """A hopeless uplink budget yields zero service even with geometry."""
        constellation, terminals, stations = overhead_setup
        weak = BentPipeLink(
            uplink=LinkBudget(-60.0, -30.0, 14e9, 62.5e6),
            downlink=KU_BAND_GATEWAY_DOWNLINK,
        )
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        result = BentPipeSimulator(
            constellation, terminals, stations, grid, link=weak
        ).run(rng)
        assert result.served_mbps.sum() == 0.0
        assert not result.sessions

    def test_adaptive_never_exceeds_geometric(self, overhead_setup, ku_link):
        constellation, terminals, stations = overhead_setup
        grid = TimeGrid(duration_s=300.0, step_s=60.0)
        geometric = BentPipeSimulator(
            constellation, terminals, stations, grid
        ).run(np.random.default_rng(0))
        adaptive = BentPipeSimulator(
            constellation, terminals, stations, grid, link=ku_link
        ).run(np.random.default_rng(0))
        assert np.all(adaptive.served_mbps <= geometric.served_mbps + 1e-9)

    def test_modest_demand_unaffected_by_link(self, ku_link, rng):
        """When demand is far below the link ceiling, both modes agree."""
        terminal = UserTerminal(
            "ut", 0.0, 0.0, min_elevation_deg=25.0, party="p1", demand_mbps=50.0
        )
        station = GroundStation("gs", 0.5, 0.5, min_elevation_deg=10.0, party="p1")
        satellite = Satellite(
            sat_id="S1",
            elements=OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=0.1
            ),
            party="p1",
        )
        constellation = Constellation([satellite])
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        adaptive = BentPipeSimulator(
            constellation, [terminal], [station], grid, link=ku_link
        ).run(np.random.default_rng(1))
        geometric = BentPipeSimulator(
            constellation, [terminal], [station], grid
        ).run(np.random.default_rng(1))
        assert np.allclose(adaptive.served_mbps, geometric.served_mbps)
