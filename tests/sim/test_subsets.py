"""Brute-force agreement tests for the subset-query batch kernels.

Both engines' subset queries (:class:`repro.sim.kernels.subsets.SubsetQuery`
over packed bits, :class:`repro.sim.intervals.IntervalSubsetQuery` over CSR
windows) are held to the same contract: for every subset — random, empty,
or the full fleet — the query answers must be bit-identical to the
underlying full structures' reductions, and to brute-force unpacked boolean
arithmetic.  The fleet-scoped *build* paths (a streamed packed build / a
CSR restriction) must match the gather-from-full paths bit for bit.
"""

import numpy as np
import pytest

from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid
from repro.sim.intervals import IntervalSubsetQuery, find_contact_intervals
from repro.sim.kernels import SiteGeometry
from repro.sim.kernels.subsets import SubsetQuery, query_for_sites
from repro.sim.visibility import packed_visibility
from repro.validate import gen

N_SATELLITES = 24
N_SITES = 4
SEED = 77


@pytest.fixture(scope="module")
def world():
    """A small all-circular batch (circular => fleet-scoped builds are
    bit-identical to full-pool row gathers) with its grid artifacts."""
    rng = gen.trial_rng(SEED, 9, 0)
    elements = list(gen.random_elements(rng, N_SATELLITES, 0.0))
    sites = list(gen.random_sites(rng, N_SITES))
    grid = TimeGrid(duration_s=7_200.0, step_s=60.0)
    propagator = BatchPropagator(elements)
    visibility = packed_visibility(propagator, sites, grid)
    contacts = find_contact_intervals(propagator, sites, grid)
    return propagator, sites, grid, visibility, contacts


def _subsets(rng, fleet):
    """Random subsets of a fleet, plus the empty and full edge cases."""
    random = [
        rng.choice(fleet, size=int(rng.integers(1, fleet.size + 1)),
                   replace=False)
        for _ in range(8)
    ]
    return random + [np.asarray(fleet), fleet[:0]]


def _dense_bits(query):
    """Unpack a query's packed rows to (S, F, T) booleans — the brute force."""
    bits = np.unpackbits(query.packed, axis=2)[:, :, : query.n_times]
    return bits.astype(bool)


class TestSubsetQueryGrid:
    def test_pool_wide_matches_packed_reductions(self, world):
        _, _, _, visibility, _ = world
        rng = np.random.default_rng(SEED)
        query = SubsetQuery.from_visibility(visibility)
        for subset in _subsets(rng, np.arange(N_SATELLITES)):
            np.testing.assert_array_equal(
                query.coverage_fractions(subset),
                visibility.coverage_fractions(subset),
            )
            np.testing.assert_array_equal(
                query.satellite_active_fractions(subset),
                visibility.satellite_active_fractions(subset),
            )

    def test_fleet_scoped_matches_brute_force(self, world):
        _, _, _, visibility, _ = world
        rng = np.random.default_rng(SEED + 1)
        fleet = np.sort(rng.choice(N_SATELLITES, size=14, replace=False))
        query = SubsetQuery.from_visibility(visibility, fleet)
        dense = _dense_bits(query)  # (S, F, T) for the fleet
        for subset in _subsets(rng, fleet):
            local = np.searchsorted(fleet, subset)
            mask = dense[:, local, :]
            covered = (
                mask.any(axis=1).mean(axis=1)
                if subset.size
                else np.zeros(N_SITES)
            )
            np.testing.assert_array_equal(
                query.coverage_fractions(subset), covered
            )
            active = (
                mask.any(axis=0).mean(axis=1)
                if subset.size
                else np.zeros(0)
            )
            np.testing.assert_array_equal(
                query.satellite_active_fractions(subset), active
            )

    def test_k_coverage_matches_brute_force(self, world):
        _, _, _, visibility, _ = world
        rng = np.random.default_rng(SEED + 2)
        fleet = np.sort(rng.choice(N_SATELLITES, size=12, replace=False))
        query = SubsetQuery.from_visibility(visibility, fleet)
        dense = _dense_bits(query)
        subset = rng.choice(fleet, size=7, replace=False)
        local = np.searchsorted(fleet, subset)
        counts = dense[:, local, :].sum(axis=1)
        for site in range(N_SITES):
            np.testing.assert_array_equal(
                query.visible_counts(site, subset), counts[site]
            )
            for k in (1, 2, 3):
                assert query.k_coverage_fraction(site, k, subset) == float(
                    (counts[site] >= k).mean()
                )

    def test_streamed_build_bit_identical_to_gather(self, world):
        propagator, sites, grid, visibility, _ = world
        rng = np.random.default_rng(SEED + 3)
        fleet = np.sort(rng.choice(N_SATELLITES, size=10, replace=False))
        gathered = SubsetQuery.from_visibility(visibility, fleet)
        geometry = SiteGeometry(sites, grid)
        built = SubsetQuery.build(propagator, geometry, grid, fleet)
        np.testing.assert_array_equal(built.packed, gathered.packed)

    def test_site_restricted_view(self, world):
        _, _, _, visibility, _ = world
        query = SubsetQuery.from_visibility(visibility)
        sliced = query_for_sites(query, [2, 0])
        np.testing.assert_array_equal(
            sliced.coverage_fractions(None),
            query.coverage_fractions(None)[[2, 0]],
        )

    def test_out_of_fleet_subset_rejected(self, world):
        _, _, _, visibility, _ = world
        fleet = np.arange(5)
        query = SubsetQuery.from_visibility(visibility, fleet)
        with pytest.raises(KeyError):
            query.coverage_fractions(np.array([3, 7]))

    def test_duplicate_fleet_rejected(self, world):
        _, _, _, visibility, _ = world
        with pytest.raises(ValueError):
            SubsetQuery.from_visibility(visibility, np.array([1, 1, 2]))


class TestIntervalSubsetQuery:
    def test_pool_wide_matches_contacts_reductions(self, world):
        _, _, _, _, contacts = world
        rng = np.random.default_rng(SEED + 4)
        query = IntervalSubsetQuery.from_contacts(contacts)
        for subset in _subsets(rng, np.arange(N_SATELLITES)):
            np.testing.assert_array_equal(
                query.coverage_fractions(subset),
                contacts.coverage_fractions(subset),
            )
            np.testing.assert_array_equal(
                query.satellite_active_fractions(subset),
                contacts.satellite_active_fractions(subset),
            )

    def test_restricted_bit_identical_to_full(self, world):
        """The fleet-restricted precompute answers every subset with the
        exact bits the full CSR reduction produces."""
        _, _, _, _, contacts = world
        rng = np.random.default_rng(SEED + 5)
        fleet = np.sort(rng.choice(N_SATELLITES, size=13, replace=False))
        query = IntervalSubsetQuery.from_contacts(contacts, fleet)
        for subset in _subsets(rng, fleet):
            np.testing.assert_array_equal(
                query.coverage_fractions(subset),
                contacts.coverage_fractions(subset),
            )
            np.testing.assert_array_equal(
                query.satellite_active_fractions(subset),
                contacts.satellite_active_fractions(subset),
            )
        for site in range(N_SITES):
            subset = rng.choice(fleet, size=6, replace=False)
            assert query.k_coverage_fraction(
                site, 2, subset
            ) == contacts.k_coverage_fraction(site, 2, subset)

    def test_cold_fleet_scoped_build_matches_restriction(self, world):
        """Finding contacts for only the fleet's satellites produces the
        same windows as restricting the full-pool CSR."""
        propagator, sites, grid, _, contacts = world
        rng = np.random.default_rng(SEED + 6)
        fleet = np.sort(rng.choice(N_SATELLITES, size=9, replace=False))
        cold = find_contact_intervals(propagator.subset(fleet), sites, grid)
        warm = contacts.restrict(fleet)
        np.testing.assert_array_equal(cold.rise_s, warm.rise_s)
        np.testing.assert_array_equal(cold.set_s, warm.set_s)
        np.testing.assert_array_equal(cold.pair_offsets, warm.pair_offsets)

    def test_out_of_fleet_subset_rejected(self, world):
        _, _, _, _, contacts = world
        query = IntervalSubsetQuery.from_contacts(contacts, np.arange(5))
        with pytest.raises(KeyError):
            query.coverage_fractions(np.array([2, 9]))

    def test_duplicate_fleet_rejected(self, world):
        _, _, _, _, contacts = world
        with pytest.raises(ValueError):
            IntervalSubsetQuery.from_contacts(contacts, np.array([0, 0]))
