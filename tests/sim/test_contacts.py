"""Tests for contact plans."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.cities import TAIPEI
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid
from repro.sim.contacts import (
    contact_events,
    contact_plan,
    pass_statistics,
    per_satellite_daily_minutes,
)


@pytest.fixture
def grid():
    return TimeGrid(duration_s=600.0, step_s=60.0)


class TestContactEvents:
    def test_extraction(self, grid):
        visibility = np.zeros((1, 2, 10), dtype=bool)
        visibility[0, 0, 2:5] = True  # One window for sat A.
        visibility[0, 1, 7:9] = True  # One window for sat B.
        events = contact_events(visibility, ["site"], ["A", "B"], grid)
        assert len(events) == 2
        assert events[0].sat_id == "A"
        assert events[0].start_s == 120.0
        assert events[0].stop_s == 300.0
        assert events[1].sat_id == "B"

    def test_multiple_windows_per_pair(self, grid):
        visibility = np.zeros((1, 1, 10), dtype=bool)
        visibility[0, 0, 1:3] = True
        visibility[0, 0, 6:8] = True
        events = contact_events(visibility, ["s"], ["A"], grid)
        assert len(events) == 2

    def test_sorted_by_start(self, grid):
        visibility = np.zeros((2, 1, 10), dtype=bool)
        visibility[0, 0, 5:6] = True
        visibility[1, 0, 1:2] = True
        events = contact_events(visibility, ["x", "y"], ["A"], grid)
        assert [event.site_name for event in events] == ["y", "x"]

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError, match="site names"):
            contact_events(np.zeros((2, 1, 5), dtype=bool), ["one"], ["A"], grid)
        with pytest.raises(ValueError, match="sat ids"):
            contact_events(np.zeros((1, 2, 5), dtype=bool), ["one"], ["A"], grid)

    def test_narrated_onto_timeline(self, grid):
        from repro.obs import timeline as obs_timeline

        obs_timeline.reset()
        try:
            visibility = np.zeros((1, 1, 10), dtype=bool)
            visibility[0, 0, 2:5] = True
            contact_events(visibility, ["taipei"], ["A"], grid)
            begins = obs_timeline.events(kind=obs_timeline.CONTACT_BEGIN)
            ends = obs_timeline.events(kind=obs_timeline.CONTACT_END)
            assert len(begins) == len(ends) == 1
            assert begins[0].subject == "A"
            assert begins[0].t_s == 120.0
            assert begins[0].attrs["site"] == "taipei"
            assert begins[0].attrs["duration_hint_s"] == pytest.approx(180.0)
            assert ends[0].t_s == 300.0
        finally:
            obs_timeline.reset()


class TestTruncatedPasses:
    def test_open_pass_closes_at_horizon_end(self):
        # 630 s horizon sampled at 60 s: 10 samples, last at 540 s — the
        # horizon end (630 s) lies beyond the last sampled instant.
        grid = TimeGrid(duration_s=630.0, step_s=60.0)
        visibility = np.zeros((1, 1, 10), dtype=bool)
        visibility[0, 0, 7:] = True  # Still visible at the final sample.
        events = contact_events(visibility, ["site"], ["A"], grid)
        assert len(events) == 1
        assert events[0].truncated
        assert events[0].stop_s == 630.0  # start + duration, not last sample.

    def test_interior_pass_is_not_truncated(self, grid):
        visibility = np.zeros((1, 1, 10), dtype=bool)
        visibility[0, 0, 2:5] = True
        events = contact_events(visibility, ["site"], ["A"], grid)
        assert len(events) == 1
        assert not events[0].truncated

    def test_truncated_duration_counted_to_horizon(self):
        grid = TimeGrid(duration_s=630.0, step_s=60.0)
        visibility = np.zeros((1, 1, 10), dtype=bool)
        visibility[0, 0, 9:] = True
        events = contact_events(visibility, ["site"], ["A"], grid)
        assert events[0].start_s == 540.0
        assert events[0].duration_s == pytest.approx(90.0)


class TestContactEventsFromIntervals:
    def test_matches_grid_events(self, small_walker):
        from repro.sim.contacts import contact_plan_intervals

        grid = TimeGrid.hours(3.0, step_s=60.0)
        grid_events = contact_plan(small_walker, [TAIPEI.terminal()], grid)
        interval_events = contact_plan_intervals(
            small_walker, [TAIPEI.terminal()], grid
        )
        assert len(interval_events) == len(grid_events)
        for grid_event, interval_event in zip(grid_events, interval_events):
            assert interval_event.sat_id == grid_event.sat_id
            assert interval_event.truncated == grid_event.truncated
            # Analytic edges stay within one scan step of the grid edges.
            assert abs(interval_event.start_s - grid_event.start_s) <= 60.0
            assert abs(interval_event.stop_s - grid_event.stop_s) <= 60.0

    def test_shape_validation(self, small_walker):
        from repro.sim.contacts import contact_events_from_intervals
        from repro.sim.intervals import find_contact_intervals

        grid = TimeGrid.hours(1.0, step_s=60.0)
        contacts = find_contact_intervals(
            small_walker, [TAIPEI.terminal()], grid
        )
        with pytest.raises(ValueError, match="site names"):
            contact_events_from_intervals(contacts, [], ["x"] * 40)
        with pytest.raises(ValueError, match="sat ids"):
            contact_events_from_intervals(contacts, ["taipei"], ["x"])


class TestPassStatistics:
    def test_empty(self, grid):
        stats = pass_statistics([], grid)
        assert stats.pass_count == 0
        assert stats.total_contact_s == 0.0
        assert stats.mean_pass_s == 0.0
        assert stats.max_pass_s == 0.0
        assert stats.contact_minutes_per_day == 0.0

    def test_empty_on_invisible_site(self, small_walker):
        """A site no satellite ever sees yields zeroed statistics, not NaN."""
        from repro.ground.sites import GroundSite

        grid = TimeGrid.hours(1.0, step_s=60.0)
        unreachable = GroundSite(
            name="north-pole", latitude_deg=89.9, longitude_deg=0.0,
            min_elevation_deg=85.0,
        )
        events = contact_plan(small_walker, [unreachable], grid)
        stats = pass_statistics(events, grid)
        assert events == []
        assert stats.pass_count == 0
        assert stats.mean_pass_s == 0.0

    def test_aggregation(self, grid):
        visibility = np.zeros((1, 1, 10), dtype=bool)
        visibility[0, 0, 0:2] = True
        visibility[0, 0, 5:9] = True
        events = contact_events(visibility, ["s"], ["A"], grid)
        stats = pass_statistics(events, grid)
        assert stats.pass_count == 2
        assert stats.total_contact_s == 360.0
        assert stats.max_pass_s == 240.0
        assert stats.mean_pass_s == 180.0


class TestEndToEnd:
    def test_paper_quote_few_minutes_per_day(self):
        """§2: 'a single satellite can only offer few (less than ten)
        minutes of coverage per day to a given region.'"""
        satellite = Satellite(
            sat_id="S",
            elements=OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=53.0, raan_deg=30.0
            ),
        )
        constellation = Constellation([satellite])
        grid = TimeGrid.one_week(step_s=60.0)
        minutes = per_satellite_daily_minutes(
            constellation, TAIPEI.terminal(), grid
        )
        assert 0.0 <= minutes["S"] < 10.0

    def test_contact_plan_matches_engine(self, small_walker):
        grid = TimeGrid.hours(3.0, step_s=60.0)
        events = contact_plan(small_walker, [TAIPEI.terminal()], grid)
        # Total contact time equals the per-satellite activity sum.
        from repro.sim.visibility import VisibilityEngine

        visibility = VisibilityEngine(grid).visibility(
            small_walker, [TAIPEI.terminal()]
        )
        expected_s = visibility.sum() * grid.step_s
        total_s = sum(event.duration_s for event in events)
        assert total_s == pytest.approx(expected_s)
