"""Streaming kernels vs the materialized reference: exact equality.

Every test here compares a streaming reduction against plain numpy
reductions of the full (S, N, T) tensor with `np.array_equal` — not
almost-equal.  The streaming rewrite is only admissible because it is
bit-identical; these tests are the gate.
"""

import numpy as np
import pytest

from repro.constellation.walker import walker_delta
from repro.ground.sites import GroundSite
from repro.obs import metrics
from repro.orbits.elements import OrbitalElements
from repro.orbits.propagator import BatchPropagator
from repro.sim import kernels
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine, packed_visibility


GRID = TimeGrid(duration_s=7_500.0, step_s=60.0)  # 125 samples: not 8-aligned.

SITES = [
    GroundSite("equator", 0.0, 10.0, min_elevation_deg=25.0),
    GroundSite("mid", 45.0, -70.0, min_elevation_deg=25.0),
    GroundSite("taipei-ish", 25.0, 121.5, min_elevation_deg=25.0),
    GroundSite("polar", 78.0, 15.0, min_elevation_deg=25.0),
]

#: Without the equator site the 10 deg shell below is unreachable from
#: every site, so satellite-level culling fires (at a 25 deg mask the
#: coverage footprint half-angle is ~8.5 deg: a 45 deg-latitude site needs
#: inclination above ~36 deg, Taipei above ~16 deg).
CULL_SITES = SITES[1:]

#: Chunk-size corners: one sample per slab, a prime, the default, > T.
CHUNKS = (1, 13, kernels.DEFAULT_STREAM_CHUNK, 100_000)


def _shell(count, planes, inclination_deg, altitude_km=550.0):
    return walker_delta(
        count,
        planes,
        1 % planes,
        inclination_deg=inclination_deg,
        altitude_km=altitude_km,
    )


@pytest.fixture(scope="module")
def mixed_pool():
    """Low- and mid-inclination shells: polar site cullable, others not."""
    return _shell(24, 3, 10.0) + _shell(24, 3, 53.0)


@pytest.fixture(scope="module")
def reference(mixed_pool):
    """The materialized unculled tensor and its plain numpy reductions."""
    visible = VisibilityEngine(GRID).visibility(mixed_pool, SITES, cull=False)
    return visible


class TestStreamingEqualsMaterialized:
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_site_coverage(self, mixed_pool, reference, chunk):
        plan = _plan(mixed_pool, SITES, chunk)
        assert np.array_equal(
            kernels.stream_site_coverage(plan), reference.any(axis=1)
        )

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_satellite_activity(self, mixed_pool, reference, chunk):
        plan = _plan(mixed_pool, SITES, chunk)
        assert np.array_equal(
            kernels.stream_satellite_activity(plan), reference.any(axis=0)
        )

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_visible_counts(self, mixed_pool, reference, chunk):
        plan = _plan(mixed_pool, SITES, chunk)
        counts = kernels.stream_visible_counts(plan)
        assert counts.dtype == np.uint16
        assert np.array_equal(counts, reference.sum(axis=1))

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_packed_bits(self, mixed_pool, reference, chunk):
        packed = packed_visibility(mixed_pool, SITES, GRID, chunk_size=chunk)
        assert np.array_equal(packed.site_masks(), reference.any(axis=1))
        # Unpack fully: every bit, not just the OR reduction.
        unpacked = np.unpackbits(packed.packed, axis=2)[:, :, : GRID.count]
        assert np.array_equal(unpacked.astype(bool), reference)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_primed_track_is_bit_neutral(self, mixed_pool, reference, chunk):
        geometry = kernels.SiteGeometry(SITES, GRID)
        geometry.prime_track()
        assert geometry.track_primed
        propagator = BatchPropagator(mixed_pool)
        plan = kernels.plan_stream(propagator, geometry, GRID, chunk_size=chunk)
        assert np.array_equal(
            kernels.stream_site_coverage(plan), reference.any(axis=1)
        )

    def test_engine_reductions_stream(self, mixed_pool, reference):
        engine = VisibilityEngine(GRID)
        assert np.array_equal(
            engine.site_coverage(mixed_pool, SITES), reference.any(axis=1)
        )
        assert np.array_equal(
            engine.satellite_activity(mixed_pool, SITES), reference.any(axis=0)
        )
        assert np.array_equal(
            engine.visible_counts(mixed_pool, SITES), reference.sum(axis=1)
        )


def _plan(elements, sites, chunk, cull=True):
    return kernels.plan_stream(
        BatchPropagator(list(elements)),
        kernels.SiteGeometry(sites, GRID),
        GRID,
        chunk_size=chunk,
        cull=cull,
    )


class TestDegenerateSites:
    def test_empty_site_set_streams(self, mixed_pool):
        plan = _plan(mixed_pool, [], 13)
        coverage = kernels.stream_site_coverage(plan)
        assert coverage.shape == (0, GRID.count)
        activity = kernels.stream_satellite_activity(plan)
        assert activity.shape == (len(mixed_pool), GRID.count)
        assert not activity.any()  # No sites: no satellite is ever active.
        counts = kernels.stream_visible_counts(_plan(mixed_pool, [], 13))
        assert counts.shape == (0, GRID.count)

    def test_engine_still_rejects_empty_sites(self, mixed_pool):
        with pytest.raises(ValueError, match="at least one ground site"):
            VisibilityEngine(GRID).site_coverage(mixed_pool, [])

    def test_single_site_single_satellite(self):
        elements = _shell(1, 1, 53.0)
        site = [SITES[2]]
        visible = VisibilityEngine(GRID).visibility(elements, site, cull=False)
        for chunk in CHUNKS:
            plan = _plan(elements, site, chunk)
            assert np.array_equal(
                kernels.stream_site_coverage(plan), visible.any(axis=1)
            )

    def test_all_pairs_infeasible_short_circuits(self):
        """Polar site x equatorial shell: nothing visible, nothing propagated."""
        elements = _shell(16, 2, 5.0)
        site = [SITES[3]]  # 78 deg latitude.
        plan = _plan(elements, site, 13)
        assert plan.nothing_visible
        assert not kernels.stream_site_coverage(plan).any()


class TestCulling:
    def test_polar_low_inclination_pair_is_culled(self, mixed_pool):
        plan = _plan(mixed_pool, SITES, 13)
        # The 10 deg shell (24 satellites) can never reach the 78 deg site.
        assert plan.culled_pairs >= 24
        feasible = plan.feasible
        assert not feasible[3, :24].any()  # Every low-inclination pair culled.
        # The 53 deg shell overflies the equator/mid/Taipei latitudes.
        assert feasible[:3, 24:].all()

    def test_cull_skips_propagation_entirely(self):
        """A fully culled population costs zero state evaluations."""
        elements = _shell(16, 2, 5.0)
        plan = _plan(elements, [SITES[3]], 13)
        assert plan.nothing_visible
        evals = metrics.counter("orbits.propagator.state_evaluations")
        before = evals.value
        kernels.stream_site_coverage(plan)
        assert evals.value == before

    def test_partial_cull_propagates_only_reachable(self, mixed_pool):
        # One chunk: one propagation call over the whole grid.
        plan = _plan(mixed_pool, CULL_SITES, 100_000)
        assert plan.culled_satellites == 24
        assert plan.active_propagator.count == 24
        evals = metrics.counter("orbits.propagator.state_evaluations")
        before = evals.value
        kernels.stream_site_coverage(plan)
        assert evals.value - before == 24 * GRID.count  # Not 48 * count.

    def test_culled_results_bit_identical(self, mixed_pool):
        expected = VisibilityEngine(GRID).visibility(
            mixed_pool, CULL_SITES, cull=False
        )
        for chunk in (13, 100_000):
            culled = _plan(mixed_pool, CULL_SITES, chunk, cull=True)
            unculled = _plan(mixed_pool, CULL_SITES, chunk, cull=False)
            assert culled.culled_satellites == 24
            assert unculled.culled_satellites == 0
            assert np.array_equal(
                kernels.stream_site_coverage(culled),
                kernels.stream_site_coverage(unculled),
            )
        assert np.array_equal(
            kernels.stream_site_coverage(_plan(mixed_pool, CULL_SITES, 13)),
            expected.any(axis=1),
        )

    def test_cull_metrics_accounted(self, mixed_pool):
        pairs = metrics.counter("sim.visibility.culled_pairs")
        sats = metrics.counter("sim.visibility.culled_satellites")
        before_pairs, before_sats = pairs.value, sats.value
        plan = _plan(mixed_pool, CULL_SITES, 13)
        assert pairs.value - before_pairs == plan.culled_pairs > 0
        assert sats.value - before_sats == plan.culled_satellites == 24
        assert metrics.gauge("sim.visibility.cull_fraction").value > 0.0

    def test_eccentric_pool_streams_unculled_but_identical(self):
        """Eccentric orbits: the cull counts pairs but must not subset the
        batch Kepler solve; results still match the materialized path."""
        elements = [
            OrbitalElements.from_degrees(
                altitude_km=550.0 + 10.0 * index,
                inclination_deg=8.0,
                raan_deg=36.0 * index,
                mean_anomaly_deg=24.0 * index,
                eccentricity=0.01,
            )
            for index in range(10)
        ]
        propagator = BatchPropagator(elements)
        assert not propagator.all_circular
        plan = _plan(elements, SITES, 13)
        assert plan.culled_pairs > 0  # The polar site can't see an 8 deg shell...
        assert plan.culled_satellites == 0  # ...but no satellite is dropped.
        visible = VisibilityEngine(GRID).visibility(elements, SITES, cull=False)
        assert np.array_equal(
            kernels.stream_site_coverage(plan), visible.any(axis=1)
        )

    def test_cull_mask_is_conservative(self, mixed_pool):
        """No satellite with any actual visibility may ever be culled."""
        visible = VisibilityEngine(GRID).visibility(mixed_pool, SITES, cull=False)
        plan = _plan(mixed_pool, SITES, 13)
        seen = visible.any(axis=2)  # (S, N) pairs with real contact time
        assert not (seen & ~plan.feasible).any()


class TestDefaultChunkSize:
    def test_large_population_gets_memory_bounded_chunk(self):
        assert (
            kernels.default_chunk_size(22, 4408) == kernels.DEFAULT_STREAM_CHUNK
        )

    def test_small_population_gets_wide_chunk(self):
        assert kernels.default_chunk_size(21, 12) == kernels.MAX_STREAM_CHUNK

    def test_always_a_multiple_of_eight_within_bounds(self):
        for sites, sats in ((1, 1), (3, 700), (22, 4408), (0, 50), (5, 0)):
            chunk = kernels.default_chunk_size(sites, sats)
            assert chunk % 8 == 0
            assert (
                kernels.DEFAULT_STREAM_CHUNK
                <= chunk
                <= kernels.MAX_STREAM_CHUNK
            )

    def test_plan_uses_adaptive_default(self, mixed_pool):
        geometry = kernels.SiteGeometry(SITES, GRID)
        plan = kernels.plan_stream(
            BatchPropagator(mixed_pool), geometry, GRID, chunk_size=None
        )
        assert plan.chunk_size == kernels.default_chunk_size(
            len(SITES), len(mixed_pool)
        )


class TestSiteGeometry:
    def test_radii_match_per_site_norms(self):
        geometry = kernels.SiteGeometry(SITES, GRID)
        expected = np.array(
            [np.linalg.norm(site.position_ecef) for site in SITES]
        )
        assert np.array_equal(geometry.radii_m, expected)

    def test_empty_sites(self):
        geometry = kernels.SiteGeometry([], GRID)
        assert geometry.n_sites == 0
        assert geometry.radii_m.shape == (0,)
        assert geometry.unit_ecef.shape == (0, 3)

    def test_track_slices_match_direct_chunks(self):
        geometry = kernels.SiteGeometry(SITES, GRID)
        direct = [
            geometry.units_chunk(offset, times)
            for offset, times in _offsets(GRID, 13)
        ]
        geometry.prime_track()
        for (offset, times), expected in zip(_offsets(GRID, 13), direct):
            sliced = geometry.units_chunk(offset, times)
            assert sliced.flags["C_CONTIGUOUS"]
            assert np.array_equal(sliced, expected)

    def test_thresholds_cached_per_propagator(self, mixed_pool):
        geometry = kernels.SiteGeometry(SITES, GRID)
        propagator = BatchPropagator(mixed_pool)
        first = geometry.thresholds(propagator)
        assert geometry.thresholds(propagator) is first
        assert geometry.thresholds(BatchPropagator(mixed_pool)) is not first

    def test_invalid_chunk_sizes_rejected(self, mixed_pool):
        geometry = kernels.SiteGeometry(SITES, GRID)
        propagator = BatchPropagator(mixed_pool)
        for bad in (0, -5):
            with pytest.raises(ValueError, match="chunk_size"):
                kernels.plan_stream(propagator, geometry, GRID, chunk_size=bad)


def _offsets(grid, chunk):
    offset = 0
    for times in grid.chunks(chunk):
        yield offset, times
        offset += times.size


class TestPropagatorDerived:
    def test_subset_refreshes_derived_state(self, mixed_pool):
        propagator = BatchPropagator(mixed_pool)
        subset = propagator.subset(np.arange(24, 48))
        assert subset.all_circular
        times = GRID.times_s[:16]
        assert np.array_equal(
            subset.unit_positions_eci(times),
            propagator.unit_positions_eci(times)[24:48],
        )

    def test_all_circular_flag(self):
        circular = BatchPropagator(_shell(4, 2, 53.0))
        assert circular.all_circular
        eccentric = BatchPropagator(
            [
                OrbitalElements.from_degrees(
                    altitude_km=550.0, inclination_deg=53.0, eccentricity=0.01
                )
            ]
        )
        assert not eccentric.all_circular
