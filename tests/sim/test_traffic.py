"""Tests for traffic workload models."""

import numpy as np
import pytest

from repro.sim.clock import TimeGrid
from repro.sim.traffic import ConstantDemand, DiurnalDemand, PoissonSessions


@pytest.fixture
def grid():
    return TimeGrid(duration_s=24 * 3600.0, step_s=60.0)


class TestConstantDemand:
    def test_constant_everywhere(self, grid, rng):
        demand = ConstantDemand(rate_mbps=50.0).demand_mbps(grid, rng)
        assert demand.shape == (grid.count,)
        assert np.all(demand == 50.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ConstantDemand(rate_mbps=-1.0)


class TestPoissonSessions:
    def test_shape(self, grid, rng):
        demand = PoissonSessions().demand_mbps(grid, rng)
        assert demand.shape == (grid.count,)

    def test_zero_arrivals_means_zero_demand(self, grid, rng):
        demand = PoissonSessions(arrivals_per_hour=0.0).demand_mbps(grid, rng)
        assert np.all(demand == 0.0)

    def test_demand_quantized_to_rate(self, grid, rng):
        model = PoissonSessions(rate_mbps=10.0)
        demand = model.demand_mbps(grid, rng)
        assert np.allclose(demand % 10.0, 0.0)

    def test_mean_load_close_to_erlang(self, grid):
        # Offered load = arrivals/s * mean_hold_s * rate = erlangs * rate.
        model = PoissonSessions(
            arrivals_per_hour=6.0, mean_duration_s=600.0, rate_mbps=10.0
        )
        rng = np.random.default_rng(0)
        samples = [model.demand_mbps(grid, rng).mean() for _ in range(20)]
        expected = 6.0 / 3600.0 * 600.0 * 10.0  # 10 Mbps mean.
        assert np.mean(samples) == pytest.approx(expected, rel=0.15)

    def test_seeded_reproducible(self, grid):
        model = PoissonSessions()
        a = model.demand_mbps(grid, np.random.default_rng(5))
        b = model.demand_mbps(grid, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PoissonSessions(arrivals_per_hour=-1.0)
        with pytest.raises(ValueError):
            PoissonSessions(mean_duration_s=0.0)


class TestDiurnalDemand:
    def test_nonnegative(self, grid, rng):
        demand = DiurnalDemand(depth=1.0).demand_mbps(grid, rng)
        assert np.all(demand >= 0.0)

    def test_peaks_at_peak_hour(self, grid, rng):
        model = DiurnalDemand(peak_hour_local=20.0, longitude_deg=0.0)
        demand = model.demand_mbps(grid, rng)
        peak_index = int(np.argmax(demand))
        peak_hour = (grid.times_s[peak_index] / 3600.0) % 24.0
        assert peak_hour == pytest.approx(20.0, abs=0.5)

    def test_longitude_shifts_peak(self, grid, rng):
        utc = DiurnalDemand(peak_hour_local=20.0, longitude_deg=0.0)
        east = DiurnalDemand(peak_hour_local=20.0, longitude_deg=90.0)
        peak_utc = np.argmax(utc.demand_mbps(grid, rng))
        peak_east = np.argmax(east.demand_mbps(grid, rng))
        # 90 degrees east = local time 6 h ahead = peak 6 h earlier in UTC.
        shift_hours = (grid.times_s[peak_utc] - grid.times_s[peak_east]) / 3600.0
        assert shift_hours % 24.0 == pytest.approx(6.0, abs=0.5)

    def test_mean_is_base_rate(self, grid, rng):
        demand = DiurnalDemand(base_rate_mbps=80.0, depth=0.5).demand_mbps(grid, rng)
        assert demand.mean() == pytest.approx(80.0, rel=0.02)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="depth"):
            DiurnalDemand(depth=1.5)
