"""Tests for the vectorized visibility engine and packed visibility."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.sites import UserTerminal
from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import eci_to_ecef, gmst_rad
from repro.orbits.propagator import BatchPropagator
from repro.orbits.topocentric import elevation_deg
from repro.sim.clock import TimeGrid
from repro.sim.visibility import (
    PackedVisibility,
    VisibilityEngine,
    coverage_cos_thresholds,
    packed_visibility,
    visibility_matrix,
)


@pytest.fixture
def equator_terminal():
    return UserTerminal("eq", 0.0, 0.0, min_elevation_deg=25.0)


class TestThresholds:
    def test_shape(self):
        thresholds = coverage_cos_thresholds(
            np.array([7.0e6, 7.2e6]), np.array([6.37e6] * 3), np.array([10.0, 25.0, 40.0])
        )
        assert thresholds.shape == (3, 2)

    def test_higher_mask_higher_threshold(self):
        thresholds = coverage_cos_thresholds(
            np.array([7.0e6]), np.array([6.37e6, 6.37e6]), np.array([10.0, 40.0])
        )
        assert thresholds[1, 0] > thresholds[0, 0]

    def test_higher_orbit_lower_threshold(self):
        thresholds = coverage_cos_thresholds(
            np.array([6.9e6, 7.6e6]), np.array([6.37e6]), np.array([25.0])
        )
        assert thresholds[0, 1] < thresholds[0, 0]

    def test_rejects_suborbital(self):
        with pytest.raises(ValueError, match="orbital radius"):
            coverage_cos_thresholds(
                np.array([6.0e6]), np.array([6.37e6]), np.array([25.0])
            )


class TestVisibilityAgainstReference:
    """The fast path must agree with explicit elevation computation."""

    def test_matches_elevation_reference(self, small_walker, taipei_terminal, tiny_grid):
        engine = VisibilityEngine(tiny_grid)
        visible = engine.visibility(small_walker, [taipei_terminal])  # (1, N, T)

        propagator = BatchPropagator(small_walker.elements)
        times = tiny_grid.times_s
        positions_eci = propagator.positions_eci(times)  # (N, T, 3)
        theta = gmst_rad(times, tiny_grid.gmst_at_epoch_rad)
        positions_ecef = eci_to_ecef(positions_eci, theta[None, :])
        site_ecef = taipei_terminal.position_ecef
        elevations = elevation_deg(site_ecef, positions_ecef)  # (N, T)
        reference = elevations >= taipei_terminal.min_elevation_deg
        mismatches = np.sum(visible[0] != reference)
        # Edge samples can flip due to the spherical site-radius convention;
        # allow a vanishing fraction.
        assert mismatches <= reference.size * 0.001

    def test_overhead_satellite_visible(self, equator_terminal):
        # A satellite crossing directly over the equator site at t=0.
        elements = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1, raan_deg=0.0, mean_anomaly_deg=0.0
        )
        constellation = Constellation([Satellite(sat_id="S", elements=elements)])
        grid = TimeGrid(duration_s=60.0, step_s=30.0)
        engine = VisibilityEngine(grid)
        visible = engine.visibility(constellation, [equator_terminal])
        assert visible[0, 0, 0]

    def test_antipodal_satellite_invisible(self, equator_terminal):
        elements = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1, raan_deg=0.0, mean_anomaly_deg=180.0
        )
        constellation = Constellation([Satellite(sat_id="S", elements=elements)])
        grid = TimeGrid(duration_s=60.0, step_s=30.0)
        visible = VisibilityEngine(grid).visibility(constellation, [equator_terminal])
        assert not visible[0, 0, 0]

    def test_high_latitude_site_never_sees_low_inclination(self):
        """A 53-degree constellation cannot serve a polar site at 25 deg mask."""
        site = UserTerminal("arctic", 80.0, 0.0, min_elevation_deg=25.0)
        elements = [
            OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=53.0, raan_deg=raan, mean_anomaly_deg=ma
            )
            for raan in (0.0, 90.0, 180.0, 270.0)
            for ma in (0.0, 120.0, 240.0)
        ]
        constellation = Constellation(
            [Satellite(sat_id=f"S{i}", elements=e) for i, e in enumerate(elements)]
        )
        grid = TimeGrid.hours(3.0, step_s=60.0)
        visible = VisibilityEngine(grid).visibility(constellation, [site])
        assert not visible.any()


class TestEngineReductions:
    def test_shapes(self, small_walker, taipei_terminal, short_grid):
        engine = VisibilityEngine(short_grid)
        sites = [taipei_terminal, UserTerminal("eq", 0.0, 0.0)]
        visible = engine.visibility(small_walker, sites)
        assert visible.shape == (2, 40, short_grid.count)
        assert engine.site_coverage(small_walker, sites).shape == (2, short_grid.count)
        assert engine.satellite_activity(small_walker, sites).shape == (
            40,
            short_grid.count,
        )
        counts = engine.visible_counts(small_walker, sites)
        assert counts.shape == (2, short_grid.count)

    def test_site_coverage_is_any(self, small_walker, taipei_terminal, short_grid):
        engine = VisibilityEngine(short_grid)
        visible = engine.visibility(small_walker, [taipei_terminal])
        coverage = engine.site_coverage(small_walker, [taipei_terminal])
        assert np.array_equal(coverage[0], visible[0].any(axis=0))

    def test_chunking_invariance(self, small_walker, taipei_terminal, short_grid):
        fine = VisibilityEngine(short_grid, chunk_size=7)
        coarse = VisibilityEngine(short_grid, chunk_size=100_000)
        assert np.array_equal(
            fine.visibility(small_walker, [taipei_terminal]),
            coarse.visibility(small_walker, [taipei_terminal]),
        )

    def test_rejects_no_sites(self, small_walker, short_grid):
        with pytest.raises(ValueError, match="at least one ground site"):
            VisibilityEngine(short_grid).visibility(small_walker, [])

    def test_accepts_elements_list(self, small_walker, taipei_terminal, tiny_grid):
        engine = VisibilityEngine(tiny_grid)
        via_constellation = engine.visibility(small_walker, [taipei_terminal])
        via_elements = engine.visibility(small_walker.elements, [taipei_terminal])
        assert np.array_equal(via_constellation, via_elements)

    def test_convenience_wrapper(self, small_walker, taipei_terminal, tiny_grid):
        direct = VisibilityEngine(tiny_grid).visibility(
            small_walker, [taipei_terminal]
        )
        wrapped = visibility_matrix(small_walker, [taipei_terminal], tiny_grid)
        assert np.array_equal(direct, wrapped)


class TestPackedVisibility:
    @pytest.fixture
    def packed(self, small_walker, taipei_terminal, short_grid):
        sites = [taipei_terminal, UserTerminal("eq", 0.0, 0.0)]
        return (
            packed_visibility(small_walker, sites, short_grid),
            VisibilityEngine(short_grid).visibility(small_walker, sites),
        )

    def test_site_mask_matches_unpacked(self, packed):
        packed_vis, dense = packed
        for site in range(2):
            assert np.array_equal(
                packed_vis.site_mask(site), dense[site].any(axis=0)
            )

    def test_subset_mask_matches(self, packed):
        packed_vis, dense = packed
        subset = np.array([3, 7, 21])
        assert np.array_equal(
            packed_vis.site_mask(0, subset), dense[0, subset].any(axis=0)
        )

    def test_site_masks_all(self, packed):
        packed_vis, dense = packed
        masks = packed_vis.site_masks()
        assert np.array_equal(masks, dense.any(axis=1))

    def test_coverage_fractions(self, packed):
        packed_vis, dense = packed
        fractions = packed_vis.coverage_fractions()
        expected = dense.any(axis=1).mean(axis=1)
        assert np.allclose(fractions, expected)

    def test_satellite_active_fractions(self, packed):
        packed_vis, dense = packed
        fractions = packed_vis.satellite_active_fractions()
        expected = dense.any(axis=0).mean(axis=1)
        assert np.allclose(fractions, expected)

    def test_satellite_fractions_with_site_subset(self, packed):
        packed_vis, dense = packed
        fractions = packed_vis.satellite_active_fractions(site_indices=[1])
        expected = dense[1].mean(axis=1)
        assert np.allclose(fractions, expected)

    def test_empty_subset_is_uncovered(self, packed):
        packed_vis, _ = packed
        mask = packed_vis.site_mask(0, np.array([], dtype=int))
        assert not mask.any()
        assert np.all(packed_vis.coverage_fractions(np.array([], dtype=int)) == 0.0)

    def test_dimensions(self, packed):
        packed_vis, dense = packed
        assert packed_vis.n_sites == 2
        assert packed_vis.n_satellites == 40
        assert packed_vis.n_times == dense.shape[2]

    def test_rejects_bad_dtype(self, short_grid):
        with pytest.raises(ValueError, match="uint8"):
            PackedVisibility(np.zeros((1, 1, 10)), 80, short_grid)

    def test_rejects_short_packing(self, short_grid):
        with pytest.raises(ValueError, match="too short"):
            PackedVisibility(np.zeros((1, 1, 2), dtype=np.uint8), 100, short_grid)


class TestPackedEmptySelections:
    """Regression: empty subset selections must be valid zero-result queries.

    Empty ``site_indices``/``sat_indices`` used to reduce over an empty
    axis (and a plain ``[]`` crashed outright with an IndexError because an
    empty Python list carries a float dtype); every reduction now returns
    explicit zeros of the right shape.
    """

    @pytest.fixture
    def packed(self, small_walker, taipei_terminal, short_grid):
        sites = [taipei_terminal, UserTerminal("eq", 0.0, 0.0)]
        return packed_visibility(small_walker, sites, short_grid)

    # Every reduction accepts the empty selection in all its spellings.
    EMPTY = [[], (), np.array([]), np.array([], dtype=np.intp)]

    @pytest.mark.parametrize("empty", EMPTY)
    def test_satellite_active_fractions_no_sites(self, packed, empty):
        fractions = packed.satellite_active_fractions(site_indices=empty)
        assert fractions.shape == (packed.n_satellites,)
        assert np.all(fractions == 0.0)

    @pytest.mark.parametrize("empty", EMPTY)
    def test_satellite_active_fractions_no_sats(self, packed, empty):
        fractions = packed.satellite_active_fractions(sat_indices=empty)
        assert fractions.shape == (0,)

    @pytest.mark.parametrize("empty", EMPTY)
    def test_satellite_masks_no_sites(self, packed, empty):
        masks = packed.satellite_masks(site_indices=empty)
        assert masks.shape == (packed.n_satellites, packed.n_times)
        assert masks.dtype == bool
        assert not masks.any()

    @pytest.mark.parametrize("empty", EMPTY)
    def test_satellite_masks_no_sats(self, packed, empty):
        masks = packed.satellite_masks(sat_indices=empty)
        assert masks.shape == (0, packed.n_times)
        assert masks.dtype == bool

    @pytest.mark.parametrize("empty", EMPTY)
    def test_both_axes_empty(self, packed, empty):
        assert packed.satellite_active_fractions(empty, empty).shape == (0,)
        assert packed.satellite_masks(empty, empty).shape == (0, packed.n_times)

    @pytest.mark.parametrize("empty", EMPTY)
    def test_site_reductions_accept_plain_empty(self, packed, empty):
        assert not packed.site_mask(0, empty).any()
        assert not packed.site_masks(empty).any()
        assert np.all(packed.coverage_fractions(empty) == 0.0)

    def test_subset_of_empty_site_selection_restricts_sats(self, packed):
        fractions = packed.satellite_active_fractions(
            sat_indices=[2, 5], site_indices=[]
        )
        assert fractions.shape == (2,)
        assert np.all(fractions == 0.0)

    def test_nonempty_selections_unchanged(self, packed):
        """The zero paths must not perturb ordinary subset reductions."""
        fractions = packed.satellite_active_fractions(
            sat_indices=[1, 3], site_indices=[0]
        )
        masks = packed.satellite_masks(sat_indices=[1, 3], site_indices=[0])
        assert np.allclose(fractions, masks.mean(axis=1))


class TestThresholdErrorPaths:
    """coverage_cos_thresholds domain errors and extreme elevation masks."""

    ORBIT = np.array([6.92e6])
    SITE = np.array([6.37e6])

    def test_rejects_equal_radii(self):
        with pytest.raises(ValueError, match="must exceed"):
            coverage_cos_thresholds(self.SITE, self.SITE, np.array([25.0]))

    def test_rejects_site_above_orbit(self):
        with pytest.raises(ValueError, match="must exceed"):
            coverage_cos_thresholds(self.SITE, self.ORBIT, np.array([25.0]))

    def test_rejects_any_bad_pair_in_batch(self):
        """One suborbital pair poisons the whole batch, loudly."""
        radii = np.array([6.92e6, 6.0e6])
        with pytest.raises(ValueError, match="must exceed"):
            coverage_cos_thresholds(radii, self.SITE, np.array([25.0]))

    def test_zero_mask_threshold_is_horizon_geometry(self):
        thresholds = coverage_cos_thresholds(self.ORBIT, self.SITE, np.array([0.0]))
        psi = np.arccos(self.SITE[0] / self.ORBIT[0])
        assert np.isclose(thresholds[0, 0], np.cos(psi))

    def test_near_vertical_mask_approaches_one(self):
        thresholds = coverage_cos_thresholds(
            self.ORBIT, self.SITE, np.array([89.9])
        )
        assert 0.999999 < thresholds[0, 0] <= 1.0

    def test_thresholds_monotonic_in_mask(self):
        masks = np.linspace(0.0, 89.0, 90)
        thresholds = coverage_cos_thresholds(
            self.ORBIT, np.full(masks.size, self.SITE[0]), masks
        )[:, 0]
        assert np.all(np.diff(thresholds) > 0.0)

    def test_thresholds_always_in_unit_interval(self):
        radii = np.linspace(6.6e6, 8.0e6, 7)
        masks = np.linspace(0.0, 89.9, 5)
        thresholds = coverage_cos_thresholds(
            radii, np.full(masks.size, self.SITE[0]), masks
        )
        assert np.all(thresholds >= -1.0)
        assert np.all(thresholds <= 1.0)


class TestChunkBoundaryIdentity:
    """chunk_size is an execution knob: any split must yield the same tensor."""

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 8, 13, 64, 10_000])
    def test_every_chunk_size_identical(
        self, small_walker, taipei_terminal, short_grid, chunk_size
    ):
        reference = VisibilityEngine(short_grid).visibility(
            small_walker, [taipei_terminal]
        )
        chunked = VisibilityEngine(short_grid, chunk_size=chunk_size).visibility(
            small_walker, [taipei_terminal]
        )
        assert np.array_equal(reference, chunked)

    def test_chunk_equal_to_grid_count(self, small_walker, taipei_terminal, short_grid):
        exact = VisibilityEngine(
            short_grid, chunk_size=short_grid.count
        ).visibility(small_walker, [taipei_terminal])
        reference = VisibilityEngine(short_grid).visibility(
            small_walker, [taipei_terminal]
        )
        assert np.array_equal(exact, reference)

    def test_rejects_nonpositive_chunk(self, short_grid):
        with pytest.raises(ValueError, match="chunk_size"):
            VisibilityEngine(short_grid, chunk_size=0)

    @pytest.mark.parametrize("chunk_size", [8, 24, 1000])
    def test_packed_chunk_identity(
        self, small_walker, taipei_terminal, short_grid, chunk_size
    ):
        """Packing in chunks must agree with the unpacked tensor bit-for-bit."""
        dense = VisibilityEngine(short_grid).visibility(
            small_walker, [taipei_terminal]
        )
        packed = packed_visibility(
            small_walker, [taipei_terminal], short_grid, chunk_size=chunk_size
        )
        assert np.array_equal(packed.site_masks(), dense.any(axis=1))
        assert np.array_equal(packed.satellite_masks(), dense.any(axis=0))
