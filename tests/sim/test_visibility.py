"""Tests for the vectorized visibility engine and packed visibility."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.sites import UserTerminal
from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import eci_to_ecef, gmst_rad
from repro.orbits.propagator import BatchPropagator
from repro.orbits.topocentric import elevation_deg
from repro.sim.clock import TimeGrid
from repro.sim.visibility import (
    PackedVisibility,
    VisibilityEngine,
    coverage_cos_thresholds,
    packed_visibility,
    visibility_matrix,
)


@pytest.fixture
def equator_terminal():
    return UserTerminal("eq", 0.0, 0.0, min_elevation_deg=25.0)


class TestThresholds:
    def test_shape(self):
        thresholds = coverage_cos_thresholds(
            np.array([7.0e6, 7.2e6]), np.array([6.37e6] * 3), np.array([10.0, 25.0, 40.0])
        )
        assert thresholds.shape == (3, 2)

    def test_higher_mask_higher_threshold(self):
        thresholds = coverage_cos_thresholds(
            np.array([7.0e6]), np.array([6.37e6, 6.37e6]), np.array([10.0, 40.0])
        )
        assert thresholds[1, 0] > thresholds[0, 0]

    def test_higher_orbit_lower_threshold(self):
        thresholds = coverage_cos_thresholds(
            np.array([6.9e6, 7.6e6]), np.array([6.37e6]), np.array([25.0])
        )
        assert thresholds[0, 1] < thresholds[0, 0]

    def test_rejects_suborbital(self):
        with pytest.raises(ValueError, match="orbital radius"):
            coverage_cos_thresholds(
                np.array([6.0e6]), np.array([6.37e6]), np.array([25.0])
            )


class TestVisibilityAgainstReference:
    """The fast path must agree with explicit elevation computation."""

    def test_matches_elevation_reference(self, small_walker, taipei_terminal, tiny_grid):
        engine = VisibilityEngine(tiny_grid)
        visible = engine.visibility(small_walker, [taipei_terminal])  # (1, N, T)

        propagator = BatchPropagator(small_walker.elements)
        times = tiny_grid.times_s
        positions_eci = propagator.positions_eci(times)  # (N, T, 3)
        theta = gmst_rad(times, tiny_grid.gmst_at_epoch_rad)
        positions_ecef = eci_to_ecef(positions_eci, theta[None, :])
        site_ecef = taipei_terminal.position_ecef
        elevations = elevation_deg(site_ecef, positions_ecef)  # (N, T)
        reference = elevations >= taipei_terminal.min_elevation_deg
        mismatches = np.sum(visible[0] != reference)
        # Edge samples can flip due to the spherical site-radius convention;
        # allow a vanishing fraction.
        assert mismatches <= reference.size * 0.001

    def test_overhead_satellite_visible(self, equator_terminal):
        # A satellite crossing directly over the equator site at t=0.
        elements = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1, raan_deg=0.0, mean_anomaly_deg=0.0
        )
        constellation = Constellation([Satellite(sat_id="S", elements=elements)])
        grid = TimeGrid(duration_s=60.0, step_s=30.0)
        engine = VisibilityEngine(grid)
        visible = engine.visibility(constellation, [equator_terminal])
        assert visible[0, 0, 0]

    def test_antipodal_satellite_invisible(self, equator_terminal):
        elements = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1, raan_deg=0.0, mean_anomaly_deg=180.0
        )
        constellation = Constellation([Satellite(sat_id="S", elements=elements)])
        grid = TimeGrid(duration_s=60.0, step_s=30.0)
        visible = VisibilityEngine(grid).visibility(constellation, [equator_terminal])
        assert not visible[0, 0, 0]

    def test_high_latitude_site_never_sees_low_inclination(self):
        """A 53-degree constellation cannot serve a polar site at 25 deg mask."""
        site = UserTerminal("arctic", 80.0, 0.0, min_elevation_deg=25.0)
        elements = [
            OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=53.0, raan_deg=raan, mean_anomaly_deg=ma
            )
            for raan in (0.0, 90.0, 180.0, 270.0)
            for ma in (0.0, 120.0, 240.0)
        ]
        constellation = Constellation(
            [Satellite(sat_id=f"S{i}", elements=e) for i, e in enumerate(elements)]
        )
        grid = TimeGrid.hours(3.0, step_s=60.0)
        visible = VisibilityEngine(grid).visibility(constellation, [site])
        assert not visible.any()


class TestEngineReductions:
    def test_shapes(self, small_walker, taipei_terminal, short_grid):
        engine = VisibilityEngine(short_grid)
        sites = [taipei_terminal, UserTerminal("eq", 0.0, 0.0)]
        visible = engine.visibility(small_walker, sites)
        assert visible.shape == (2, 40, short_grid.count)
        assert engine.site_coverage(small_walker, sites).shape == (2, short_grid.count)
        assert engine.satellite_activity(small_walker, sites).shape == (
            40,
            short_grid.count,
        )
        counts = engine.visible_counts(small_walker, sites)
        assert counts.shape == (2, short_grid.count)

    def test_site_coverage_is_any(self, small_walker, taipei_terminal, short_grid):
        engine = VisibilityEngine(short_grid)
        visible = engine.visibility(small_walker, [taipei_terminal])
        coverage = engine.site_coverage(small_walker, [taipei_terminal])
        assert np.array_equal(coverage[0], visible[0].any(axis=0))

    def test_chunking_invariance(self, small_walker, taipei_terminal, short_grid):
        fine = VisibilityEngine(short_grid, chunk_size=7)
        coarse = VisibilityEngine(short_grid, chunk_size=100_000)
        assert np.array_equal(
            fine.visibility(small_walker, [taipei_terminal]),
            coarse.visibility(small_walker, [taipei_terminal]),
        )

    def test_rejects_no_sites(self, small_walker, short_grid):
        with pytest.raises(ValueError, match="at least one ground site"):
            VisibilityEngine(short_grid).visibility(small_walker, [])

    def test_accepts_elements_list(self, small_walker, taipei_terminal, tiny_grid):
        engine = VisibilityEngine(tiny_grid)
        via_constellation = engine.visibility(small_walker, [taipei_terminal])
        via_elements = engine.visibility(small_walker.elements, [taipei_terminal])
        assert np.array_equal(via_constellation, via_elements)

    def test_convenience_wrapper(self, small_walker, taipei_terminal, tiny_grid):
        direct = VisibilityEngine(tiny_grid).visibility(
            small_walker, [taipei_terminal]
        )
        wrapped = visibility_matrix(small_walker, [taipei_terminal], tiny_grid)
        assert np.array_equal(direct, wrapped)


class TestPackedVisibility:
    @pytest.fixture
    def packed(self, small_walker, taipei_terminal, short_grid):
        sites = [taipei_terminal, UserTerminal("eq", 0.0, 0.0)]
        return (
            packed_visibility(small_walker, sites, short_grid),
            VisibilityEngine(short_grid).visibility(small_walker, sites),
        )

    def test_site_mask_matches_unpacked(self, packed):
        packed_vis, dense = packed
        for site in range(2):
            assert np.array_equal(
                packed_vis.site_mask(site), dense[site].any(axis=0)
            )

    def test_subset_mask_matches(self, packed):
        packed_vis, dense = packed
        subset = np.array([3, 7, 21])
        assert np.array_equal(
            packed_vis.site_mask(0, subset), dense[0, subset].any(axis=0)
        )

    def test_site_masks_all(self, packed):
        packed_vis, dense = packed
        masks = packed_vis.site_masks()
        assert np.array_equal(masks, dense.any(axis=1))

    def test_coverage_fractions(self, packed):
        packed_vis, dense = packed
        fractions = packed_vis.coverage_fractions()
        expected = dense.any(axis=1).mean(axis=1)
        assert np.allclose(fractions, expected)

    def test_satellite_active_fractions(self, packed):
        packed_vis, dense = packed
        fractions = packed_vis.satellite_active_fractions()
        expected = dense.any(axis=0).mean(axis=1)
        assert np.allclose(fractions, expected)

    def test_satellite_fractions_with_site_subset(self, packed):
        packed_vis, dense = packed
        fractions = packed_vis.satellite_active_fractions(site_indices=[1])
        expected = dense[1].mean(axis=1)
        assert np.allclose(fractions, expected)

    def test_empty_subset_is_uncovered(self, packed):
        packed_vis, _ = packed
        mask = packed_vis.site_mask(0, np.array([], dtype=int))
        assert not mask.any()
        assert np.all(packed_vis.coverage_fractions(np.array([], dtype=int)) == 0.0)

    def test_dimensions(self, packed):
        packed_vis, dense = packed
        assert packed_vis.n_sites == 2
        assert packed_vis.n_satellites == 40
        assert packed_vis.n_times == dense.shape[2]

    def test_rejects_bad_dtype(self, short_grid):
        with pytest.raises(ValueError, match="uint8"):
            PackedVisibility(np.zeros((1, 1, 10)), 80, short_grid)

    def test_rejects_short_packing(self, short_grid):
        with pytest.raises(ValueError, match="too short"):
            PackedVisibility(np.zeros((1, 1, 2), dtype=np.uint8), 100, short_grid)
