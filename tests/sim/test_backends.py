"""Tests for the pluggable kernel-backend registry and its bit-identity
contract.

The registry routes three hot operations (threshold+reduce, OR+popcount,
event-sweep accumulation).  Admission rule: a backend must be bit-identical
to plain numpy on every op — so the numpy legs here pin the reference
semantics, and the numba legs (skipped when the package is absent; CI runs
them in a dedicated job) pin the compiled path against it, up to and
including whole figure tables on both contact engines.
"""

import numpy as np
import pytest

from repro.sim import backends

requires_numba = pytest.mark.skipif(
    not backends.available_backends().get("numba", False),
    reason="numba not installed",
)


@pytest.fixture
def op_inputs():
    rng = np.random.default_rng(11)
    dots = rng.standard_normal((3, 5, 41))
    dots.ravel()[rng.integers(0, dots.size, size=10)] = 0.5  # Exact ties.
    thresholds = np.full((3, 1, 1), 0.5)
    rows = rng.integers(0, 256, size=(5, 17, 9), dtype=np.uint8)
    n_groups = 4
    starts = rng.uniform(0.0, 500.0, size=(n_groups, 6))
    stops = starts + rng.uniform(0.0, 80.0, size=starts.shape)
    k = starts.size
    times = np.concatenate([starts.ravel(), stops.ravel()])
    deltas = np.concatenate(
        [np.ones(k, dtype=np.int64), -np.ones(k, dtype=np.int64)]
    )
    groups = np.tile(np.repeat(np.arange(n_groups), 6), 2)
    order = np.lexsort((deltas, times, groups))
    return (
        dots, thresholds, rows,
        times[order], deltas[order], groups[order], n_groups,
    )


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(backends.backend_names()) == {"numpy", "numba"}

    def test_numpy_always_available(self):
        assert backends.available_backends()["numpy"] is True
        assert backends.get_backend("numpy").name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            backends.get_backend("fortran")

    def test_unavailable_backend_raises_runtime_error(self):
        if backends.available_backends()["numba"]:
            pytest.skip("numba installed; unavailability path not reachable")
        with pytest.raises(RuntimeError, match="not available"):
            backends.get_backend("numba")

    def test_default_is_numpy(self):
        assert backends.default_backend_name() in backends.backend_names()
        assert backends.default_backend().name == backends.default_backend_name()

    def test_set_default_round_trip(self):
        original = backends.default_backend_name()
        try:
            backends.set_default_backend("numpy")
            assert backends.default_backend_name() == "numpy"
        finally:
            backends.set_default_backend(original)

    def test_use_backend_restores_previous(self):
        before = backends.default_backend_name()
        with backends.use_backend("numpy"):
            assert backends.default_backend_name() == "numpy"
        assert backends.default_backend_name() == before

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        monkeypatch.setattr(backends, "_DEFAULT_NAME", None)
        assert backends.default_backend_name() == "numpy"

    def test_env_var_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "no-such-backend")
        monkeypatch.setattr(backends, "_DEFAULT_NAME", None)
        with pytest.raises(ValueError):
            backends.default_backend_name()


class TestNumpyReference:
    """The numpy backend IS the reference formulation, verified literally."""

    def test_threshold_slab(self, op_inputs):
        dots, thresholds, *_ = op_inputs
        got = backends.get_backend("numpy").threshold_slab(dots, thresholds)
        np.testing.assert_array_equal(got, dots >= thresholds)
        assert got.dtype == np.bool_

    def test_or_popcount(self, op_inputs):
        rows = op_inputs[2]
        table = backends.POPCOUNT_TABLE
        for axis in (0, 1):
            got = backends.get_backend("numpy").or_popcount(rows, axis=axis)
            want = (
                table[np.bitwise_or.reduce(rows, axis=axis)]
                .sum(axis=1)
                .astype(np.int64)
            )
            np.testing.assert_array_equal(got, want)
            assert got.dtype == np.int64

    def test_sweep_accumulate(self, op_inputs):
        _, _, _, times, deltas, groups, n_groups = op_inputs
        got = backends.get_backend("numpy").sweep_accumulate(
            times, deltas, groups, n_groups
        )
        counts = np.cumsum(deltas)
        spans = np.diff(times)
        same = groups[1:] == groups[:-1]
        weights = np.where(same & (counts[:-1] > 0), spans, 0.0)
        want = np.bincount(groups[:-1], weights=weights, minlength=n_groups)
        np.testing.assert_array_equal(got, want)

    def test_popcount_table(self):
        values = np.arange(256, dtype=np.uint8)
        want = np.array([bin(v).count("1") for v in range(256)])
        np.testing.assert_array_equal(backends.POPCOUNT_TABLE[values], want)


@requires_numba
class TestNumbaIdentity:
    """The compiled backend vs numpy, op by op — bit-identical."""

    def test_ops_bit_identical(self, op_inputs):
        dots, thresholds, rows, times, deltas, groups, n_groups = op_inputs
        ref = backends.get_backend("numpy")
        jit = backends.get_backend("numba")
        np.testing.assert_array_equal(
            jit.threshold_slab(dots, thresholds),
            ref.threshold_slab(dots, thresholds),
        )
        for axis in (0, 1):
            np.testing.assert_array_equal(
                jit.or_popcount(rows, axis=axis),
                ref.or_popcount(rows, axis=axis),
            )
        np.testing.assert_array_equal(
            jit.sweep_accumulate(times, deltas, groups, n_groups),
            ref.sweep_accumulate(times, deltas, groups, n_groups),
        )


@requires_numba
class TestFigureTableIdentity:
    """Whole figure results under numba == under numpy, on both engines.

    The CLI promises ``--kernel-backend`` is an execution knob: these runs
    go through the full experiment stack (visibility build or interval
    sweep, subset queries, Monte-Carlo reduction) and must produce
    identical result objects.
    """

    @pytest.fixture(params=["grid", "intervals"])
    def engine_context(self, request):
        from repro.experiments.common import ExperimentContext

        context = ExperimentContext(engine=request.param)
        yield context
        context.clear()

    def _config(self):
        from repro.experiments.common import ExperimentConfig

        return ExperimentConfig(duration_s=3_600.0, step_s=300.0, runs=2)

    def _run_both(self, runner):
        with backends.use_backend("numpy"):
            reference = runner()
        with backends.use_backend("numba"):
            compiled = runner()
        return reference, compiled

    def test_fig2_identical(self, engine_context):
        from repro.experiments.fig2_coverage_vs_size import Fig2Scenario
        from repro.runner import MonteCarloRunner

        runner = MonteCarloRunner(self._config(), context=engine_context)
        ref, jit = self._run_both(
            lambda: runner.run(Fig2Scenario(sizes=(50, 100)))
        )
        assert ref == jit

    def test_fig3_identical(self, engine_context):
        from repro.experiments.fig3_idle_vs_cities import Fig3Scenario
        from repro.runner import MonteCarloRunner

        runner = MonteCarloRunner(self._config(), context=engine_context)
        ref, jit = self._run_both(
            lambda: runner.run(
                Fig3Scenario(city_counts=(1, 5), sample_size=100)
            )
        )
        assert ref == jit

    def test_attrition_trajectory_identical(self, engine_context):
        """The ablation_failures computation: attrition + subset queries."""
        from repro.core.failures import FailureModel, simulate_attrition
        from repro.experiments.common import (
            starlink_pool,
            weighted_city_coverage,
        )

        config = self._config()
        pool_size = len(starlink_pool())

        def trajectory():
            rng = config.rng(salt=104)
            fleet = rng.choice(pool_size, size=80, replace=False)
            query = engine_context.subset_query(config, fleet)
            constellation = starlink_pool().take(fleet)
            points = simulate_attrition(
                constellation,
                FailureModel(),
                config.rng(salt=105),
                horizon_years=5.0,
                epochs=4,
                replenish_per_year=8,
            )
            return [
                weighted_city_coverage(query, fleet[point.alive_indices])
                for point in points
            ]

        ref, jit = self._run_both(trajectory)
        assert ref == jit
