"""Tests for downlink scheduling."""

import numpy as np
import pytest

from repro.sim.clock import TimeGrid
from repro.sim.scheduling import (
    DownlinkScheduler,
    SchedulingPolicy,
    compare_policies,
)


@pytest.fixture
def grid():
    return TimeGrid(duration_s=600.0, step_s=60.0)  # 10 steps.


def _always_visible(stations, sats, steps):
    return np.ones((stations, sats, steps), dtype=bool)


class TestBasicScheduling:
    def test_single_sat_fully_drained(self, grid):
        visibility = _always_visible(1, 1, 10)
        result = DownlinkScheduler(
            visibility, grid, downlink_rate_mbps=500.0, generation_rate_mbps=10.0
        ).run()
        assert result.delivery_fraction == pytest.approx(1.0)
        assert result.remaining_backlog_megabits[0] == pytest.approx(0.0)

    def test_conservation(self, grid):
        """Generated = downlinked + remaining, always."""
        rng = np.random.default_rng(0)
        visibility = rng.random((2, 5, 10)) > 0.5
        result = DownlinkScheduler(
            visibility, grid, downlink_rate_mbps=100.0, generation_rate_mbps=50.0
        ).run()
        np.testing.assert_allclose(
            result.generated_megabits,
            result.downlinked_megabits + result.remaining_backlog_megabits,
        )

    def test_no_visibility_no_downlink(self, grid):
        visibility = np.zeros((1, 2, 10), dtype=bool)
        result = DownlinkScheduler(visibility, grid).run()
        assert result.total_downlinked_megabits == 0.0
        assert np.all(result.assignment == -1)
        assert result.delivery_fraction == 0.0

    def test_rate_limits_drain(self, grid):
        """Downlink rate below generation rate leaves a growing backlog."""
        visibility = _always_visible(1, 1, 10)
        result = DownlinkScheduler(
            visibility, grid, downlink_rate_mbps=10.0, generation_rate_mbps=50.0
        ).run()
        assert result.remaining_backlog_megabits[0] > 0.0
        assert result.delivery_fraction == pytest.approx(0.2, abs=0.01)

    def test_one_antenna_one_satellite_at_a_time(self, grid):
        visibility = _always_visible(1, 3, 10)
        result = DownlinkScheduler(visibility, grid).run()
        # Each step serves exactly one of the three satellites.
        assert np.all(result.assignment[0] >= 0)

    def test_satellite_not_double_served(self, grid):
        """Two stations never serve the same satellite at the same step."""
        visibility = _always_visible(2, 1, 10)
        result = DownlinkScheduler(
            visibility, grid, generation_rate_mbps=1000.0
        ).run()
        served_at_step = result.assignment >= 0
        # Station 1 can never claim the single satellite station 0 took.
        assert served_at_step[0].all()
        assert not served_at_step[1].any()

    def test_station_utilization(self, grid):
        visibility = np.zeros((1, 1, 10), dtype=bool)
        visibility[0, 0, :5] = True
        result = DownlinkScheduler(visibility, grid).run()
        assert result.station_busy_fraction[0] == pytest.approx(0.5)

    def test_validation(self, grid):
        with pytest.raises(ValueError, match=r"\(S, N, T\)"):
            DownlinkScheduler(np.zeros((2, 2), dtype=bool), grid)
        with pytest.raises(ValueError, match="steps"):
            DownlinkScheduler(np.zeros((1, 1, 5), dtype=bool), grid)
        with pytest.raises(ValueError, match="downlink rate"):
            DownlinkScheduler(
                _always_visible(1, 1, 10), grid, downlink_rate_mbps=0.0
            )
        with pytest.raises(ValueError, match="generation"):
            DownlinkScheduler(
                _always_visible(1, 2, 10), grid,
                generation_rate_mbps=np.array([1.0, -1.0]),
            )


class TestPolicies:
    def test_max_backlog_prefers_fuller_buffer(self, grid):
        visibility = _always_visible(1, 2, 10)
        result = DownlinkScheduler(
            visibility,
            grid,
            downlink_rate_mbps=5.0,
            generation_rate_mbps=np.array([100.0, 1.0]),
            policy=SchedulingPolicy.MAX_BACKLOG,
        ).run()
        # The hot satellite monopolizes the antenna.
        assert np.all(result.assignment[0] == 0)

    def test_round_robin_rotates(self, grid):
        visibility = _always_visible(1, 3, 10)
        result = DownlinkScheduler(
            visibility,
            grid,
            downlink_rate_mbps=1.0,  # Never drains: all stay candidates.
            generation_rate_mbps=10.0,
            policy=SchedulingPolicy.ROUND_ROBIN,
        ).run()
        served = result.assignment[0]
        # All three satellites get turns.
        assert set(served.tolist()) == {0, 1, 2}

    def test_round_robin_fairer_than_first_visible(self, grid):
        visibility = _always_visible(1, 4, 10)
        outcomes = compare_policies(
            visibility, grid, downlink_rate_mbps=20.0, generation_rate_mbps=50.0
        )
        assert (
            outcomes[SchedulingPolicy.ROUND_ROBIN].fairness_index()
            >= outcomes[SchedulingPolicy.FIRST_VISIBLE].fairness_index()
        )

    def test_max_backlog_maximizes_throughput_under_skew(self, grid):
        """With skewed generation, draining the fullest buffer downloads at
        least as much as naive first-visible."""
        rng = np.random.default_rng(1)
        visibility = rng.random((2, 6, 10)) > 0.4
        generation = np.array([200.0, 5.0, 5.0, 5.0, 5.0, 5.0])
        outcomes = compare_policies(
            visibility, grid, downlink_rate_mbps=100.0,
            generation_rate_mbps=generation,
        )
        assert (
            outcomes[SchedulingPolicy.MAX_BACKLOG].total_downlinked_megabits
            >= outcomes[SchedulingPolicy.FIRST_VISIBLE].total_downlinked_megabits
            - 1e-9
        )

    def test_fairness_index_bounds(self, grid):
        visibility = _always_visible(1, 3, 10)
        for policy in SchedulingPolicy:
            result = DownlinkScheduler(
                visibility, grid, policy=policy
            ).run()
            assert 0.0 <= result.fairness_index() <= 1.0 + 1e-12
