"""Tests for utilization / idle-time accounting."""

import numpy as np
import pytest

from repro.sim.capacity import (
    SpareCapacityLedger,
    idle_time_hours,
    party_capacity_shares,
    spare_capacity_split,
    utilization_from_visibility,
)
from repro.sim.clock import TimeGrid


def _vis(array):
    return np.asarray(array, dtype=bool)


class TestUtilization:
    def test_all_idle(self):
        visibility = _vis(np.zeros((2, 3, 10)))
        stats = utilization_from_visibility(visibility)
        assert stats.mean_idle_fraction == 1.0
        assert stats.mean_idle_percent == 100.0

    def test_fully_active(self):
        visibility = _vis(np.ones((1, 2, 10)))
        stats = utilization_from_visibility(visibility)
        assert stats.mean_active_fraction == 1.0

    def test_any_site_activates(self):
        visibility = np.zeros((2, 1, 4), dtype=bool)
        visibility[0, 0, 0] = True  # Site 0 sees the satellite at t0.
        visibility[1, 0, 1] = True  # Site 1 sees it at t1.
        stats = utilization_from_visibility(visibility)
        assert stats.mean_active_fraction == pytest.approx(0.5)

    def test_per_satellite_values(self):
        visibility = np.zeros((1, 2, 4), dtype=bool)
        visibility[0, 0, :2] = True
        stats = utilization_from_visibility(visibility)
        assert stats.per_satellite_idle_fraction[0] == pytest.approx(0.5)
        assert stats.per_satellite_idle_fraction[1] == pytest.approx(1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match=r"\(S, N, T\)"):
            utilization_from_visibility(np.zeros((2, 3), dtype=bool))

    def test_idle_time_hours(self):
        grid = TimeGrid(duration_s=7200.0, step_s=60.0)
        visibility = np.zeros((1, 1, grid.count), dtype=bool)
        visibility[0, 0, :60] = True  # Active the first hour of two.
        hours = idle_time_hours(visibility, grid)
        assert hours[0] == pytest.approx(1.0)


class TestSpareCapacitySplit:
    def test_fractions_partition(self):
        rng = np.random.default_rng(0)
        visibility = rng.random((3, 4, 50)) > 0.6
        ledger = spare_capacity_split(
            visibility,
            terminal_parties=["a", "b", "c"],
            satellite_parties=["a", "b", "a", "c"],
        )
        total = ledger.own_fraction + ledger.spare_fraction + ledger.idle_fraction
        assert np.allclose(total, 1.0)

    def test_own_priority(self):
        # One satellite owned by "a"; terminal of "a" and terminal of "b"
        # both visible at t0 -> counts as own use, not spare.
        visibility = np.zeros((2, 1, 2), dtype=bool)
        visibility[0, 0, 0] = True  # a's terminal sees it at t0.
        visibility[1, 0, 0] = True  # b's terminal too.
        ledger = spare_capacity_split(visibility, ["a", "b"], ["a"])
        assert ledger.own_fraction[0] == pytest.approx(0.5)
        assert ledger.spare_fraction[0] == pytest.approx(0.0)

    def test_spare_when_only_other_party_visible(self):
        visibility = np.zeros((2, 1, 2), dtype=bool)
        visibility[1, 0, 0] = True  # Only b's terminal sees a's satellite.
        ledger = spare_capacity_split(visibility, ["a", "b"], ["a"])
        assert ledger.spare_fraction[0] == pytest.approx(0.5)
        assert ledger.own_fraction[0] == pytest.approx(0.0)

    def test_unowned_satellite_all_spare(self):
        visibility = np.ones((1, 1, 4), dtype=bool)
        ledger = spare_capacity_split(visibility, ["a"], ["z"])
        assert ledger.spare_fraction[0] == pytest.approx(1.0)

    def test_party_count_validation(self):
        visibility = np.zeros((2, 1, 2), dtype=bool)
        with pytest.raises(ValueError, match="terminal parties"):
            spare_capacity_split(visibility, ["a"], ["x"])
        with pytest.raises(ValueError, match="satellite parties"):
            spare_capacity_split(visibility, ["a", "b"], [])

    def test_ledger_validates_partition(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SpareCapacityLedger(
                own_fraction=np.array([0.5]),
                spare_fraction=np.array([0.2]),
                idle_fraction=np.array([0.2]),
            )


class TestPartyShares:
    def test_grouping(self):
        visibility = np.zeros((2, 3, 4), dtype=bool)
        visibility[0, 0, :] = True  # a's terminal sees a's sat always.
        visibility[1, 1, :2] = True  # b's terminal sees a's second sat half.
        shares = party_capacity_shares(
            visibility, ["a", "b"], ["a", "a", "b"]
        )
        assert shares["a"]["own"] == pytest.approx(0.5)  # Mean over a's 2 sats.
        assert shares["a"]["spare_provided"] == pytest.approx(0.25)
        assert shares["b"]["idle"] == pytest.approx(1.0)
