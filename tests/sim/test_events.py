"""Tests for event records and interval extraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.events import ContactEvent, SessionEvent, intervals_from_mask


class TestIntervals:
    def test_empty_mask(self):
        assert intervals_from_mask(np.array([], dtype=bool), 60.0) == []

    def test_single_run(self):
        mask = np.array([False, True, True, False])
        assert intervals_from_mask(mask, 60.0) == [(60.0, 180.0)]

    def test_run_to_end(self):
        mask = np.array([False, True, True])
        assert intervals_from_mask(mask, 10.0) == [(10.0, 30.0)]

    def test_start_offset(self):
        mask = np.array([True, False])
        assert intervals_from_mask(mask, 10.0, start_s=100.0) == [(100.0, 110.0)]

    def test_multiple_runs(self):
        mask = np.array([True, False, True, True, False, True])
        assert intervals_from_mask(mask, 1.0) == [
            (0.0, 1.0),
            (2.0, 4.0),
            (5.0, 6.0),
        ]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            intervals_from_mask(np.ones((2, 2), dtype=bool), 1.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_intervals_reconstruct_mask(self, bits):
        mask = np.array(bits)
        intervals = intervals_from_mask(mask, 1.0)
        rebuilt = np.zeros_like(mask)
        for start, stop in intervals:
            rebuilt[int(start) : int(stop)] = True
        assert np.array_equal(rebuilt, mask)


class TestEvents:
    def test_contact_duration(self):
        contact = ContactEvent("taipei", "S1", 100.0, 400.0)
        assert contact.duration_s == 300.0

    def test_session_volume(self):
        session = SessionEvent(
            terminal_name="t",
            sat_id="s",
            station_name="g",
            terminal_party="a",
            sat_party="b",
            start_s=0.0,
            stop_s=100.0,
            rate_mbps=50.0,
        )
        assert session.volume_megabits == pytest.approx(5000.0)
        assert session.is_spare_capacity

    def test_own_session_not_spare(self):
        session = SessionEvent(
            terminal_name="t",
            sat_id="s",
            station_name="g",
            terminal_party="a",
            sat_party="a",
            start_s=0.0,
            stop_s=10.0,
            rate_mbps=1.0,
        )
        assert not session.is_spare_capacity
