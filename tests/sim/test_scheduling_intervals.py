"""Tests for the event-sweep (interval-native) downlink scheduler.

Hand-computed allocation fixtures pin the decision semantics, and the
grid-instant agreement tests pin the bit-identity contract: because
decisions happen at grid cadence and the candidate membership test
``rise <= t < set`` equals the resampled grid mask, the interval
scheduler must reproduce the grid scheduler exactly — floats included —
whenever both see the same windows.
"""

import numpy as np
import pytest

from repro.sim.clock import TimeGrid
from repro.sim.intervals import ContactIntervals
from repro.sim.scheduling import (
    DownlinkScheduler,
    IntervalDownlinkScheduler,
    SchedulingPolicy,
    compare_policies,
)


def build_contacts(n_sites, n_sats, windows, start_s, end_s):
    """CSR contacts from {(site, sat): [(rise, set), ...]}.

    Windows may carry optional truncation flags as 4-tuples
    ``(rise, set, truncated_start, truncated_end)``.
    """
    rises, sets, trunc_lo, trunc_hi = [], [], [], []
    offsets = [0]
    for site in range(n_sites):
        for sat in range(n_sats):
            for window in sorted(windows.get((site, sat), ())):
                rise, stop = window[0], window[1]
                rises.append(rise)
                sets.append(stop)
                trunc_lo.append(bool(window[2]) if len(window) > 2 else False)
                trunc_hi.append(bool(window[3]) if len(window) > 3 else False)
            offsets.append(len(rises))
    return ContactIntervals(
        n_sites=n_sites,
        n_satellites=n_sats,
        start_s=start_s,
        end_s=end_s,
        rise_s=np.array(rises, dtype=np.float64),
        set_s=np.array(sets, dtype=np.float64),
        truncated_start=np.array(trunc_lo, dtype=bool),
        truncated_end=np.array(trunc_hi, dtype=bool),
        pair_offsets=np.array(offsets, dtype=np.int64),
    )


def dense_from_contacts(contacts, grid):
    """The (S, N, T) boolean tensor the grid scheduler would see."""
    times = grid.times_s
    visible = np.zeros(
        (contacts.n_sites, contacts.n_satellites, grid.count), dtype=bool
    )
    for s in range(contacts.n_sites):
        for n in range(contacts.n_satellites):
            visible[s, n] = contacts.pair(s, n).sample(times)
    return visible


#: One station, two satellites, four 10-second steps: sat 0 visible
#: [0, 25), sat 1 visible [15, 40).  Generation 1 Mbps, downlink 2 Mbps.
GRID = TimeGrid(duration_s=40.0, step_s=10.0)
WINDOWS = {(0, 0): [(0.0, 25.0)], (0, 1): [(15.0, 40.0)]}


def _hand_scenario():
    return build_contacts(1, 2, WINDOWS, 0.0, 40.0)


def _run(policy, contacts=None):
    return IntervalDownlinkScheduler(
        contacts if contacts is not None else _hand_scenario(),
        GRID,
        downlink_rate_mbps=2.0,
        generation_rate_mbps=1.0,
        policy=policy,
    ).run()


class TestHandComputedAllocations:
    """Every number below is worked by hand from the decision rules."""

    def test_max_backlog(self):
        result = _run(SchedulingPolicy.MAX_BACKLOG)
        # t=0: only sat0 visible, drain 10.  t=10: same.  t=20: both
        # visible, sat1's backlog (30) beats sat0's (10) -> sat1 drains
        # the rate cap 20.  t=30: only sat1, drains 20.
        assert result.assignment.tolist() == [[0, 0, 1, 1]]
        assert result.downlinked_megabits.tolist() == [20.0, 40.0]
        assert result.remaining_backlog_megabits.tolist() == [20.0, 0.0]

    def test_first_visible(self):
        result = _run(SchedulingPolicy.FIRST_VISIBLE)
        # t=20: candidates [0, 1] -> lowest index wins (sat0), so sat1
        # only ever drains at t=30.
        assert result.assignment.tolist() == [[0, 0, 0, 1]]
        assert result.downlinked_megabits.tolist() == [30.0, 20.0]
        assert result.remaining_backlog_megabits.tolist() == [10.0, 20.0]

    def test_round_robin(self):
        result = _run(SchedulingPolicy.ROUND_ROBIN)
        # Cursor advances past sat0 after t=0; at t=20 the rotation picks
        # sat1 even though sat0 is also a candidate.
        assert result.assignment.tolist() == [[0, 0, 1, 1]]
        assert result.downlinked_megabits.tolist() == [20.0, 40.0]
        assert result.remaining_backlog_megabits.tolist() == [20.0, 0.0]

    def test_conservation(self):
        for policy in SchedulingPolicy:
            result = _run(policy)
            np.testing.assert_allclose(
                result.generated_megabits,
                result.downlinked_megabits + result.remaining_backlog_megabits,
            )

    def test_station_busy_fraction(self):
        result = _run(SchedulingPolicy.MAX_BACKLOG)
        assert result.station_busy_fraction.tolist() == [1.0]


class TestEdgeCases:
    def test_zero_windows_schedule_nothing(self):
        contacts = build_contacts(2, 3, {}, 0.0, 40.0)
        result = IntervalDownlinkScheduler(
            contacts, GRID, downlink_rate_mbps=2.0, generation_rate_mbps=1.0
        ).run()
        assert np.all(result.assignment == -1)
        assert np.all(result.downlinked_megabits == 0.0)
        # Everything generated is still backlogged.
        np.testing.assert_allclose(
            result.remaining_backlog_megabits, result.generated_megabits
        )
        assert result.station_busy_fraction.tolist() == [0.0, 0.0]

    def test_truncated_pass_covers_the_horizon_edges(self):
        """A window clipped at both horizon edges is visible at the first
        and last grid instants (rise <= t < set)."""
        contacts = build_contacts(
            1, 1, {(0, 0): [(0.0, 40.0, True, True)]}, 0.0, 40.0
        )
        result = IntervalDownlinkScheduler(
            contacts, GRID, downlink_rate_mbps=2.0, generation_rate_mbps=1.0
        ).run()
        assert result.assignment.tolist() == [[0, 0, 0, 0]]
        # Drain always caps at the backlog (10 per step here).
        assert result.downlinked_megabits.tolist() == [40.0]
        assert result.remaining_backlog_megabits.tolist() == [0.0]

    def test_overlapping_windows_count_not_flag(self):
        """Two overlapping raw windows of one pair must behave exactly
        like their union: the sweep counts overlaps, so the pair stays a
        candidate until the *last* covering window sets."""
        overlapping = build_contacts(
            1, 1, {(0, 0): [(0.0, 22.0), (18.0, 40.0)]}, 0.0, 40.0
        )
        merged = build_contacts(1, 1, {(0, 0): [(0.0, 40.0)]}, 0.0, 40.0)
        for policy in SchedulingPolicy:
            a = _run(policy, contacts=overlapping)
            b = _run(policy, contacts=merged)
            assert a.assignment.tolist() == b.assignment.tolist()
            assert a.downlinked_megabits.tolist() == b.downlinked_megabits.tolist()

    def test_rejects_non_contacts(self):
        with pytest.raises(ValueError, match="ContactIntervals"):
            IntervalDownlinkScheduler(np.zeros((1, 2, 4), dtype=bool), GRID)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="downlink"):
            IntervalDownlinkScheduler(
                _hand_scenario(), GRID, downlink_rate_mbps=0.0
            )
        with pytest.raises(ValueError, match="generation"):
            IntervalDownlinkScheduler(
                _hand_scenario(), GRID, generation_rate_mbps=-1.0
            )


class TestGridInstantAgreement:
    """Bit-identity against the grid scheduler on the same windows."""

    @pytest.mark.parametrize("policy", list(SchedulingPolicy))
    def test_hand_scenario_matches_grid(self, policy):
        contacts = _hand_scenario()
        dense = dense_from_contacts(contacts, GRID)
        on_grid = DownlinkScheduler(
            dense, GRID, downlink_rate_mbps=2.0,
            generation_rate_mbps=1.0, policy=policy,
        ).run()
        on_intervals = _run(policy)
        assert np.array_equal(on_grid.assignment, on_intervals.assignment)
        assert np.array_equal(
            on_grid.downlinked_megabits, on_intervals.downlinked_megabits
        )
        assert np.array_equal(
            on_grid.remaining_backlog_megabits,
            on_intervals.remaining_backlog_megabits,
        )

    @pytest.mark.parametrize("policy", list(SchedulingPolicy))
    def test_random_windows_match_grid(self, policy):
        rng = np.random.default_rng(17)
        grid = TimeGrid(duration_s=600.0, step_s=30.0)
        windows = {}
        for site in range(3):
            for sat in range(5):
                passes = []
                t = float(rng.uniform(0.0, 120.0))
                while t < 600.0 and rng.random() < 0.8:
                    stop = t + float(rng.uniform(10.0, 150.0))
                    passes.append((t, min(stop, 600.0)))
                    t = stop + float(rng.uniform(20.0, 200.0))
                if passes:
                    windows[(site, sat)] = passes
        contacts = build_contacts(3, 5, windows, 0.0, 600.0)
        dense = dense_from_contacts(contacts, grid)
        on_grid = DownlinkScheduler(
            dense, grid, downlink_rate_mbps=5.0,
            generation_rate_mbps=1.5, policy=policy,
        ).run()
        on_intervals = IntervalDownlinkScheduler(
            contacts, grid, downlink_rate_mbps=5.0,
            generation_rate_mbps=1.5, policy=policy,
        ).run()
        assert np.array_equal(on_grid.assignment, on_intervals.assignment)
        assert np.array_equal(
            on_grid.downlinked_megabits, on_intervals.downlinked_megabits
        )
        assert np.array_equal(
            on_grid.remaining_backlog_megabits,
            on_intervals.remaining_backlog_megabits,
        )

    def test_compare_policies_dispatches_on_type(self):
        contacts = _hand_scenario()
        dense = dense_from_contacts(contacts, GRID)
        on_intervals = compare_policies(
            contacts, GRID, downlink_rate_mbps=2.0, generation_rate_mbps=1.0
        )
        on_grid = compare_policies(
            dense, GRID, downlink_rate_mbps=2.0, generation_rate_mbps=1.0
        )
        assert set(on_intervals) == set(SchedulingPolicy)
        for policy in SchedulingPolicy:
            assert np.array_equal(
                on_grid[policy].assignment, on_intervals[policy].assignment
            )
