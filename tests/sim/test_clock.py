"""Tests for simulation time grids."""

import numpy as np
import pytest

from repro.constants import WEEK_S
from repro.sim.clock import TimeGrid


class TestTimeGrid:
    def test_one_week_count(self):
        grid = TimeGrid.one_week(step_s=60.0)
        assert grid.count == 10_080

    def test_times_shape_and_spacing(self):
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        times = grid.times_s
        assert times.shape == (10,)
        assert np.allclose(np.diff(times), 60.0)

    def test_start_offset(self):
        grid = TimeGrid(start_s=100.0, duration_s=300.0, step_s=100.0)
        assert list(grid.times_s) == [100.0, 200.0, 300.0]

    def test_hours_constructor(self):
        grid = TimeGrid.hours(2.0, step_s=30.0)
        assert grid.duration_s == 7200.0
        assert grid.count == 240

    def test_one_week_duration(self):
        assert TimeGrid.one_week().duration_s == WEEK_S

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError, match="duration"):
            TimeGrid(duration_s=0.0)

    def test_rejects_zero_step(self):
        with pytest.raises(ValueError, match="step"):
            TimeGrid(duration_s=100.0, step_s=0.0)

    def test_rejects_step_beyond_duration(self):
        with pytest.raises(ValueError, match="exceeds duration"):
            TimeGrid(duration_s=10.0, step_s=60.0)

    def test_chunks_cover_all_times(self):
        grid = TimeGrid(duration_s=1000.0, step_s=10.0)
        chunks = list(grid.chunks(17))
        assert sum(chunk.size for chunk in chunks) == grid.count
        reassembled = np.concatenate(chunks)
        assert np.array_equal(reassembled, grid.times_s)

    def test_chunks_max_size(self):
        grid = TimeGrid(duration_s=1000.0, step_s=10.0)
        assert all(chunk.size <= 17 for chunk in grid.chunks(17))

    def test_chunks_reject_zero(self):
        grid = TimeGrid(duration_s=100.0, step_s=10.0)
        with pytest.raises(ValueError, match="chunk_size"):
            list(grid.chunks(0))

    def test_seconds_from_samples(self):
        grid = TimeGrid(duration_s=100.0, step_s=10.0)
        assert grid.seconds_from_samples(3) == 30.0

    def test_frozen(self):
        grid = TimeGrid(duration_s=100.0, step_s=10.0)
        with pytest.raises(AttributeError):
            grid.step_s = 5.0
