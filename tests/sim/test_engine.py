"""Tests for the bent-pipe session engine."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.ground.sites import GroundStation, UserTerminal
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator
from repro.sim.traffic import ConstantDemand


def _overhead_sat(sat_id, party="p1", mean_anomaly_deg=0.0, capacity=1000.0):
    """A near-equatorial satellite crossing lon 0 at t=0."""
    return Satellite(
        sat_id=sat_id,
        elements=OrbitalElements.from_degrees(
            altitude_km=550.0,
            inclination_deg=0.1,
            mean_anomaly_deg=mean_anomaly_deg,
        ),
        party=party,
        capacity_mbps=capacity,
    )


@pytest.fixture
def equator_setup():
    """Terminal and station co-located near lon 0 on the equator, party p1."""
    terminal = UserTerminal(
        "ut-0", 0.0, 0.0, min_elevation_deg=25.0, party="p1", demand_mbps=100.0
    )
    station = GroundStation("gs-0", 0.5, 0.5, min_elevation_deg=10.0, party="p1")
    return terminal, station


class TestBasicOperation:
    def test_session_when_overhead(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        assert result.sessions, "expected at least one session while overhead"
        session = result.sessions[0]
        assert session.terminal_name == "ut-0"
        assert session.sat_id == "S1"
        assert session.rate_mbps == pytest.approx(100.0)

    def test_no_station_no_service(self, equator_setup, rng):
        """Bent pipe rule: no same-party ground station -> no session."""
        terminal, _ = equator_setup
        other_station = GroundStation(
            "gs-x", 0.5, 0.5, min_elevation_deg=10.0, party="p2"
        )
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        result = BentPipeSimulator(
            constellation, [terminal], [other_station], grid
        ).run(rng)
        assert not result.sessions
        assert result.served_mbps.sum() == 0.0

    def test_satellite_away_no_service(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1", mean_anomaly_deg=180.0)])
        grid = TimeGrid(duration_s=300.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        assert result.served_mbps.sum() == 0.0

    def test_served_never_exceeds_demand(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        assert np.all(result.served_mbps <= result.demand_mbps + 1e-9)

    def test_served_fraction_bounds(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        assert np.all(result.served_fraction >= 0.0)
        assert np.all(result.served_fraction <= 1.0)

    def test_run_narrates_grants_onto_timeline(self, equator_setup, rng):
        from repro.obs import timeline as obs_timeline

        obs_timeline.reset()
        try:
            terminal, station = equator_setup
            constellation = Constellation([_overhead_sat("S1")])
            grid = TimeGrid(duration_s=600.0, step_s=60.0)
            result = BentPipeSimulator(
                constellation, [terminal], [station], grid
            ).run(rng)
            grants = obs_timeline.events(kind=obs_timeline.ALLOC_GRANT)
            assert len(grants) == len(result.sessions)
            assert grants[0].subject == "S1"
            assert grants[0].party == "p1"
            assert grants[0].duration_s > 0.0
            assert grants[0].attrs["terminal"] == "ut-0"
        finally:
            obs_timeline.reset()

    def test_unserved_demand_narrated_as_denies(self, equator_setup, rng):
        from repro.obs import timeline as obs_timeline

        obs_timeline.reset()
        try:
            terminal, station = equator_setup
            # Satellite on the far side: demand exists, nothing can serve it.
            constellation = Constellation(
                [_overhead_sat("S1", mean_anomaly_deg=180.0)]
            )
            grid = TimeGrid(duration_s=300.0, step_s=60.0)
            BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
            denies = obs_timeline.events(kind=obs_timeline.ALLOC_DENY)
            assert len(denies) == 1
            assert denies[0].subject == "ut-0"
            assert denies[0].duration_s == pytest.approx(300.0)
        finally:
            obs_timeline.reset()


class TestCapacityLimits:
    def test_capacity_cap_respected(self, rng):
        terminals = [
            UserTerminal(
                f"ut-{i}", 0.0, float(i) * 0.2, min_elevation_deg=25.0,
                party="p1", demand_mbps=400.0,
            )
            for i in range(4)
        ]
        station = GroundStation("gs", 0.5, 0.5, min_elevation_deg=10.0, party="p1")
        constellation = Constellation([_overhead_sat("S1", capacity=1000.0)])
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        result = BentPipeSimulator(constellation, terminals, [station], grid).run(rng)
        assert np.all(result.satellite_load_mbps <= 1000.0 + 1e-9)

    def test_total_demand_above_capacity_partially_served(self, rng):
        terminals = [
            UserTerminal(
                f"ut-{i}", 0.0, float(i) * 0.2, min_elevation_deg=25.0,
                party="p1", demand_mbps=400.0,
            )
            for i in range(4)
        ]
        station = GroundStation("gs", 0.5, 0.5, min_elevation_deg=10.0, party="p1")
        constellation = Constellation([_overhead_sat("S1", capacity=1000.0)])
        grid = TimeGrid(duration_s=120.0, step_s=60.0)
        result = BentPipeSimulator(constellation, terminals, [station], grid).run(rng)
        served_at_t0 = result.served_mbps[:, 0].sum()
        assert served_at_t0 == pytest.approx(1000.0)


class TestOwnerPriority:
    def test_owner_served_before_guest(self, rng):
        """With capacity for one terminal only, the owner's terminal wins."""
        owner_terminal = UserTerminal(
            "ut-own", 0.0, 0.0, min_elevation_deg=25.0, party="owner",
            demand_mbps=100.0,
        )
        guest_terminal = UserTerminal(
            "ut-guest", 0.0, 0.3, min_elevation_deg=25.0, party="guest",
            demand_mbps=100.0,
        )
        stations = [
            GroundStation("gs-o", 0.5, 0.5, min_elevation_deg=10.0, party="owner"),
            GroundStation("gs-g", -0.5, 0.5, min_elevation_deg=10.0, party="guest"),
        ]
        constellation = Constellation(
            [_overhead_sat("S1", party="owner", capacity=100.0)]
        )
        grid = TimeGrid(duration_s=60.0, step_s=60.0)
        result = BentPipeSimulator(
            constellation, [guest_terminal, owner_terminal], stations, grid
        ).run(rng)
        # Guest listed first, but owner must win the capacity.
        served = dict(zip(result.terminal_names, result.served_mbps[:, 0]))
        assert served["ut-own"] == pytest.approx(100.0)
        assert served["ut-guest"] == pytest.approx(0.0)

    def test_spare_capacity_serves_guest(self, rng):
        guest_terminal = UserTerminal(
            "ut-guest", 0.0, 0.0, min_elevation_deg=25.0, party="guest",
            demand_mbps=100.0,
        )
        station = GroundStation(
            "gs-g", 0.5, 0.5, min_elevation_deg=10.0, party="guest"
        )
        constellation = Constellation([_overhead_sat("S1", party="owner")])
        grid = TimeGrid(duration_s=60.0, step_s=60.0)
        result = BentPipeSimulator(
            constellation, [guest_terminal], [station], grid
        ).run(rng)
        assert result.sessions
        assert result.sessions[0].is_spare_capacity
        assert result.spare_capacity_megabits() > 0.0


class TestSessionAccounting:
    def test_sessions_by_party_pair(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1", party="p2")])
        grid = TimeGrid(duration_s=300.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        volumes = result.sessions_by_party_pair()
        assert ("p1", "p2") in volumes
        assert volumes[("p1", "p2")] > 0.0

    def test_session_volume_matches_served(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        session_volume = sum(s.volume_megabits for s in result.sessions)
        assert session_volume == pytest.approx(result.total_served_megabits, rel=1e-9)

    def test_sessions_sorted_by_start(self, equator_setup, rng):
        terminal, station = equator_setup
        constellation = Constellation(
            [_overhead_sat("S1"), _overhead_sat("S2", mean_anomaly_deg=90.0)]
        )
        grid = TimeGrid.hours(3.0, step_s=60.0)
        result = BentPipeSimulator(constellation, [terminal], [station], grid).run(rng)
        starts = [session.start_s for session in result.sessions]
        assert starts == sorted(starts)


class TestValidation:
    def test_rejects_no_terminals(self, equator_setup, rng):
        _, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=60.0, step_s=60.0)
        with pytest.raises(ValueError, match="terminal"):
            BentPipeSimulator(constellation, [], [station], grid)

    def test_rejects_no_stations(self, equator_setup, rng):
        terminal, _ = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=60.0, step_s=60.0)
        with pytest.raises(ValueError, match="station"):
            BentPipeSimulator(constellation, [terminal], [], grid)

    def test_rejects_demand_count_mismatch(self, equator_setup):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=60.0, step_s=60.0)
        with pytest.raises(ValueError, match="demand models"):
            BentPipeSimulator(
                constellation, [terminal], [station], grid,
                demand=[ConstantDemand(), ConstantDemand()],
            )

    def test_deterministic_given_seed(self, equator_setup):
        terminal, station = equator_setup
        constellation = Constellation([_overhead_sat("S1")])
        grid = TimeGrid(duration_s=300.0, step_s=60.0)
        simulator = BentPipeSimulator(constellation, [terminal], [station], grid)
        a = simulator.run(np.random.default_rng(9))
        b = simulator.run(np.random.default_rng(9))
        assert np.array_equal(a.served_mbps, b.served_mbps)
        assert len(a.sessions) == len(b.sessions)
