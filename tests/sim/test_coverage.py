"""Tests for coverage statistics and gap analytics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import TimeGrid
from repro.sim.coverage import (
    CoverageTimeline,
    coverage_improvement_s,
    coverage_reduction_fraction,
    coverage_stats,
    covered_runs_s,
    gap_lengths_s,
    population_weighted_coverage_fraction,
    population_weighted_coverage_time_s,
)


class TestGapLengths:
    def test_no_gaps(self):
        assert gap_lengths_s(np.ones(10, dtype=bool), 60.0).size == 0

    def test_all_gap(self):
        gaps = gap_lengths_s(np.zeros(10, dtype=bool), 60.0)
        assert list(gaps) == [600.0]

    def test_interior_gap(self):
        mask = np.array([True, False, False, True, True])
        assert list(gap_lengths_s(mask, 60.0)) == [120.0]

    def test_edge_gaps_counted(self):
        mask = np.array([False, True, True, False, False])
        assert list(gap_lengths_s(mask, 60.0)) == [60.0, 120.0]

    def test_multiple_gaps_in_order(self):
        mask = np.array([True, False, True, False, False, True])
        assert list(gap_lengths_s(mask, 10.0)) == [10.0, 20.0]

    def test_empty_mask(self):
        assert gap_lengths_s(np.array([], dtype=bool), 60.0).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            gap_lengths_s(np.ones((2, 2), dtype=bool), 60.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_total_gap_equals_uncovered_time(self, bits):
        mask = np.array(bits)
        gaps = gap_lengths_s(mask, 60.0)
        assert gaps.sum() == pytest.approx((~mask).sum() * 60.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_gaps_and_runs_partition_time(self, bits):
        mask = np.array(bits)
        gaps = gap_lengths_s(mask, 1.0)
        runs = covered_runs_s(mask, 1.0)
        assert gaps.sum() + runs.sum() == pytest.approx(float(mask.size))

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_gap_count_matches_transitions(self, bits):
        mask = np.array(bits)
        gaps = gap_lengths_s(mask, 1.0)
        padded = np.concatenate(([True], mask, [True]))
        falls = np.sum(padded[:-1] & ~padded[1:])
        assert gaps.size == falls


class TestCoverageStats:
    def test_full_coverage(self):
        stats = coverage_stats(np.ones(100, dtype=bool), 60.0)
        assert stats.covered_fraction == 1.0
        assert stats.max_gap_s == 0.0
        assert stats.gap_count == 0

    def test_half_coverage(self):
        mask = np.array([True, False] * 50)
        stats = coverage_stats(mask, 60.0)
        assert stats.covered_fraction == 0.5
        assert stats.uncovered_percent == 50.0
        assert stats.gap_count == 50

    def test_times_sum_to_horizon(self):
        rng = np.random.default_rng(0)
        mask = rng.random(500) > 0.5
        stats = coverage_stats(mask, 30.0)
        assert stats.covered_time_s + stats.uncovered_time_s == pytest.approx(
            500 * 30.0
        )

    def test_max_gap(self):
        mask = np.array([True] + [False] * 7 + [True, False, False, True])
        stats = coverage_stats(mask, 60.0)
        assert stats.max_gap_s == 7 * 60.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            coverage_stats(np.array([], dtype=bool), 60.0)


class TestCoverageTimeline:
    def test_stats_roundtrip(self):
        grid = TimeGrid(duration_s=600.0, step_s=60.0)
        mask = np.array([True] * 5 + [False] * 5)
        timeline = CoverageTimeline("taipei", grid, mask)
        assert timeline.covered_fraction == 0.5
        assert timeline.stats().uncovered_time_s == 300.0


class TestPopulationWeighting:
    def test_equal_weights_is_mean(self):
        masks = np.array([[True, True, False, False], [True, False, False, False]])
        fraction = population_weighted_coverage_fraction(masks, [1.0, 1.0])
        assert fraction == pytest.approx((0.5 + 0.25) / 2)

    def test_weight_normalization(self):
        masks = np.array([[True, True], [False, False]])
        assert population_weighted_coverage_fraction(
            masks, [2.0, 2.0]
        ) == population_weighted_coverage_fraction(masks, [0.5, 0.5])

    def test_skewed_weights(self):
        masks = np.array([[True, True], [False, False]])
        fraction = population_weighted_coverage_fraction(masks, [3.0, 1.0])
        assert fraction == pytest.approx(0.75)

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            population_weighted_coverage_fraction(np.ones((2, 3), dtype=bool), [1.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            population_weighted_coverage_fraction(
                np.ones((2, 3), dtype=bool), [1.0, -1.0]
            )

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            population_weighted_coverage_fraction(
                np.ones((2, 3), dtype=bool), [0.0, 0.0]
            )

    def test_coverage_time(self):
        grid = TimeGrid(duration_s=3600.0, step_s=60.0)
        masks = np.ones((2, 60), dtype=bool)
        time_s = population_weighted_coverage_time_s(masks, [1.0, 1.0], grid)
        assert time_s == pytest.approx(3600.0)


class TestDeltas:
    def test_improvement(self):
        grid = TimeGrid(duration_s=100.0, step_s=10.0)
        base = np.zeros((1, 10), dtype=bool)
        augmented = np.ones((1, 10), dtype=bool)
        assert coverage_improvement_s(base, augmented, [1.0], grid) == pytest.approx(
            100.0
        )

    def test_reduction(self):
        base = np.ones((1, 10), dtype=bool)
        reduced = np.concatenate(
            [np.ones((1, 5), dtype=bool), np.zeros((1, 5), dtype=bool)], axis=1
        )
        assert coverage_reduction_fraction(base, reduced, [1.0]) == pytest.approx(0.5)

    def test_superset_never_reduces(self):
        rng = np.random.default_rng(3)
        base = rng.random((3, 50)) > 0.5
        augmented = base | (rng.random((3, 50)) > 0.7)
        grid = TimeGrid(duration_s=50.0, step_s=1.0)
        assert coverage_improvement_s(base, augmented, [1, 2, 3], grid) >= 0.0
