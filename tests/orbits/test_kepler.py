"""Tests for the Kepler-equation solvers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.orbits.kepler import solve_kepler, solve_kepler_batch


class TestScalarSolver:
    def test_circular_is_identity(self):
        assert solve_kepler(1.5, 0.0) == pytest.approx(1.5)

    def test_zero_mean_anomaly(self):
        assert solve_kepler(0.0, 0.3) == pytest.approx(0.0)

    def test_pi_is_fixed_point(self):
        # E = pi solves pi = E - e*sin(E) for any e.
        assert solve_kepler(math.pi, 0.7) == pytest.approx(math.pi)

    def test_known_value(self):
        # Vallado example 2-1: M = 235.4 deg, e = 0.4 -> E = 220.512074 deg.
        eccentric = solve_kepler(math.radians(235.4), 0.4)
        assert math.degrees(eccentric) == pytest.approx(220.512074, abs=1e-4)

    def test_rejects_eccentricity_one(self):
        with pytest.raises(ValueError, match="eccentricity"):
            solve_kepler(1.0, 1.0)

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(ValueError, match="eccentricity"):
            solve_kepler(1.0, -0.2)

    def test_wraps_input(self):
        direct = solve_kepler(0.5, 0.2)
        wrapped = solve_kepler(0.5 + 2 * math.pi, 0.2)
        assert wrapped == pytest.approx(direct)

    @given(
        st.floats(0.0, 2 * math.pi - 1e-9),
        st.floats(0.0, 0.95),
    )
    def test_satisfies_keplers_equation(self, mean, eccentricity):
        eccentric = solve_kepler(mean, eccentricity)
        residual = eccentric - eccentricity * math.sin(eccentric) - mean
        assert abs(residual) < 1e-9


class TestBatchSolver:
    def test_matches_scalar(self):
        means = np.linspace(0.0, 2 * math.pi, 50, endpoint=False)
        eccentricities = np.full_like(means, 0.3)
        batch = solve_kepler_batch(means, eccentricities)
        for mean, result in zip(means, batch):
            assert result == pytest.approx(solve_kepler(float(mean), 0.3), abs=1e-9)

    def test_broadcasting_scalar_eccentricity(self):
        means = np.array([[0.1, 0.2], [0.3, 0.4]])
        batch = solve_kepler_batch(means, np.array(0.1))
        assert batch.shape == (2, 2)

    def test_mixed_eccentricities(self):
        means = np.array([1.0, 1.0, 1.0])
        eccs = np.array([0.0, 0.3, 0.8])
        batch = solve_kepler_batch(means, eccs)
        residual = batch - eccs * np.sin(batch) - 1.0
        assert np.all(np.abs(residual) < 1e-9)

    def test_circular_batch_is_identity(self):
        means = np.linspace(0.0, 6.0, 100)
        batch = solve_kepler_batch(means, np.zeros(100))
        assert np.allclose(batch, means)

    def test_rejects_bad_eccentricity(self):
        with pytest.raises(ValueError, match="eccentricities"):
            solve_kepler_batch(np.array([1.0]), np.array([1.5]))

    def test_empty_input(self):
        result = solve_kepler_batch(np.array([]), np.array([]))
        assert result.size == 0

    def test_large_batch_converges(self):
        rng = np.random.default_rng(7)
        means = rng.uniform(0.0, 2 * math.pi, size=10_000)
        eccs = rng.uniform(0.0, 0.9, size=10_000)
        batch = solve_kepler_batch(means, eccs)
        residual = batch - eccs * np.sin(batch) - means
        assert np.max(np.abs(residual)) < 1e-9


class TestSeededDomainProperties:
    """Seeded property tests over the LEO domain (e <= 0.02), mirroring the
    ``repro.validate`` fuzz conventions: replay any trial with its seed."""

    SEED = 2024

    @pytest.mark.parametrize("trial", range(8))
    def test_convergence_in_domain(self, trial):
        rng = np.random.default_rng(np.random.SeedSequence(self.SEED, spawn_key=(trial,)))
        means = rng.uniform(-4 * math.pi, 4 * math.pi, size=256)
        eccs = rng.uniform(0.0, 0.02, size=256)
        batch = solve_kepler_batch(means, eccs)
        wrapped = np.mod(means, 2 * math.pi)
        residual = batch - eccs * np.sin(batch) - wrapped
        assert np.max(np.abs(residual)) < 1e-10

    @pytest.mark.parametrize("trial", range(8))
    def test_scalar_batch_agree_in_domain(self, trial):
        rng = np.random.default_rng(np.random.SeedSequence(self.SEED, spawn_key=(trial, 1)))
        means = rng.uniform(-4 * math.pi, 4 * math.pi, size=64)
        eccs = rng.uniform(0.0, 0.02, size=64)
        batch = solve_kepler_batch(means, eccs)
        for mean, ecc, result in zip(means, eccs, batch):
            assert result == pytest.approx(solve_kepler(float(mean), float(ecc)), abs=1e-9)

    @pytest.mark.parametrize(
        "mean",
        [-1e-9, 0.0, 1e-9, 2 * math.pi - 1e-9, 2 * math.pi, 2 * math.pi + 1e-9,
         -2 * math.pi, 4 * math.pi - 1e-12],
    )
    @pytest.mark.parametrize("eccentricity", [0.0, 0.001, 0.02])
    def test_wrap_boundary_anomalies(self, mean, eccentricity):
        """Mean anomalies straddling revolution boundaries stay in [0, 2*pi)
        and satisfy the wrapped equation to solver tolerance."""
        eccentric = solve_kepler(mean, eccentricity)
        assert 0.0 <= eccentric < 2 * math.pi + 1e-9
        wrapped = math.fmod(mean, 2 * math.pi)
        if wrapped < 0.0:
            wrapped += 2 * math.pi
        residual = eccentric - eccentricity * math.sin(eccentric) - wrapped
        assert abs(residual) < 1e-10

    def test_wrap_boundaries_scalar_vs_batch(self):
        means = np.array(
            [-1e-9, 0.0, 1e-9, 2 * math.pi - 1e-9, 2 * math.pi, 2 * math.pi + 1e-9]
        )
        eccs = np.full(means.size, 0.015)
        batch = solve_kepler_batch(means, eccs)
        for mean, result in zip(means, batch):
            scalar = solve_kepler(float(mean), 0.015)
            # Both wrap to [0, 2*pi); compare on the circle to tolerate
            # landing on either side of the seam for boundary inputs.
            delta = abs(float(result) - scalar)
            assert min(delta, 2 * math.pi - delta) < 1e-9

    def test_two_iterations_suffice_near_circular(self):
        """The docstring's convergence claim for LEO eccentricities holds:
        a 3-iteration budget already reaches 1e-12 residuals."""
        rng = np.random.default_rng(self.SEED)
        means = rng.uniform(0.0, 2 * math.pi, size=512)
        for mean in means:
            ecc = 0.02
            eccentric = mean + ecc * math.sin(mean)
            for _ in range(3):
                residual = eccentric - ecc * math.sin(eccentric) - mean
                eccentric -= residual / (1.0 - ecc * math.cos(eccentric))
            assert abs(eccentric - ecc * math.sin(eccentric) - mean) < 1e-12
