"""Tests for the Kepler-equation solvers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.orbits.kepler import solve_kepler, solve_kepler_batch


class TestScalarSolver:
    def test_circular_is_identity(self):
        assert solve_kepler(1.5, 0.0) == pytest.approx(1.5)

    def test_zero_mean_anomaly(self):
        assert solve_kepler(0.0, 0.3) == pytest.approx(0.0)

    def test_pi_is_fixed_point(self):
        # E = pi solves pi = E - e*sin(E) for any e.
        assert solve_kepler(math.pi, 0.7) == pytest.approx(math.pi)

    def test_known_value(self):
        # Vallado example 2-1: M = 235.4 deg, e = 0.4 -> E = 220.512074 deg.
        eccentric = solve_kepler(math.radians(235.4), 0.4)
        assert math.degrees(eccentric) == pytest.approx(220.512074, abs=1e-4)

    def test_rejects_eccentricity_one(self):
        with pytest.raises(ValueError, match="eccentricity"):
            solve_kepler(1.0, 1.0)

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(ValueError, match="eccentricity"):
            solve_kepler(1.0, -0.2)

    def test_wraps_input(self):
        direct = solve_kepler(0.5, 0.2)
        wrapped = solve_kepler(0.5 + 2 * math.pi, 0.2)
        assert wrapped == pytest.approx(direct)

    @given(
        st.floats(0.0, 2 * math.pi - 1e-9),
        st.floats(0.0, 0.95),
    )
    def test_satisfies_keplers_equation(self, mean, eccentricity):
        eccentric = solve_kepler(mean, eccentricity)
        residual = eccentric - eccentricity * math.sin(eccentric) - mean
        assert abs(residual) < 1e-9


class TestBatchSolver:
    def test_matches_scalar(self):
        means = np.linspace(0.0, 2 * math.pi, 50, endpoint=False)
        eccentricities = np.full_like(means, 0.3)
        batch = solve_kepler_batch(means, eccentricities)
        for mean, result in zip(means, batch):
            assert result == pytest.approx(solve_kepler(float(mean), 0.3), abs=1e-9)

    def test_broadcasting_scalar_eccentricity(self):
        means = np.array([[0.1, 0.2], [0.3, 0.4]])
        batch = solve_kepler_batch(means, np.array(0.1))
        assert batch.shape == (2, 2)

    def test_mixed_eccentricities(self):
        means = np.array([1.0, 1.0, 1.0])
        eccs = np.array([0.0, 0.3, 0.8])
        batch = solve_kepler_batch(means, eccs)
        residual = batch - eccs * np.sin(batch) - 1.0
        assert np.all(np.abs(residual) < 1e-9)

    def test_circular_batch_is_identity(self):
        means = np.linspace(0.0, 6.0, 100)
        batch = solve_kepler_batch(means, np.zeros(100))
        assert np.allclose(batch, means)

    def test_rejects_bad_eccentricity(self):
        with pytest.raises(ValueError, match="eccentricities"):
            solve_kepler_batch(np.array([1.0]), np.array([1.5]))

    def test_empty_input(self):
        result = solve_kepler_batch(np.array([]), np.array([]))
        assert result.size == 0

    def test_large_batch_converges(self):
        rng = np.random.default_rng(7)
        means = rng.uniform(0.0, 2 * math.pi, size=10_000)
        eccs = rng.uniform(0.0, 0.9, size=10_000)
        batch = solve_kepler_batch(means, eccs)
        residual = batch - eccs * np.sin(batch) - means
        assert np.max(np.abs(residual)) < 1e-9
