"""Tests for topocentric geometry: look angles and the coverage fast path."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import EARTH_MEAN_RADIUS_M
from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.topocentric import (
    central_angle_between,
    coverage_central_angle_rad,
    elevation_deg,
    footprint_area_fraction,
    look_angles,
    slant_range_m,
)


def _site_and_overhead_sat(lat=25.0, lon=121.5, altitude_km=550.0):
    site = geodetic_to_ecef(lat, lon, 0.0)
    direction = site / np.linalg.norm(site)
    satellite = site + direction * altitude_km * 1000.0
    return site, satellite


class TestLookAngles:
    def test_zenith_satellite(self):
        site, satellite = _site_and_overhead_sat()
        angles = look_angles(site, satellite, 25.0, 121.5)
        # The geocentric zenith differs from the geodetic by ~0.18 deg at
        # this latitude; overhead elevation is within that of 90.
        assert angles.elevation_deg > 89.5
        assert angles.slant_range_m == pytest.approx(550_000.0, rel=1e-6)

    def test_horizon_satellite_has_low_elevation(self):
        site = geodetic_to_ecef(0.0, 0.0, 0.0)
        # A satellite far to the east at the same height.
        satellite = geodetic_to_ecef(0.0, 25.0, 550_000.0)
        angles = look_angles(site, satellite, 0.0, 0.0)
        assert angles.elevation_deg < 10.0
        assert angles.azimuth_deg == pytest.approx(90.0, abs=1.0)

    def test_north_azimuth(self):
        site = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellite = geodetic_to_ecef(10.0, 0.0, 550_000.0)
        angles = look_angles(site, satellite, 0.0, 0.0)
        assert angles.azimuth_deg == pytest.approx(0.0, abs=1.0) or (
            angles.azimuth_deg == pytest.approx(360.0, abs=1.0)
        )

    def test_south_azimuth(self):
        site = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellite = geodetic_to_ecef(-10.0, 0.0, 550_000.0)
        angles = look_angles(site, satellite, 0.0, 0.0)
        assert angles.azimuth_deg == pytest.approx(180.0, abs=1.0)

    def test_coincident_raises(self):
        site = geodetic_to_ecef(0.0, 0.0, 0.0)
        with pytest.raises(ValueError, match="coincide"):
            look_angles(site, site, 0.0, 0.0)


class TestElevation:
    def test_matches_look_angles_on_equator(self):
        # On the equator geodetic and geocentric verticals coincide, so both
        # paths agree exactly.
        site = geodetic_to_ecef(0.0, 30.0, 0.0)
        satellite = geodetic_to_ecef(5.0, 38.0, 550_000.0)
        reference = look_angles(site, satellite, 0.0, 30.0).elevation_deg
        fast = float(elevation_deg(site, satellite))
        assert fast == pytest.approx(reference, abs=1e-9)

    def test_close_to_look_angles_at_mid_latitude(self):
        site = geodetic_to_ecef(45.0, 10.0, 0.0)
        satellite = geodetic_to_ecef(50.0, 15.0, 550_000.0)
        reference = look_angles(site, satellite, 45.0, 10.0).elevation_deg
        fast = float(elevation_deg(site, satellite))
        assert fast == pytest.approx(reference, abs=0.25)

    def test_vectorized(self):
        site = geodetic_to_ecef(0.0, 0.0, 0.0)
        satellites = np.stack(
            [geodetic_to_ecef(0.0, lon, 550_000.0) for lon in (1.0, 10.0, 30.0)]
        )
        elevations = elevation_deg(site, satellites)
        assert elevations.shape == (3,)
        assert np.all(np.diff(elevations) < 0)  # Farther away = lower.


class TestCoverageGeometry:
    def test_central_angle_shrinks_with_mask(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        psi_10 = coverage_central_angle_rad(radius, 10.0)
        psi_25 = coverage_central_angle_rad(radius, 25.0)
        psi_40 = coverage_central_angle_rad(radius, 40.0)
        assert psi_10 > psi_25 > psi_40 > 0.0

    def test_central_angle_grows_with_altitude(self):
        low = coverage_central_angle_rad(EARTH_MEAN_RADIUS_M + 550_000.0, 25.0)
        high = coverage_central_angle_rad(EARTH_MEAN_RADIUS_M + 1_200_000.0, 25.0)
        assert high > low

    def test_known_value_550km_25deg(self):
        # psi = acos(R/r cos 25) - 25 deg ~ 8.4 deg for 550 km.
        psi = coverage_central_angle_rad(EARTH_MEAN_RADIUS_M + 550_000.0, 25.0)
        assert math.degrees(psi) == pytest.approx(8.45, abs=0.2)

    def test_rejects_subterranean_orbit(self):
        with pytest.raises(ValueError, match="orbital radius"):
            coverage_central_angle_rad(EARTH_MEAN_RADIUS_M - 1.0, 25.0)

    def test_footprint_fraction_tiny_for_leo(self):
        fraction = footprint_area_fraction(EARTH_MEAN_RADIUS_M + 550_000.0, 25.0)
        assert 0.002 < fraction < 0.01

    def test_equivalence_with_elevation(self):
        """The fast path's defining property: el >= mask <=> angle <= psi."""
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        mask = 25.0
        psi = coverage_central_angle_rad(radius, mask, EARTH_MEAN_RADIUS_M)
        site = np.array([EARTH_MEAN_RADIUS_M, 0.0, 0.0])
        for offset_deg in np.linspace(0.1, 20.0, 40):
            offset = math.radians(offset_deg)
            satellite = radius * np.array([math.cos(offset), math.sin(offset), 0.0])
            elevation = float(elevation_deg(site, satellite))
            assert (elevation >= mask) == (offset <= psi + 1e-12)

    def test_slant_range_at_zenith(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        assert slant_range_m(radius, 90.0) == pytest.approx(550_000.0, rel=1e-9)

    def test_slant_range_longer_at_low_elevation(self):
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        assert slant_range_m(radius, 25.0) > slant_range_m(radius, 60.0)

    @given(st.floats(5.0, 85.0))
    def test_slant_range_consistent_with_geometry(self, elevation):
        """Law-of-cosines closure: placing a satellite at the computed range
        along the elevation direction lands it on the orbital sphere."""
        radius = EARTH_MEAN_RADIUS_M + 550_000.0
        rho = slant_range_m(radius, elevation)
        el = math.radians(elevation)
        sat_sq = (
            EARTH_MEAN_RADIUS_M**2
            + rho**2
            + 2.0 * EARTH_MEAN_RADIUS_M * rho * math.sin(el)
        )
        assert math.sqrt(sat_sq) == pytest.approx(radius, rel=1e-9)


class TestCentralAngleBetween:
    def test_identical_vectors(self):
        unit = np.array([1.0, 0.0, 0.0])
        cos_angle, angle = central_angle_between(unit, unit)
        assert float(cos_angle) == pytest.approx(1.0)
        assert float(angle) == pytest.approx(0.0)

    def test_orthogonal(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0])
        _, angle = central_angle_between(a, b)
        assert float(angle) == pytest.approx(math.pi / 2)

    def test_broadcast(self):
        a = np.tile([1.0, 0.0, 0.0], (5, 1))
        b = np.array([0.0, 0.0, 1.0])
        cos_angle, _ = central_angle_between(a, b)
        assert cos_angle.shape == (5,)
