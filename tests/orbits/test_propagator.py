"""Tests for the J2 and batch propagators."""

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_M, MU_EARTH
from repro.orbits.elements import OrbitalElements
from repro.orbits.propagator import BatchPropagator, J2Propagator, j2_secular_rates


class TestJ2Rates:
    def test_raan_regresses_for_prograde(self, leo_elements):
        rates = j2_secular_rates(leo_elements)
        assert rates.raan_rate < 0.0

    def test_raan_advances_for_retrograde(self):
        retro = OrbitalElements.from_degrees(altitude_km=560.0, inclination_deg=97.6)
        rates = j2_secular_rates(retro)
        assert rates.raan_rate > 0.0

    def test_polar_orbit_has_no_raan_drift(self):
        polar = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=90.0)
        rates = j2_secular_rates(polar)
        assert rates.raan_rate == pytest.approx(0.0, abs=1e-12)

    def test_starlink_regression_rate_magnitude(self, leo_elements):
        # Starlink 53 deg / 550 km regresses ~ -4.5 deg/day (the classical
        # -5 deg/day figure is ISS at 51.6 deg / 420 km).
        rates = j2_secular_rates(leo_elements)
        deg_per_day = math.degrees(rates.raan_rate) * 86400.0
        assert deg_per_day == pytest.approx(-4.49, abs=0.2)

    def test_iss_regression_rate_magnitude(self):
        iss = OrbitalElements.from_degrees(altitude_km=420.0, inclination_deg=51.6)
        deg_per_day = math.degrees(j2_secular_rates(iss).raan_rate) * 86400.0
        assert deg_per_day == pytest.approx(-5.0, abs=0.2)

    def test_sun_synchronous_rate(self):
        # 97.6 deg at 560 km is near sun-synchronous: ~ +1 deg/day.
        sso = OrbitalElements.from_degrees(altitude_km=560.0, inclination_deg=97.6)
        deg_per_day = math.degrees(j2_secular_rates(sso).raan_rate) * 86400.0
        assert deg_per_day == pytest.approx(0.986, abs=0.15)

    def test_critical_inclination_freezes_perigee(self):
        critical = OrbitalElements.from_degrees(
            altitude_km=600.0, inclination_deg=63.43, eccentricity=0.01
        )
        rates = j2_secular_rates(critical)
        assert rates.arg_perigee_rate == pytest.approx(0.0, abs=1e-9)

    def test_mean_motion_close_to_keplerian(self, leo_elements):
        rates = j2_secular_rates(leo_elements)
        keplerian = leo_elements.mean_motion_rad_s
        assert rates.mean_anomaly_rate == pytest.approx(keplerian, rel=1e-3)


class TestJ2Propagator:
    def test_radius_constant_for_circular(self, leo_elements):
        propagator = J2Propagator(leo_elements)
        for time_s in (0.0, 1000.0, 5000.0, 50_000.0):
            radius = np.linalg.norm(propagator.position_eci(time_s))
            assert radius == pytest.approx(leo_elements.semi_major_axis_m, rel=1e-9)

    def test_returns_to_start_after_period(self, leo_elements):
        propagator = J2Propagator(leo_elements)
        start = propagator.position_eci(0.0)
        # Use the J2-corrected anomalistic period for the recurrence check.
        rates = j2_secular_rates(leo_elements)
        period = 2 * math.pi / rates.mean_anomaly_rate
        end = propagator.position_eci(period)
        # The anomalistic period restores the argument of latitude, but RAAN
        # drifts ~0.3 deg per orbit, displacing the position by ~30 km.
        assert np.linalg.norm(end - start) < 50_000.0

    def test_velocity_magnitude_circular(self, leo_elements):
        propagator = J2Propagator(leo_elements)
        _, velocity = propagator.state_eci(1234.0)
        expected = math.sqrt(MU_EARTH / leo_elements.semi_major_axis_m)
        assert np.linalg.norm(velocity) == pytest.approx(expected, rel=1e-9)

    def test_velocity_perpendicular_to_position_circular(self, leo_elements):
        propagator = J2Propagator(leo_elements)
        position, velocity = propagator.state_eci(500.0)
        cosine = position @ velocity / (
            np.linalg.norm(position) * np.linalg.norm(velocity)
        )
        assert cosine == pytest.approx(0.0, abs=1e-9)

    def test_max_latitude_bounded_by_inclination(self, leo_elements):
        propagator = J2Propagator(leo_elements)
        max_z_over_r = max(
            abs(propagator.position_eci(t)[2])
            / np.linalg.norm(propagator.position_eci(t))
            for t in np.linspace(0, leo_elements.period_s, 200)
        )
        assert math.degrees(math.asin(max_z_over_r)) <= 53.0 + 1e-6

    def test_eccentric_orbit_radius_range(self, eccentric_elements):
        propagator = J2Propagator(eccentric_elements)
        radii = [
            np.linalg.norm(propagator.position_eci(t))
            for t in np.linspace(0, eccentric_elements.period_s, 100)
        ]
        a = eccentric_elements.semi_major_axis_m
        e = eccentric_elements.eccentricity
        assert min(radii) == pytest.approx(a * (1 - e), rel=1e-3)
        assert max(radii) == pytest.approx(a * (1 + e), rel=1e-3)

    def test_elements_at_drifts_raan(self, leo_elements):
        propagator = J2Propagator(leo_elements)
        day_later = propagator.elements_at(86_400.0)
        drift_deg = (day_later.raan_deg - leo_elements.raan_deg) % 360.0 - 360.0
        assert drift_deg == pytest.approx(-4.49, abs=0.2)

    def test_energy_conserved(self, eccentric_elements):
        propagator = J2Propagator(eccentric_elements)
        energies = []
        for t in np.linspace(0, eccentric_elements.period_s, 20):
            position, velocity = propagator.state_eci(t)
            energy = 0.5 * velocity @ velocity - MU_EARTH / np.linalg.norm(position)
            energies.append(energy)
        assert np.ptp(energies) / abs(np.mean(energies)) < 1e-9


class TestBatchPropagator:
    def _assert_matches_scalar(self, elements_list, times):
        batch = BatchPropagator(elements_list)
        positions = batch.positions_eci(times)
        for index, elements in enumerate(elements_list):
            scalar = J2Propagator(elements)
            for t_index, time_s in enumerate(times):
                expected = scalar.position_eci(float(time_s))
                np.testing.assert_allclose(
                    positions[index, t_index], expected, rtol=0, atol=0.5
                )

    def test_matches_scalar_circular(self, leo_elements):
        variants = [
            leo_elements,
            leo_elements.with_raan_deg(120.0),
            leo_elements.with_inclination_deg(97.6),
            leo_elements.with_altitude_km(600.0),
        ]
        times = np.array([0.0, 600.0, 7200.0, 86_400.0])
        self._assert_matches_scalar(variants, times)

    def test_matches_scalar_eccentric(self, eccentric_elements):
        times = np.array([0.0, 500.0, 3000.0, 40_000.0])
        self._assert_matches_scalar([eccentric_elements], times)

    def test_mixed_batch_takes_general_path(self, leo_elements, eccentric_elements):
        times = np.array([0.0, 1000.0])
        self._assert_matches_scalar([leo_elements, eccentric_elements], times)

    def test_unit_positions_are_unit(self, leo_elements, eccentric_elements):
        batch = BatchPropagator([leo_elements, eccentric_elements])
        units = batch.unit_positions_eci(np.linspace(0, 10_000, 50))
        norms = np.linalg.norm(units, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-12)

    def test_unit_positions_parallel_to_positions(self, eccentric_elements):
        batch = BatchPropagator([eccentric_elements])
        times = np.linspace(0, 5000, 10)
        positions = batch.positions_eci(times)
        units = batch.unit_positions_eci(times)
        normalized = positions / np.linalg.norm(positions, axis=-1, keepdims=True)
        assert np.allclose(units, normalized, atol=1e-12)

    def test_shape(self, leo_elements):
        batch = BatchPropagator([leo_elements] * 5)
        positions = batch.positions_eci(np.zeros(7))
        assert positions.shape == (5, 7, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one satellite"):
            BatchPropagator([])

    def test_subset(self, leo_elements):
        elements = [leo_elements.with_raan_deg(float(raan)) for raan in range(10)]
        batch = BatchPropagator(elements)
        subset = batch.subset(np.array([2, 5, 7]))
        assert subset.count == 3
        times = np.array([0.0, 100.0])
        np.testing.assert_allclose(
            subset.positions_eci(times),
            batch.positions_eci(times)[[2, 5, 7]],
        )

    def test_subset_rejects_empty(self, leo_elements):
        batch = BatchPropagator([leo_elements])
        with pytest.raises(ValueError, match="at least one satellite"):
            batch.subset(np.array([], dtype=int))

    def test_epoch_offset_respected(self, leo_elements):
        from dataclasses import replace

        offset = replace(leo_elements, epoch_s=1000.0)
        batch = BatchPropagator([leo_elements, offset])
        positions = batch.positions_eci(np.array([1000.0]))
        # The offset satellite at t=1000 looks like the base satellite at t=0.
        base_at_zero = BatchPropagator([leo_elements]).positions_eci(
            np.array([0.0])
        )
        np.testing.assert_allclose(positions[1], base_at_zero[0], atol=1e-6)
