"""Tests for orbital elements and anomaly conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.constants import EARTH_RADIUS_M
from repro.orbits.elements import (
    OrbitalElements,
    eccentric_to_mean_anomaly,
    eccentric_to_true_anomaly,
    mean_to_eccentric_anomaly,
    mean_to_true_anomaly,
    true_to_eccentric_anomaly,
    wrap_angle,
)


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)

    def test_wraps_negative(self):
        assert wrap_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_wraps_above_two_pi(self):
        assert wrap_angle(2 * math.pi + 0.25) == pytest.approx(0.25)

    def test_zero(self):
        assert wrap_angle(0.0) == 0.0

    def test_exactly_two_pi_wraps_to_zero(self):
        assert wrap_angle(2 * math.pi) == pytest.approx(0.0, abs=1e-12)

    @given(st.floats(-1000.0, 1000.0))
    def test_always_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert 0.0 <= wrapped < 2 * math.pi


class TestOrbitalElements:
    def test_from_degrees_altitude(self):
        elements = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        assert elements.semi_major_axis_m == pytest.approx(EARTH_RADIUS_M + 550_000.0)
        assert elements.altitude_km == pytest.approx(550.0)

    def test_inclination_roundtrip(self):
        elements = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        assert elements.inclination_deg == pytest.approx(53.0)

    def test_period_is_about_95_minutes_at_550km(self):
        elements = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        assert elements.period_s == pytest.approx(95.6 * 60.0, rel=0.01)

    def test_leo_period_shorter_than_geo(self):
        leo = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        geo = OrbitalElements.from_degrees(altitude_km=35_786.0, inclination_deg=0.0)
        assert leo.period_s < geo.period_s
        assert geo.period_s == pytest.approx(86_164.0, rel=0.001)

    def test_rejects_negative_semi_major_axis(self):
        with pytest.raises(ValueError, match="semi-major axis"):
            OrbitalElements(
                semi_major_axis_m=-1.0,
                eccentricity=0.0,
                inclination_rad=0.0,
                raan_rad=0.0,
                arg_perigee_rad=0.0,
                mean_anomaly_rad=0.0,
            )

    def test_rejects_eccentricity_of_one(self):
        with pytest.raises(ValueError, match="eccentricity"):
            OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=53.0, eccentricity=1.0
            )

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(ValueError, match="eccentricity"):
            OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=53.0, eccentricity=-0.1
            )

    def test_rejects_inclination_over_pi(self):
        with pytest.raises(ValueError, match="inclination"):
            OrbitalElements(
                semi_major_axis_m=7e6,
                eccentricity=0.0,
                inclination_rad=3.5,
                raan_rad=0.0,
                arg_perigee_rad=0.0,
                mean_anomaly_rad=0.0,
            )

    def test_with_phase_shift(self):
        base = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=53.0, mean_anomaly_deg=10.0
        )
        shifted = base.with_phase_shift(15.0)
        assert shifted.mean_anomaly_deg == pytest.approx(25.0)
        assert shifted.raan_rad == base.raan_rad
        assert shifted.semi_major_axis_m == base.semi_major_axis_m

    def test_with_phase_shift_wraps(self):
        base = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=53.0, mean_anomaly_deg=350.0
        )
        assert base.with_phase_shift(20.0).mean_anomaly_deg == pytest.approx(10.0)

    def test_with_altitude(self):
        base = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        raised = base.with_altitude_km(600.0)
        assert raised.altitude_km == pytest.approx(600.0)
        assert raised.period_s > base.period_s

    def test_with_inclination(self):
        base = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        tilted = base.with_inclination_deg(43.0)
        assert tilted.inclination_deg == pytest.approx(43.0)
        assert tilted.period_s == pytest.approx(base.period_s)

    def test_with_raan(self):
        base = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        assert base.with_raan_deg(370.0).raan_deg == pytest.approx(10.0)

    def test_perigee_apogee_altitudes(self):
        elements = OrbitalElements.from_degrees(
            altitude_km=700.0, inclination_deg=63.4, eccentricity=0.05
        )
        assert elements.perigee_altitude_km < 700.0 < elements.apogee_altitude_km

    def test_circular_perigee_equals_apogee(self):
        elements = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        assert elements.perigee_altitude_km == pytest.approx(
            elements.apogee_altitude_km
        )

    def test_semi_latus_rectum_circular(self):
        elements = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        assert elements.semi_latus_rectum_m == pytest.approx(
            elements.semi_major_axis_m
        )

    def test_frozen(self):
        elements = OrbitalElements.from_degrees(altitude_km=550.0, inclination_deg=53.0)
        with pytest.raises(AttributeError):
            elements.eccentricity = 0.5


class TestAnomalyConversions:
    def test_circular_anomalies_coincide(self):
        mean = 1.234
        eccentric = mean_to_eccentric_anomaly(mean, 0.0)
        true = eccentric_to_true_anomaly(eccentric, 0.0)
        assert eccentric == pytest.approx(mean)
        assert true == pytest.approx(mean)

    @given(
        st.floats(0.0, 2 * math.pi - 1e-9),
        st.floats(0.0, 0.9),
    )
    def test_mean_eccentric_roundtrip(self, mean, eccentricity):
        eccentric = mean_to_eccentric_anomaly(mean, eccentricity)
        back = eccentric_to_mean_anomaly(eccentric, eccentricity)
        assert back == pytest.approx(mean, abs=1e-8)

    @given(
        st.floats(0.0, 2 * math.pi - 1e-9),
        st.floats(0.0, 0.9),
    )
    def test_eccentric_true_roundtrip(self, eccentric, eccentricity):
        true = eccentric_to_true_anomaly(eccentric, eccentricity)
        back = true_to_eccentric_anomaly(true, eccentricity)
        assert back == pytest.approx(eccentric, abs=1e-8)

    def test_true_anomaly_leads_at_perigee_side(self):
        # Between perigee and apogee the true anomaly runs ahead of the mean.
        mean = 1.0
        true = mean_to_true_anomaly(mean, 0.3)
        assert true > mean

    def test_apogee_fixed_point(self):
        # At apogee (M = pi) all anomalies coincide for any eccentricity.
        assert mean_to_true_anomaly(math.pi, 0.5) == pytest.approx(math.pi)
