"""Tests for time and coordinate frames."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import EARTH_RADIUS_M, EARTH_ROTATION_RATE
from repro.orbits.frames import (
    ecef_to_eci,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    gmst_from_jd,
    gmst_rad,
    subsatellite_point,
)


class TestGmst:
    def test_j2000_epoch(self):
        # GMST at J2000.0 (JD 2451545.0) is 280.46 deg (Vallado).
        assert math.degrees(gmst_from_jd(2451545.0)) == pytest.approx(280.46, abs=0.01)

    def test_advances_with_earth_rotation(self):
        theta0 = gmst_rad(0.0)
        theta1 = gmst_rad(3600.0)
        assert (theta1 - theta0) % (2 * math.pi) == pytest.approx(
            EARTH_ROTATION_RATE * 3600.0
        )

    def test_epoch_offset(self):
        assert gmst_rad(0.0, gmst_at_epoch_rad=1.0) == pytest.approx(1.0)

    def test_vectorized(self):
        times = np.array([0.0, 100.0, 200.0])
        theta = gmst_rad(times)
        assert theta.shape == (3,)
        assert np.all(np.diff(theta) > 0)


class TestEciEcefRotation:
    def test_zero_gmst_is_identity(self):
        position = np.array([1.0e7, 2.0e6, 3.0e6])
        assert np.allclose(eci_to_ecef(position, 0.0), position)

    def test_quarter_turn(self):
        position = np.array([1.0, 0.0, 0.0])
        rotated = eci_to_ecef(position, math.pi / 2)
        assert np.allclose(rotated, [0.0, -1.0, 0.0], atol=1e-12)

    def test_z_invariant(self):
        position = np.array([1.0, 2.0, 5.0])
        assert eci_to_ecef(position, 1.234)[2] == pytest.approx(5.0)

    def test_roundtrip(self):
        position = np.array([4.2e6, -1.1e6, 5.5e6])
        theta = 2.345
        assert np.allclose(ecef_to_eci(eci_to_ecef(position, theta), theta), position)

    def test_norm_preserved(self):
        position = np.array([3.0e6, 4.0e6, 5.0e6])
        rotated = eci_to_ecef(position, 0.7)
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(position))

    def test_batched_positions_and_angles(self):
        positions = np.ones((4, 3))
        thetas = np.linspace(0, 1, 4)
        rotated = eci_to_ecef(positions, thetas)
        assert rotated.shape == (4, 3)


class TestGeodetic:
    def test_equator_prime_meridian(self):
        ecef = geodetic_to_ecef(0.0, 0.0, 0.0)
        assert ecef[0] == pytest.approx(EARTH_RADIUS_M)
        assert ecef[1] == pytest.approx(0.0, abs=1e-6)
        assert ecef[2] == pytest.approx(0.0, abs=1e-6)

    def test_north_pole(self):
        ecef = geodetic_to_ecef(90.0, 0.0, 0.0)
        assert ecef[0] == pytest.approx(0.0, abs=1e-6)
        # Polar radius ~ 6356.75 km, shorter than equatorial.
        assert ecef[2] == pytest.approx(6_356_752.3, abs=10.0)

    def test_altitude_adds_radially(self):
        ground = geodetic_to_ecef(45.0, 45.0, 0.0)
        raised = geodetic_to_ecef(45.0, 45.0, 1000.0)
        assert np.linalg.norm(raised - ground) == pytest.approx(1000.0, abs=1e-6)

    def test_vectorized(self):
        ecef = geodetic_to_ecef(np.array([0.0, 45.0]), np.array([0.0, 90.0]))
        assert ecef.shape == (2, 3)

    @given(
        st.floats(-89.0, 89.0),
        st.floats(-179.0, 179.0),
        st.floats(0.0, 1_000_000.0),
    )
    def test_roundtrip(self, lat, lon, alt):
        ecef = geodetic_to_ecef(lat, lon, alt)
        lat2, lon2, alt2 = ecef_to_geodetic(ecef)
        assert float(lat2) == pytest.approx(lat, abs=1e-6)
        assert float(lon2) == pytest.approx(lon, abs=1e-6)
        assert float(alt2) == pytest.approx(alt, abs=0.01)


class TestSubsatellitePoint:
    def test_equatorial_satellite_over_equator(self):
        position_eci = np.array([7.0e6, 0.0, 0.0])
        lat, lon = subsatellite_point(position_eci, 0.0)
        assert float(lat) == pytest.approx(0.0)
        assert float(lon) == pytest.approx(0.0)

    def test_earth_rotation_shifts_longitude_west(self):
        position_eci = np.array([7.0e6, 0.0, 0.0])
        _, lon = subsatellite_point(position_eci, math.radians(30.0))
        assert float(lon) == pytest.approx(-30.0)

    def test_polar_satellite_latitude(self):
        position_eci = np.array([0.0, 0.0, 7.0e6])
        lat, _ = subsatellite_point(position_eci, 0.0)
        assert float(lat) == pytest.approx(90.0)
