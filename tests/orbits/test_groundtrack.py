"""Tests for ground tracks and revisit analysis."""

import math

import numpy as np
import pytest

from repro.orbits.elements import OrbitalElements
from repro.orbits.groundtrack import (
    GroundTrack,
    compute_ground_track,
    nodal_shift_deg_per_orbit,
    revisit_count_per_day,
)


@pytest.fixture
def starlink_elements():
    return OrbitalElements.from_degrees(altitude_km=546.0, inclination_deg=53.0)


class TestComputeGroundTrack:
    def test_shapes(self, starlink_elements):
        track = compute_ground_track(starlink_elements, 3 * 3600.0, step_s=30.0)
        assert len(track) == 360
        assert track.latitudes_deg.shape == track.longitudes_deg.shape

    def test_latitude_bounded_by_inclination(self, starlink_elements):
        track = compute_ground_track(starlink_elements, 2 * 3600.0, step_s=10.0)
        assert track.max_latitude_deg <= 53.0 + 0.5

    def test_reaches_near_inclination(self, starlink_elements):
        track = compute_ground_track(
            starlink_elements, starlink_elements.period_s, step_s=10.0
        )
        assert track.max_latitude_deg > 52.0

    def test_longitudes_in_range(self, starlink_elements):
        track = compute_ground_track(starlink_elements, 3600.0)
        assert np.all(track.longitudes_deg >= -180.0)
        assert np.all(track.longitudes_deg <= 180.0)

    def test_equatorial_orbit_stays_on_equator(self):
        equatorial = OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.0
        )
        track = compute_ground_track(equatorial, 3600.0)
        assert track.max_latitude_deg < 0.01

    def test_rejects_bad_args(self, starlink_elements):
        with pytest.raises(ValueError, match="duration"):
            compute_ground_track(starlink_elements, 0.0)
        with pytest.raises(ValueError, match="step"):
            compute_ground_track(starlink_elements, 100.0, step_s=0.0)


class TestNodalShift:
    def test_ascending_nodes_shift_matches_prediction(self, starlink_elements):
        track = compute_ground_track(
            starlink_elements, 4 * starlink_elements.period_s, step_s=5.0
        )
        nodes = track.ascending_node_longitudes()
        assert nodes.size >= 3
        measured = (nodes[0] - nodes[1]) % 360.0
        predicted = nodal_shift_deg_per_orbit(starlink_elements) % 360.0
        assert measured == pytest.approx(predicted, abs=0.5)

    def test_shift_magnitude(self, starlink_elements):
        # ~95.6-minute orbit: Earth rotates ~24 deg per orbit, plus nodal
        # regression adds a fraction of a degree.
        shift = nodal_shift_deg_per_orbit(starlink_elements)
        assert shift == pytest.approx(24.2, abs=0.5)

    def test_higher_orbit_larger_shift(self, starlink_elements):
        high = starlink_elements.with_altitude_km(1200.0)
        assert nodal_shift_deg_per_orbit(high) > nodal_shift_deg_per_orbit(
            starlink_elements
        )


class TestRevisit:
    def test_full_band_counts_all_crossings(self, starlink_elements):
        per_day = revisit_count_per_day(starlink_elements, 180.0)
        orbits = 86_400.0 / starlink_elements.period_s
        assert per_day == pytest.approx(2.0 * orbits)

    def test_narrow_band_proportional(self, starlink_elements):
        wide = revisit_count_per_day(starlink_elements, 20.0)
        narrow = revisit_count_per_day(starlink_elements, 10.0)
        assert wide == pytest.approx(2.0 * narrow)

    def test_rejects_bad_width(self, starlink_elements):
        with pytest.raises(ValueError, match="half width"):
            revisit_count_per_day(starlink_elements, 0.0)
