"""Tests for TLE parsing and formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.orbits.elements import OrbitalElements
from repro.orbits.tle import (
    TLE,
    TLEError,
    format_tle_file,
    parse_tle_file,
    tle_checksum,
)

# A real historical ISS TLE (checksums valid).
ISS_LINE1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
ISS_LINE2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"


class TestChecksum:
    def test_iss_line1(self):
        assert tle_checksum(ISS_LINE1) == int(ISS_LINE1[68])

    def test_iss_line2(self):
        assert tle_checksum(ISS_LINE2) == int(ISS_LINE2[68])

    def test_minus_counts_as_one(self):
        base = "1" + " " * 67
        with_minus = "1-" + " " * 66
        assert tle_checksum(with_minus) == (tle_checksum(base) + 1) % 10


class TestParse:
    def test_iss_fields(self):
        tle = TLE.parse(ISS_LINE1, ISS_LINE2, name="ISS (ZARYA)")
        assert tle.name == "ISS (ZARYA)"
        assert tle.satellite_number == 25544
        assert tle.epoch_year == 2008
        assert tle.inclination_deg == pytest.approx(51.6416)
        assert tle.raan_deg == pytest.approx(247.4627)
        assert tle.eccentricity == pytest.approx(0.0006703)
        assert tle.mean_motion_rev_day == pytest.approx(15.72125391)
        assert tle.bstar == pytest.approx(-0.11606e-4)

    def test_bad_checksum_rejected(self):
        corrupted = ISS_LINE1[:-1] + "9"
        with pytest.raises(TLEError, match="checksum"):
            TLE.parse(corrupted, ISS_LINE2)

    def test_short_line_rejected(self):
        with pytest.raises(TLEError, match="too short"):
            TLE.parse("1 25544U", ISS_LINE2)

    def test_wrong_line_number_rejected(self):
        with pytest.raises(TLEError, match="must start"):
            TLE.parse(ISS_LINE2, ISS_LINE1)

    def test_mismatched_satnum_rejected(self):
        other2 = ISS_LINE2.replace("25544", "25545")
        other2 = other2[:68] + str(tle_checksum(other2))
        with pytest.raises(TLEError, match="satellite numbers"):
            TLE.parse(ISS_LINE1, other2)

    def test_old_epoch_years_map_to_1900s(self):
        line1 = ISS_LINE1[:18] + "85" + ISS_LINE1[20:]
        line1 = line1[:68] + str(tle_checksum(line1))
        tle = TLE.parse(line1, ISS_LINE2)
        assert tle.epoch_year == 1985


class TestToElements:
    def test_iss_semi_major_axis(self):
        tle = TLE.parse(ISS_LINE1, ISS_LINE2)
        elements = tle.to_elements()
        # ISS altitude ~ 340-360 km in 2008.
        assert 320.0 < elements.altitude_km < 380.0

    def test_angles_converted(self):
        tle = TLE.parse(ISS_LINE1, ISS_LINE2)
        elements = tle.to_elements()
        assert elements.inclination_deg == pytest.approx(51.6416)
        assert math.degrees(elements.raan_rad) == pytest.approx(247.4627)


class TestRoundtrip:
    def test_format_parse_roundtrip(self):
        tle = TLE.parse(ISS_LINE1, ISS_LINE2, name="ISS")
        line1, line2 = tle.format()
        reparsed = TLE.parse(line1, line2, name="ISS")
        assert reparsed.inclination_deg == pytest.approx(tle.inclination_deg)
        assert reparsed.raan_deg == pytest.approx(tle.raan_deg)
        assert reparsed.eccentricity == pytest.approx(tle.eccentricity, abs=1e-7)
        assert reparsed.mean_motion_rev_day == pytest.approx(
            tle.mean_motion_rev_day, abs=1e-7
        )
        assert reparsed.bstar == pytest.approx(tle.bstar, rel=1e-4)

    def test_elements_to_tle_roundtrip(self, leo_elements):
        tle = TLE.from_elements(leo_elements, name="TEST", satellite_number=42)
        line1, line2 = tle.format()
        back = TLE.parse(line1, line2).to_elements()
        assert back.semi_major_axis_m == pytest.approx(
            leo_elements.semi_major_axis_m, rel=1e-6
        )
        assert back.inclination_deg == pytest.approx(
            leo_elements.inclination_deg, abs=1e-3
        )
        assert back.mean_anomaly_deg == pytest.approx(
            leo_elements.mean_anomaly_deg, abs=1e-3
        )

    @given(
        st.floats(400.0, 2000.0),
        st.floats(0.1, 179.9),
        st.floats(0.0, 359.9),
        st.floats(0.0, 359.9),
        st.floats(0.0, 0.01),
    )
    def test_roundtrip_random_orbits(self, altitude, inclination, raan, anomaly, ecc):
        elements = OrbitalElements.from_degrees(
            altitude_km=altitude,
            inclination_deg=inclination,
            raan_deg=raan,
            mean_anomaly_deg=anomaly,
            eccentricity=ecc,
        )
        line1, line2 = TLE.from_elements(elements).format()
        back = TLE.parse(line1, line2).to_elements()
        assert back.inclination_deg == pytest.approx(inclination, abs=1e-3)
        assert back.eccentricity == pytest.approx(ecc, abs=1e-6)


class TestFile:
    def test_three_line_file_roundtrip(self, leo_elements):
        tles = [
            TLE.from_elements(
                leo_elements.with_raan_deg(float(raan)),
                name=f"SAT-{raan}",
                satellite_number=raan + 1,
            )
            for raan in range(5)
        ]
        text = format_tle_file(tles)
        parsed = parse_tle_file(text)
        assert len(parsed) == 5
        assert [tle.name for tle in parsed] == [f"SAT-{i}" for i in range(5)]

    def test_bare_two_line_file(self):
        text = f"{ISS_LINE1}\n{ISS_LINE2}\n"
        parsed = parse_tle_file(text)
        assert len(parsed) == 1
        assert parsed[0].satellite_number == 25544

    def test_dangling_line_rejected(self):
        with pytest.raises(TLEError, match="dangling"):
            parse_tle_file(ISS_LINE1)
