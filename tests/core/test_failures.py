"""Tests for satellite failure and attrition models."""

import numpy as np
import pytest

from repro.core.failures import (
    AttritionPoint,
    FailureModel,
    replenishment_rate_for_steady_state,
    simulate_attrition,
)


class TestFailureModel:
    def test_sample_shape(self, rng):
        model = FailureModel(mean_lifetime_years=5.0)
        lifetimes = model.sample_lifetimes_years(100, rng)
        assert lifetimes.shape == (100,)
        assert np.all(lifetimes >= 0.0)

    def test_mean_lifetime_approx(self):
        model = FailureModel(mean_lifetime_years=5.0, infant_mortality_prob=0.0)
        lifetimes = model.sample_lifetimes_years(50_000, np.random.default_rng(0))
        assert lifetimes.mean() == pytest.approx(5.0, rel=0.05)

    def test_infant_mortality_fraction(self):
        model = FailureModel(mean_lifetime_years=5.0, infant_mortality_prob=0.1)
        lifetimes = model.sample_lifetimes_years(50_000, np.random.default_rng(1))
        assert (lifetimes == 0.0).mean() == pytest.approx(0.1, abs=0.01)

    def test_surviving_fraction_decays(self):
        model = FailureModel(mean_lifetime_years=5.0, infant_mortality_prob=0.02)
        fractions = [model.surviving_fraction(year) for year in range(0, 11, 2)]
        assert fractions[0] == pytest.approx(0.98)
        assert all(b < a for a, b in zip(fractions, fractions[1:]))

    def test_survival_at_mean_lifetime(self):
        model = FailureModel(mean_lifetime_years=5.0, infant_mortality_prob=0.0)
        assert model.surviving_fraction(5.0) == pytest.approx(np.exp(-1.0))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FailureModel(mean_lifetime_years=0.0)
        with pytest.raises(ValueError):
            FailureModel(infant_mortality_prob=1.0)

    def test_rejects_zero_count(self, rng):
        with pytest.raises(ValueError, match="positive"):
            FailureModel().sample_lifetimes_years(0, rng)

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError, match="non-negative"):
            FailureModel().surviving_fraction(-1.0)


class TestAttrition:
    def test_monotone_decline_without_replenishment(self, small_walker, rng):
        model = FailureModel(mean_lifetime_years=3.0)
        points = simulate_attrition(small_walker, model, rng, horizon_years=6.0)
        alive = [point.alive for point in points]
        assert alive[0] <= len(small_walker)
        assert all(b <= a for a, b in zip(alive, alive[1:]))

    def test_epoch_zero_excludes_infant_mortality_only(self, small_walker):
        model = FailureModel(mean_lifetime_years=5.0, infant_mortality_prob=0.0)
        points = simulate_attrition(
            small_walker, model, np.random.default_rng(2), horizon_years=5.0
        )
        assert points[0].alive == len(small_walker)

    def test_replenishment_slows_decline(self, small_walker):
        model = FailureModel(mean_lifetime_years=2.0)
        without = simulate_attrition(
            small_walker, model, np.random.default_rng(3), horizon_years=4.0
        )
        with_replenish = simulate_attrition(
            small_walker,
            model,
            np.random.default_rng(3),
            horizon_years=4.0,
            replenish_per_year=10,
        )
        assert with_replenish[-1].alive >= without[-1].alive

    def test_alive_indices_consistent(self, small_walker, rng):
        model = FailureModel()
        points = simulate_attrition(small_walker, model, rng)
        for point in points:
            assert point.alive == point.alive_indices.size
            assert np.all(point.alive_indices < len(small_walker))

    def test_rejects_bad_epochs(self, small_walker, rng):
        with pytest.raises(ValueError, match="epochs"):
            simulate_attrition(small_walker, FailureModel(), rng, epochs=1)

    def test_replenishment_matches_reference_loop(self, small_walker):
        """The vectorized prefix-restore is exactly the per-satellite scan.

        Replenishment restores the earliest failures first; the production
        code does it with a searchsorted prefix of the failure order
        instead of walking satellites one by one.  Both draw the same
        lifetimes from the same seed, so every epoch's alive set must be
        identical — across replenishment rates spanning none, scarce
        (budget < dead), and abundant (budget > dead).
        """

        def reference(model, rng, horizon_years, epochs, replenish_per_year):
            lifetimes = model.sample_lifetimes_years(len(small_walker), rng)
            order = np.argsort(lifetimes)
            masks = []
            for epoch in range(epochs):
                years = horizon_years * epoch / (epochs - 1)
                alive = lifetimes > years
                budget = int(replenish_per_year * years)
                for index in order:
                    if budget <= 0:
                        break
                    if not alive[index]:
                        alive[index] = True
                        budget -= 1
                masks.append(np.flatnonzero(alive))
            return masks

        model = FailureModel()
        for trial, rate in enumerate((0, 1, 3, 7, 50)):
            points = simulate_attrition(
                small_walker, model, np.random.default_rng(trial),
                horizon_years=5.0, epochs=9, replenish_per_year=rate,
            )
            expected = reference(
                model, np.random.default_rng(trial),
                horizon_years=5.0, epochs=9, replenish_per_year=rate,
            )
            for point, indices in zip(points, expected):
                np.testing.assert_array_equal(point.alive_indices, indices)


class TestSteadyState:
    def test_rate(self):
        model = FailureModel(mean_lifetime_years=5.0)
        assert replenishment_rate_for_steady_state(1000, model) == pytest.approx(200.0)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError, match="positive"):
            replenishment_rate_for_steady_state(0, FailureModel())
