"""Tests for the token ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ledger import EntryKind, LedgerError, TokenLedger


@pytest.fixture
def ledger():
    book = TokenLedger()
    book.mint("a", 100.0)
    book.mint("b", 50.0)
    return book


class TestMint:
    def test_balance(self, ledger):
        assert ledger.balance("a") == 100.0

    def test_total_supply(self, ledger):
        assert ledger.total_supply == 150.0

    def test_rejects_zero_amount(self, ledger):
        with pytest.raises(LedgerError, match="positive"):
            ledger.mint("a", 0.0)

    def test_rejects_negative(self, ledger):
        with pytest.raises(LedgerError, match="positive"):
            ledger.mint("a", -5.0)

    def test_rejects_empty_account(self, ledger):
        with pytest.raises(LedgerError, match="account"):
            ledger.mint("", 5.0)

    def test_entry_recorded(self, ledger):
        entry = ledger.mint("c", 10.0, memo="reward")
        assert entry.kind is EntryKind.MINT
        assert entry.credit == "c"
        assert entry.memo == "reward"


class TestTransfer:
    def test_moves_balance(self, ledger):
        ledger.transfer("a", "b", 30.0)
        assert ledger.balance("a") == 70.0
        assert ledger.balance("b") == 80.0

    def test_preserves_supply(self, ledger):
        ledger.transfer("a", "b", 30.0)
        assert ledger.total_supply == 150.0

    def test_overdraft_rejected(self, ledger):
        with pytest.raises(LedgerError, match="overdraft"):
            ledger.transfer("b", "a", 51.0)

    def test_self_transfer_rejected(self, ledger):
        with pytest.raises(LedgerError, match="same account"):
            ledger.transfer("a", "a", 1.0)

    def test_transfer_to_new_account(self, ledger):
        ledger.transfer("a", "newcomer", 10.0)
        assert ledger.balance("newcomer") == 10.0

    def test_unknown_debtor_is_overdraft(self, ledger):
        with pytest.raises(LedgerError, match="overdraft"):
            ledger.transfer("ghost", "a", 1.0)


class TestBurn:
    def test_reduces_balance_and_supply(self, ledger):
        ledger.burn("a", 40.0, memo="slash")
        assert ledger.balance("a") == 60.0
        assert ledger.total_supply == 110.0

    def test_overdraft_rejected(self, ledger):
        with pytest.raises(LedgerError, match="overdraft"):
            ledger.burn("b", 50.1)


class TestIntegrity:
    def test_verify_clean_ledger(self, ledger):
        ledger.transfer("a", "b", 10.0)
        ledger.burn("b", 5.0)
        assert ledger.verify()

    def test_verify_detects_tampering(self, ledger):
        ledger._balances["a"] += 1.0  # Simulated corruption.
        assert not ledger.verify()

    def test_balances_view_excludes_zero(self, ledger):
        ledger.burn("b", 50.0)
        assert "b" not in ledger.balances()

    def test_entries_sequence_monotone(self, ledger):
        ledger.transfer("a", "b", 1.0)
        sequences = [entry.sequence for entry in ledger.entries]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["mint", "transfer", "burn"]),
                st.sampled_from(["x", "y", "z"]),
                st.sampled_from(["x", "y", "z"]),
                st.floats(0.01, 100.0),
            ),
            max_size=50,
        )
    )
    def test_random_operations_preserve_invariants(self, operations):
        """Balances stay non-negative and replay always verifies."""
        book = TokenLedger()
        for kind, debit, credit, amount in operations:
            try:
                if kind == "mint":
                    book.mint(credit, amount)
                elif kind == "transfer":
                    book.transfer(debit, credit, amount)
                else:
                    book.burn(debit, amount)
            except LedgerError:
                pass  # Overdrafts/self-transfers correctly rejected.
        assert all(balance >= 0.0 for balance in book._balances.values())
        assert book.verify()
