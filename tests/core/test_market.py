"""Tests for the data market."""

import pytest

from repro.core.ledger import LedgerError, TokenLedger
from repro.core.market import (
    CongestionPricing,
    DataMarket,
    FlatPricing,
    Invoice,
)
from repro.sim.events import SessionEvent


def _session(consumer, provider, rate=100.0, duration=60.0, sat_id="S1"):
    return SessionEvent(
        terminal_name=f"ut-{consumer}",
        sat_id=sat_id,
        station_name=f"gs-{consumer}",
        terminal_party=consumer,
        sat_party=provider,
        start_s=0.0,
        stop_s=duration,
        rate_mbps=rate,
    )


class TestPricing:
    def test_flat_price(self):
        pricing = FlatPricing(tokens_per_megabit=0.01)
        session = _session("a", "b", rate=100.0, duration=60.0)  # 6000 Mb.
        assert pricing.price(session, 0.0) == pytest.approx(60.0)

    def test_flat_ignores_utilization(self):
        pricing = FlatPricing(0.01)
        session = _session("a", "b")
        assert pricing.price(session, 0.0) == pricing.price(session, 1.0)

    def test_congestion_raises_price_with_load(self):
        pricing = CongestionPricing(base_tokens_per_megabit=0.01, slope=4.0)
        session = _session("a", "b")
        idle = pricing.price(session, 0.0)
        busy = pricing.price(session, 1.0)
        assert busy == pytest.approx(5.0 * idle)

    def test_congestion_validates_utilization(self):
        pricing = CongestionPricing()
        with pytest.raises(ValueError, match="utilization"):
            pricing.price(_session("a", "b"), 1.5)

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            FlatPricing(-0.1)
        with pytest.raises(ValueError):
            CongestionPricing(base_tokens_per_megabit=-0.1)


class TestBilling:
    def test_only_cross_party_billed(self):
        market = DataMarket(pricing=FlatPricing(0.01))
        sessions = [_session("a", "a"), _session("a", "b")]
        invoices = market.bill(sessions)
        assert len(invoices) == 1
        assert invoices[0].provider == "b"

    def test_zero_rate_sessions_skipped(self):
        market = DataMarket(pricing=FlatPricing(0.01))
        invoices = market.bill([_session("a", "b", rate=0.0)])
        assert invoices == []

    def test_utilization_passed_to_pricing(self):
        market = DataMarket(pricing=CongestionPricing(0.01, slope=1.0))
        session = _session("a", "b", sat_id="BUSY")
        cheap = market.bill([session], utilization_by_sat={"BUSY": 0.0})
        pricey = market.bill([session], utilization_by_sat={"BUSY": 1.0})
        assert pricey[0].tokens == pytest.approx(2 * cheap[0].tokens)

    def test_revenue_and_spend(self):
        market = DataMarket(pricing=FlatPricing(0.001))
        invoices = market.bill(
            [_session("a", "b"), _session("a", "c"), _session("b", "c")]
        )
        revenue = market.revenue_by_party(invoices)
        spend = market.spend_by_party(invoices)
        assert set(revenue) == {"b", "c"}
        assert set(spend) == {"a", "b"}
        assert sum(revenue.values()) == pytest.approx(sum(spend.values()))


class TestSettlement:
    def test_simple_settlement(self):
        ledger = TokenLedger()
        ledger.mint("a", 100.0)
        market = DataMarket(pricing=FlatPricing(0.001))
        invoices = market.bill([_session("a", "b")])  # 6 tokens.
        transfers = market.settle(invoices, ledger)
        assert transfers[("a", "b")] == pytest.approx(6.0)
        assert ledger.balance("b") == pytest.approx(6.0)

    def test_pairwise_netting(self):
        ledger = TokenLedger()
        ledger.mint("a", 100.0)
        ledger.mint("b", 100.0)
        market = DataMarket(pricing=FlatPricing(0.001))
        invoices = market.bill(
            [
                _session("a", "b", rate=100.0),  # a owes b 6.
                _session("b", "a", rate=50.0),  # b owes a 3.
            ]
        )
        transfers = market.settle(invoices, ledger)
        assert transfers == {("a", "b"): pytest.approx(3.0)}
        assert ledger.balance("b") == pytest.approx(103.0)
        assert ledger.balance("a") == pytest.approx(97.0)

    def test_balanced_trade_transfers_nothing(self):
        ledger = TokenLedger()
        ledger.mint("a", 10.0)
        ledger.mint("b", 10.0)
        market = DataMarket(pricing=FlatPricing(0.001))
        invoices = market.bill(
            [_session("a", "b", rate=100.0), _session("b", "a", rate=100.0)]
        )
        transfers = market.settle(invoices, ledger)
        assert transfers == {}
        assert ledger.balance("a") == 10.0

    def test_insolvent_consumer_raises(self):
        ledger = TokenLedger()  # "a" has no balance.
        market = DataMarket(pricing=FlatPricing(0.001))
        invoices = market.bill([_session("a", "b")])
        with pytest.raises(LedgerError, match="overdraft"):
            market.settle(invoices, ledger)
