"""Tests for the double-auction market clearing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.auction import (
    Ask,
    AuctionResult,
    Bid,
    Trade,
    asks_from_spare_capacity,
    clear_double_auction,
)


class TestOrders:
    def test_bid_validation(self):
        with pytest.raises(ValueError, match="quantity"):
            Bid("a", 0.0, 1.0)
        with pytest.raises(ValueError, match="price"):
            Bid("a", 1.0, -1.0)

    def test_ask_validation(self):
        with pytest.raises(ValueError, match="quantity"):
            Ask("a", -1.0, 1.0)


class TestClearing:
    def test_simple_cross(self):
        result = clear_double_auction(
            [Bid("buyer", 100.0, 10.0)], [Ask("seller", 100.0, 4.0)]
        )
        assert result.cleared
        assert result.traded_quantity == 100.0
        assert result.clearing_price == pytest.approx(7.0)  # Midpoint.

    def test_no_cross_no_trade(self):
        result = clear_double_auction(
            [Bid("buyer", 100.0, 3.0)], [Ask("seller", 100.0, 5.0)]
        )
        assert not result.cleared
        assert result.trades == ()

    def test_empty_side(self):
        assert not clear_double_auction([], [Ask("s", 1.0, 1.0)]).cleared
        assert not clear_double_auction([Bid("b", 1.0, 1.0)], []).cleared

    def test_quantity_limited_by_short_side(self):
        result = clear_double_auction(
            [Bid("b", 50.0, 10.0)], [Ask("s", 200.0, 1.0)]
        )
        assert result.traded_quantity == 50.0

    def test_k_parameter_moves_price(self):
        bids = [Bid("b", 10.0, 10.0)]
        asks = [Ask("s", 10.0, 4.0)]
        seller_favoring = clear_double_auction(bids, asks, k=1.0)
        buyer_favoring = clear_double_auction(bids, asks, k=0.0)
        assert seller_favoring.clearing_price == pytest.approx(10.0)
        assert buyer_favoring.clearing_price == pytest.approx(4.0)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            clear_double_auction([Bid("b", 1.0, 1.0)], [Ask("s", 1.0, 1.0)], k=1.5)

    def test_efficient_quantity_multiple_orders(self):
        bids = [
            Bid("b1", 10.0, 10.0),
            Bid("b2", 10.0, 6.0),
            Bid("b3", 10.0, 2.0),  # Priced out.
        ]
        asks = [
            Ask("s1", 10.0, 1.0),
            Ask("s2", 10.0, 5.0),
            Ask("s3", 10.0, 9.0),  # Priced out.
        ]
        result = clear_double_auction(bids, asks)
        assert result.traded_quantity == 20.0
        # Marginal bid 6, marginal ask 5 -> price 5.5.
        assert result.clearing_price == pytest.approx(5.5)

    def test_high_bidders_and_cheap_sellers_trade_first(self):
        bids = [Bid("cheap", 10.0, 2.0), Bid("rich", 10.0, 20.0)]
        asks = [Ask("dear", 10.0, 15.0), Ask("bargain", 10.0, 1.0)]
        result = clear_double_auction(bids, asks)
        # Only rich x bargain crosses after sorting.
        assert result.buyer_quantity("rich") == 10.0
        assert result.buyer_quantity("cheap") == 0.0
        assert result.seller_quantity("bargain") == 10.0

    def test_partial_fill_across_orders(self):
        bids = [Bid("b1", 15.0, 10.0)]
        asks = [Ask("s1", 10.0, 1.0), Ask("s2", 10.0, 2.0)]
        result = clear_double_auction(bids, asks)
        assert result.traded_quantity == 15.0
        assert result.seller_quantity("s1") == 10.0
        assert result.seller_quantity("s2") == 5.0

    def test_trades_sum_to_traded_quantity(self):
        bids = [Bid(f"b{i}", 7.0, 10.0 - i) for i in range(5)]
        asks = [Ask(f"s{i}", 5.0, 1.0 + i) for i in range(5)]
        result = clear_double_auction(bids, asks)
        assert sum(t.quantity for t in result.trades) == pytest.approx(
            result.traded_quantity
        )

    @given(
        st.lists(
            st.tuples(st.floats(1.0, 50.0), st.floats(0.0, 20.0)),
            min_size=1, max_size=8,
        ),
        st.lists(
            st.tuples(st.floats(1.0, 50.0), st.floats(0.0, 20.0)),
            min_size=1, max_size=8,
        ),
    )
    def test_individual_rationality(self, bid_specs, ask_specs):
        """No buyer pays above its bid; no seller receives below its ask."""
        bids = [Bid(f"b{i}", q, p) for i, (q, p) in enumerate(bid_specs)]
        asks = [Ask(f"s{i}", q, p) for i, (q, p) in enumerate(ask_specs)]
        result = clear_double_auction(bids, asks)
        if not result.cleared:
            return
        bid_price = {bid.party: bid.price for bid in bids}
        ask_price = {ask.party: ask.price for ask in asks}
        for trade in result.trades:
            assert trade.price <= bid_price[trade.buyer] + 1e-9
            assert trade.price >= ask_price[trade.seller] - 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(1.0, 50.0), st.floats(0.0, 20.0)),
            min_size=1, max_size=8,
        ),
        st.lists(
            st.tuples(st.floats(1.0, 50.0), st.floats(0.0, 20.0)),
            min_size=1, max_size=8,
        ),
    )
    def test_supply_demand_balance(self, bid_specs, ask_specs):
        """No party trades more than it ordered."""
        bids = [Bid(f"b{i}", q, p) for i, (q, p) in enumerate(bid_specs)]
        asks = [Ask(f"s{i}", q, p) for i, (q, p) in enumerate(ask_specs)]
        result = clear_double_auction(bids, asks)
        for bid in bids:
            assert result.buyer_quantity(bid.party) <= bid.quantity + 1e-9
        for ask in asks:
            assert result.seller_quantity(ask.party) <= ask.quantity + 1e-9


class TestAsksFromSpareCapacity:
    def test_conversion(self):
        asks = asks_from_spare_capacity({"a": 100.0, "b": 0.0, "c": 50.0}, 2.0)
        assert [ask.party for ask in asks] == ["a", "c"]
        assert all(ask.price == 2.0 for ask in asks)

    def test_rejects_negative_reserve(self):
        with pytest.raises(ValueError, match="reserve"):
            asks_from_spare_capacity({"a": 1.0}, -1.0)
