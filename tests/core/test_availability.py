"""Tests for availability planning."""

import pytest

from repro.core.availability import (
    AVAILABILITY_CLASSES,
    extrapolate_size_for_availability,
    mp_leo_contribution_plan,
    satellites_for_availability,
)

# A Fig. 2-shaped curve (size, covered fraction).
CURVE = [
    (100, 0.39),
    (200, 0.63),
    (500, 0.92),
    (1000, 0.995),
    (2000, 0.99996),
]


class TestSatellitesForAvailability:
    def test_reachable_target(self):
        assert satellites_for_availability(0.99, CURVE) == 1000

    def test_exact_boundary(self):
        assert satellites_for_availability(0.92, CURVE) == 500

    def test_unreachable_returns_none(self):
        assert satellites_for_availability(0.99999, CURVE) is None

    def test_unsorted_curve(self):
        shuffled = [CURVE[3], CURVE[0], CURVE[4], CURVE[2], CURVE[1]]
        assert satellites_for_availability(0.99, shuffled) == 1000

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            satellites_for_availability(0.9, [])

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target"):
            satellites_for_availability(1.0, CURVE)


class TestExtrapolation:
    def test_measured_target_passthrough(self):
        assert extrapolate_size_for_availability(0.99, CURVE) == 1000

    def test_five_nines_needs_more_than_2000(self):
        """§2: five-nines 'would require even larger constellations'."""
        required = extrapolate_size_for_availability(
            AVAILABILITY_CLASSES["five-nines"], CURVE
        )
        assert required > 2000

    def test_extrapolation_monotone_in_target(self):
        four = extrapolate_size_for_availability(0.9999, CURVE[:4])
        five = extrapolate_size_for_availability(0.99999, CURVE[:4])
        assert five > four

    def test_rejects_degenerate_curve(self):
        # No partial-coverage points to fit and the target is unreached.
        with pytest.raises(ValueError, match="two partial"):
            extrapolate_size_for_availability(0.5, [(10, 0.0), (20, 0.0)])

    def test_rejects_non_improving_curve(self):
        with pytest.raises(ValueError, match="not improving"):
            extrapolate_size_for_availability(
                0.9999, [(100, 0.9), (200, 0.8), (300, 0.7)]
            )


class TestContributionPlan:
    def test_equal_split(self):
        plan = mp_leo_contribution_plan(0.99, CURVE, party_count=10)
        assert plan.network_size == 1000
        assert plan.contribution_per_party == 100
        assert plan.cost_reduction_factor == pytest.approx(10.0)

    def test_rounding_up(self):
        plan = mp_leo_contribution_plan(0.99, CURVE, party_count=3)
        assert plan.contribution_per_party == 334

    def test_rejects_zero_parties(self):
        with pytest.raises(ValueError, match="party count"):
            mp_leo_contribution_plan(0.99, CURVE, party_count=0)

    def test_five_nines_plan(self):
        plan = mp_leo_contribution_plan(
            AVAILABILITY_CLASSES["five-nines"], CURVE, party_count=20
        )
        assert plan.network_size > 2000
        assert plan.contribution_per_party < plan.network_size
