"""Tests for multi-party governance."""

import pytest

from repro.core.governance import (
    CommandKind,
    GovernanceBoard,
    GovernanceError,
)


@pytest.fixture
def board():
    # Stakes mirror a skewed MP-LEO: one large party, several small ones.
    return GovernanceBoard({"big": 0.5, "m1": 0.2, "m2": 0.2, "m3": 0.1})


class TestSetup:
    def test_stakes_normalized(self):
        board = GovernanceBoard({"a": 2.0, "b": 2.0})
        assert board.stakes == {"a": 0.5, "b": 0.5}

    def test_empty_rejected(self):
        with pytest.raises(GovernanceError, match="at least one"):
            GovernanceBoard({})

    def test_negative_stake_rejected(self):
        with pytest.raises(GovernanceError, match="non-negative"):
            GovernanceBoard({"a": -1.0})

    def test_zero_total_rejected(self):
        with pytest.raises(GovernanceError, match="positive"):
            GovernanceBoard({"a": 0.0})


class TestVoting:
    def test_proposer_auto_approves(self, board):
        proposal = board.propose("big", CommandKind.DEORBIT, "SAT-1")
        assert board.approval_stake(proposal.proposal_id) == pytest.approx(0.5)

    def test_unknown_proposer_rejected(self, board):
        with pytest.raises(GovernanceError, match="unknown party"):
            board.propose("ghost", CommandKind.DEORBIT, "SAT-1")

    def test_deorbit_passes_at_half(self, board):
        proposal = board.propose("big", CommandKind.DEORBIT, "SAT-1")
        assert board.is_approved(proposal.proposal_id)  # 0.5 >= 0.5.

    def test_region_denial_needs_supermajority(self, board):
        """The paper's core trust property: the largest party alone cannot
        deny a region."""
        proposal = board.propose("big", CommandKind.DENY_REGION, "taipei")
        assert not board.is_approved(proposal.proposal_id)
        board.vote(proposal.proposal_id, "m1", approve=True)
        assert board.is_approved(proposal.proposal_id)  # 0.7 >= 2/3.

    def test_vote_change(self, board):
        proposal = board.propose("big", CommandKind.DENY_REGION, "taipei")
        board.vote(proposal.proposal_id, "m1", approve=True)
        board.vote(proposal.proposal_id, "m1", approve=False)
        assert not board.is_approved(proposal.proposal_id)

    def test_unknown_proposal_rejected(self, board):
        with pytest.raises(GovernanceError, match="unknown proposal"):
            board.vote(999, "big", approve=True)

    def test_unknown_voter_rejected(self, board):
        proposal = board.propose("big", CommandKind.DEORBIT, "S")
        with pytest.raises(GovernanceError, match="unknown party"):
            board.vote(proposal.proposal_id, "ghost", approve=True)


class TestCoalitionAnalysis:
    def test_small_coalition_cannot_deny_region(self, board):
        damage = board.max_unilateral_damage({"m1", "m2"})
        assert not damage[CommandKind.DENY_REGION]

    def test_large_coalition_can(self, board):
        damage = board.max_unilateral_damage({"big", "m1"})
        assert damage[CommandKind.DENY_REGION]

    def test_any_party_can_safe_mode(self, board):
        damage = board.max_unilateral_damage({"m3"})
        assert not damage[CommandKind.DENY_REGION]
        # m3 holds 0.1 < 0.25, so not even safe mode alone.
        assert not damage[CommandKind.POWER_SAFE_MODE]

    def test_custom_thresholds(self):
        board = GovernanceBoard(
            {"a": 0.6, "b": 0.4},
            thresholds={CommandKind.DENY_REGION: 0.9},
        )
        proposal = board.propose("a", CommandKind.DENY_REGION, "r")
        board.vote(proposal.proposal_id, "b", approve=True)
        assert board.is_approved(proposal.proposal_id)  # 1.0 >= 0.9.
