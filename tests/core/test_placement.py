"""Tests for coverage-gap-driven placement."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.core.placement import (
    PlacementScorer,
    best_candidate,
    clustered_design,
    gap_filling_candidates,
    greedy_gap_filling_design,
    random_design,
    score_candidates,
)
from repro.ground.cities import CITIES
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid.hours(12.0, step_s=120.0)


@pytest.fixture
def cities():
    return CITIES[:5]


def _sat(sat_id, **kwargs):
    defaults = dict(altitude_km=550.0, inclination_deg=53.0)
    defaults.update(kwargs)
    return Satellite(
        sat_id=sat_id, elements=OrbitalElements.from_degrees(**defaults)
    )


class TestScorer:
    def test_empty_base_zero_fraction(self, grid, cities):
        scorer = PlacementScorer(None, grid, cities)
        assert scorer.base_fraction == 0.0

    def test_gain_nonnegative(self, grid, cities, small_walker):
        scorer = PlacementScorer(small_walker, grid, cities)
        scored = scorer.score([_sat("C-1", raan_deg=200.0)])
        assert scored[0].coverage_gain_fraction >= 0.0

    def test_gain_seconds_consistent(self, grid, cities):
        scorer = PlacementScorer(None, grid, cities)
        scored = scorer.score([_sat("C-1")])
        candidate = scored[0]
        assert candidate.coverage_gain_s == pytest.approx(
            candidate.coverage_gain_fraction * grid.duration_s
        )
        assert candidate.coverage_gain_hours == pytest.approx(
            candidate.coverage_gain_s / 3600.0
        )

    def test_duplicate_satellite_adds_nothing(self, grid, cities, small_walker):
        """Adding a copy of an existing satellite gains zero coverage."""
        scorer = PlacementScorer(small_walker, grid, cities)
        clone = Satellite(sat_id="CLONE", elements=small_walker[0].elements)
        scored = scorer.score([clone])
        assert scored[0].coverage_gain_fraction == pytest.approx(0.0, abs=1e-12)

    def test_empty_candidates(self, grid, cities, small_walker):
        scorer = PlacementScorer(small_walker, grid, cities)
        assert scorer.score([]) == []

    def test_absorb_raises_base(self, grid, cities):
        scorer = PlacementScorer(None, grid, cities)
        satellite = _sat("A")
        gain = scorer.score([satellite])[0].coverage_gain_fraction
        scorer.absorb(satellite)
        assert scorer.base_fraction == pytest.approx(gain)
        # Re-scoring the same satellite now gains nothing.
        assert scorer.score([satellite])[0].coverage_gain_fraction == pytest.approx(
            0.0, abs=1e-12
        )

    def test_one_shot_wrapper_matches(self, grid, cities, small_walker):
        candidates = [_sat("C-1", raan_deg=123.0)]
        direct = PlacementScorer(small_walker, grid, cities).score(candidates)
        wrapped = score_candidates(small_walker, candidates, grid, cities)
        assert direct[0].coverage_gain_fraction == pytest.approx(
            wrapped[0].coverage_gain_fraction
        )


class TestBestCandidate:
    def test_picks_max_gain(self, grid, cities):
        scorer = PlacementScorer(None, grid, cities)
        # Tokyo is in the city set; a satellite matched to northern latitudes
        # should beat an equatorial one for these cities.
        scored = scorer.score(
            [_sat("EQ", inclination_deg=0.1), _sat("INCLINED", inclination_deg=53.0)]
        )
        assert best_candidate(scored).satellite.sat_id == "INCLINED"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no candidates"):
            best_candidate([])


class TestCandidateGeneration:
    def test_count_and_ids_unique(self, rng):
        candidates = gap_filling_candidates(rng, count=32)
        assert len(candidates) == 32
        assert len({candidate.sat_id for candidate in candidates}) == 32

    def test_respects_design_space(self, rng):
        candidates = gap_filling_candidates(
            rng,
            count=64,
            altitude_km_range=(540.0, 600.0),
            inclination_deg_choices=(43.0, 53.0),
        )
        for candidate in candidates:
            assert 540.0 <= candidate.elements.altitude_km <= 600.0
            assert round(candidate.elements.inclination_deg, 1) in (43.0, 53.0)

    def test_rejects_zero_count(self, rng):
        with pytest.raises(ValueError, match="positive"):
            gap_filling_candidates(rng, count=0)


class TestDesignStrategies:
    def test_greedy_design_size(self, grid, cities, rng):
        design = greedy_gap_filling_design(
            3, grid, rng, candidates_per_round=8, cities=cities
        )
        assert len(design) == 3

    def test_greedy_beats_clustered(self, grid, cities):
        """The paper's claim: gap-filling beats clustering at equal budget."""
        from repro.core.placement import PlacementScorer

        count = 6
        greedy = greedy_gap_filling_design(
            count,
            grid,
            np.random.default_rng(0),
            candidates_per_round=16,
            cities=cities,
        )
        clustered = clustered_design(count, np.random.default_rng(0))
        greedy_cov = PlacementScorer(greedy, grid, cities).base_fraction
        clustered_cov = PlacementScorer(clustered, grid, cities).base_fraction
        assert greedy_cov > clustered_cov

    def test_random_design_samples_pool(self, grid, small_walker, rng):
        design = random_design(10, small_walker, rng)
        assert len(design) == 10

    def test_clustered_design_is_clustered(self, rng):
        design = clustered_design(10, rng, phase_spread_deg=10.0)
        anomalies = [satellite.elements.mean_anomaly_deg for satellite in design]
        assert max(anomalies) - min(anomalies) <= 10.0

    def test_clustered_rejects_zero(self, rng):
        with pytest.raises(ValueError, match="positive"):
            clustered_design(0, rng)

    def test_greedy_rejects_zero(self, grid, rng):
        with pytest.raises(ValueError, match="positive"):
            greedy_gap_filling_design(0, grid, rng)
