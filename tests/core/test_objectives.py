"""Tests for regional-vs-global objective comparison."""

import numpy as np
import pytest

from repro.core.objectives import (
    ObjectiveComparison,
    global_scorer,
    objective_correlation,
    regional_scorer,
    spearman_correlation,
)
from repro.core.placement import gap_filling_candidates
from repro.ground.cities import CITIES, city_by_name
from repro.sim.clock import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid.hours(12.0, step_s=300.0)


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_correlation([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_vector_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_ties_handled(self):
        value = spearman_correlation([1, 1, 2, 3], [1, 2, 3, 4])
        assert -1.0 <= value <= 1.0

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            spearman_correlation([1, 2], [1, 2, 3])

    def test_rejects_short(self):
        with pytest.raises(ValueError, match="at least 3"):
            spearman_correlation([1, 2], [1, 2])

    def test_invariant_under_monotone_transform(self):
        rng = np.random.default_rng(0)
        x = rng.random(20)
        y = x + 0.01 * rng.random(20)
        assert spearman_correlation(x, y) == pytest.approx(
            spearman_correlation(np.exp(x), y)
        )


class TestScorers:
    def test_regional_scorer_single_city(self, grid):
        scorer = regional_scorer(None, grid, city_by_name("Taipei"))
        assert len(scorer.cities) == 1

    def test_global_scorer_default_cities(self, grid):
        scorer = global_scorer(None, grid)
        assert len(scorer.cities) == len(CITIES)


class TestObjectiveCorrelation:
    def test_paper_observation_positive_correlation(self, grid, rng):
        """The paper: regional and profit objectives are correlated but not
        identical."""
        candidates = gap_filling_candidates(rng, count=24)
        comparison = objective_correlation(
            None, candidates, grid, home_city_name="Tokyo"
        )
        # Tokyo dominates the population weights, so rankings correlate.
        assert comparison.rank_correlation > 0.3

    def test_structure(self, grid, rng):
        candidates = gap_filling_candidates(rng, count=8)
        comparison = objective_correlation(
            None, candidates, grid, home_city_name="Taipei"
        )
        assert len(comparison.regional_gains) == 8
        assert len(comparison.global_gains) == 8
        assert comparison.regional_best in candidates
        assert comparison.global_best in candidates
        assert isinstance(comparison.same_winner, bool)

    def test_rejects_too_few_candidates(self, grid, rng):
        candidates = gap_filling_candidates(rng, count=2)
        with pytest.raises(ValueError, match="at least 3"):
            objective_correlation(None, candidates, grid, "Tokyo")
