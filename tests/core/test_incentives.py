"""Tests for proof-of-coverage incentives."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.core.incentives import (
    CoverageProof,
    InvalidProofError,
    ProofOfCoverageEpoch,
)
from repro.core.ledger import TokenLedger
from repro.ground.sites import GroundSite
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid


@pytest.fixture
def epoch():
    """Two equatorial satellites (owned by different parties) and a verifier
    on the equator; satellite A is overhead at t=0, B is on the far side."""
    sat_a = Satellite(
        sat_id="A",
        elements=OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1, mean_anomaly_deg=0.0
        ),
        party="alpha",
    )
    sat_b = Satellite(
        sat_id="B",
        elements=OrbitalElements.from_degrees(
            altitude_km=550.0, inclination_deg=0.1, mean_anomaly_deg=180.0
        ),
        party="beta",
    )
    verifier = GroundSite("v-eq", 0.0, 0.0, min_elevation_deg=25.0)
    grid = TimeGrid(duration_s=300.0, step_s=60.0)
    return ProofOfCoverageEpoch(
        constellation=Constellation([sat_a, sat_b]),
        verifiers=[verifier],
        grid=grid,
    )


class TestProofValidation:
    def test_valid_proof_accepted(self, epoch):
        epoch.submit(CoverageProof("v-eq", "A", 0))
        assert len(epoch.proofs) == 1

    def test_fabricated_proof_rejected(self, epoch):
        with pytest.raises(InvalidProofError, match="not visible"):
            epoch.submit(CoverageProof("v-eq", "B", 0))

    def test_out_of_range_time_rejected(self, epoch):
        with pytest.raises(InvalidProofError, match="out of range"):
            epoch.submit(CoverageProof("v-eq", "A", 9999))

    def test_unknown_verifier_rejected(self, epoch):
        with pytest.raises(KeyError):
            epoch.submit(CoverageProof("ghost", "A", 0))

    def test_unknown_satellite_rejected(self, epoch):
        with pytest.raises(KeyError):
            epoch.submit(CoverageProof("v-eq", "Z", 0))


class TestProofGeneration:
    def test_generated_proofs_are_valid(self, epoch):
        rng = np.random.default_rng(0)
        proofs = epoch.generate_proofs(rng, pings_per_verifier=50)
        # Every generated proof passed submit() without raising.
        assert len(epoch.proofs) == len(proofs)

    def test_only_visible_satellite_proven(self, epoch):
        rng = np.random.default_rng(0)
        proofs = epoch.generate_proofs(rng, pings_per_verifier=50)
        assert proofs, "satellite A is overhead; pings must hit"
        assert all(proof.sat_id == "A" for proof in proofs)

    def test_seeded_reproducible(self, epoch):
        count_a = len(epoch.generate_proofs(np.random.default_rng(3), 30))
        # Fresh epoch with same construction.
        count_b = len(epoch.generate_proofs(np.random.default_rng(3), 30))
        assert count_a == count_b


class TestRewardDistribution:
    def test_provider_and_verifier_split(self, epoch):
        epoch.submit(CoverageProof("v-eq", "A", 0))
        ledger = TokenLedger()
        minted = epoch.distribute(ledger, reward_pool=100.0)
        assert minted["alpha"] == pytest.approx(80.0)  # Provider share.
        assert minted["v-eq"] == pytest.approx(20.0)
        assert ledger.total_supply == pytest.approx(100.0)

    def test_no_proofs_no_rewards(self, epoch):
        ledger = TokenLedger()
        assert epoch.distribute(ledger, 100.0) == {}
        assert ledger.total_supply == 0.0

    def test_rewards_proportional_to_proofs(self, epoch):
        epoch.submit(CoverageProof("v-eq", "A", 0))
        epoch.submit(CoverageProof("v-eq", "A", 1))
        ledger = TokenLedger()
        minted = epoch.distribute(ledger, 100.0)
        # Single provider still takes the whole provider pool.
        assert minted["alpha"] == pytest.approx(80.0)

    def test_verifier_weights_boost(self, epoch):
        epoch.verifier_weights = {"v-eq": 2.0}
        epoch.submit(CoverageProof("v-eq", "A", 0))
        ledger = TokenLedger()
        minted = epoch.distribute(ledger, 100.0)
        # Weights rescale shares but a single verifier still takes its pool.
        assert minted["v-eq"] == pytest.approx(20.0)

    def test_full_provider_share(self, epoch):
        epoch.provider_share = 1.0
        epoch.submit(CoverageProof("v-eq", "A", 0))
        ledger = TokenLedger()
        minted = epoch.distribute(ledger, 50.0)
        assert minted == {"alpha": pytest.approx(50.0)}

    def test_bad_pool_rejected(self, epoch):
        epoch.submit(CoverageProof("v-eq", "A", 0))
        with pytest.raises(ValueError, match="positive"):
            epoch.distribute(TokenLedger(), 0.0)

    def test_bad_share_rejected(self):
        sat = Satellite(
            sat_id="A",
            elements=OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=0.1
            ),
        )
        with pytest.raises(ValueError, match="provider share"):
            ProofOfCoverageEpoch(
                constellation=Constellation([sat]),
                verifiers=[GroundSite("v", 0.0, 0.0)],
                grid=TimeGrid(duration_s=60.0, step_s=60.0),
                provider_share=1.5,
            )
