"""Tests for parties and stake arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.party import (
    Party,
    PartyObjective,
    contribution_ratio_split,
    stake_shares,
)


class TestParty:
    def test_defaults(self):
        party = Party("taiwan")
        assert party.objective is PartyObjective.GLOBAL_PROFIT
        assert party.launch_budget == 0

    def test_regional_party(self):
        party = Party(
            "taiwan",
            objective=PartyObjective.REGIONAL_COVERAGE,
            home_region="Taipei",
            launch_budget=50,
        )
        assert party.home_region == "Taipei"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Party("")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            Party("x", launch_budget=-1)


class TestStakeShares:
    def test_single_party(self):
        assert stake_shares({"a": 10}) == {"a": 1.0}

    def test_proportional(self):
        shares = stake_shares({"a": 30, "b": 10})
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)

    def test_sums_to_one(self):
        shares = stake_shares({"a": 7, "b": 13, "c": 91})
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="contribute"):
            stake_shares({"a": 0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            stake_shares({"a": -1})


class TestRatioSplit:
    def test_equal_split(self):
        counts = contribution_ratio_split(1000, [1.0] * 11)
        assert sum(counts) == 1000
        # 1000 / 11 = 90.9 -> mix of 90s and 91s (the paper's "91 each").
        assert set(counts) <= {90, 91}

    def test_paper_skew_10_to_1(self):
        counts = contribution_ratio_split(1000, [10.0] + [1.0] * 10)
        assert sum(counts) == 1000
        assert counts[0] == 500  # 10/20 of 1000, the paper's 500.
        assert all(count == 50 for count in counts[1:])

    def test_exact_division(self):
        assert contribution_ratio_split(100, [1.0, 1.0]) == [50, 50]

    def test_largest_remainder_assignment(self):
        counts = contribution_ratio_split(10, [1.0, 1.0, 1.0])
        assert sum(counts) == 10
        assert sorted(counts) == [3, 3, 4]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            contribution_ratio_split(0, [1.0])
        with pytest.raises(ValueError):
            contribution_ratio_split(10, [])
        with pytest.raises(ValueError):
            contribution_ratio_split(10, [1.0, -1.0])

    @given(
        st.integers(1, 5000),
        st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20),
    )
    def test_always_sums_to_total(self, total, ratios):
        counts = contribution_ratio_split(total, ratios)
        assert sum(counts) == total
        assert all(count >= 0 for count in counts)

    @given(st.integers(10, 1000))
    def test_monotone_in_ratio(self, total):
        counts = contribution_ratio_split(total, [5.0, 1.0])
        assert counts[0] >= counts[1]
