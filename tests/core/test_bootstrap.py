"""Tests for the bootstrapping / delay-tolerant analysis."""

import numpy as np
import pytest

from repro.core.bootstrap import (
    BULK_TRANSFER,
    DelayTolerantApp,
    DelayTolerantService,
    IOT_TELEMETRY,
    MESSAGING,
    contact_wait_times_s,
    early_adopter_issuance,
)
from repro.sim.clock import TimeGrid


class TestContactWaitTimes:
    def test_covered_step_waits_zero(self):
        mask = np.array([True, False, False, True])
        waits = contact_wait_times_s(mask, 60.0)
        assert waits[0] == 0.0
        assert waits[3] == 0.0

    def test_wait_counts_down_to_contact(self):
        mask = np.array([False, False, False, True])
        waits = contact_wait_times_s(mask, 60.0)
        assert list(waits) == [180.0, 120.0, 60.0, 0.0]

    def test_wraparound_after_last_contact(self):
        mask = np.array([True, False, False])
        waits = contact_wait_times_s(mask, 60.0)
        # After the contact at step 0, the next is the wrapped step 0.
        assert list(waits) == [0.0, 120.0, 60.0]

    def test_no_contact_is_infinite(self):
        waits = contact_wait_times_s(np.zeros(5, dtype=bool), 60.0)
        assert np.all(np.isinf(waits))

    def test_all_covered_all_zero(self):
        waits = contact_wait_times_s(np.ones(5, dtype=bool), 60.0)
        assert np.all(waits == 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            contact_wait_times_s(np.array([], dtype=bool), 60.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            contact_wait_times_s(np.zeros((2, 2), dtype=bool), 60.0)


class TestApps:
    def test_builtin_apps_ordering(self):
        assert MESSAGING.max_wait_s < IOT_TELEMETRY.max_wait_s < BULK_TRANSFER.max_wait_s

    def test_rejects_bad_wait(self):
        with pytest.raises(ValueError, match="positive"):
            DelayTolerantApp("x", max_wait_s=0.0)


class TestService:
    @pytest.fixture
    def service(self):
        return DelayTolerantService(TimeGrid(duration_s=6000.0, step_s=60.0))

    def test_sparse_coverage_feasible_for_bulk(self, service):
        # One 10-minute contact per 100-minute cycle: p95 wait ~ 85 min.
        mask = np.zeros(100, dtype=bool)
        mask[:10] = True
        result = service.evaluate(BULK_TRANSFER, "site", mask)
        assert result.feasible
        assert result.max_wait_s == pytest.approx(90 * 60.0)

    def test_same_coverage_infeasible_for_messaging(self, service):
        mask = np.zeros(100, dtype=bool)
        mask[:10] = True
        result = service.evaluate(MESSAGING, "site", mask)
        assert not result.feasible

    def test_no_coverage_infeasible(self, service):
        result = service.evaluate(BULK_TRANSFER, "site", np.zeros(100, dtype=bool))
        assert not result.feasible
        assert result.mean_wait_s == float("inf")

    def test_full_coverage_always_feasible(self, service):
        result = service.evaluate(MESSAGING, "site", np.ones(100, dtype=bool))
        assert result.feasible
        assert result.mean_wait_s == 0.0


class TestIssuance:
    def test_initial(self):
        assert early_adopter_issuance(0) == 1000.0

    def test_halving(self):
        assert early_adopter_issuance(52) == 500.0
        assert early_adopter_issuance(104) == 250.0

    def test_within_epoch_constant(self):
        assert early_adopter_issuance(10) == early_adopter_issuance(51)

    def test_monotone_nonincreasing(self):
        values = [early_adopter_issuance(epoch) for epoch in range(0, 300, 10)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_rejects_negative_epoch(self):
        with pytest.raises(ValueError, match="non-negative"):
            early_adopter_issuance(-1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            early_adopter_issuance(0, initial_issuance=0.0)
        with pytest.raises(ValueError):
            early_adopter_issuance(0, halving_epochs=0)
