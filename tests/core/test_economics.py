"""Tests for constellation economics."""

import pytest

from repro.core.economics import (
    CostModel,
    compare_deployments,
    cost_per_delivered_gbps_hour,
)


class TestCostModel:
    def test_deployment_cost(self):
        model = CostModel(
            satellite_unit_cost=1e6,
            launch_cost_per_satellite=1e6,
            ground_segment_fixed=10e6,
        )
        assert model.deployment_cost(100) == pytest.approx(210e6)

    def test_zero_satellites_only_ground(self):
        model = CostModel(ground_segment_fixed=5e6)
        assert model.deployment_cost(0) == pytest.approx(5e6)

    def test_annual_cost_includes_replacement(self):
        model = CostModel(
            satellite_unit_cost=1e6,
            launch_cost_per_satellite=1e6,
            annual_operations_per_satellite=0.1e6,
            satellite_lifetime_years=5.0,
        )
        # Per year: ops 0.1M * N + replacement N/5 * 2M = 0.5M * N.
        assert model.annual_cost(100) == pytest.approx(50e6)

    def test_total_cost(self):
        model = CostModel()
        total = model.total_cost(100, 10.0)
        assert total == pytest.approx(
            model.deployment_cost(100) + 10.0 * model.annual_cost(100)
        )

    def test_paper_scale_megaconstellation_billions(self):
        """§1: full LEO networks cost $10-30B — the default model should put
        a Starlink-scale build (4400 sats, 10 years) in that ballpark."""
        model = CostModel()
        total = model.total_cost(4400, 10.0)
        assert 5e9 < total < 40e9

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CostModel(satellite_unit_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(satellite_lifetime_years=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            CostModel().deployment_cost(-1)


class TestComparison:
    def test_mp_leo_cheaper(self):
        comparison = compare_deployments(0.995, 1000, 91)
        assert comparison.mp_leo_cost < comparison.go_it_alone_cost
        assert comparison.savings > 0.0
        assert comparison.cost_ratio > 5.0

    def test_contribution_cannot_exceed_alone(self):
        with pytest.raises(ValueError, match="exceeds"):
            compare_deployments(0.99, 100, 200)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            compare_deployments(0.99, 0, 1)


class TestCostPerGbpsHour:
    def test_idle_constellation_expensive(self):
        """Fig. 3 economics: 1% utilization costs ~100x full utilization."""
        busy = cost_per_delivered_gbps_hour(1000, 1.0, 20.0)
        idle = cost_per_delivered_gbps_hour(1000, 0.01, 20.0)
        assert idle == pytest.approx(100.0 * busy)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="utilization"):
            cost_per_delivered_gbps_hour(100, 0.0, 20.0)
        with pytest.raises(ValueError, match="capacity"):
            cost_per_delivered_gbps_hour(100, 0.5, 0.0)
