"""Tests for the multi-party constellation registry."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.core.party import Party
from repro.core.registry import (
    MultiPartyConstellation,
    RegistryError,
    registry_with_ratio_split,
)
from repro.orbits.elements import OrbitalElements


def _sats(prefix, count):
    return [
        Satellite(
            sat_id=f"{prefix}-{index}",
            elements=OrbitalElements.from_degrees(
                altitude_km=550.0, inclination_deg=53.0,
                mean_anomaly_deg=float(index),
            ),
        )
        for index in range(count)
    ]


@pytest.fixture
def registry():
    reg = MultiPartyConstellation()
    reg.join(Party("taiwan"))
    reg.join(Party("korea"))
    reg.contribute("taiwan", _sats("TW", 3))
    reg.contribute("korea", _sats("KR", 1))
    return reg


class TestMembership:
    def test_join_and_names(self, registry):
        assert registry.party_names == ["korea", "taiwan"]

    def test_duplicate_join_rejected(self, registry):
        with pytest.raises(RegistryError, match="already joined"):
            registry.join(Party("taiwan"))

    def test_party_lookup(self, registry):
        assert registry.party("taiwan").name == "taiwan"

    def test_unknown_party_lookup(self, registry):
        with pytest.raises(RegistryError, match="unknown"):
            registry.party("narnia")

    def test_leave_removes_satellites(self, registry):
        withdrawn = registry.leave("taiwan")
        assert len(withdrawn) == 3
        assert len(registry) == 1
        assert registry.party_names == ["korea"]

    def test_leave_unknown_rejected(self, registry):
        with pytest.raises(RegistryError, match="unknown"):
            registry.leave("narnia")


class TestContributions:
    def test_attribution(self, registry):
        constellation = registry.constellation()
        assert constellation.get("TW-0").party == "taiwan"
        assert constellation.get("KR-0").party == "korea"

    def test_reattribution_overrides_incoming_party(self):
        reg = MultiPartyConstellation()
        reg.join(Party("a"))
        satellite = _sats("X", 1)[0].owned_by("someone-else")
        reg.contribute("a", [satellite])
        assert reg.constellation().get("X-0").party == "a"

    def test_contribute_unknown_party_rejected(self, registry):
        with pytest.raises(RegistryError, match="unknown"):
            registry.contribute("narnia", _sats("N", 1))

    def test_id_collision_rejected(self, registry):
        with pytest.raises(RegistryError, match="already contributed"):
            registry.contribute("korea", _sats("TW", 1))

    def test_collision_is_atomic(self, registry):
        # A batch with one collision must not partially apply.
        fresh = _sats("NEW", 2) + _sats("TW", 1)
        with pytest.raises(RegistryError):
            registry.contribute("korea", fresh)
        assert "NEW-0" not in registry.constellation()

    def test_contributions_counts(self, registry):
        assert registry.contributions() == {"taiwan": 3, "korea": 1}

    def test_member_without_satellites_counts_zero(self, registry):
        registry.join(Party("observer"))
        assert registry.contributions()["observer"] == 0


class TestDecommission:
    def test_owner_can_decommission(self, registry):
        registry.decommission("taiwan", ["TW-0"])
        assert len(registry) == 3

    def test_non_owner_cannot(self, registry):
        with pytest.raises(RegistryError, match="cannot decommission"):
            registry.decommission("korea", ["TW-0"])

    def test_unknown_satellite(self, registry):
        with pytest.raises(RegistryError, match="unknown satellite"):
            registry.decommission("taiwan", ["ZZ-9"])

    def test_atomic_on_error(self, registry):
        with pytest.raises(RegistryError):
            registry.decommission("taiwan", ["TW-0", "KR-0"])
        assert len(registry) == 4  # Nothing removed.


class TestStakes:
    def test_stakes(self, registry):
        stakes = registry.stakes()
        assert stakes["taiwan"] == pytest.approx(0.75)
        assert stakes["korea"] == pytest.approx(0.25)

    def test_largest_party(self, registry):
        assert registry.largest_party() == "taiwan"

    def test_largest_party_tiebreak(self):
        reg = MultiPartyConstellation()
        reg.join(Party("b"))
        reg.join(Party("a"))
        reg.contribute("b", _sats("B", 2))
        reg.contribute("a", _sats("A", 2))
        assert reg.largest_party() == "a"

    def test_largest_party_empty_rejected(self):
        reg = MultiPartyConstellation()
        reg.join(Party("a"))
        with pytest.raises(RegistryError, match="no contributions"):
            reg.largest_party()


class TestRatioSplitFactory:
    def test_fig6_construction(self, small_walker):
        rng = np.random.default_rng(0)
        registry = registry_with_ratio_split(
            small_walker, [3.0, 1.0], rng
        )
        counts = registry.contributions()
        assert counts["party-0"] == 30
        assert counts["party-1"] == 10

    def test_all_satellites_used_once(self, small_walker):
        rng = np.random.default_rng(0)
        registry = registry_with_ratio_split(small_walker, [1.0] * 4, rng)
        assert len(registry) == len(small_walker)

    def test_seeded_reproducible(self, small_walker):
        a = registry_with_ratio_split(
            small_walker, [2.0, 1.0], np.random.default_rng(1)
        )
        b = registry_with_ratio_split(
            small_walker, [2.0, 1.0], np.random.default_rng(1)
        )
        a_ids = {s.sat_id for s in a.constellation().by_party("party-0")}
        b_ids = {s.sat_id for s in b.constellation().by_party("party-0")}
        assert a_ids == b_ids
