"""Tests for spare-capacity sharing accounting."""

import numpy as np
import pytest

from repro.core.sharing import (
    coverage_worth_multiplier,
    equivalent_satellite_count,
    exchange_matrix,
    reciprocity_scores,
    sharing_upside,
)
from repro.sim.events import SessionEvent


def _session(consumer, provider, megabits):
    return SessionEvent(
        terminal_name="t",
        sat_id="s",
        station_name="g",
        terminal_party=consumer,
        sat_party=provider,
        start_s=0.0,
        stop_s=megabits,  # rate 1 Mbps * megabits seconds.
        rate_mbps=1.0,
    )


CURVE = [(10, 0.05), (50, 0.24), (100, 0.39), (500, 0.92), (1000, 0.995)]


class TestEquivalentCount:
    def test_exact_match(self):
        assert equivalent_satellite_count(0.39, CURVE) == 100

    def test_between_points_rounds_up(self):
        assert equivalent_satellite_count(0.5, CURVE) == 500

    def test_above_curve_returns_max(self):
        assert equivalent_satellite_count(0.9999, CURVE) == 1000

    def test_below_curve_returns_min(self):
        assert equivalent_satellite_count(0.0, CURVE) == 10

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            equivalent_satellite_count(0.5, [])

    def test_unsorted_curve_handled(self):
        shuffled = [CURVE[2], CURVE[0], CURVE[4], CURVE[1], CURVE[3]]
        assert equivalent_satellite_count(0.39, shuffled) == 100


class TestSharingUpside:
    def test_paper_claim_shape(self):
        """50 contributed satellites, shared coverage ~ 1000-satellite level."""
        upside = sharing_upside("p", 50, 0.24, 0.995, CURVE)
        assert upside.equivalent_alone_satellites == 1000
        assert upside.satellite_multiplier == pytest.approx(20.0)

    def test_coverage_multiplier(self):
        upside = sharing_upside("p", 50, 0.25, 0.75, CURVE)
        assert upside.coverage_multiplier == pytest.approx(3.0)

    def test_zero_alone_coverage_infinite_multiplier(self):
        upside = sharing_upside("p", 1, 0.0, 0.5, CURVE)
        assert upside.coverage_multiplier == float("inf")

    def test_worth_multiplier_function(self):
        assert coverage_worth_multiplier(50, 0.995, CURVE) == pytest.approx(20.0)

    def test_worth_multiplier_rejects_zero_contribution(self):
        with pytest.raises(ValueError, match="positive"):
            coverage_worth_multiplier(0, 0.5, CURVE)


class TestExchangeMatrix:
    def test_matrix_entries(self):
        sessions = [
            _session("a", "b", 100.0),
            _session("a", "b", 50.0),
            _session("b", "a", 30.0),
            _session("a", "a", 70.0),
        ]
        matrix = exchange_matrix(sessions, ["a", "b"])
        assert matrix[0, 1] == pytest.approx(150.0)  # a consumed on b.
        assert matrix[1, 0] == pytest.approx(30.0)
        assert matrix[0, 0] == pytest.approx(70.0)  # Own use on diagonal.

    def test_unknown_parties_ignored(self):
        matrix = exchange_matrix([_session("x", "y", 10.0)], ["a", "b"])
        assert matrix.sum() == 0.0


class TestReciprocity:
    def test_pure_provider(self):
        matrix = np.array([[0.0, 0.0], [100.0, 0.0]])  # b consumes on a only.
        scores = reciprocity_scores(matrix)
        assert scores[0] == pytest.approx(1.0)  # a gives only.
        assert scores[1] == pytest.approx(-1.0)  # b takes only.

    def test_balanced(self):
        matrix = np.array([[0.0, 50.0], [50.0, 0.0]])
        scores = reciprocity_scores(matrix)
        assert np.allclose(scores, 0.0)

    def test_diagonal_ignored(self):
        matrix = np.array([[1000.0, 50.0], [50.0, 1000.0]])
        assert np.allclose(reciprocity_scores(matrix), 0.0)

    def test_no_trade_is_zero(self):
        assert np.allclose(reciprocity_scores(np.zeros((3, 3))), 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            reciprocity_scores(np.zeros((2, 3)))
