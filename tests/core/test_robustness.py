"""Tests for withdrawal/robustness analysis."""

import numpy as np
import pytest

from repro.constellation.satellite import Constellation, Satellite
from repro.core.party import Party
from repro.core.registry import MultiPartyConstellation
from repro.core.robustness import (
    WithdrawalImpact,
    coverage_fraction_of,
    impact_from_packed,
    largest_party_withdrawal,
    proportionality_gap,
    random_withdrawal_impact,
)
from repro.ground.cities import CITIES
from repro.sim.clock import TimeGrid
from repro.sim.visibility import packed_visibility


@pytest.fixture
def grid():
    return TimeGrid.hours(6.0, step_s=120.0)


@pytest.fixture
def cities():
    return CITIES[:4]


class TestWithdrawalImpact:
    def test_reduction_math(self):
        impact = WithdrawalImpact(0.8, 0.6, horizon_s=1000.0)
        assert impact.reduction_fraction == pytest.approx(0.2)
        assert impact.reduction_percent == pytest.approx(20.0)
        assert impact.lost_time_s == pytest.approx(200.0)

    def test_no_loss(self):
        impact = WithdrawalImpact(0.5, 0.5, horizon_s=100.0)
        assert impact.reduction_fraction == 0.0


class TestRandomWithdrawal:
    def test_impact_nonnegative(self, small_walker, grid, cities, rng):
        impact = random_withdrawal_impact(small_walker, 0.5, grid, rng, cities)
        assert impact.reduction_fraction >= 0.0
        assert impact.reduced_fraction <= impact.base_fraction

    def test_zero_fraction_no_loss(self, small_walker, grid, cities, rng):
        impact = random_withdrawal_impact(small_walker, 0.0, grid, rng, cities)
        assert impact.reduction_fraction == pytest.approx(0.0)

    def test_full_withdrawal_drops_to_zero(self, small_walker, grid, cities, rng):
        impact = random_withdrawal_impact(small_walker, 1.0, grid, rng, cities)
        assert impact.reduced_fraction == 0.0


class TestLargestPartyWithdrawal:
    def _registry(self, constellation, big, small):
        registry = MultiPartyConstellation()
        registry.join(Party("big"))
        registry.join(Party("small"))
        registry.contribute("big", [constellation[i] for i in range(big)])
        registry.contribute(
            "small", [constellation[i] for i in range(big, big + small)]
        )
        return registry

    def test_largest_withdrawn(self, small_walker, grid, cities):
        registry = self._registry(small_walker, 30, 10)
        impact = largest_party_withdrawal(registry, grid, cities)
        assert impact.reduction_fraction >= 0.0
        # Remaining quarter of the constellation covers less than the whole.
        assert impact.reduced_fraction <= impact.base_fraction

    def test_skew_hurts_more_than_balance(self, small_walker, grid, cities):
        skewed = self._registry(small_walker, 30, 10)
        balanced = self._registry(small_walker, 20, 20)
        skewed_impact = largest_party_withdrawal(skewed, grid, cities)
        balanced_impact = largest_party_withdrawal(balanced, grid, cities)
        assert (
            skewed_impact.reduction_fraction
            >= balanced_impact.reduction_fraction - 1e-9
        )


class TestPackedPath:
    def test_matches_direct_computation(self, small_walker, grid, cities):
        terminals = [city.terminal() for city in cities]
        packed = packed_visibility(small_walker, terminals, grid)
        weights = [city.population_millions for city in cities]

        all_indices = np.arange(len(small_walker))
        kept = np.arange(0, len(small_walker), 2)
        impact = impact_from_packed(packed, weights, all_indices, kept)

        base_direct = coverage_fraction_of(small_walker, grid, cities)
        kept_direct = coverage_fraction_of(
            small_walker.take(kept), grid, cities
        )
        assert impact.base_fraction == pytest.approx(base_direct)
        assert impact.reduced_fraction == pytest.approx(kept_direct)


class TestProportionality:
    def test_proportional_loss_is_zero_gap(self):
        impact = WithdrawalImpact(1.0, 0.75, horizon_s=100.0)
        assert proportionality_gap(impact, 0.25) == pytest.approx(0.0)

    def test_super_proportional_positive(self):
        impact = WithdrawalImpact(1.0, 0.5, horizon_s=100.0)
        assert proportionality_gap(impact, 0.25) > 0.0

    def test_absorbed_exit_negative(self):
        impact = WithdrawalImpact(1.0, 0.99, horizon_s=100.0)
        assert proportionality_gap(impact, 0.25) < 0.0

    def test_bad_stake_rejected(self):
        impact = WithdrawalImpact(1.0, 0.9, horizon_s=100.0)
        with pytest.raises(ValueError, match="stake"):
            proportionality_gap(impact, 0.0)

    def test_zero_base_guard(self):
        impact = WithdrawalImpact(0.0, 0.0, horizon_s=100.0)
        assert proportionality_gap(impact, 0.5) == 0.0
