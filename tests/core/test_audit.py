"""Tests for the service-denial auditor."""

import numpy as np
import pytest

from repro.core.audit import (
    PartyAuditReport,
    audit_service_denial,
    slashing_amounts,
)
from repro.sim.events import SessionEvent


def _session(consumer, provider, sat_id, duration_s):
    return SessionEvent(
        terminal_name=f"ut-{consumer}",
        sat_id=sat_id,
        station_name="gs",
        terminal_party=consumer,
        sat_party=provider,
        start_s=0.0,
        stop_s=duration_s,
        rate_mbps=10.0,
    )


@pytest.fixture
def scenario():
    """Two parties; each owns one satellite; horizon of 100 steps * 1 s.

    Party 'good' serves the other party whenever only the other's terminal
    is visible; party 'bad' never does.
    """
    horizon_s = 100.0
    # visibility[terminal, satellite, t]; terminals: [a-term, b-term].
    visibility = np.zeros((2, 2, 100), dtype=bool)
    # Satellite 0 (owned by 'good'): b's terminal visible half the time.
    visibility[1, 0, :50] = True
    # Satellite 1 (owned by 'bad'): a's terminal visible half the time.
    visibility[0, 1, :50] = True
    terminal_parties = ["a", "b"]
    satellite_parties = ["good", "bad"]
    sat_ids = ["SAT-GOOD", "SAT-BAD"]
    # 'good' serves b for the full opportunity window; 'bad' serves nothing.
    sessions = [_session("b", "good", "SAT-GOOD", 50.0)]
    return visibility, terminal_parties, satellite_parties, sessions, sat_ids, horizon_s


class TestAudit:
    def test_cooperative_party_clean(self, scenario):
        reports = audit_service_denial(*scenario)
        by_party = {report.party: report for report in reports}
        assert by_party["good"].denial_score == pytest.approx(0.0)
        assert not by_party["good"].suspicious

    def test_denying_party_flagged(self, scenario):
        reports = audit_service_denial(*scenario)
        by_party = {report.party: report for report in reports}
        assert by_party["bad"].denial_score == pytest.approx(1.0)
        assert by_party["bad"].suspicious

    def test_sorted_worst_first(self, scenario):
        reports = audit_service_denial(*scenario)
        assert reports[0].party == "bad"

    def test_opportunity_measured_from_visibility(self, scenario):
        reports = audit_service_denial(*scenario)
        by_party = {report.party: report for report in reports}
        assert by_party["bad"].opportunity_fraction == pytest.approx(0.5)

    def test_partial_service_partial_score(self, scenario):
        (visibility, terminal_parties, satellite_parties,
         _, sat_ids, horizon_s) = scenario
        sessions = [
            _session("b", "good", "SAT-GOOD", 50.0),
            _session("a", "bad", "SAT-BAD", 25.0),  # Half the opportunity.
        ]
        reports = audit_service_denial(
            visibility, terminal_parties, satellite_parties,
            sessions, sat_ids, horizon_s,
        )
        by_party = {report.party: report for report in reports}
        assert by_party["bad"].denial_score == pytest.approx(0.5)

    def test_no_opportunity_no_judgment(self):
        visibility = np.zeros((1, 1, 10), dtype=bool)  # Nothing ever visible.
        reports = audit_service_denial(
            visibility, ["a"], ["b"], [], ["S"], 10.0
        )
        assert not reports[0].suspicious
        assert reports[0].denial_score == 0.0

    def test_threshold_tunable(self, scenario):
        (visibility, terminal_parties, satellite_parties,
         _, sat_ids, horizon_s) = scenario
        sessions = [
            _session("b", "good", "SAT-GOOD", 50.0),
            _session("a", "bad", "SAT-BAD", 20.0),  # Denial score 0.6.
        ]
        strict = audit_service_denial(
            visibility, terminal_parties, satellite_parties,
            sessions, sat_ids, horizon_s, denial_threshold=0.5,
        )
        lenient = audit_service_denial(
            visibility, terminal_parties, satellite_parties,
            sessions, sat_ids, horizon_s, denial_threshold=0.7,
        )
        assert {r.party: r.suspicious for r in strict}["bad"]
        assert not {r.party: r.suspicious for r in lenient}["bad"]

    def test_rejects_bad_params(self, scenario):
        (visibility, terminal_parties, satellite_parties,
         sessions, sat_ids, _) = scenario
        with pytest.raises(ValueError, match="horizon"):
            audit_service_denial(
                visibility, terminal_parties, satellite_parties,
                sessions, sat_ids, 0.0,
            )
        with pytest.raises(ValueError, match="threshold"):
            audit_service_denial(
                visibility, terminal_parties, satellite_parties,
                sessions, sat_ids, 100.0, denial_threshold=0.0,
            )


class TestSlashing:
    def test_only_suspicious_slashed(self, scenario):
        reports = audit_service_denial(*scenario)
        amounts = slashing_amounts(
            reports, {"good": 100.0, "bad": 100.0}, slash_rate=0.1
        )
        assert set(amounts) == {"bad"}
        assert amounts["bad"] == pytest.approx(10.0)  # 0.1 * 1.0 * 100.

    def test_proportional_to_denial(self, scenario):
        (visibility, terminal_parties, satellite_parties,
         _, sat_ids, horizon_s) = scenario
        sessions = [_session("a", "bad", "SAT-BAD", 10.0)]  # Denial 0.8.
        reports = audit_service_denial(
            visibility, terminal_parties, satellite_parties,
            sessions, sat_ids, horizon_s,
        )
        amounts = slashing_amounts(reports, {"bad": 100.0}, slash_rate=0.1)
        assert amounts["bad"] == pytest.approx(8.0)

    def test_rejects_bad_rate(self, scenario):
        reports = audit_service_denial(*scenario)
        with pytest.raises(ValueError, match="slash rate"):
            slashing_amounts(reports, {}, slash_rate=0.0)
