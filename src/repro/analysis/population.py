"""Population-weighted coverage metrics over city sets.

Thin glue between the city database and the coverage math: build terminals
for a city list, reduce a visibility product to the paper's §3.2 objective
("population weighted coverage over 21 most populous cities").
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG
from repro.ground.cities import CITIES, City, population_weights, terminals_for_cities
from repro.sim.clock import TimeGrid
from repro.sim.coverage import population_weighted_coverage_fraction
from repro.sim.visibility import VisibilityEngine


def weighted_city_coverage(
    constellation,
    grid: TimeGrid,
    cities: Sequence[City] = CITIES,
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG,
    engine: Optional[VisibilityEngine] = None,
) -> float:
    """Population-weighted coverage fraction of a constellation over cities.

    Args:
        constellation: Anything the visibility engine accepts.
        grid: Time grid to evaluate over.
        cities: City set (defaults to the paper's 21).
        min_elevation_deg: Terminal elevation mask.
        engine: Reusable engine (built from ``grid`` when omitted).

    Returns:
        Weighted covered fraction in [0, 1].
    """
    if engine is None:
        engine = VisibilityEngine(grid)
    terminals = terminals_for_cities(cities, min_elevation_deg=min_elevation_deg)
    masks = engine.site_coverage(constellation, terminals)
    return population_weighted_coverage_fraction(masks, population_weights(cities))


def weighted_coverage_from_masks(
    masks: np.ndarray, cities: Sequence[City] = CITIES
) -> float:
    """Weighted coverage fraction from precomputed per-city masks (S, T)."""
    return population_weighted_coverage_fraction(masks, population_weights(cities))


def unweighted_city_coverage(masks: np.ndarray) -> float:
    """Mean per-city coverage fraction (equal weights)."""
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be (S, T), got {masks.shape}")
    return float(masks.mean())
