"""Monte-Carlo statistics helpers.

The paper reports means over 100 simulation runs without intervals; a
production reproduction should quantify its own sampling noise.  These
helpers compute normal-approximation and bootstrap confidence intervals for
the per-point estimates the experiments produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

#: Two-sided z-scores for common confidence levels.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its uncertainty."""

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} ({self.count} runs)"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Estimate:
    """Normal-approximation CI for the mean of i.i.d. samples.

    Raises:
        ValueError: On empty samples or unsupported confidence level.
    """
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one sample")
    if confidence not in _Z_SCORES:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    margin = _Z_SCORES[confidence] * std / math.sqrt(values.size)
    return Estimate(
        mean=mean,
        std=std,
        count=int(values.size),
        ci_low=mean - margin,
        ci_high=mean + margin,
        confidence=confidence,
    )


def bootstrap_confidence_interval(
    samples: Sequence[float],
    rng: np.random.Generator,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> Estimate:
    """Percentile-bootstrap CI for the mean (no normality assumption).

    Raises:
        ValueError: On empty samples or bad parameters.
    """
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise ValueError(f"resamples must be >= 100, got {resamples}")
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return Estimate(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        count=int(values.size),
        ci_low=float(low),
        ci_high=float(high),
        confidence=confidence,
    )


def runs_needed_for_half_width(
    pilot_samples: Sequence[float],
    target_half_width: float,
    confidence: float = 0.95,
) -> int:
    """How many runs a target CI half-width requires, from a pilot sample.

    Standard sample-size formula: n = (z * s / h)^2.

    Raises:
        ValueError: On a non-positive target or too-small pilot.
    """
    if target_half_width <= 0.0:
        raise ValueError("target half-width must be positive")
    values = np.asarray(list(pilot_samples), dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least two pilot samples")
    if confidence not in _Z_SCORES:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    std = float(values.std(ddof=1))
    if std == 0.0:
        return 1
    return max(1, int(math.ceil((_Z_SCORES[confidence] * std / target_half_width) ** 2)))
