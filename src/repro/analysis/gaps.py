"""Gap-distribution analytics.

Fig. 2's qualitative claims ("continuous gaps of up to over an hour") are
about the *distribution* of gaps, not just their total.  These helpers
summarize gap populations across Monte-Carlo runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.sim.coverage import gap_lengths_s


@dataclass(frozen=True)
class GapDistribution:
    """Summary of a population of coverage gaps (seconds)."""

    count: int
    total_s: float
    mean_s: float
    median_s: float
    p90_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_gaps(cls, gaps_s: np.ndarray) -> "GapDistribution":
        gaps = np.asarray(gaps_s, dtype=np.float64)
        if gaps.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(gaps.size),
            total_s=float(gaps.sum()),
            mean_s=float(gaps.mean()),
            median_s=float(np.median(gaps)),
            p90_s=float(np.percentile(gaps, 90)),
            p99_s=float(np.percentile(gaps, 99)),
            max_s=float(gaps.max()),
        )

    @classmethod
    def from_mask(cls, mask: np.ndarray, step_s: float) -> "GapDistribution":
        return cls.from_gaps(gap_lengths_s(mask, step_s))


def pooled_gap_distribution(
    masks: Iterable[np.ndarray], step_s: float
) -> GapDistribution:
    """Gap distribution pooled over multiple runs' coverage masks."""
    pooled: List[np.ndarray] = [gap_lengths_s(mask, step_s) for mask in masks]
    if not pooled:
        raise ValueError("at least one mask is required")
    return GapDistribution.from_gaps(np.concatenate(pooled))


def survival_curve(
    gaps_s: Sequence[float], thresholds_s: Sequence[float]
) -> List[float]:
    """P(gap >= threshold) for each threshold — a gap CCDF at chosen points."""
    gaps = np.asarray(list(gaps_s), dtype=np.float64)
    if gaps.size == 0:
        return [0.0 for _ in thresholds_s]
    return [float((gaps >= threshold).mean()) for threshold in thresholds_s]
