"""Gap-distribution analytics.

Fig. 2's qualitative claims ("continuous gaps of up to over an hour") are
about the *distribution* of gaps, not just their total.  These helpers
summarize gap populations across Monte-Carlo runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.obs import timeline as obs_timeline
from repro.obs.timeline import TimelineEvent
from repro.sim.coverage import gap_lengths_s
from repro.sim.events import intervals_from_mask
from repro.sim.intervals import IntervalSet


@dataclass(frozen=True)
class GapDistribution:
    """Summary of a population of coverage gaps (seconds)."""

    count: int
    total_s: float
    mean_s: float
    median_s: float
    p90_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_gaps(cls, gaps_s: np.ndarray) -> "GapDistribution":
        gaps = np.asarray(gaps_s, dtype=np.float64)
        if gaps.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(gaps.size),
            total_s=float(gaps.sum()),
            mean_s=float(gaps.mean()),
            median_s=float(np.median(gaps)),
            p90_s=float(np.percentile(gaps, 90)),
            p99_s=float(np.percentile(gaps, 99)),
            max_s=float(gaps.max()),
        )

    @classmethod
    def from_mask(cls, mask: np.ndarray, step_s: float) -> "GapDistribution":
        return cls.from_gaps(gap_lengths_s(mask, step_s))

    @classmethod
    def from_intervals(cls, coverage: IntervalSet) -> "GapDistribution":
        """Gap distribution from an analytic coverage interval set.

        Same semantics as :meth:`from_mask` — uncovered runs at the
        horizon edges count as gaps — but gap lengths are exact interval
        complements, not multiples of a sample step.
        """
        return cls.from_gaps(coverage.gap_lengths_s())


def pooled_gap_distribution(
    masks: Iterable[np.ndarray], step_s: float
) -> GapDistribution:
    """Gap distribution pooled over multiple runs' coverage masks."""
    pooled: List[np.ndarray] = [gap_lengths_s(mask, step_s) for mask in masks]
    if not pooled:
        raise ValueError("at least one mask is required")
    return GapDistribution.from_gaps(np.concatenate(pooled))


def gap_timeline_events(
    mask: np.ndarray,
    step_s: float,
    site: str,
    start_s: float = 0.0,
    emit: bool = True,
) -> List[TimelineEvent]:
    """Coverage gaps as ``gap.open`` / ``gap.close`` timeline events.

    Every uncovered run in ``mask`` produces an open/close pair on the
    site's track.  Edge cases are marked explicitly so downstream readers
    need no mask access:

    * a gap already open at the first sample carries ``at_run_start=True``
      on its open event;
    * a gap still open at the last sample carries ``at_run_end=True`` on
      its close event (the close is the horizon edge, not a satellite rise).

    Args:
        mask: 1-D boolean coverage timeline; True = covered.
        step_s: Sample spacing, seconds.
        site: Track label (site name) for the events.
        start_s: Simulation time of the first sample.
        emit: Also record the events on the global timeline (default).

    Returns:
        The open/close events in temporal order.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"mask must be 1-D, got shape {mask.shape}")
    horizon_end_s = start_s + step_s * mask.size
    events: List[TimelineEvent] = []
    for gap_start_s, gap_stop_s in intervals_from_mask(~mask, step_s, start_s):
        gap_s = gap_stop_s - gap_start_s
        open_attrs = {"gap_s": gap_s}
        if gap_start_s <= start_s:
            open_attrs["at_run_start"] = True
        close_attrs = {"gap_s": gap_s}
        if gap_stop_s >= horizon_end_s:
            close_attrs["at_run_end"] = True
        events.append(
            TimelineEvent(
                t_s=gap_start_s,
                kind=obs_timeline.GAP_OPEN,
                subject=site,
                attrs=open_attrs,
            )
        )
        events.append(
            TimelineEvent(
                t_s=gap_stop_s,
                kind=obs_timeline.GAP_CLOSE,
                subject=site,
                attrs=close_attrs,
            )
        )
    if emit:
        obs_timeline.extend(events)
    return events


def gap_timeline_events_from_intervals(
    coverage: IntervalSet,
    site: str,
    emit: bool = True,
) -> List[TimelineEvent]:
    """:func:`gap_timeline_events` from an analytic coverage interval set.

    Gaps are the complement of ``coverage`` over its horizon; boundary
    markers (``at_run_start`` / ``at_run_end``) follow the same rules as
    the mask-based variant, keyed on the horizon bounds.
    """
    events: List[TimelineEvent] = []
    gaps = coverage.complement()
    for gap_start_s, gap_stop_s in zip(gaps.starts, gaps.stops):
        gap_s = float(gap_stop_s - gap_start_s)
        open_attrs = {"gap_s": gap_s}
        if gap_start_s <= coverage.start_s:
            open_attrs["at_run_start"] = True
        close_attrs = {"gap_s": gap_s}
        if gap_stop_s >= coverage.end_s:
            close_attrs["at_run_end"] = True
        events.append(
            TimelineEvent(
                t_s=float(gap_start_s),
                kind=obs_timeline.GAP_OPEN,
                subject=site,
                attrs=open_attrs,
            )
        )
        events.append(
            TimelineEvent(
                t_s=float(gap_stop_s),
                kind=obs_timeline.GAP_CLOSE,
                subject=site,
                attrs=close_attrs,
            )
        )
    if emit:
        obs_timeline.extend(events)
    return events


def survival_curve(
    gaps_s: Sequence[float], thresholds_s: Sequence[float]
) -> List[float]:
    """P(gap >= threshold) for each threshold — a gap CCDF at chosen points."""
    gaps = np.asarray(list(gaps_s), dtype=np.float64)
    if gaps.size == 0:
        return [0.0 for _ in thresholds_s]
    return [float((gaps >= threshold).mean()) for threshold in thresholds_s]
