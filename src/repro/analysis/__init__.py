"""Analysis and reporting helpers.

* :mod:`repro.analysis.gaps` — gap-distribution analytics over coverage masks.
* :mod:`repro.analysis.population` — population-weighted metrics over city sets.
* :mod:`repro.analysis.utilization` — idle-time distribution analytics.
* :mod:`repro.analysis.reporting` — plain-text table/series rendering used by
  the benchmark harness to print paper-style rows.
* :mod:`repro.analysis.stats` — Monte-Carlo confidence intervals and
  sample-size planning.
* :mod:`repro.analysis.heatmap` — area-weighted global coverage grids and
  coverage-equity metrics.
"""

from repro.analysis.population import weighted_city_coverage
from repro.analysis.reporting import Series, Table

__all__ = ["Table", "Series", "weighted_city_coverage"]
