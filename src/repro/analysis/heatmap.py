"""Global coverage grids (the §3 "global coverage" goal, measured).

The city-weighted metric drives the paper's experiments, but the design
goal is stated as *global* coverage.  This module evaluates coverage over a
latitude/longitude grid with proper spherical area weighting, giving:

* the area-weighted fraction of Earth's surface with coverage,
* per-latitude-band coverage (exposing the inclination-band structure of
  Walker constellations),
* an ASCII rendering for quick inspection without plotting libraries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG
from repro.ground.sites import GroundSite
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine


@dataclass(frozen=True)
class CoverageGrid:
    """Coverage fractions over a lat/lon grid.

    Attributes:
        latitudes_deg: (R,) grid-cell center latitudes, north to south.
        longitudes_deg: (C,) grid-cell center longitudes, west to east.
        covered_fraction: (R, C) fraction of the horizon each cell had
            at least one satellite above the elevation mask.
    """

    latitudes_deg: np.ndarray
    longitudes_deg: np.ndarray
    covered_fraction: np.ndarray

    def area_weights(self) -> np.ndarray:
        """(R,) spherical area weight of each latitude row (sums to 1)."""
        weights = np.cos(np.radians(self.latitudes_deg))
        return weights / weights.sum()

    @property
    def global_coverage_fraction(self) -> float:
        """Area-weighted mean coverage over the whole grid."""
        row_means = self.covered_fraction.mean(axis=1)
        return float(self.area_weights() @ row_means)

    def band_coverage(self) -> List[Tuple[float, float]]:
        """(latitude, mean coverage) per grid row, north to south."""
        return [
            (float(lat), float(row.mean()))
            for lat, row in zip(self.latitudes_deg, self.covered_fraction)
        ]

    def render_ascii(self) -> str:
        """Render the grid as characters: ' .:-=+*#%@' from 0 to full."""
        ramp = " .:-=+*#%@"
        lines = []
        for row in self.covered_fraction:
            indices = np.minimum(
                (row * len(ramp)).astype(int), len(ramp) - 1
            )
            lines.append("".join(ramp[index] for index in indices))
        return "\n".join(lines)


def compute_coverage_grid(
    constellation,
    grid: TimeGrid,
    lat_step_deg: float = 15.0,
    lon_step_deg: float = 15.0,
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG,
    chunk_size: int = 2048,
) -> CoverageGrid:
    """Evaluate a constellation's coverage over a global grid.

    Grid points sit at cell centers; poles are excluded by construction
    (centers at ±(90 - lat_step/2) at most).

    Raises:
        ValueError: On non-positive grid steps.
    """
    if lat_step_deg <= 0.0 or lon_step_deg <= 0.0:
        raise ValueError("grid steps must be positive")
    latitudes = np.arange(90.0 - lat_step_deg / 2.0, -90.0, -lat_step_deg)
    longitudes = np.arange(-180.0 + lon_step_deg / 2.0, 180.0, lon_step_deg)

    sites = [
        GroundSite(
            name=f"grid-{row}-{col}",
            latitude_deg=float(lat),
            longitude_deg=float(lon),
            min_elevation_deg=min_elevation_deg,
        )
        for row, lat in enumerate(latitudes)
        for col, lon in enumerate(longitudes)
    ]
    engine = VisibilityEngine(grid, chunk_size=chunk_size)
    masks = engine.site_coverage(constellation, sites)  # (R*C, T)
    fractions = masks.mean(axis=1).reshape(latitudes.size, longitudes.size)
    return CoverageGrid(
        latitudes_deg=latitudes,
        longitudes_deg=longitudes,
        covered_fraction=fractions,
    )


def coverage_equity(grid_result: CoverageGrid) -> float:
    """Jain's fairness index of per-cell coverage, area-weighted.

    1.0 = perfectly even global coverage; 1/n = all coverage concentrated in
    one cell.  A decentralization-relevant metric: region-specific designs
    score poorly.
    """
    weights = np.repeat(
        grid_result.area_weights()[:, None],
        grid_result.longitudes_deg.size,
        axis=1,
    ).ravel()
    weights = weights / weights.sum()
    values = grid_result.covered_fraction.ravel()
    mean = float(weights @ values)
    second_moment = float(weights @ values**2)
    if second_moment == 0.0:
        return 1.0
    return mean**2 / second_moment
