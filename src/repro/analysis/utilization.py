"""Idle-time and utilization analytics (Fig. 3's metric, in depth).

Beyond the mean idle percentage the paper plots, these helpers expose the
full distribution across satellites, which the incentive design cares about
(a satellite whose idle time is concentrated over oceans earns nothing there
regardless of the mean).

The *timeline* half of the module turns raw engine outputs — the
``(satellites, T)`` load matrix, or the ``allocation.grant`` events on the
simulation timeline (:mod:`repro.obs.timeline`) — into queryable
per-satellite and per-party :class:`UtilizationTimeline` objects: who was
how busy, when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.obs import timeline as obs_timeline
from repro.obs.timeline import TimelineEvent
from repro.sim.clock import TimeGrid


@dataclass(frozen=True)
class IdleTimeSummary:
    """Distribution of per-satellite idle fractions."""

    mean: float
    std: float
    minimum: float
    p10: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def from_fractions(cls, idle_fractions: np.ndarray) -> "IdleTimeSummary":
        fractions = np.asarray(idle_fractions, dtype=np.float64)
        if fractions.size == 0:
            raise ValueError("need at least one satellite")
        if np.any((fractions < 0.0) | (fractions > 1.0)):
            raise ValueError("idle fractions must be in [0, 1]")
        return cls(
            mean=float(fractions.mean()),
            std=float(fractions.std()),
            minimum=float(fractions.min()),
            p10=float(np.percentile(fractions, 10)),
            median=float(np.median(fractions)),
            p90=float(np.percentile(fractions, 90)),
            maximum=float(fractions.max()),
        )

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean


def idle_reduction_series(
    idle_by_city_count: Sequence[float],
) -> np.ndarray:
    """Marginal idle-time reduction per added city (diff of the Fig. 3 curve)."""
    series = np.asarray(list(idle_by_city_count), dtype=np.float64)
    if series.size < 2:
        raise ValueError("need at least two points")
    return -np.diff(series)


@dataclass(frozen=True)
class UtilizationTimeline:
    """Per-label utilization over a time grid: who was how busy, when.

    Attributes:
        labels: Track labels (satellite ids or party names).
        times_s: (T,) sample times, simulation seconds.
        utilization: (len(labels), T) fractions in [0, 1].
    """

    labels: List[str]
    times_s: np.ndarray
    utilization: np.ndarray

    def __post_init__(self) -> None:
        if self.utilization.shape != (len(self.labels), self.times_s.size):
            raise ValueError(
                f"utilization shape {self.utilization.shape} != "
                f"({len(self.labels)}, {self.times_s.size})"
            )

    def series(self, label: str) -> np.ndarray:
        """One label's utilization timeline.

        Raises:
            KeyError: On an unknown label.
        """
        try:
            index = self.labels.index(label)
        except ValueError:
            raise KeyError(f"unknown label {label!r}") from None
        return self.utilization[index]

    def mean_by_label(self) -> Dict[str, float]:
        """Time-averaged utilization per label."""
        return {
            label: float(self.utilization[index].mean())
            for index, label in enumerate(self.labels)
        }

    def peak_by_label(self) -> Dict[str, float]:
        """Peak utilization per label."""
        return {
            label: float(self.utilization[index].max())
            for index, label in enumerate(self.labels)
        }


def satellite_utilization(
    load_mbps: np.ndarray,
    capacity_mbps: Sequence[float],
    grid: TimeGrid,
    sat_ids: Sequence[str],
) -> UtilizationTimeline:
    """Per-satellite load/capacity timelines from an engine run.

    Args:
        load_mbps: (satellites, T) allocated load
            (:attr:`~repro.sim.engine.SimulationResult.satellite_load_mbps`).
        capacity_mbps: Nominal capacity per satellite (zero-capacity
            satellites report 0 utilization).
        grid: The run's time grid.
        sat_ids: Track labels, one per satellite.
    """
    load = np.asarray(load_mbps, dtype=np.float64)
    capacity = np.asarray(list(capacity_mbps), dtype=np.float64)
    if load.ndim != 2:
        raise ValueError(f"load must be (satellites, T), got {load.shape}")
    if load.shape != (capacity.size, grid.count):
        raise ValueError(
            f"load shape {load.shape} != ({capacity.size}, {grid.count})"
        )
    if len(sat_ids) != capacity.size:
        raise ValueError(f"need {capacity.size} sat ids, got {len(sat_ids)}")
    with np.errstate(invalid="ignore", divide="ignore"):
        utilization = np.where(
            capacity[:, None] > 0.0, load / capacity[:, None], 0.0
        )
    return UtilizationTimeline(
        labels=list(sat_ids), times_s=grid.times_s, utilization=utilization
    )


def party_utilization(
    load_mbps: np.ndarray,
    capacity_mbps: Sequence[float],
    grid: TimeGrid,
    sat_parties: Sequence[str],
) -> UtilizationTimeline:
    """Per-party utilization: each party's pooled load over pooled capacity.

    Groups the satellite rows by owning party; a party's utilization at a
    step is the sum of its satellites' loads divided by the sum of their
    capacities (labels sorted for determinism).
    """
    load = np.asarray(load_mbps, dtype=np.float64)
    capacity = np.asarray(list(capacity_mbps), dtype=np.float64)
    if load.ndim != 2 or load.shape[0] != capacity.size:
        raise ValueError(
            f"load shape {load.shape} incompatible with "
            f"{capacity.size} capacities"
        )
    if len(sat_parties) != capacity.size:
        raise ValueError(
            f"need {capacity.size} parties, got {len(sat_parties)}"
        )
    parties = sorted(set(sat_parties))
    rows = np.zeros((len(parties), load.shape[1]))
    for party_index, party in enumerate(parties):
        member = [i for i, p in enumerate(sat_parties) if p == party]
        pooled_capacity = float(capacity[member].sum())
        if pooled_capacity > 0.0:
            rows[party_index] = load[member].sum(axis=0) / pooled_capacity
    return UtilizationTimeline(
        labels=parties, times_s=grid.times_s, utilization=rows
    )


def utilization_from_events(
    grid: TimeGrid,
    events: Optional[Iterable[TimelineEvent]] = None,
    by: str = "subject",
    kinds: Sequence[str] = (obs_timeline.ALLOC_GRANT,),
) -> UtilizationTimeline:
    """Busy-fraction timelines reconstructed from timeline events.

    Turns windowed events (allocation grants by default) into per-track
    busy masks on the grid: a track is "busy" (utilization 1.0) at every
    sample covered by one of its windows.  This is the query path for runs
    where only the event timeline survives (e.g. a loaded ``--metrics-out``
    report), with no load matrices in memory.

    Args:
        grid: The grid to sample on.
        events: Events to aggregate (default: the global timeline's).
        by: Track key — ``"subject"`` (satellites/stations) or ``"party"``.
        kinds: Event kinds counted as busy time.

    Raises:
        ValueError: On an unknown ``by`` key.
    """
    if by not in ("subject", "party"):
        raise ValueError(f"by must be 'subject' or 'party', got {by!r}")
    if events is None:
        events = obs_timeline.TIMELINE.events()
    wanted = frozenset(kinds)
    times = grid.times_s
    masks: Dict[str, np.ndarray] = {}
    for event in events:
        if event.kind not in wanted:
            continue
        label = event.subject if by == "subject" else event.party
        if not label:
            continue
        mask = masks.get(label)
        if mask is None:
            mask = np.zeros(times.size, dtype=bool)
            masks[label] = mask
        mask |= (times >= event.t_s) & (times < event.stop_s)
    labels = sorted(masks)
    utilization = (
        np.stack([masks[label] for label in labels]).astype(np.float64)
        if labels
        else np.zeros((0, times.size))
    )
    return UtilizationTimeline(
        labels=labels, times_s=times, utilization=utilization
    )
