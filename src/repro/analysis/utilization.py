"""Idle-time distribution analytics (Fig. 3's metric, in depth).

Beyond the mean idle percentage the paper plots, these helpers expose the
full distribution across satellites, which the incentive design cares about
(a satellite whose idle time is concentrated over oceans earns nothing there
regardless of the mean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class IdleTimeSummary:
    """Distribution of per-satellite idle fractions."""

    mean: float
    std: float
    minimum: float
    p10: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def from_fractions(cls, idle_fractions: np.ndarray) -> "IdleTimeSummary":
        fractions = np.asarray(idle_fractions, dtype=np.float64)
        if fractions.size == 0:
            raise ValueError("need at least one satellite")
        if np.any((fractions < 0.0) | (fractions > 1.0)):
            raise ValueError("idle fractions must be in [0, 1]")
        return cls(
            mean=float(fractions.mean()),
            std=float(fractions.std()),
            minimum=float(fractions.min()),
            p10=float(np.percentile(fractions, 10)),
            median=float(np.median(fractions)),
            p90=float(np.percentile(fractions, 90)),
            maximum=float(fractions.max()),
        )

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean


def idle_reduction_series(
    idle_by_city_count: Sequence[float],
) -> np.ndarray:
    """Marginal idle-time reduction per added city (diff of the Fig. 3 curve)."""
    series = np.asarray(list(idle_by_city_count), dtype=np.float64)
    if series.size < 2:
        raise ValueError("need at least two points")
    return -np.diff(series)
