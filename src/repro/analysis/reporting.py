"""Plain-text tables and series for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper figure
reports.  These classes keep that output consistent and machine-greppable:
a :class:`Table` renders aligned columns, a :class:`Series` renders an
x -> y sweep with a one-line header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Cell = Union[str, float, int]


def _format_cell(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


@dataclass
class Table:
    """An aligned plain-text table."""

    title: str
    columns: Sequence[str]
    precision: int = 3
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        header = list(self.columns)
        body = [
            [_format_cell(cell, self.precision) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())


@dataclass
class Series:
    """An x -> y sweep with labels, e.g. one curve of a paper figure."""

    title: str
    x_label: str
    y_label: str
    precision: int = 3
    points: List[tuple] = field(default_factory=list)

    def add_point(self, x: Cell, y: Cell) -> None:
        self.points.append((x, y))

    def render(self) -> str:
        lines = [f"== {self.title} ==", f"{self.x_label} -> {self.y_label}"]
        for x, y in self.points:
            lines.append(
                f"  {_format_cell(x, self.precision)} -> {_format_cell(y, self.precision)}"
            )
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())

    @property
    def ys(self) -> List[float]:
        return [float(y) for _, y in self.points]

    @property
    def xs(self) -> List[float]:
        return [float(x) for x, _ in self.points]
