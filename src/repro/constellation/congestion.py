"""Orbital congestion and conjunction analysis (§1/§6's sustainability claim).

"an increase in the deployment of large constellations will lead to
increased orbital congestion, with higher risks of collisions and increased
obstructions for astronomical observations" ... MP-LEO "reduce[s] economic
costs, capacity waste, and orbital occupancy."

This module quantifies that claim: close-approach (conjunction) counting
over a time grid, minimum-separation statistics, and shell occupancy —
enabling the comparison between K independent constellations and one shared
constellation delivering the same per-party coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.satellite import Constellation
from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid

#: Conjunction screening threshold, meters.  Operators screen at tens of km;
#: 10 km is a common coarse gate.
DEFAULT_CONJUNCTION_THRESHOLD_M = 10_000.0


@dataclass(frozen=True)
class CongestionReport:
    """Congestion metrics for one constellation over a horizon."""

    satellite_count: int
    conjunction_events: int
    conjunction_rate_per_day: float
    min_separation_m: float
    median_nearest_neighbor_m: float

    @property
    def conjunctions_per_satellite_per_day(self) -> float:
        if self.satellite_count == 0:
            return 0.0
        return self.conjunction_rate_per_day / self.satellite_count


#: Row-block size of the blocked nearest-neighbor sweep.  Bounds the
#: transient (block, N) squared-distance slab to ~18 MB at 4400 satellites
#: instead of the full N^2 matrix.
_NN_BLOCK_ROWS = 512


def _pairwise_min_distances(positions: np.ndarray) -> np.ndarray:
    """Nearest-neighbor distance per satellite at one instant: (N,).

    Uses the Gram identity ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` so the heavy
    lifting is one BLAS matmul per row block, instead of materializing the
    (N, N, 3) difference tensor plus its norm temporaries (~0.5 GB per step
    at megaconstellation scale).  The identity rounds the squared
    distances at the ~1e-2 m^2 level — micrometers in distance at LEO
    radii, irrelevant against kilometer-scale screening thresholds and
    ranking statistics; negative rounding residue is clamped before the
    square root.
    """
    points = np.ascontiguousarray(positions, dtype=np.float64)
    n = points.shape[0]
    sq = np.einsum("ij,ij->i", points, points)
    transposed = points.T
    nearest_sq = np.empty(n, dtype=np.float64)
    for start in range(0, n, _NN_BLOCK_ROWS):
        stop = min(start + _NN_BLOCK_ROWS, n)
        block = sq[start:stop, None] + sq[None, :]
        block -= 2.0 * (points[start:stop] @ transposed)
        block[np.arange(stop - start), np.arange(start, stop)] = np.inf
        np.maximum(block, 0.0, out=block)
        nearest_sq[start:stop] = block.min(axis=1)
    return np.sqrt(nearest_sq)


def conjunction_analysis(
    constellation: Constellation,
    grid: TimeGrid,
    threshold_m: float = DEFAULT_CONJUNCTION_THRESHOLD_M,
    propagator: Optional[BatchPropagator] = None,
) -> CongestionReport:
    """Count close approaches over a time grid.

    A *conjunction event* is a (pair, time-step) at which the pair's
    separation is below the threshold.  Step-sampled counting undercounts
    fast conjunctions and double-counts slow ones versus a true
    closest-approach screener, but it ranks constellations consistently,
    which is all the comparison needs.

    ``propagator`` lets callers reuse an existing batch propagator for the
    same elements (e.g. a subset of a context-cached pool propagator)
    instead of constructing one per call.

    Raises:
        ValueError: On a non-positive threshold or a constellation of
            fewer than two satellites.
    """
    if threshold_m <= 0.0:
        raise ValueError("threshold must be positive")
    if len(constellation) < 2:
        raise ValueError("need at least two satellites")

    if propagator is None:
        propagator = BatchPropagator(constellation.elements)
    events = 0
    min_separation = math.inf
    nearest_samples: List[float] = []
    for chunk_times in grid.chunks(64):
        positions = propagator.positions_eci(chunk_times)  # (N, Tc, 3)
        for step in range(chunk_times.size):
            nearest = _pairwise_min_distances(positions[:, step, :])
            events += int((nearest < threshold_m).sum()) // 2
            step_min = float(nearest.min())
            min_separation = min(min_separation, step_min)
            nearest_samples.append(float(np.median(nearest)))
    days = grid.duration_s / 86_400.0
    return CongestionReport(
        satellite_count=len(constellation),
        conjunction_events=events,
        conjunction_rate_per_day=events / days,
        min_separation_m=min_separation,
        median_nearest_neighbor_m=float(np.median(nearest_samples)),
    )


@dataclass(frozen=True)
class OccupancyReport:
    """How densely an altitude shell is populated."""

    altitude_band_km: Tuple[float, float]
    satellite_count: int
    shell_volume_km3: float
    density_per_million_km3: float


def shell_occupancy(
    constellation: Constellation,
    band_width_km: float = 20.0,
) -> List[OccupancyReport]:
    """Bucket satellites into altitude bands and compute spatial density.

    Density uses the spherical-shell volume of each band — the standard
    debris-environment metric (objects per volume).

    Raises:
        ValueError: On a non-positive band width.
    """
    if band_width_km <= 0.0:
        raise ValueError("band width must be positive")
    from repro.constants import EARTH_RADIUS_M

    altitudes = np.array(
        [satellite.elements.altitude_km for satellite in constellation]
    )
    if altitudes.size == 0:
        return []
    low = math.floor(altitudes.min() / band_width_km) * band_width_km
    reports: List[OccupancyReport] = []
    band_start = low
    while band_start <= altitudes.max():
        band_end = band_start + band_width_km
        member = (altitudes >= band_start) & (altitudes < band_end)
        count = int(member.sum())
        if count:
            inner_km = EARTH_RADIUS_M / 1000.0 + band_start
            outer_km = EARTH_RADIUS_M / 1000.0 + band_end
            volume = 4.0 / 3.0 * math.pi * (outer_km**3 - inner_km**3)
            reports.append(
                OccupancyReport(
                    altitude_band_km=(band_start, band_end),
                    satellite_count=count,
                    shell_volume_km3=volume,
                    density_per_million_km3=count / volume * 1e6,
                )
            )
        band_start = band_end
    return reports


def independent_vs_shared_occupancy(
    per_party_satellites: int,
    party_count: int,
    shared_total: int,
) -> Dict[str, int]:
    """The paper's §6 comparison in satellite counts.

    K parties each launching their own constellation put
    ``K * per_party_satellites`` objects in orbit; the shared MP-LEO
    alternative launches ``shared_total`` once.

    Raises:
        ValueError: On non-positive inputs.
    """
    if per_party_satellites <= 0 or party_count <= 0 or shared_total <= 0:
        raise ValueError("all inputs must be positive")
    independent = per_party_satellites * party_count
    return {
        "independent_total": independent,
        "shared_total": shared_total,
        "orbital_objects_saved": independent - shared_total,
    }
