"""Design-space perturbation helpers for the Fig. 4 experiments.

The paper studies three knobs a new MP-LEO participant can turn when adding a
satellite to an existing constellation:

* **Phase** — same plane, shifted mean anomaly (Fig. 4b sweeps 29 positions
  between two satellites of a 12-satellite plane).
* **Altitude** — same plane and phase, different height (so a different
  period: the satellite drifts relative to the plane).
* **Inclination** — a different plane geometry entirely (Fig. 4c finds this
  gives the largest coverage gain).

These helpers construct the candidate satellites for those experiments.
"""

from __future__ import annotations

from typing import List

from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.walker import single_plane
from repro.orbits.elements import OrbitalElements

#: Parameters of the paper's imaginary Fig. 4b constellation.
FIG4B_INCLINATION_DEG = 53.0
FIG4B_ALTITUDE_KM = 546.0
FIG4B_SATELLITE_COUNT = 12


def fig4b_base_constellation() -> Constellation:
    """The paper's Fig. 4b base: 12 satellites 30 degrees apart in one plane."""
    elements = single_plane(
        FIG4B_SATELLITE_COUNT, FIG4B_INCLINATION_DEG, FIG4B_ALTITUDE_KM
    )
    return Constellation(
        [
            Satellite(sat_id=f"BASE-{index:02d}", elements=element)
            for index, element in enumerate(elements)
        ],
        name="fig4b-base",
    )


def phase_sweep_candidates(
    base: OrbitalElements,
    gap_deg: float = 30.0,
    positions: int = 29,
) -> List[Satellite]:
    """Candidate satellites between two base satellites, spaced ~1 degree apart.

    The paper adds a satellite at 29 locations between two satellites that
    are 30 degrees apart in phase, i.e. at offsets of 1..29 degrees from the
    first of the pair.
    """
    if positions <= 0:
        raise ValueError(f"positions must be positive, got {positions}")
    step = gap_deg / (positions + 1)
    return [
        Satellite(
            sat_id=f"CAND-PHASE-{index:02d}",
            elements=base.with_phase_shift(step * (index + 1)),
            name=f"phase+{step * (index + 1):.1f}deg",
        )
        for index in range(positions)
    ]


def fig4c_base_constellation() -> Constellation:
    """The paper's Fig. 4c base: 4 satellites 90 degrees apart, 53 deg, 546 km."""
    elements = single_plane(4, FIG4B_INCLINATION_DEG, FIG4B_ALTITUDE_KM)
    return Constellation(
        [
            Satellite(sat_id=f"BASE4-{index}", elements=element)
            for index, element in enumerate(elements)
        ],
        name="fig4c-base",
    )


def inclination_variant(
    base: OrbitalElements, inclination_deg: float = 43.0
) -> Satellite:
    """Fig. 4c category 1: same plane/phase parameters, different inclination."""
    return Satellite(
        sat_id="CAND-INCL",
        elements=base.with_inclination_deg(inclination_deg),
        name=f"inclination-{inclination_deg:.0f}deg",
    )


def altitude_variant(base: OrbitalElements, altitude_km: float) -> Satellite:
    """Fig. 4c category 2: same orbital plane and phase, different altitude."""
    return Satellite(
        sat_id="CAND-ALT",
        elements=base.with_altitude_km(altitude_km),
        name=f"altitude-{altitude_km:.0f}km",
    )


def phase_variant(base: OrbitalElements, phase_shift_deg: float) -> Satellite:
    """Fig. 4c category 3: same orbital plane, different phase."""
    return Satellite(
        sat_id="CAND-PHASE",
        elements=base.with_phase_shift(phase_shift_deg),
        name=f"phase+{phase_shift_deg:.0f}deg",
    )
