"""Constellation generation and design.

* :mod:`repro.constellation.satellite` — the :class:`Satellite` record that
  binds an orbit to an identity (and later, to an owning party).
* :mod:`repro.constellation.walker` — Walker delta/star pattern generators.
* :mod:`repro.constellation.shells` — synthetic Starlink/Kuiper/OneWeb-like
  shells from the operators' public FCC filing parameters (the reproduction's
  substitute for a live TLE catalog; see DESIGN.md).
* :mod:`repro.constellation.sampling` — random satellite subset sampling,
  matching the paper's "randomly sample satellites from the Starlink
  network" methodology.
* :mod:`repro.constellation.design` — perturbation helpers for the Fig. 4
  design-space experiments (phase sweeps, altitude and inclination variants).
"""

from repro.constellation.satellite import Constellation, Satellite
from repro.constellation.shells import (
    KUIPER_SHELLS,
    ONEWEB_SHELLS,
    STARLINK_SHELLS,
    ShellSpec,
    build_shell,
    starlink_like_constellation,
)
from repro.constellation.walker import walker_delta, walker_star
from repro.constellation.sampling import sample_constellation, sample_elements

__all__ = [
    "Satellite",
    "Constellation",
    "ShellSpec",
    "STARLINK_SHELLS",
    "KUIPER_SHELLS",
    "ONEWEB_SHELLS",
    "build_shell",
    "starlink_like_constellation",
    "walker_delta",
    "walker_star",
    "sample_constellation",
    "sample_elements",
]
