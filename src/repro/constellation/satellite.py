"""Satellite and constellation records.

A :class:`Satellite` is an orbit plus an identity: a stable id, an optional
human-readable name, the owning party (for MP-LEO experiments) and a nominal
link capacity.  A :class:`Constellation` is an ordered, immutable collection
of satellites with convenience accessors used throughout the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.orbits.elements import OrbitalElements

#: Party name used for satellites that have not been assigned to any MP-LEO
#: participant.
UNASSIGNED_PARTY = "unassigned"


@dataclass(frozen=True)
class Satellite:
    """One satellite: orbit + identity + ownership.

    Attributes:
        sat_id: Stable unique identifier within a constellation.
        elements: Orbital elements at the constellation epoch.
        name: Optional human-readable name.
        party: Owning MP-LEO participant (``UNASSIGNED_PARTY`` if none).
        capacity_mbps: Nominal user-link capacity the satellite can relay.
    """

    sat_id: str
    elements: OrbitalElements
    name: str = ""
    party: str = UNASSIGNED_PARTY
    capacity_mbps: float = 1000.0

    def owned_by(self, party: str) -> "Satellite":
        """Return a copy of this satellite assigned to ``party``."""
        return replace(self, party=party)


class Constellation:
    """An immutable ordered collection of satellites.

    Provides set-like composition operators used heavily by the MP-LEO
    experiments (union for adding contributions, difference for withdrawal).
    """

    def __init__(self, satellites: Iterable[Satellite], name: str = "") -> None:
        self._satellites: Tuple[Satellite, ...] = tuple(satellites)
        self.name = name
        seen: Dict[str, int] = {}
        for index, satellite in enumerate(self._satellites):
            if satellite.sat_id in seen:
                raise ValueError(
                    f"duplicate satellite id {satellite.sat_id!r} at positions "
                    f"{seen[satellite.sat_id]} and {index}"
                )
            seen[satellite.sat_id] = index
        self._index_by_id = seen

    def __len__(self) -> int:
        return len(self._satellites)

    def __iter__(self) -> Iterator[Satellite]:
        return iter(self._satellites)

    def __getitem__(self, index: int) -> Satellite:
        return self._satellites[index]

    def __contains__(self, sat_id: str) -> bool:
        return sat_id in self._index_by_id

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Constellation{label}: {len(self)} satellites>"

    @property
    def satellites(self) -> Tuple[Satellite, ...]:
        return self._satellites

    @property
    def elements(self) -> List[OrbitalElements]:
        """Orbital elements of every satellite, in order."""
        return [satellite.elements for satellite in self._satellites]

    @property
    def parties(self) -> List[str]:
        """Sorted distinct party names present in the constellation."""
        return sorted({satellite.party for satellite in self._satellites})

    def get(self, sat_id: str) -> Satellite:
        """Look a satellite up by id.

        Raises:
            KeyError: If the id is not present.
        """
        return self._satellites[self._index_by_id[sat_id]]

    def filter(self, predicate: Callable[[Satellite], bool], name: str = "") -> "Constellation":
        """Return the sub-constellation of satellites matching ``predicate``."""
        return Constellation(
            (satellite for satellite in self._satellites if predicate(satellite)),
            name=name or self.name,
        )

    def by_party(self, party: str) -> "Constellation":
        """Return the sub-constellation owned by one party."""
        return self.filter(lambda satellite: satellite.party == party, name=party)

    def without_party(self, party: str) -> "Constellation":
        """Return the constellation after one party withdraws its satellites."""
        return self.filter(
            lambda satellite: satellite.party != party,
            name=f"{self.name}-minus-{party}" if self.name else f"minus-{party}",
        )

    def party_counts(self) -> Dict[str, int]:
        """Map party name -> number of contributed satellites."""
        counts: Dict[str, int] = {}
        for satellite in self._satellites:
            counts[satellite.party] = counts.get(satellite.party, 0) + 1
        return counts

    def union(self, other: "Constellation", name: str = "") -> "Constellation":
        """Combine two constellations (ids must not collide)."""
        return Constellation(
            list(self._satellites) + list(other._satellites),
            name=name or self.name,
        )

    def add(self, satellite: Satellite) -> "Constellation":
        """Return a new constellation with one extra satellite."""
        return Constellation(list(self._satellites) + [satellite], name=self.name)

    def remove_ids(self, sat_ids: Iterable[str]) -> "Constellation":
        """Return a new constellation with the given satellite ids removed."""
        removal = set(sat_ids)
        missing = removal - set(self._index_by_id)
        if missing:
            raise KeyError(f"unknown satellite ids: {sorted(missing)}")
        return self.filter(lambda satellite: satellite.sat_id not in removal)

    def take(self, indices: Sequence[int], name: str = "") -> "Constellation":
        """Return the sub-constellation at the given positional indices."""
        return Constellation(
            [self._satellites[int(index)] for index in indices],
            name=name or self.name,
        )

    def assign_parties(
        self, party_of: Callable[[int, Satellite], str]
    ) -> "Constellation":
        """Return a copy with party ownership computed per satellite.

        Args:
            party_of: Callback ``(index, satellite) -> party name``.
        """
        return Constellation(
            (
                satellite.owned_by(party_of(index, satellite))
                for index, satellite in enumerate(self._satellites)
            ),
            name=self.name,
        )


def from_elements(
    elements: Iterable[OrbitalElements],
    prefix: str = "SAT",
    name: str = "",
    party: str = UNASSIGNED_PARTY,
    capacity_mbps: float = 1000.0,
) -> Constellation:
    """Wrap bare orbital elements into a constellation with generated ids."""
    satellites = [
        Satellite(
            sat_id=f"{prefix}-{index:05d}",
            elements=element,
            name=f"{prefix}-{index:05d}",
            party=party,
            capacity_mbps=capacity_mbps,
        )
        for index, element in enumerate(elements)
    ]
    return Constellation(satellites, name=name)
