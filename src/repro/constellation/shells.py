"""Synthetic megaconstellation shells.

The paper samples satellites from the live Starlink TLE catalog.  Offline we
substitute synthetic shells built from the operators' *public FCC filing*
parameters; the experiments only depend on the constellation's statistical
geometry (inclination mix, altitude, plane/phase spread), which these
parameters define (see DESIGN.md substitution table).

Shell parameters:

* **Starlink Gen1** (FCC SAT-MOD-20200417-00037): 1584 sats at 550 km/53.0°
  (72 planes), 1584 at 540 km/53.2° (72 planes), 720 at 570 km/70°,
  348 at 560 km/97.6° and 172 at 560 km/97.6°.
* **Kuiper** (FCC-20-102): 1156 at 630 km/51.9°, 1296 at 610 km/42°,
  784 at 590 km/33°.
* **OneWeb** phase 1: 588 at 1200 km/87.9° (Walker star).

To avoid the perfectly regular lattice artifacts of ideal Walker patterns
(real catalogs contain spares, drift, and partially filled planes),
:func:`build_shell` can jitter RAAN and phase with a seeded RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constellation.satellite import Constellation, Satellite
from repro.orbits.elements import OrbitalElements
from repro.constellation.walker import walker_delta, walker_star


@dataclass(frozen=True)
class ShellSpec:
    """Parameters of one constellation shell (a Walker pattern)."""

    name: str
    total_satellites: int
    planes: int
    phasing_factor: int
    inclination_deg: float
    altitude_km: float
    star: bool = False  # Walker star (polar) vs Walker delta.


STARLINK_SHELLS: Sequence[ShellSpec] = (
    ShellSpec("starlink-53.0", 1584, 72, 17, 53.0, 550.0),
    ShellSpec("starlink-53.2", 1584, 72, 17, 53.2, 540.0),
    ShellSpec("starlink-70.0", 720, 36, 11, 70.0, 570.0),
    ShellSpec("starlink-97.6-a", 348, 6, 1, 97.6, 560.0),
    ShellSpec("starlink-97.6-b", 172, 4, 1, 97.6, 560.0),
)

KUIPER_SHELLS: Sequence[ShellSpec] = (
    ShellSpec("kuiper-51.9", 1156, 34, 1, 51.9, 630.0),
    ShellSpec("kuiper-42.0", 1296, 36, 1, 42.0, 610.0),
    ShellSpec("kuiper-33.0", 784, 28, 1, 33.0, 590.0),
)

ONEWEB_SHELLS: Sequence[ShellSpec] = (
    ShellSpec("oneweb-87.9", 588, 12, 1, 87.9, 1200.0, star=True),
)


def build_shell(
    spec: ShellSpec,
    rng: Optional[np.random.Generator] = None,
    raan_jitter_deg: float = 0.0,
    phase_jitter_deg: float = 0.0,
) -> List[OrbitalElements]:
    """Generate the orbital elements of one shell.

    Args:
        spec: Shell parameters.
        rng: Seeded random generator; required when jitter is requested.
        raan_jitter_deg: Std-dev of Gaussian jitter applied per satellite to
            the ascending node.
        phase_jitter_deg: Std-dev of Gaussian jitter applied per satellite to
            the mean anomaly.

    Returns:
        ``spec.total_satellites`` orbital elements.
    """
    generator = walker_star if spec.star else walker_delta
    elements = generator(
        spec.total_satellites,
        spec.planes,
        spec.phasing_factor,
        spec.inclination_deg,
        spec.altitude_km,
    )
    if raan_jitter_deg == 0.0 and phase_jitter_deg == 0.0:
        return elements
    if rng is None:
        raise ValueError("jitter requested but no rng provided")
    jittered: List[OrbitalElements] = []
    for element in elements:
        raan_delta = float(rng.normal(0.0, raan_jitter_deg)) if raan_jitter_deg else 0.0
        phase_delta = (
            float(rng.normal(0.0, phase_jitter_deg)) if phase_jitter_deg else 0.0
        )
        jittered.append(
            element.with_raan_deg(element.raan_deg + raan_delta).with_phase_shift(
                phase_delta
            )
        )
    return jittered


def _build_constellation(
    shells: Sequence[ShellSpec],
    name: str,
    prefix: str,
    rng: Optional[np.random.Generator],
    raan_jitter_deg: float,
    phase_jitter_deg: float,
) -> Constellation:
    satellites: List[Satellite] = []
    for shell in shells:
        elements = build_shell(
            shell,
            rng=rng,
            raan_jitter_deg=raan_jitter_deg,
            phase_jitter_deg=phase_jitter_deg,
        )
        for index, element in enumerate(elements):
            sat_id = f"{prefix}-{shell.name}-{index:04d}"
            satellites.append(Satellite(sat_id=sat_id, elements=element, name=sat_id))
    return Constellation(satellites, name=name)


def starlink_like_constellation(
    rng: Optional[np.random.Generator] = None,
    raan_jitter_deg: float = 1.0,
    phase_jitter_deg: float = 2.0,
) -> Constellation:
    """Build the full synthetic Starlink Gen1 constellation (4408 satellites).

    With the default jitter, satellites deviate slightly from the ideal
    Walker lattice, mimicking the dispersion of the live catalog.  Pass
    ``rng=None`` with zero jitter for the ideal lattice.
    """
    if rng is None and (raan_jitter_deg or phase_jitter_deg):
        rng = np.random.default_rng(0)
    return _build_constellation(
        STARLINK_SHELLS, "starlink-like", "STL", rng, raan_jitter_deg, phase_jitter_deg
    )


def kuiper_like_constellation(
    rng: Optional[np.random.Generator] = None,
    raan_jitter_deg: float = 1.0,
    phase_jitter_deg: float = 2.0,
) -> Constellation:
    """Build the synthetic Kuiper constellation (3236 satellites)."""
    if rng is None and (raan_jitter_deg or phase_jitter_deg):
        rng = np.random.default_rng(1)
    return _build_constellation(
        KUIPER_SHELLS, "kuiper-like", "KPR", rng, raan_jitter_deg, phase_jitter_deg
    )


def oneweb_like_constellation(
    rng: Optional[np.random.Generator] = None,
    raan_jitter_deg: float = 0.5,
    phase_jitter_deg: float = 1.0,
) -> Constellation:
    """Build the synthetic OneWeb phase-1 constellation (588 satellites)."""
    if rng is None and (raan_jitter_deg or phase_jitter_deg):
        rng = np.random.default_rng(2)
    return _build_constellation(
        ONEWEB_SHELLS, "oneweb-like", "OWB", rng, raan_jitter_deg, phase_jitter_deg
    )
