"""Walker constellation pattern generators.

A Walker pattern ``i: T/P/F`` places ``T`` satellites in ``P`` equally spaced
orbital planes at inclination ``i``, with ``T/P`` satellites per plane and an
inter-plane phase offset controlled by the phasing factor ``F``
(0 <= F < P).  Two flavours are standard:

* **Walker delta**: ascending nodes spread over the full 360 degrees — the
  pattern used by Starlink's inclined shells.
* **Walker star**: ascending nodes spread over 180 degrees — the pattern used
  by polar constellations such as Iridium and OneWeb.
"""

from __future__ import annotations

from typing import List

from repro.orbits.elements import OrbitalElements


def _walker(
    *,
    total_satellites: int,
    planes: int,
    phasing_factor: int,
    inclination_deg: float,
    altitude_km: float,
    node_spread_deg: float,
    raan_offset_deg: float,
    phase_offset_deg: float,
    eccentricity: float,
) -> List[OrbitalElements]:
    if total_satellites <= 0:
        raise ValueError(f"total_satellites must be positive, got {total_satellites}")
    if planes <= 0:
        raise ValueError(f"planes must be positive, got {planes}")
    if total_satellites % planes != 0:
        raise ValueError(
            f"total_satellites ({total_satellites}) must divide evenly into "
            f"planes ({planes})"
        )
    if not 0 <= phasing_factor < planes:
        raise ValueError(
            f"phasing_factor must be in [0, planes), got {phasing_factor}"
        )
    per_plane = total_satellites // planes
    elements: List[OrbitalElements] = []
    for plane in range(planes):
        raan_deg = raan_offset_deg + node_spread_deg * plane / planes
        for slot in range(per_plane):
            mean_anomaly_deg = (
                phase_offset_deg
                + 360.0 * slot / per_plane
                + 360.0 * phasing_factor * plane / total_satellites
            )
            elements.append(
                OrbitalElements.from_degrees(
                    altitude_km=altitude_km,
                    inclination_deg=inclination_deg,
                    raan_deg=raan_deg % 360.0,
                    mean_anomaly_deg=mean_anomaly_deg % 360.0,
                    eccentricity=eccentricity,
                )
            )
    return elements


def walker_delta(
    total_satellites: int,
    planes: int,
    phasing_factor: int,
    inclination_deg: float,
    altitude_km: float,
    raan_offset_deg: float = 0.0,
    phase_offset_deg: float = 0.0,
    eccentricity: float = 0.0,
) -> List[OrbitalElements]:
    """Generate a Walker delta pattern (nodes spread over 360 degrees).

    Example — one Starlink-like shell:
        >>> shell = walker_delta(1584, 72, 1, inclination_deg=53.0, altitude_km=550.0)
        >>> len(shell)
        1584
    """
    return _walker(
        total_satellites=total_satellites,
        planes=planes,
        phasing_factor=phasing_factor,
        inclination_deg=inclination_deg,
        altitude_km=altitude_km,
        node_spread_deg=360.0,
        raan_offset_deg=raan_offset_deg,
        phase_offset_deg=phase_offset_deg,
        eccentricity=eccentricity,
    )


def walker_star(
    total_satellites: int,
    planes: int,
    phasing_factor: int,
    inclination_deg: float,
    altitude_km: float,
    raan_offset_deg: float = 0.0,
    phase_offset_deg: float = 0.0,
    eccentricity: float = 0.0,
) -> List[OrbitalElements]:
    """Generate a Walker star pattern (nodes spread over 180 degrees)."""
    return _walker(
        total_satellites=total_satellites,
        planes=planes,
        phasing_factor=phasing_factor,
        inclination_deg=inclination_deg,
        altitude_km=altitude_km,
        node_spread_deg=180.0,
        raan_offset_deg=raan_offset_deg,
        phase_offset_deg=phase_offset_deg,
        eccentricity=eccentricity,
    )


def single_plane(
    count: int,
    inclination_deg: float,
    altitude_km: float,
    raan_deg: float = 0.0,
    phase_offset_deg: float = 0.0,
) -> List[OrbitalElements]:
    """Place ``count`` satellites evenly around one orbital plane.

    This is the geometry of the paper's Fig. 4b experiment (12 satellites,
    30 degrees apart, 53 degree inclination at 546 km).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return [
        OrbitalElements.from_degrees(
            altitude_km=altitude_km,
            inclination_deg=inclination_deg,
            raan_deg=raan_deg,
            mean_anomaly_deg=(phase_offset_deg + 360.0 * slot / count) % 360.0,
        )
        for slot in range(count)
    ]
