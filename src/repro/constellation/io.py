"""Constellation serialization: JSON and TLE interchange.

Two formats:

* **JSON** — the library's native round-trip format, preserving party
  ownership and capacity (which TLEs cannot carry).
* **TLE** — the ecosystem interchange format (CosmicBeats, celestrak
  tooling); export drops MP-LEO metadata, import assigns defaults.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from repro.constellation.satellite import Constellation, Satellite
from repro.orbits.elements import OrbitalElements
from repro.orbits.tle import TLE, format_tle_file, parse_tle_file

#: Schema version written into JSON exports.
SCHEMA_VERSION = 1


def satellite_to_dict(satellite: Satellite) -> Dict[str, Any]:
    """Serialize one satellite to plain JSON-compatible types."""
    elements = satellite.elements
    return {
        "sat_id": satellite.sat_id,
        "name": satellite.name,
        "party": satellite.party,
        "capacity_mbps": satellite.capacity_mbps,
        "elements": {
            "semi_major_axis_m": elements.semi_major_axis_m,
            "eccentricity": elements.eccentricity,
            "inclination_deg": elements.inclination_deg,
            "raan_deg": elements.raan_deg,
            "arg_perigee_deg": math.degrees(elements.arg_perigee_rad),
            "mean_anomaly_deg": elements.mean_anomaly_deg,
            "epoch_s": elements.epoch_s,
        },
    }


def satellite_from_dict(data: Dict[str, Any]) -> Satellite:
    """Deserialize one satellite.

    Raises:
        KeyError: On missing required fields.
    """
    element_data = data["elements"]
    elements = OrbitalElements(
        semi_major_axis_m=float(element_data["semi_major_axis_m"]),
        eccentricity=float(element_data["eccentricity"]),
        inclination_rad=math.radians(float(element_data["inclination_deg"])),
        raan_rad=math.radians(float(element_data["raan_deg"]) % 360.0),
        arg_perigee_rad=math.radians(
            float(element_data["arg_perigee_deg"]) % 360.0
        ),
        mean_anomaly_rad=math.radians(
            float(element_data["mean_anomaly_deg"]) % 360.0
        ),
        epoch_s=float(element_data.get("epoch_s", 0.0)),
    )
    return Satellite(
        sat_id=data["sat_id"],
        elements=elements,
        name=data.get("name", ""),
        party=data.get("party", "unassigned"),
        capacity_mbps=float(data.get("capacity_mbps", 1000.0)),
    )


def to_json(constellation: Constellation, indent: int = 2) -> str:
    """Serialize a constellation to a JSON string."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": constellation.name,
        "satellites": [
            satellite_to_dict(satellite) for satellite in constellation
        ],
    }
    return json.dumps(payload, indent=indent)


def from_json(text: str) -> Constellation:
    """Deserialize a constellation from a JSON string.

    Raises:
        ValueError: On unknown schema versions or malformed JSON.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed constellation JSON: {error}") from error
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    return Constellation(
        [satellite_from_dict(entry) for entry in payload["satellites"]],
        name=payload.get("name", ""),
    )


def to_tle_text(constellation: Constellation, epoch_year: int = 2024) -> str:
    """Export a constellation as 3-line TLE text.

    Satellite numbers are assigned sequentially; MP-LEO metadata (party,
    capacity) is not representable in TLEs and is dropped.
    """
    tles = [
        TLE.from_elements(
            satellite.elements,
            name=satellite.name or satellite.sat_id,
            satellite_number=index + 1,
            epoch_year=epoch_year,
        )
        for index, satellite in enumerate(constellation)
    ]
    return format_tle_file(tles)


def from_tle_text(text: str, party: str = "unassigned") -> Constellation:
    """Import a constellation from TLE text (3-line or bare 2-line)."""
    satellites: List[Satellite] = []
    for index, tle in enumerate(parse_tle_file(text)):
        sat_id = tle.name or f"TLE-{tle.satellite_number:05d}"
        satellites.append(
            Satellite(
                sat_id=sat_id,
                elements=tle.to_elements(),
                name=tle.name,
                party=party,
            )
        )
    return Constellation(satellites, name="tle-import")
