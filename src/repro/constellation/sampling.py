"""Random subset sampling of constellations.

The paper's Monte-Carlo methodology: "In each run, we randomly sample
satellites from the Starlink network."  These helpers sample without
replacement with a seeded :class:`numpy.random.Generator`, so experiments are
reproducible and independent runs differ only in their seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.constellation.satellite import Constellation
from repro.orbits.elements import OrbitalElements


def sample_constellation(
    source: Constellation,
    count: int,
    rng: np.random.Generator,
    name: str = "",
) -> Constellation:
    """Sample ``count`` satellites from ``source`` without replacement.

    Args:
        source: Constellation to draw from.
        count: Number of satellites to sample (<= len(source)).
        rng: Seeded random generator.
        name: Name for the sampled constellation.

    Raises:
        ValueError: If ``count`` exceeds the source size or is negative.
    """
    indices = sample_indices(source, count, rng)
    return source.take(indices, name=name or f"sample-{count}")


def sample_indices(
    source: Constellation,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The sorted index draw behind :func:`sample_constellation`.

    Identical RNG consumption, so callers that need the indices too (e.g.
    to subset a cached pool propagator) can take this and ``source.take``
    themselves without perturbing downstream draws.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count > len(source):
        raise ValueError(
            f"cannot sample {count} satellites from a constellation of {len(source)}"
        )
    return np.sort(rng.choice(len(source), size=count, replace=False))


def sample_elements(
    source: Constellation,
    count: int,
    rng: np.random.Generator,
) -> List[OrbitalElements]:
    """Like :func:`sample_constellation` but returning bare orbital elements."""
    return sample_constellation(source, count, rng).elements


def split_randomly(
    source: Constellation,
    fraction: float,
    rng: np.random.Generator,
) -> tuple:
    """Split a constellation into two random disjoint parts.

    Returns:
        (kept, withdrawn) where ``withdrawn`` holds ``round(fraction * N)``
        satellites — the paper's Fig. 5 withdrawal model with fraction 0.5.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    total = len(source)
    withdraw_count = int(round(fraction * total))
    permutation = rng.permutation(total)
    withdrawn_indices = np.sort(permutation[:withdraw_count])
    kept_indices = np.sort(permutation[withdraw_count:])
    return (
        source.take(kept_indices, name=f"{source.name}-kept"),
        source.take(withdrawn_indices, name=f"{source.name}-withdrawn"),
    )
