"""repro — decentralized multi-party LEO satellite constellations (MP-LEO).

A from-scratch reproduction of *A Call for Decentralized Satellite Networks*
(Oh & Vasisht, HotNets '24): an orbital/constellation/ground/link simulator
substrate (the CosmicBeats equivalent), the MP-LEO design layer, and an
experiment harness that regenerates every figure in the paper.

Quickstart::

    import numpy as np
    from repro import (
        Constellation, TimeGrid, VisibilityEngine,
        starlink_like_constellation, sample_constellation,
    )
    from repro.ground.cities import TAIPEI

    pool = starlink_like_constellation()
    subset = sample_constellation(pool, 1000, np.random.default_rng(0))
    engine = VisibilityEngine(TimeGrid.one_week())
    masks = engine.site_coverage(subset, [TAIPEI.terminal()])
    print(f"Taipei covered {100 * masks[0].mean():.2f}% of the week")

Packages:

* :mod:`repro.orbits` — orbital mechanics (elements, Kepler, J2, TLE, frames).
* :mod:`repro.constellation` — Walker patterns, synthetic megaconstellations.
* :mod:`repro.ground` — terminals, stations, the 21-city database, GSaaS.
* :mod:`repro.links` — link budgets, MODCOD capacity, the bent-pipe model.
* :mod:`repro.sim` — time grids, vectorized visibility, coverage statistics,
  the bent-pipe session engine.
* :mod:`repro.core` — MP-LEO itself: parties, registry, placement,
  incentives, market, ledger, sharing, robustness, governance, bootstrap.
* :mod:`repro.experiments` — one module per paper figure.
* :mod:`repro.analysis` — gap/idle analytics and report rendering.
"""

from repro.constellation import (
    Constellation,
    Satellite,
    sample_constellation,
    starlink_like_constellation,
    walker_delta,
    walker_star,
)
from repro.core import MultiPartyConstellation, Party
from repro.orbits import BatchPropagator, J2Propagator, OrbitalElements, TLE
from repro.sim import (
    CoverageStats,
    TimeGrid,
    VisibilityEngine,
    coverage_stats,
    population_weighted_coverage_fraction,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "OrbitalElements",
    "J2Propagator",
    "BatchPropagator",
    "TLE",
    "Satellite",
    "Constellation",
    "walker_delta",
    "walker_star",
    "starlink_like_constellation",
    "sample_constellation",
    "TimeGrid",
    "VisibilityEngine",
    "CoverageStats",
    "coverage_stats",
    "population_weighted_coverage_fraction",
    "Party",
    "MultiPartyConstellation",
]
