"""A process-local metrics registry: counters, gauges, fixed-bucket histograms.

No third-party dependencies and no background threads — instruments are plain
objects a hot loop can bump in nanoseconds, and :meth:`MetricsRegistry.snapshot`
turns the whole registry into a JSON-ready dict for the run report
(:mod:`repro.obs.report`).

Instruments are created get-or-create by dotted name::

    from repro.obs import metrics

    _HITS = metrics.counter("experiments.visibility_cache.hits")
    _HITS.inc()

Module-level instruments registered at import time survive
:meth:`MetricsRegistry.reset` (which zeroes values in place), so long-lived
references never go stale.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds, tuned for wall-clock seconds:
#: sub-millisecond through multi-minute phases.  A +inf bucket is implicit.
DEFAULT_BUCKETS: Sequence[float] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def add(self, amount: Number) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram (cumulative counts, implicit +inf bucket)."""

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile by linear bucket interpolation."""
        return percentile_from_counts(self.buckets, self.counts, p)

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


def percentile_from_counts(
    buckets: Sequence[float], counts: Sequence[int], p: float
) -> float:
    """Percentile estimate from histogram buckets (linear interpolation).

    Works directly on the ``buckets``/``counts`` lists a snapshot or a JSON
    run report carries, so ``bench-compare`` can quote p50/p95/p99 span
    durations without the live :class:`Histogram` objects.

    Observations are assumed non-negative (bucket 0 spans ``(0, buckets[0]]``)
    — true for the duration/size histograms this registry holds.  Ranks that
    land in the +inf overflow bucket are clamped to the largest finite bound
    (a lower bound on the true percentile).

    Args:
        buckets: Strictly increasing finite upper bounds.
        counts: Per-bucket counts, one longer than ``buckets`` (+inf last).
        p: Percentile in [0, 100].

    Raises:
        ValueError: On a malformed p or a counts/buckets length mismatch.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(counts) != len(buckets) + 1:
        raise ValueError(
            f"need {len(buckets) + 1} counts for {len(buckets)} buckets, "
            f"got {len(counts)}"
        )
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = p / 100.0 * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if index == len(buckets):  # +inf overflow: clamp to last bound.
                return float(buckets[-1])
            lower = 0.0 if index == 0 else float(buckets[index - 1])
            upper = float(buckets[index])
            fraction = (rank - cumulative) / count
            return lower + fraction * (upper - lower)
        cumulative += count
    return float(buckets[-1])


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Thread-safe at the registration level; individual bumps are plain
    attribute updates (the GIL makes float ``+=`` safe enough for the
    single-process simulator, and keeps hot-loop overhead negligible).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"{name!r} is already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._check_free(name, "counter")
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._check_free(name, "gauge")
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            existing = self._histograms.get(name)
            if existing is not None:
                if buckets is not None and tuple(map(float, buckets)) != existing.buckets:
                    raise ValueError(
                        f"histogram {name!r} already registered with different buckets"
                    )
                return existing
            self._check_free(name, "histogram")
            self._histograms[name] = Histogram(
                name, DEFAULT_BUCKETS if buckets is None else buckets
            )
            return self._histograms[name]

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view of every instrument, sorted by name."""
        with self._lock:
            return {
                "counters": {
                    name: instrument.value
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.value
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "buckets": list(instrument.buckets),
                        "counts": list(instrument.counts),
                        "sum": instrument.sum,
                        "count": instrument.count,
                    }
                    for name, instrument in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the parallel Monte-Carlo runner to aggregate worker-process
        metrics into the parent registry: counters add, gauges take the
        incoming value when nonzero (last writer wins — gauges are
        point-in-time; zero is also the post-reset default, so a zero
        gauge is indistinguishable from one the worker never touched and
        must not clobber the parent's value), and histograms merge
        bucket-wise.  A histogram whose bucket bounds
        disagree with an already-registered instrument of the same name is
        skipped rather than corrupted (its name is unusual enough that this
        only happens when two code versions meet).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value != 0.0:
                self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            if not data.get("count"):
                continue
            try:
                histogram = self.histogram(name, data["buckets"])
            except ValueError:
                continue
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.sum += data["sum"]
            histogram.count += data["count"]

    def reset(self) -> None:
        """Zero every instrument in place (registrations survive)."""
        with self._lock:
            for table in (self._counters, self._gauges, self._histograms):
                for instrument in table.values():
                    instrument._reset()


#: The process-global default registry every instrumented module shares.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, buckets)


def snapshot() -> Dict[str, Dict]:
    """Snapshot the default registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero the default registry (tests and fresh runs)."""
    REGISTRY.reset()
