"""Benchmark comparison: the perf-regression gate over ``BENCH_*.json``.

The benchmark suite (``pytest benchmarks/``) writes a machine-readable
record — per-figure wall-clock, span aggregates, and the full metrics
snapshot.  This module diffs two such records and flags regressions::

    python -m repro bench-compare benchmarks/BENCH_PR1.json bench_new.json \
        --threshold 1.25

A *figure regression* is a figure whose wall-clock grew by more than the
threshold ratio (and whose new time is above a noise floor,
:data:`MIN_WALL_S` — micro-benchmarks jitter by multiples without meaning
anything).  The command prints a comparison table — including p50/p95/p99
span durations interpolated from the ``trace.span_seconds.*`` histograms
when present — and exits non-zero on any regression unless ``--report-only``
is passed (CI's advisory mode).

Both bench-record schemas are readable: schema 1 (the committed
``BENCH_PR1.json`` baseline) and schema 2 (adds memory / timeline-drop
accounting).

``bench-compare --history A.json B.json C.json ...`` switches from the
pairwise gate to a trajectory table: one row per figure, one wall-clock
column per record, so the committed ``benchmarks/BENCH_PR*.json`` chain
reads as a per-experiment performance history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import percentile_from_counts
from repro.obs.trace import SPAN_SECONDS_PREFIX

#: Schemas :func:`load_bench` understands.
SUPPORTED_BENCH_SCHEMAS = (1, 2)

#: Figures faster than this (seconds) are never flagged: at sub-10 ms scale
#: wall-clock ratios are scheduler noise, not performance signal.
MIN_WALL_S = 0.01

#: Default regression threshold: new/base wall-clock ratio.
DEFAULT_THRESHOLD = 1.25

#: Percentiles quoted for span-duration histograms.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


def load_bench(path: str) -> Dict[str, Any]:
    """Read a benchmark record (schema 1 or 2), normalized in place.

    Raises:
        ValueError: On an unsupported schema or a record without figures.
    """
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    schema = record.get("schema")
    if schema not in SUPPORTED_BENCH_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(supported: {SUPPORTED_BENCH_SCHEMAS})"
        )
    figures = record.get("figures")
    if not isinstance(figures, dict) or not figures:
        raise ValueError(f"{path}: bench record has no figures")
    record.setdefault("span_stats", {})
    record.setdefault("metrics", {"counters": {}, "gauges": {}, "histograms": {}})
    return record


@dataclass(frozen=True)
class Delta:
    """One compared quantity (a figure's wall-clock or a span's total)."""

    name: str
    base_s: float
    new_s: float

    @property
    def ratio(self) -> float:
        """new/base; 1.0 when both are ~zero, inf when only base is."""
        if self.base_s <= 0.0:
            return 1.0 if self.new_s <= 0.0 else float("inf")
        return self.new_s / self.base_s


@dataclass
class BenchComparison:
    """The full diff of two benchmark records."""

    base_path: str
    new_path: str
    threshold: float
    min_wall_s: float
    figures: List[Delta] = field(default_factory=list)
    spans: List[Delta] = field(default_factory=list)
    #: Figure deltas past the threshold (the gate's trigger set).
    regressions: List[Delta] = field(default_factory=list)
    #: Span-duration percentiles from the *new* record's histograms:
    #: span name -> {"p50": s, "p95": s, "p99": s}.
    percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Figures present in only one record (config drift indicator).
    only_in_base: List[str] = field(default_factory=list)
    only_in_new: List[str] = field(default_factory=list)
    #: Host-mismatch warnings (report-only; e.g. differing CPU counts
    #: mean wall-clock ratios measure the host, not the code).
    warnings: List[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def exit_code(self, report_only: bool = False) -> int:
        return 1 if (self.regressed and not report_only) else 0


def _figure_wall_s(record: Dict[str, Any]) -> Dict[str, float]:
    return {
        name: float(entry.get("wall_s", 0.0))
        for name, entry in record["figures"].items()
    }


def _span_totals(record: Dict[str, Any]) -> Dict[str, float]:
    return {
        name: float(stats.get("total_s", 0.0))
        for name, stats in record.get("span_stats", {}).items()
    }


def span_duration_percentiles(
    record: Dict[str, Any],
    percentiles: Tuple[float, ...] = REPORT_PERCENTILES,
) -> Dict[str, Dict[str, float]]:
    """p50/p95/p99 span durations from ``trace.span_seconds.*`` histograms."""
    histograms = record.get("metrics", {}).get("histograms", {})
    result: Dict[str, Dict[str, float]] = {}
    for name, histogram in sorted(histograms.items()):
        if not name.startswith(SPAN_SECONDS_PREFIX):
            continue
        if not histogram.get("count"):
            continue
        span_name = name[len(SPAN_SECONDS_PREFIX):]
        result[span_name] = {
            f"p{int(p)}": percentile_from_counts(
                histogram["buckets"], histogram["counts"], p
            )
            for p in percentiles
        }
    return result


def compare_benchmarks(
    base: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_wall_s: float = MIN_WALL_S,
    base_path: str = "<base>",
    new_path: str = "<new>",
) -> BenchComparison:
    """Diff two loaded benchmark records.

    Args:
        base: The committed baseline (e.g. ``BENCH_PR1.json``).
        new: The fresh record to gate.
        threshold: Regression trigger: new/base ratio above this fails.
        min_wall_s: Noise floor — figures whose *new* wall-clock is below
            this are compared but never flagged.

    Raises:
        ValueError: On a non-positive threshold.
    """
    if threshold <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    result = BenchComparison(
        base_path=base_path,
        new_path=new_path,
        threshold=threshold,
        min_wall_s=min_wall_s,
    )
    base_figures = _figure_wall_s(base)
    new_figures = _figure_wall_s(new)
    result.only_in_base = sorted(set(base_figures) - set(new_figures))
    result.only_in_new = sorted(set(new_figures) - set(base_figures))
    for name in sorted(set(base_figures) & set(new_figures)):
        delta = Delta(name, base_figures[name], new_figures[name])
        result.figures.append(delta)
        if delta.new_s >= min_wall_s and delta.ratio > threshold:
            result.regressions.append(delta)
    base_spans = _span_totals(base)
    new_spans = _span_totals(new)
    for name in sorted(set(base_spans) & set(new_spans)):
        result.spans.append(Delta(name, base_spans[name], new_spans[name]))
    result.percentiles = span_duration_percentiles(new)
    # Same-host sanity: a wall-clock ratio between records from hosts with
    # different CPU counts measures the hardware, not the change under
    # test.  Report-only — schema-1 records carry no meta at all, and CI
    # legitimately compares across runners — but the warning makes a
    # cross-host "regression" self-explaining.  (No warning when either
    # side lacks the field.)
    base_cpus = (base.get("meta") or {}).get("cpus")
    new_cpus = (new.get("meta") or {}).get("cpus")
    if base_cpus is not None and new_cpus is not None and base_cpus != new_cpus:
        result.warnings.append(
            f"records come from hosts with different CPU counts "
            f"(base: {base_cpus}, new: {new_cpus}); wall-clock ratios are "
            f"not comparable across hosts"
        )
    return result


def _format_ratio(ratio: float) -> str:
    return "inf" if ratio == float("inf") else f"{ratio:.2f}x"


def render_comparison(result: BenchComparison) -> str:
    """The human-readable regression table ``bench-compare`` prints."""
    lines: List[str] = []
    lines.append(
        f"bench-compare: base={result.base_path} new={result.new_path} "
        f"threshold={result.threshold:.2f}x floor={result.min_wall_s * 1e3:.0f}ms"
    )
    lines.append("")
    name_width = max(
        [len("figure")] + [len(delta.name) for delta in result.figures]
    )
    header = (
        f"{'figure':<{name_width}}  {'base_s':>10}  {'new_s':>10}  {'ratio':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for delta in result.figures:
        flag = "  REGRESSION" if delta in result.regressions else ""
        lines.append(
            f"{delta.name:<{name_width}}  {delta.base_s:>10.4f}  "
            f"{delta.new_s:>10.4f}  {_format_ratio(delta.ratio):>7}{flag}"
        )
    if result.only_in_base:
        lines.append(f"only in base: {', '.join(result.only_in_base)}")
    if result.only_in_new:
        lines.append(f"only in new:  {', '.join(result.only_in_new)}")
    for warning in result.warnings:
        lines.append(f"WARNING: {warning}")
    if result.spans:
        lines.append("")
        span_width = max(
            [len("span (total_s)")] + [len(delta.name) for delta in result.spans]
        )
        lines.append(
            f"{'span (total_s)':<{span_width}}  {'base_s':>10}  "
            f"{'new_s':>10}  {'ratio':>7}"
        )
        for delta in result.spans:
            lines.append(
                f"{delta.name:<{span_width}}  {delta.base_s:>10.4f}  "
                f"{delta.new_s:>10.4f}  {_format_ratio(delta.ratio):>7}"
            )
    if result.percentiles:
        lines.append("")
        span_width = max(
            [len("span durations (new)")]
            + [len(name) for name in result.percentiles]
        )
        lines.append(
            f"{'span durations (new)':<{span_width}}  {'p50_s':>10}  "
            f"{'p95_s':>10}  {'p99_s':>10}"
        )
        for name, values in result.percentiles.items():
            lines.append(
                f"{name:<{span_width}}  {values['p50']:>10.4f}  "
                f"{values['p95']:>10.4f}  {values['p99']:>10.4f}"
            )
    lines.append("")
    if result.regressed:
        lines.append(
            f"FAIL: {len(result.regressions)} figure(s) regressed past "
            f"{result.threshold:.2f}x:"
        )
        for delta in result.regressions:
            lines.append(
                f"  {delta.name}: {delta.base_s:.4f}s -> {delta.new_s:.4f}s "
                f"({_format_ratio(delta.ratio)})"
            )
    else:
        lines.append(
            f"OK: no figure regressed past {result.threshold:.2f}x "
            f"({len(result.figures)} compared)"
        )
    return "\n".join(lines)


def run_bench_compare(
    base_path: str,
    new_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    min_wall_s: float = MIN_WALL_S,
    report_only: bool = False,
    print_fn=print,
) -> int:
    """Load, compare, print, and return the process exit code (the CLI core)."""
    base = load_bench(base_path)
    new = load_bench(new_path)
    result = compare_benchmarks(
        base,
        new,
        threshold=threshold,
        min_wall_s=min_wall_s,
        base_path=base_path,
        new_path=new_path,
    )
    print_fn(render_comparison(result))
    if result.regressed and report_only:
        print_fn("(report-only mode: exiting 0 despite regressions)")
    return result.exit_code(report_only=report_only)


def render_history(paths: List[str], records: List[Dict[str, Any]]) -> str:
    """Per-figure wall-time trajectory across a chain of bench records.

    One row per figure, one column per record (in the order given — e.g.
    ``BENCH_PR1.json BENCH_PR3.json BENCH_PR5.json``), with a final
    last/first ratio column showing the cumulative movement.
    """
    labels = []
    for path in paths:
        label = path.replace("\\", "/").rsplit("/", 1)[-1]
        if label.endswith(".json"):
            label = label[: -len(".json")]
        labels.append(label)
    names: List[str] = []
    for record in records:
        for name in record["figures"]:
            if name not in names:
                names.append(name)
    names.sort()
    tables = [_figure_wall_s(record) for record in records]
    name_width = max([len("figure")] + [len(name) for name in names])
    col_width = max([10] + [len(label) for label in labels])
    lines = [f"bench history: {len(records)} records, {len(names)} figures", ""]
    header = f"{'figure':<{name_width}}"
    for label in labels:
        header += f"  {label:>{col_width}}"
    header += f"  {'last/first':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in names:
        row = f"{name:<{name_width}}"
        present = [table[name] for table in tables if name in table]
        for table in tables:
            cell = f"{table[name]:.4f}" if name in table else "-"
            row += f"  {cell:>{col_width}}"
        if len(present) >= 2:
            row += f"  {_format_ratio(Delta(name, present[0], present[-1]).ratio):>10}"
        else:
            row += f"  {'-':>10}"
        lines.append(row)
    return "\n".join(lines)


def run_bench_history(paths: List[str], print_fn=print) -> int:
    """Load a chain of bench records and print the trajectory table.

    Informational (always exits 0): the regression *gate* is the pairwise
    ``bench-compare``; history answers "how did we get here".

    Raises:
        ValueError: With fewer than two paths, or on an unreadable record.
    """
    if len(paths) < 2:
        raise ValueError("--history needs at least two bench records")
    records = [load_bench(path) for path in paths]
    print_fn(render_history(paths, records))
    return 0


def comparison_summary(result: BenchComparison) -> Optional[str]:
    """One-line summary for logs; None when there is nothing to say."""
    if not result.figures:
        return None
    worst = max(result.figures, key=lambda delta: delta.ratio)
    return (
        f"{len(result.figures)} figures compared, "
        f"{len(result.regressions)} regressed; worst ratio "
        f"{_format_ratio(worst.ratio)} ({worst.name})"
    )
