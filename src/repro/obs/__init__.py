"""repro.obs — the observability layer: logging, metrics, traces, timeline.

Ten stdlib-only pieces, threaded through every package of the simulator:

* :mod:`repro.obs.log` — run-scoped structured logging under the
  ``repro.*`` hierarchy (``--log-level`` / ``REPRO_LOG``).
* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges,
  and fixed-bucket histograms (with percentile interpolation).
* :mod:`repro.obs.trace` — nestable span timers (``with span("x"):``), a
  ``@timed`` decorator, tracemalloc memory sampling (``--track-memory``),
  and a cProfile hook (``--profile``).
* :mod:`repro.obs.timeline` — the ring-buffered *simulation* event
  timeline: contacts, handovers, allocation grants/denies, saturation,
  coverage gaps, party membership, market settlements.
* :mod:`repro.obs.export` — Chrome trace-event JSON export
  (``--trace-out``): spans + timeline as Perfetto-loadable tracks.
* :mod:`repro.obs.report` — the JSON run-report writer (``--metrics-out``)
  serializing spans, metrics, timeline, memory, config, and seed.
* :mod:`repro.obs.bench` — the benchmark comparison tool / perf-regression
  gate (``python -m repro bench-compare``), plus the ``--history``
  trajectory table over a chain of bench records.
* :mod:`repro.obs.bus` — the live telemetry bus (``--live-status``):
  streaming run/worker frames, heartbeats, stall detection, ETA rendering.
* :mod:`repro.obs.expose` — OpenMetrics text exposition of the metrics
  registry (``--metrics-format openmetrics``).
* :mod:`repro.obs.diff` — run-report comparison
  (``python -m repro obs diff A.json B.json``).
"""

from repro.obs.bus import (
    DEFAULT_BUS,
    BusRecorder,
    Frame,
    LiveStatus,
    TelemetryBus,
    default_bus,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    percentile_from_counts,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    collect_run_report,
    load_run_report,
    validate_run_report,
    write_run_report,
)
from repro.obs.timeline import TIMELINE, Timeline, TimelineEvent
from repro.obs.trace import TRACER, Tracer, profile, span, timed, track_memory

__all__ = [
    "configure_logging",
    "get_logger",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "percentile_from_counts",
    "Tracer",
    "TRACER",
    "span",
    "timed",
    "profile",
    "track_memory",
    "Timeline",
    "TimelineEvent",
    "TIMELINE",
    "REPORT_SCHEMA_VERSION",
    "collect_run_report",
    "load_run_report",
    "validate_run_report",
    "write_run_report",
    "TelemetryBus",
    "DEFAULT_BUS",
    "default_bus",
    "Frame",
    "BusRecorder",
    "LiveStatus",
]
