"""repro.obs — the observability layer: logging, metrics, traces, reports.

Four stdlib-only pieces, threaded through every package of the simulator:

* :mod:`repro.obs.log` — run-scoped structured logging under the
  ``repro.*`` hierarchy (``--log-level`` / ``REPRO_LOG``).
* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges,
  and fixed-bucket histograms.
* :mod:`repro.obs.trace` — nestable span timers (``with span("x"):``), a
  ``@timed`` decorator, and a cProfile hook (``--profile``).
* :mod:`repro.obs.report` — the JSON run-report writer (``--metrics-out``)
  serializing spans, metrics, config, and seed for reproducible perf claims.
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    collect_run_report,
    write_run_report,
)
from repro.obs.trace import TRACER, Tracer, profile, span, timed

__all__ = [
    "configure_logging",
    "get_logger",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "Tracer",
    "TRACER",
    "span",
    "timed",
    "profile",
    "REPORT_SCHEMA_VERSION",
    "collect_run_report",
    "write_run_report",
]
