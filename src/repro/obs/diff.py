"""Run-report diff tooling: ``python -m repro obs diff A.json B.json``.

Two ``--metrics-out`` files in, one comparison out: per-span wall-clock
movement, counter deltas, derived cache/cull ratios, and timeline drop
accounting — so "the cache made fig2 3x faster" is a rendered table over
two committed artifacts instead of a memory.  Reports of any supported
schema are accepted (:func:`repro.obs.report.upgrade_report` runs first),
so a schema-2 baseline diffs cleanly against a schema-3 run.

Purely informational: unlike ``bench-compare`` (the perf gate), ``obs
diff`` always exits 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.report import load_run_report, upgrade_report

#: Span rows and counter rows below this relative change are elided from
#: the rendered tables (the structured diff always carries everything).
RENDER_MIN_REL_CHANGE = 0.01


@dataclass(frozen=True)
class DiffRow:
    """One compared quantity: values on both sides, delta, ratio."""

    name: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def ratio(self) -> Optional[float]:
        if self.a is None or self.b is None or self.a == 0.0:
            return None
        return self.b / self.a

    @property
    def rel_change(self) -> Optional[float]:
        ratio = self.ratio
        return None if ratio is None else abs(ratio - 1.0)


def _rows(
    table_a: Dict[str, float], table_b: Dict[str, float]
) -> List[DiffRow]:
    names = sorted(set(table_a) | set(table_b))
    return [DiffRow(name, table_a.get(name), table_b.get(name)) for name in names]


def _span_totals(report: Dict[str, Any]) -> Dict[str, float]:
    return {
        name: float(stats.get("total_s", 0.0))
        for name, stats in report.get("span_stats", {}).items()
    }


def _hit_rate(counters: Dict[str, float], prefix: str) -> Optional[float]:
    hits = counters.get(f"{prefix}.hits")
    misses = counters.get(f"{prefix}.misses")
    if hits is None and misses is None:
        return None
    total = (hits or 0.0) + (misses or 0.0)
    return (hits or 0.0) / total if total else None


def derived_ratios(report: Dict[str, Any]) -> Dict[str, Optional[float]]:
    """The efficiency ratios a report implies: cull fraction, cache hit rates."""
    counters = report.get("metrics", {}).get("counters", {})
    culled = counters.get("sim.visibility.culled_pairs")
    evaluated = counters.get("sim.kernels.pairs_evaluated")
    cull_ratio: Optional[float] = None
    if culled is not None and evaluated is not None:
        pairs = culled + evaluated
        cull_ratio = culled / pairs if pairs else None
    return {
        "cull_ratio": cull_ratio,
        "visibility_cache_hit_rate": _hit_rate(
            counters, "experiments.visibility_cache"
        ),
        "pool_cache_hit_rate": _hit_rate(counters, "experiments.pool_cache"),
        "geometry_cache_hit_rate": _hit_rate(
            counters, "experiments.geometry_cache"
        ),
        "threshold_cache_hit_rate": _hit_rate(
            counters, "sim.kernels.threshold_cache"
        ),
    }


def diff_reports(
    report_a: Dict[str, Any], report_b: Dict[str, Any]
) -> Dict[str, Any]:
    """Structured comparison of two (upgraded) run reports."""
    report_a = upgrade_report(dict(report_a))
    report_b = upgrade_report(dict(report_b))
    counters_a = report_a.get("metrics", {}).get("counters", {})
    counters_b = report_b.get("metrics", {}).get("counters", {})
    timeline_a = report_a.get("timeline", {})
    timeline_b = report_b.get("timeline", {})
    bus_a = report_a.get("bus", {})
    bus_b = report_b.get("bus", {})
    ratios_a = derived_ratios(report_a)
    ratios_b = derived_ratios(report_b)
    return {
        "commands": (report_a.get("command"), report_b.get("command")),
        "seeds": (report_a.get("seed"), report_b.get("seed")),
        "spans": _rows(_span_totals(report_a), _span_totals(report_b)),
        "counters": _rows(counters_a, counters_b),
        "ratios": [
            DiffRow(name, ratios_a.get(name), ratios_b.get(name))
            for name in sorted(ratios_a)
        ],
        "timeline": [
            DiffRow(
                f"timeline.{key}",
                float(timeline_a.get(key, 0) or 0),
                float(timeline_b.get(key, 0) or 0),
            )
            for key in ("total_emitted", "dropped", "capacity")
        ],
        "bus": [
            DiffRow(
                "bus.frames_total",
                float(bus_a.get("frames_total", 0) or 0),
                float(bus_b.get("frames_total", 0) or 0),
            ),
            DiffRow(
                "bus.failed_workers",
                float(len(bus_a.get("failed_workers", []))),
                float(len(bus_b.get("failed_workers", []))),
            ),
        ],
    }


def _format(value: Optional[float], places: int = 3) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{places}f}"


def _render_rows(
    title: str,
    rows: List[DiffRow],
    lines: List[str],
    min_rel_change: Optional[float] = None,
) -> None:
    shown = rows
    if min_rel_change is not None:
        shown = [
            row
            for row in rows
            if row.a is None
            or row.b is None
            or (row.rel_change or 0.0) >= min_rel_change
            or (row.a == 0.0) != (row.b == 0.0)
        ]
    elided = len(rows) - len(shown)
    if not shown and not rows:
        return
    lines.append(title)
    if not shown:
        lines.append(f"  (all {len(rows)} within {min_rel_change:.0%})")
        return
    width = max(len(row.name) for row in shown)
    for row in shown:
        ratio = f"  x{row.ratio:.2f}" if row.ratio is not None else ""
        lines.append(
            f"  {row.name.ljust(width)}  {_format(row.a):>14} -> "
            f"{_format(row.b):>14}{ratio}"
        )
    if elided > 0 and min_rel_change is not None:
        lines.append(f"  ... {elided} more within {min_rel_change:.0%}")


def render_diff(diff: Dict[str, Any]) -> str:
    """A human-readable multi-section diff table."""
    lines: List[str] = []
    command_a, command_b = diff["commands"]
    lines.append(f"run diff: {command_a or '?'} vs {command_b or '?'}")
    seed_a, seed_b = diff["seeds"]
    if seed_a != seed_b:
        lines.append(f"  seeds differ: {seed_a} vs {seed_b}")
    _render_rows(
        "spans (total_s):", diff["spans"], lines,
        min_rel_change=RENDER_MIN_REL_CHANGE,
    )
    _render_rows(
        "counters:", diff["counters"], lines,
        min_rel_change=RENDER_MIN_REL_CHANGE,
    )
    _render_rows("derived ratios:", diff["ratios"], lines)
    _render_rows("timeline:", diff["timeline"], lines)
    _render_rows("bus:", diff["bus"], lines)
    return "\n".join(lines)


def run_obs_diff(
    path_a: str,
    path_b: str,
    print_fn: Callable[[str], None] = print,
) -> int:
    """CLI entry: load, diff, render.  Always exits 0 (informational)."""
    diff = diff_reports(load_run_report(path_a), load_run_report(path_b))
    print_fn(render_diff(diff))
    return 0


__all__: Tuple[str, ...] = (
    "DiffRow",
    "derived_ratios",
    "diff_reports",
    "render_diff",
    "run_obs_diff",
)
