"""Chrome trace-event export: open a run in Perfetto / ``chrome://tracing``.

:func:`write_chrome_trace` (the CLI's ``--trace-out``) serializes two
sources into one `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON file:

* the wall-clock spans collected by :mod:`repro.obs.trace` — one nested
  track of "where the time went" (``pid`` :data:`SPAN_PID`), and
* the simulation event timeline from :mod:`repro.obs.timeline` — one track
  per satellite / party / site / terminal (``pid`` :data:`SIM_PID`), with
  contact windows as begin/end slices, allocation grants/denies and
  saturation as duration slices, and handovers/gap edges as instants.

The two processes deliberately use different time bases: span tracks are in
wall-clock microseconds since the tracer epoch, simulation tracks are in
*simulation* microseconds on the experiment grid.  Perfetto renders both;
compare within a process, not across.

Spans that carried tracemalloc samples additionally emit a ``mem_peak_kb``
counter track, so memory spikes line up visually with the phase that caused
them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs import timeline as _timeline
from repro.obs import trace as _trace
from repro.obs.timeline import (
    CONTACT_BEGIN,
    CONTACT_END,
    WINDOWED_KINDS,
    TimelineEvent,
)
from repro.obs.trace import SpanRecord

#: Synthetic process ids grouping tracks in the trace viewer.
SPAN_PID = 1  #: Wall-clock spans (tracer time base).
SIM_PID = 2  #: Simulation timeline (simulation time base).

_SPAN_TID = 1


def _metadata(pid: int, name: str, tid: Optional[int] = None) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        record["tid"] = tid
    return record


def span_trace_events(spans: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Spans as complete ("X") events on one nested wall-clock track."""
    events: List[Dict[str, Any]] = [
        _metadata(SPAN_PID, "wall clock (obs.trace spans)"),
        _metadata(SPAN_PID, "spans", tid=_SPAN_TID),
    ]
    for record in spans:
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": SPAN_PID,
            "tid": _SPAN_TID,
            "name": record.name,
            "cat": "span",
            "ts": record.start_s * 1e6,
            "dur": record.duration_s * 1e6,
            "args": {"depth": record.depth, "parent": record.parent},
        }
        if record.mem_peak_kb is not None:
            event["args"]["mem_peak_kb"] = record.mem_peak_kb
        events.append(event)
        if record.mem_peak_kb is not None:
            events.append(
                {
                    "ph": "C",
                    "pid": SPAN_PID,
                    "tid": _SPAN_TID,
                    "name": "mem_peak_kb",
                    "ts": (record.start_s + record.duration_s) * 1e6,
                    "args": {"kb": record.mem_peak_kb},
                }
            )
    return events


def _track_label(event: TimelineEvent) -> str:
    """The viewer track an event lands on: its subject, else its party."""
    return event.subject or event.party or "(run)"


def timeline_trace_events(
    events: Iterable[TimelineEvent],
) -> List[Dict[str, Any]]:
    """Timeline events as per-subject tracks in simulation time.

    ``contact.begin`` events carry the window length (``duration_hint_s``)
    and become complete "X" slices — the matching ``contact.end`` markers
    are skipped so overlapping passes of one satellite over several sites
    cannot mis-pair (Chrome "B"/"E" events nest LIFO per track).  A begin
    without a duration hint degrades to an instant marker.  Windowed kinds
    become "X" slices; everything else becomes a thread-scoped instant
    ("i").
    """
    records: List[Dict[str, Any]] = [
        _metadata(SIM_PID, "simulation timeline (sim seconds)")
    ]
    tids: Dict[str, int] = {}
    for event in events:
        label = _track_label(event)
        tid = tids.get(label)
        if tid is None:
            tid = len(tids) + 1
            tids[label] = tid
            records.append(_metadata(SIM_PID, label, tid=tid))
        base: Dict[str, Any] = {
            "pid": SIM_PID,
            "tid": tid,
            "name": event.kind,
            "cat": event.kind.split(".")[0],
            "ts": event.t_s * 1e6,
            "args": {"subject": event.subject, "party": event.party,
                     **event.attrs},
        }
        if event.kind == CONTACT_BEGIN:
            duration_s = event.attrs.get("duration_hint_s")
            if isinstance(duration_s, (int, float)):
                records.append(
                    {**base, "ph": "X", "name": "contact", "dur": duration_s * 1e6}
                )
            else:
                records.append({**base, "ph": "i", "s": "t"})
        elif event.kind == CONTACT_END:
            continue  # Rendered by the begin slice's duration.
        elif event.kind in WINDOWED_KINDS:
            records.append({**base, "ph": "X", "dur": event.duration_s * 1e6})
        else:
            records.append({**base, "ph": "i", "s": "t"})
    return records


def chrome_trace(
    spans: Optional[Sequence[SpanRecord]] = None,
    timeline_events: Optional[Iterable[TimelineEvent]] = None,
) -> Dict[str, Any]:
    """Assemble the full trace document (default: the global collectors)."""
    if spans is None:
        spans = list(_trace.TRACER.records)
    if timeline_events is None:
        timeline_events = _timeline.TIMELINE.events()
    return {
        "traceEvents": (
            span_trace_events(spans) + timeline_trace_events(timeline_events)
        ),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.export",
            "span_time_base": "wall-clock seconds since tracer epoch",
            "sim_time_base": "simulation seconds on the experiment grid",
        },
    }


def write_chrome_trace(
    path: str,
    spans: Optional[Sequence[SpanRecord]] = None,
    timeline_events: Optional[Iterable[TimelineEvent]] = None,
) -> Dict[str, Any]:
    """Write the trace JSON to ``path`` and return the written document."""
    document = chrome_trace(spans=spans, timeline_events=timeline_events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return document


def validate_chrome_trace(document: Dict[str, Any]) -> None:
    """Raise ValueError unless ``document`` is structurally a Chrome trace.

    Checks the invariants the viewers rely on: a ``traceEvents`` list whose
    entries carry a phase/pid/name, numeric timestamps on non-metadata
    events, and durations on complete events.  Used by tests and the CI
    ``bench-smoke`` job.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a chrome trace: missing 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("ph", "pid", "name"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing {key!r}")
        if event["ph"] == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{index}] has no numeric 'ts'")
        if event["ph"] == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            raise ValueError(f"traceEvents[{index}] ('X') has no 'dur'")
