"""OpenMetrics-style text exposition of the metrics registry.

The run report (:mod:`repro.obs.report`) is the rich JSON artifact; this
module is the interchange one: ``render_openmetrics`` turns a registry
snapshot into the OpenMetrics text format (the Prometheus exposition
dialect), so standard scrape/ingest tooling can read a run's counters
without a custom parser.  The CLI surfaces it as
``--metrics-out metrics.txt --metrics-format openmetrics``.

Mapping:

* dotted instrument names become underscore-joined metric names
  (``sim.kernels.slab_bytes`` -> ``sim_kernels_slab_bytes``);
* counters expose one ``<name>_total`` sample;
* gauges expose one ``<name>`` sample;
* histograms expose cumulative ``<name>_bucket{le="..."}`` samples
  (including the mandatory ``le="+Inf"``) plus ``<name>_sum`` and
  ``<name>_count``;
* the document ends with the ``# EOF`` terminator the OpenMetrics spec
  requires.

:func:`parse_openmetrics` is the matching line-format validator — used by
tests and the CI bench-smoke job to prove an exposition artifact parses —
not a full OpenMetrics client.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics

#: Characters legal in an exposition metric name (after the first, which
#: additionally must not be a digit).
_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

#: One sample line: name, optional {labels}, one value.
_SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)\Z"
)

#: One label pair inside the braces: key="value" (no escapes needed for
#: the numeric ``le`` bounds this module emits).
_LABEL_PAIR = re.compile(r'[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"\Z')

_TYPES = ("counter", "gauge", "histogram")


def metric_name(dotted: str) -> str:
    """An exposition-legal metric name for a dotted instrument name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", dotted)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: Any) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(snapshot: Optional[Dict[str, Dict]] = None) -> str:
    """The registry snapshot as an OpenMetrics text document.

    Args:
        snapshot: A :meth:`MetricsRegistry.snapshot` dict; the default
            registry's live snapshot when omitted.
    """
    if snapshot is None:
        snapshot = _metrics.snapshot()
    lines: List[str] = []
    for dotted, value in sorted(snapshot.get("counters", {}).items()):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_format_value(value)}")
    for dotted, value in sorted(snapshot.get("gauges", {}).items()):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    for dotted, data in sorted(snapshot.get("histograms", {}).items()):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += data["counts"][-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(data['sum'])}")
        lines.append(f"{name}_count {_format_value(data['count'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> Dict[str, float]:
    """Validate an exposition document's line format; return its samples.

    Checks what a scraper relies on: every line is a ``# TYPE`` declaration
    (with a known type), a comment, or a well-formed sample; sample names
    were declared; ``# EOF`` terminates the document.  Returns samples keyed
    by ``name`` or ``name{labels}``.

    Raises:
        ValueError: On any malformed line, an undeclared sample, a
            duplicate sample key, or a missing/misplaced ``# EOF``.
    """
    samples: Dict[str, float] = {}
    declared: Dict[str, str] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            raise ValueError(f"line {lineno}: blank line in exposition")
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if parts[3] not in _TYPES:
                raise ValueError(f"line {lineno}: unknown type {parts[3]!r}")
            if parts[2] in declared:
                raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]!r}")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments, if a future writer adds them.
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        if labels is not None:
            for pair in labels.split(","):
                if not _LABEL_PAIR.match(pair):
                    raise ValueError(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
        base = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw!r}"
            ) from None
        key = name if labels is None else f"{name}{{{labels}}}"
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    if not saw_eof:
        raise ValueError("exposition does not end with # EOF")
    return samples


def write_openmetrics(
    path: str, snapshot: Optional[Dict[str, Dict]] = None
) -> str:
    """Render the exposition to ``path``; returns the written text."""
    text = render_openmetrics(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
