"""Machine-readable run reports: spans + metrics + timeline + config as JSON.

The CLI's ``--metrics-out run.json`` lands here: after an experiment runs,
:func:`write_run_report` serializes everything the observability layer
collected — span records and per-phase aggregates from
:mod:`repro.obs.trace`, every counter/gauge/histogram from
:mod:`repro.obs.metrics`, the simulation event timeline from
:mod:`repro.obs.timeline`, tracemalloc memory peaks (when sampling was on),
and the exact experiment configuration + seed — so a perf claim ("the cache
made fig2 3x faster") is a diff of two files rather than a memory.

Schema stability: ``schema`` is bumped on breaking layout changes; tests
pin the current top-level key set.  Schema history:

* **1** — spans, span_stats, dropped_spans, metrics, config, seed, meta.
* **2** — adds ``timeline`` (events + ring drop accounting), ``memory``
  (tracemalloc peaks), and per-span ``mem_peak_kb`` inside ``spans``.
* **3** — adds ``bus`` (telemetry-bus accounting: frame counts by kind,
  workers seen, declared worker failures, scenarios observed).

:func:`load_run_report` reads any supported version, upgrading older files
to the schema-3 shape in memory (empty timeline/memory/bus sections,
original version preserved under ``schema_original``).
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
import tracemalloc
from typing import Any, Dict, Optional

from repro.obs import bus as _bus
from repro.obs import metrics as _metrics
from repro.obs import timeline as _timeline
from repro.obs import trace as _trace
from repro.obs.log import get_logger

#: Bumped when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 3

#: Schema versions :func:`upgrade_report` knows how to read.
SUPPORTED_SCHEMAS = (1, 2, REPORT_SCHEMA_VERSION)

#: Top-level keys every (current-schema) report carries.
REPORT_KEYS = frozenset(
    {
        "schema",
        "command",
        "config",
        "seed",
        "spans",
        "span_stats",
        "dropped_spans",
        "timeline",
        "memory",
        "metrics",
        "bus",
        "meta",
    }
)

_LOG = get_logger(__name__)


def _ensure_default_instruments() -> None:
    """Import the instrumented modules so their counters exist in every report.

    Counters are registered at module import; a run that never touched the
    session engine or the market would otherwise silently omit them, and a
    reader could not tell "zero sessions" from "not measured".  Imports are
    lazy here to keep :mod:`repro.obs` free of package-level cycles.
    """
    import repro.core.market  # noqa: F401
    import repro.core.sharing  # noqa: F401
    import repro.experiments.common  # noqa: F401
    import repro.sim.engine  # noqa: F401
    import repro.sim.visibility  # noqa: F401


def _config_dict(config: Any) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    return {"repr": repr(config)}


def _memory_section() -> Dict[str, Any]:
    """Tracemalloc accounting: process-level + per-span peak summary."""
    summary = _trace.TRACER.memory_summary()
    section: Dict[str, Any] = {
        "tracemalloc": tracemalloc.is_tracing(),
        "sampled_spans": int(summary["sampled_spans"] or 0),
        "span_peak_kb": summary["peak_kb"],
    }
    if tracemalloc.is_tracing():
        current_b, peak_b = tracemalloc.get_traced_memory()
        section["current_kb"] = current_b / 1024.0
        section["peak_kb"] = peak_b / 1024.0
    else:
        section["current_kb"] = None
        section["peak_kb"] = None
    return section


def collect_run_report(
    command: Optional[str] = None,
    config: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the full run report as a JSON-ready dict.

    Logs a one-line warning when the span recorder or the timeline ring
    dropped records, so a capped trace is never mistaken for a complete one.

    Args:
        command: The CLI subcommand / experiment name, if any.
        config: The experiment configuration (a dataclass or dict); its
            ``seed`` field, when present, is surfaced at the top level.
        extra: Caller-provided additions (merged under ``"extra"``).
    """
    _ensure_default_instruments()
    config_dict = _config_dict(config)
    seed = None
    if config_dict and "seed" in config_dict:
        seed = config_dict["seed"]
    trace_snapshot = _trace.TRACER.snapshot()
    timeline_snapshot = _timeline.TIMELINE.snapshot()
    dropped_spans = trace_snapshot["dropped_records"]
    dropped_events = timeline_snapshot["dropped"]
    if dropped_spans or dropped_events:
        _LOG.warning(
            "trace truncated: %d span records and %d timeline events were "
            "dropped at their ring caps — raise Tracer.max_records / "
            "Timeline.capacity for a complete record (aggregates are exact)",
            dropped_spans, dropped_events,
        )
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "command": command,
        "config": config_dict,
        "seed": seed,
        "spans": trace_snapshot["records"],
        "span_stats": trace_snapshot["stats"],
        "dropped_spans": dropped_spans,
        "timeline": timeline_snapshot,
        "memory": _memory_section(),
        "metrics": _metrics.snapshot(),
        "bus": _bus.bus_summary(),
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "created_unix": time.time(),
        },
    }
    if extra:
        report["extra"] = dict(extra)
    return report


def write_run_report(
    path: str,
    command: Optional[str] = None,
    config: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the run report to ``path`` and return the dict that was written."""
    report = collect_run_report(command=command, config=config, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report


def upgrade_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a loaded report to the schema-3 shape (back-compat reader).

    Schema-1 reports gain an empty ``timeline`` and an unsampled ``memory``
    section; schema-1 and -2 reports gain an empty ``bus`` section.  The
    original version is preserved under ``schema_original``.

    Raises:
        ValueError: On an unrecognized schema version.
    """
    schema = report.get("schema")
    if schema == REPORT_SCHEMA_VERSION:
        return report
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"unsupported run-report schema {schema!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_SCHEMAS))})"
        )
    upgraded = dict(report)
    upgraded["schema"] = REPORT_SCHEMA_VERSION
    upgraded["schema_original"] = schema
    if schema == 1:
        upgraded.setdefault(
            "timeline",
            {
                "events": [],
                "capacity": 0,
                "dropped": 0,
                "total_emitted": 0,
                "counts_by_kind": {},
            },
        )
        upgraded.setdefault(
            "memory",
            {
                "tracemalloc": False,
                "sampled_spans": 0,
                "span_peak_kb": None,
                "current_kb": None,
                "peak_kb": None,
            },
        )
    # Schema <= 2 predates the telemetry bus entirely.
    upgraded.setdefault("bus", _bus.empty_bus_summary())
    return upgraded


def load_run_report(path: str) -> Dict[str, Any]:
    """Read a run report (any supported schema), upgraded to the current one."""
    with open(path, "r", encoding="utf-8") as handle:
        return upgrade_report(json.load(handle))


def validate_run_report(report: Dict[str, Any]) -> None:
    """Raise ValueError unless ``report`` has the current schema layout.

    Used by tests and the CI ``bench-smoke`` job to validate ``--metrics-out``
    files.  Run the dict through :func:`upgrade_report` first to accept
    older schemas.
    """
    missing = REPORT_KEYS - set(report)
    if missing:
        raise ValueError(f"run report missing keys: {sorted(missing)}")
    if report["schema"] != REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"run report schema {report['schema']!r} != {REPORT_SCHEMA_VERSION}"
        )
    if not isinstance(report["spans"], list):
        raise ValueError("'spans' must be a list")
    timeline = report["timeline"]
    for key in ("events", "dropped", "capacity"):
        if key not in timeline:
            raise ValueError(f"'timeline' missing {key!r}")
    metrics = report["metrics"]
    for key in ("counters", "gauges", "histograms"):
        if key not in metrics:
            raise ValueError(f"'metrics' missing {key!r}")
    bus = report["bus"]
    for key in ("live", "frames_total", "frames_by_kind", "failed_workers"):
        if key not in bus:
            raise ValueError(f"'bus' missing {key!r}")
