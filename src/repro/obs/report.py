"""Machine-readable run reports: spans + metrics + config + seed as JSON.

The CLI's ``--metrics-out run.json`` lands here: after an experiment runs,
:func:`write_run_report` serializes everything the observability layer
collected — span records and per-phase aggregates from
:mod:`repro.obs.trace`, every counter/gauge/histogram from
:mod:`repro.obs.metrics`, and the exact experiment configuration + seed —
so a perf claim ("the cache made fig2 3x faster") is a diff of two files
rather than a memory.

Schema stability: ``schema`` is bumped on breaking layout changes; tests
pin the current top-level key set.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from typing import Any, Dict, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: Bumped when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def _ensure_default_instruments() -> None:
    """Import the instrumented modules so their counters exist in every report.

    Counters are registered at module import; a run that never touched the
    session engine or the market would otherwise silently omit them, and a
    reader could not tell "zero sessions" from "not measured".  Imports are
    lazy here to keep :mod:`repro.obs` free of package-level cycles.
    """
    import repro.core.market  # noqa: F401
    import repro.core.sharing  # noqa: F401
    import repro.experiments.common  # noqa: F401
    import repro.sim.engine  # noqa: F401
    import repro.sim.visibility  # noqa: F401


def _config_dict(config: Any) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    return {"repr": repr(config)}


def collect_run_report(
    command: Optional[str] = None,
    config: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the full run report as a JSON-ready dict.

    Args:
        command: The CLI subcommand / experiment name, if any.
        config: The experiment configuration (a dataclass or dict); its
            ``seed`` field, when present, is surfaced at the top level.
        extra: Caller-provided additions (merged under ``"extra"``).
    """
    _ensure_default_instruments()
    config_dict = _config_dict(config)
    seed = None
    if config_dict and "seed" in config_dict:
        seed = config_dict["seed"]
    trace_snapshot = _trace.TRACER.snapshot()
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "command": command,
        "config": config_dict,
        "seed": seed,
        "spans": trace_snapshot["records"],
        "span_stats": trace_snapshot["stats"],
        "dropped_spans": trace_snapshot["dropped_records"],
        "metrics": _metrics.snapshot(),
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "created_unix": time.time(),
        },
    }
    if extra:
        report["extra"] = dict(extra)
    return report


def write_run_report(
    path: str,
    command: Optional[str] = None,
    config: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the run report to ``path`` and return the dict that was written."""
    report = collect_run_report(command=command, config=config, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
