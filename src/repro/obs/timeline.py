"""The simulation event timeline: a ring-buffered stream of typed events.

Where :mod:`repro.obs.trace` answers "where did the wall-clock go",
this module answers "what happened *inside the simulated world*": which
satellite rose over which city when, which terminal was denied capacity,
when a handover occurred, when coverage gaps opened and closed, and which
parties joined, withdrew, or traded.

Events are emitted from the simulation/market layers
(:mod:`repro.sim.engine`, :mod:`repro.sim.contacts`,
:mod:`repro.sim.scheduling`, :mod:`repro.core.market`,
:mod:`repro.core.sharing`, :mod:`repro.core.registry`) into a process-global
:class:`Timeline`.  The buffer is a fixed-capacity ring: when full, the
*oldest* events are overwritten and the overwrite count is surfaced as
``dropped`` (the run report warns when it is nonzero, so a capped timeline
is never silently truncated).

Timestamps are **simulation seconds** (the experiment's :class:`TimeGrid`
axis), not wall-clock; run-level events with no natural simulation time
(party join, market settlement) use ``t_s=0.0``.

Usage::

    from repro.obs import timeline

    timeline.emit(timeline.HANDOVER, t_s=1200.0, subject="taipei-term",
                  from_sat="sat-3", to_sat="sat-7")
    events = timeline.events(kind=timeline.HANDOVER)
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Default ring capacity.  Sized so a full benchmark session keeps the most
#: recent few Monte-Carlo runs' events while bounding memory (~tens of MB).
DEFAULT_CAPACITY = 65536

#: Environment override for the default ring capacity (``--timeline-cap``
#: is the CLI equivalent).  At megaconstellation scale the fixed default
#: drops events long before the end-of-run warning fires; the knob lets a
#: long capture size the ring up front.
CAPACITY_ENV = "REPRO_TIMELINE_CAP"


def configured_capacity() -> int:
    """The ring capacity :data:`CAPACITY_ENV` asks for (default otherwise).

    Raises:
        ValueError: When the variable is set but not a positive integer —
            a silently ignored typo would masquerade as the default cap.
    """
    raw = os.environ.get(CAPACITY_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(
            f"{CAPACITY_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if capacity <= 0:
        raise ValueError(
            f"{CAPACITY_ENV} must be a positive integer, got {raw!r}"
        )
    return capacity

# -- The typed event vocabulary ---------------------------------------------

CONTACT_BEGIN = "contact.begin"  #: Satellite rises over a site.
CONTACT_END = "contact.end"  #: Satellite sets below the site's mask.
HANDOVER = "handover"  #: A terminal/station switches serving satellite.
ALLOC_GRANT = "allocation.grant"  #: Capacity granted (windowed: duration_s).
ALLOC_DENY = "allocation.deny"  #: Demand present but unserved (windowed).
CAPACITY_SATURATED = "capacity.saturated"  #: A satellite ran at full capacity.
GAP_OPEN = "gap.open"  #: A coverage gap opens at a site.
GAP_CLOSE = "gap.close"  #: The gap closes.
PARTY_JOIN = "party.join"  #: A participant joins the constellation.
PARTY_WITHDRAW = "party.withdraw"  #: A participant withdraws.
MARKET_SETTLEMENT = "market.settlement"  #: A netted inter-party transfer.
SHARING_TRADE = "sharing.trade"  #: Cross-party traded volume (run summary).

#: Every kind the timeline accepts; :meth:`Timeline.emit` rejects others so
#: typos surface at the call site instead of as silently unqueryable events.
KNOWN_KINDS = frozenset(
    {
        CONTACT_BEGIN,
        CONTACT_END,
        HANDOVER,
        ALLOC_GRANT,
        ALLOC_DENY,
        CAPACITY_SATURATED,
        GAP_OPEN,
        GAP_CLOSE,
        PARTY_JOIN,
        PARTY_WITHDRAW,
        MARKET_SETTLEMENT,
        SHARING_TRADE,
    }
)

#: Kinds that carry a duration (rendered as slices on a track); the rest are
#: instantaneous markers.
WINDOWED_KINDS = frozenset({ALLOC_GRANT, ALLOC_DENY, CAPACITY_SATURATED})


@dataclass(frozen=True)
class TimelineEvent:
    """One typed simulation event.

    Attributes:
        t_s: Simulation time of the event (seconds on the experiment grid).
        kind: One of the module-level kind constants (:data:`KNOWN_KINDS`).
        subject: What the event is about — a satellite id, terminal name,
            site name, station label, or party name.
        party: Owning/acting party when known ("" otherwise).
        duration_s: Window length for windowed kinds; 0.0 for instants.
        attrs: Extra JSON-ready detail (rates, counterparties, gap lengths).
    """

    t_s: float
    kind: str
    subject: str
    party: str = ""
    duration_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def stop_s(self) -> float:
        return self.t_s + self.duration_s

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TimelineEvent":
        """Rebuild an event from its :meth:`to_dict` form.

        The parallel Monte-Carlo runner ships worker-process timeline
        events to the parent as dicts; this is the receiving end (re-emit
        the result through :func:`extend` to keep kind validation).
        """
        return cls(
            t_s=float(record["t_s"]),
            kind=record["kind"],
            subject=record["subject"],
            party=record.get("party", ""),
            duration_s=float(record.get("duration_s", 0.0)),
            attrs=dict(record.get("attrs", {})),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by reports and the exporter)."""
        record: Dict[str, Any] = {
            "t_s": self.t_s,
            "kind": self.kind,
            "subject": self.subject,
        }
        if self.party:
            record["party"] = self.party
        if self.duration_s:
            record["duration_s"] = self.duration_s
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class Timeline:
    """A fixed-capacity ring buffer of :class:`TimelineEvent` records.

    Thread-safe.  When the ring is full, each new event overwrites the
    oldest one and ``dropped`` increments; per-kind emission counts keep
    counting past the cap (``counts_by_kind``), so aggregate statistics
    survive truncation the same way span aggregates do in
    :class:`repro.obs.trace.Tracer`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: List[Optional[TimelineEvent]] = [None] * capacity
        self._cursor = 0  # Next write position.
        self._size = 0  # Live events in the ring.
        self.dropped = 0  # Events overwritten after the ring filled.
        self.total_emitted = 0
        self._counts: Dict[str, int] = {}

    def emit(
        self,
        kind: str,
        t_s: float,
        subject: str,
        party: str = "",
        duration_s: float = 0.0,
        **attrs: Any,
    ) -> TimelineEvent:
        """Record one event; returns it (handy for tests and relays).

        Raises:
            ValueError: On an unknown kind or negative duration.
        """
        if kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown timeline event kind {kind!r} "
                f"(known: {', '.join(sorted(KNOWN_KINDS))})"
            )
        if duration_s < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        event = TimelineEvent(
            t_s=float(t_s),
            kind=kind,
            subject=subject,
            party=party,
            duration_s=float(duration_s),
            attrs=attrs,
        )
        with self._lock:
            if self._size == self.capacity:
                self.dropped += 1
            else:
                self._size += 1
            self._ring[self._cursor] = event
            self._cursor = (self._cursor + 1) % self.capacity
            self.total_emitted += 1
            self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    def emit_event(self, event: TimelineEvent) -> TimelineEvent:
        """Record a pre-built event (same validation as :meth:`emit`)."""
        return self.emit(
            event.kind,
            event.t_s,
            event.subject,
            party=event.party,
            duration_s=event.duration_s,
            **event.attrs,
        )

    def _ordered(self) -> List[TimelineEvent]:
        """Live events in emission order (oldest first).  Caller holds lock."""
        if self._size < self.capacity:
            events = self._ring[: self._size]
        else:
            events = self._ring[self._cursor :] + self._ring[: self._cursor]
        return [event for event in events if event is not None]

    def events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        party: Optional[str] = None,
    ) -> List[TimelineEvent]:
        """Query live events, optionally filtered, in emission order."""
        with self._lock:
            ordered = self._ordered()
        return [
            event
            for event in ordered
            if (kind is None or event.kind == kind)
            and (subject is None or event.subject == subject)
            and (party is None or event.party == party)
        ]

    def counts_by_kind(self) -> Dict[str, int]:
        """Total emissions per kind (keeps counting past the ring cap)."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: live events + drop accounting."""
        with self._lock:
            ordered = self._ordered()
            return {
                "events": [event.to_dict() for event in ordered],
                "capacity": self.capacity,
                "dropped": self.dropped,
                "total_emitted": self.total_emitted,
                "counts_by_kind": dict(sorted(self._counts.items())),
            }

    def resize(self, capacity: int) -> None:
        """Change the ring capacity in place, keeping the newest events.

        Shrinking discards the oldest events past the new cap (counted as
        ``dropped``, same as ring overwrites); growing never loses anything.
        Aggregate accounting (``total_emitted``, per-kind counts) is
        untouched either way.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        with self._lock:
            if capacity == self.capacity:
                return
            ordered = self._ordered()
            kept = ordered[-capacity:]
            self.dropped += len(ordered) - len(kept)
            self.capacity = capacity
            self._ring = [None] * capacity
            self._ring[: len(kept)] = kept
            self._size = len(kept)
            self._cursor = self._size % capacity

    def reset(self) -> None:
        """Forget every event and zero the drop accounting."""
        with self._lock:
            self._ring = [None] * self.capacity
            self._cursor = 0
            self._size = 0
            self.dropped = 0
            self.total_emitted = 0
            self._counts.clear()

    def __len__(self) -> int:
        with self._lock:
            return self._size


def _initial_capacity() -> int:
    """Import-time capacity: env override, or the default on a bad value.

    Import must not fail on a typo'd environment variable — the CLI
    re-checks :func:`configured_capacity` and reports the error usably.
    """
    try:
        return configured_capacity()
    except ValueError as exc:
        import warnings

        warnings.warn(str(exc), stacklevel=1)
        return DEFAULT_CAPACITY


#: The process-global timeline every instrumented module shares.  Its
#: capacity honors :data:`CAPACITY_ENV` at import; ``resize()`` (the CLI's
#: ``--timeline-cap``) adjusts it later.
TIMELINE = Timeline(_initial_capacity())


def emit(
    kind: str,
    t_s: float,
    subject: str,
    party: str = "",
    duration_s: float = 0.0,
    **attrs: Any,
) -> TimelineEvent:
    """Emit one event on the default timeline."""
    return TIMELINE.emit(
        kind, t_s, subject, party=party, duration_s=duration_s, **attrs
    )


def events(
    kind: Optional[str] = None,
    subject: Optional[str] = None,
    party: Optional[str] = None,
) -> List[TimelineEvent]:
    """Query the default timeline."""
    return TIMELINE.events(kind=kind, subject=subject, party=party)


def snapshot() -> Dict[str, Any]:
    """Snapshot the default timeline."""
    return TIMELINE.snapshot()


def reset() -> None:
    """Reset the default timeline (tests and fresh runs)."""
    TIMELINE.reset()


def resize(capacity: int) -> None:
    """Resize the default timeline's ring (see :meth:`Timeline.resize`)."""
    TIMELINE.resize(capacity)


def extend(items: Iterable[TimelineEvent]) -> int:
    """Emit a batch of pre-built events; returns how many were recorded."""
    count = 0
    for item in items:
        TIMELINE.emit_event(item)
        count += 1
    return count
