"""Nestable span/phase timers, memory sampling, and an optional cProfile hook.

A *span* is a named wall-clock interval::

    from repro.obs.trace import span

    with span("visibility.pack"):
        ...

Spans nest (the active stack is thread-local), every finished span is
recorded with its duration and parent, and per-name aggregate stats
(count/total/min/max) accumulate unboundedly even when the raw record list
is capped.  :func:`timed` wraps a function in a span; :func:`profile` dumps
a cProfile ``.pstats`` file around any block (the CLI's ``--profile``).

Two optional extras on top of the timers:

* **Memory sampling** — when :mod:`tracemalloc` is tracing (the CLI's
  ``--track-memory``), every span records its *peak traced allocation* in
  KiB (``SpanRecord.mem_peak_kb``).  Peaks propagate correctly through
  nesting: an inner span's peak also counts toward its enclosing spans.
* **Duration histograms** — the process-global :data:`TRACER` additionally
  feeds each span's duration into a ``trace.span_seconds.<name>`` histogram
  on the default metrics registry, so run reports and benchmark records
  carry full duration *distributions* (p50/p95/p99 in ``bench-compare``),
  not just min/max.

Everything is stdlib-only and cheap enough for per-chunk instrumentation:
one ``perf_counter`` pair plus a couple of dict operations per span.
"""

from __future__ import annotations

import cProfile
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs import metrics as _metrics

#: Raw span records kept per tracer; aggregates keep counting past the cap.
MAX_RECORDS = 2000

#: Metrics-registry prefix for per-span-name duration histograms.
SPAN_SECONDS_PREFIX = "trace.span_seconds."


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start_s: float  # Seconds since the tracer's epoch.
    duration_s: float
    depth: int  # 0 = top level.
    parent: Optional[str]  # Name of the enclosing span, if any.
    mem_peak_kb: Optional[float] = None  # Peak traced KiB while the span ran.


class _Frame:
    """One active span on the thread-local stack."""

    __slots__ = ("name", "mem_peak_b")

    def __init__(self, name: str) -> None:
        self.name = name
        self.mem_peak_b = 0  # Peak bytes observed so far inside this span.


class Tracer:
    """Collects span records and per-name aggregate timings.

    Args:
        max_records: Cap on raw :class:`SpanRecord` retention.
        observe_durations: When True, every finished span's duration is also
            observed into a ``trace.span_seconds.<name>`` histogram on the
            default metrics registry (enabled on the global :data:`TRACER`).
    """

    def __init__(
        self, max_records: int = MAX_RECORDS, observe_durations: bool = False
    ) -> None:
        self.max_records = max_records
        self.observe_durations = observe_durations
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self.records: List[SpanRecord] = []
        self.dropped_records = 0
        self._stats: Dict[str, Dict[str, float]] = {}
        self._duration_histograms: Dict[str, "_metrics.Histogram"] = {}

    def _stack(self) -> List[_Frame]:
        if not hasattr(self._local, "stack"):
            self._local.stack = []
        return self._local.stack

    def _duration_histogram(self, name: str) -> "_metrics.Histogram":
        histogram = self._duration_histograms.get(name)
        if histogram is None:
            histogram = _metrics.histogram(SPAN_SECONDS_PREFIX + name)
            self._duration_histograms[name] = histogram
        return histogram

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named block; nests under any enclosing span.

        When :mod:`tracemalloc` is tracing, the span's peak traced memory is
        recorded too.  The peak accounting uses ``tracemalloc.reset_peak``
        at span boundaries and folds each finished span's peak back into its
        parent frame, so nesting never under-reports an enclosing span.
        """
        stack = self._stack()
        parent = stack[-1].name if stack else None
        depth = len(stack)
        tracing = tracemalloc.is_tracing()
        if tracing:
            if stack:
                # Bank the parent's peak-so-far before the child resets it.
                peak_b = tracemalloc.get_traced_memory()[1]
                stack[-1].mem_peak_b = max(stack[-1].mem_peak_b, peak_b)
            tracemalloc.reset_peak()
        frame = _Frame(name)
        stack.append(frame)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            mem_peak_kb: Optional[float] = None
            if tracing and tracemalloc.is_tracing():
                peak_b = max(frame.mem_peak_b, tracemalloc.get_traced_memory()[1])
                mem_peak_kb = peak_b / 1024.0
                if stack:
                    stack[-1].mem_peak_b = max(stack[-1].mem_peak_b, peak_b)
                tracemalloc.reset_peak()
            record = SpanRecord(
                name=name,
                start_s=start - self._epoch,
                duration_s=duration,
                depth=depth,
                parent=parent,
                mem_peak_kb=mem_peak_kb,
            )
            with self._lock:
                if len(self.records) < self.max_records:
                    self.records.append(record)
                else:
                    self.dropped_records += 1
                stats = self._stats.get(name)
                if stats is None:
                    self._stats[name] = {
                        "count": 1,
                        "total_s": duration,
                        "min_s": duration,
                        "max_s": duration,
                    }
                else:
                    stats["count"] += 1
                    stats["total_s"] += duration
                    stats["min_s"] = min(stats["min_s"], duration)
                    stats["max_s"] = max(stats["max_s"], duration)
                if self.observe_durations:
                    self._duration_histogram(name).observe(duration)

    def timed(self, name: Optional[str] = None) -> Callable:
        """Decorator: run the function inside a span (default: its qualname)."""

        def decorate(function: Callable) -> Callable:
            span_name = name or function.__qualname__

            @wraps(function)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return function(*args, **kwargs)

            return wrapper

        return decorate

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate timings by span name (count, total_s, min_s, max_s)."""
        with self._lock:
            return {name: dict(value) for name, value in sorted(self._stats.items())}

    def now_s(self) -> float:
        """Seconds since this tracer's epoch (the span time base)."""
        return time.perf_counter() - self._epoch

    def merge_snapshot(
        self, snapshot: Dict, start_offset_s: float = 0.0
    ) -> int:
        """Fold another tracer's :meth:`snapshot` into this one.

        The parallel Monte-Carlo runner uses this to land worker-process
        spans in the parent's trace: record start times are shifted by
        ``start_offset_s`` (worker snapshots are relative to the *worker's*
        epoch, which means nothing here), aggregates are summed, and drop
        accounting carries over.  Span-duration histograms are *not*
        re-observed — workers already fed their own
        ``trace.span_seconds.*`` histograms, which arrive through the
        metrics merge instead (observing here would double-count).

        Returns the number of records folded in (dropped ones included).
        """
        records = snapshot.get("records", [])
        with self._lock:
            for record in records:
                merged = SpanRecord(
                    name=record["name"],
                    start_s=record["start_s"] + start_offset_s,
                    duration_s=record["duration_s"],
                    depth=record["depth"],
                    parent=record.get("parent"),
                    mem_peak_kb=record.get("mem_peak_kb"),
                )
                if len(self.records) < self.max_records:
                    self.records.append(merged)
                else:
                    self.dropped_records += 1
            self.dropped_records += snapshot.get("dropped_records", 0)
            for name, other in snapshot.get("stats", {}).items():
                stats = self._stats.get(name)
                if stats is None:
                    self._stats[name] = dict(other)
                else:
                    stats["count"] += other["count"]
                    stats["total_s"] += other["total_s"]
                    stats["min_s"] = min(stats["min_s"], other["min_s"])
                    stats["max_s"] = max(stats["max_s"], other["max_s"])
        return len(records)

    def memory_summary(self) -> Dict[str, Optional[float]]:
        """Peak traced memory over recorded spans (None when not sampled)."""
        with self._lock:
            peaks = [
                record.mem_peak_kb
                for record in self.records
                if record.mem_peak_kb is not None
            ]
        return {
            "sampled_spans": float(len(peaks)),
            "peak_kb": max(peaks) if peaks else None,
        }

    def snapshot(self) -> Dict:
        """JSON-ready view: raw records (capped) plus per-name aggregates."""
        with self._lock:
            return {
                "records": [
                    {
                        "name": record.name,
                        "start_s": record.start_s,
                        "duration_s": record.duration_s,
                        "depth": record.depth,
                        "parent": record.parent,
                        **(
                            {"mem_peak_kb": record.mem_peak_kb}
                            if record.mem_peak_kb is not None
                            else {}
                        ),
                    }
                    for record in self.records
                ],
                "dropped_records": self.dropped_records,
                "stats": {
                    name: dict(value) for name, value in sorted(self._stats.items())
                },
            }

    def reset(self) -> None:
        """Forget all finished spans (active spans keep running)."""
        with self._lock:
            self.records.clear()
            self.dropped_records = 0
            self._stats.clear()
            self._epoch = time.perf_counter()


#: The process-global tracer every instrumented module shares.
TRACER = Tracer(observe_durations=True)


def span(name: str):
    """Time a named block on the default tracer (context manager)."""
    return TRACER.span(name)


def timed(name: Optional[str] = None) -> Callable:
    """Decorator timing a function on the default tracer."""
    return TRACER.timed(name)


def stats() -> Dict[str, Dict[str, float]]:
    """Aggregate span timings from the default tracer."""
    return TRACER.stats()


def reset() -> None:
    """Reset the default tracer."""
    TRACER.reset()


@contextmanager
def track_memory(enabled: bool = True) -> Iterator[None]:
    """Enable tracemalloc around a block (the CLI's ``--track-memory``).

    While active, every span records its peak traced allocation.  A falsy
    ``enabled`` makes this a no-op so callers can pass a CLI flag straight
    through.  If tracemalloc was already tracing (e.g. started by the
    environment via ``PYTHONTRACEMALLOC``), it is left running on exit.
    """
    if not enabled or tracemalloc.is_tracing():
        yield
        return
    tracemalloc.start()
    try:
        yield
    finally:
        tracemalloc.stop()


@contextmanager
def profile(path: Optional[str]) -> Iterator[None]:
    """cProfile a block and dump ``.pstats`` output to ``path``.

    A falsy path disables profiling, so callers can pass the CLI argument
    straight through: ``with profile(args.profile): run()``.
    """
    if not path:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
