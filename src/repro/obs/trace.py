"""Nestable span/phase timers and an optional cProfile hook.

A *span* is a named wall-clock interval::

    from repro.obs.trace import span

    with span("visibility.pack"):
        ...

Spans nest (the active stack is thread-local), every finished span is
recorded with its duration and parent, and per-name aggregate stats
(count/total/min/max) accumulate unboundedly even when the raw record list
is capped.  :func:`timed` wraps a function in a span; :func:`profile` dumps
a cProfile ``.pstats`` file around any block (the CLI's ``--profile``).

Everything is stdlib-only and cheap enough for per-chunk instrumentation:
one ``perf_counter`` pair plus a couple of dict operations per span.
"""

from __future__ import annotations

import cProfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Callable, Dict, Iterator, List, Optional

#: Raw span records kept per tracer; aggregates keep counting past the cap.
MAX_RECORDS = 2000


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start_s: float  # Seconds since the tracer's epoch.
    duration_s: float
    depth: int  # 0 = top level.
    parent: Optional[str]  # Name of the enclosing span, if any.


class Tracer:
    """Collects span records and per-name aggregate timings."""

    def __init__(self, max_records: int = MAX_RECORDS) -> None:
        self.max_records = max_records
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self.records: List[SpanRecord] = []
        self.dropped_records = 0
        self._stats: Dict[str, Dict[str, float]] = {}

    def _stack(self) -> List[str]:
        if not hasattr(self._local, "stack"):
            self._local.stack = []
        return self._local.stack

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named block; nests under any enclosing span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            record = SpanRecord(
                name=name,
                start_s=start - self._epoch,
                duration_s=duration,
                depth=depth,
                parent=parent,
            )
            with self._lock:
                if len(self.records) < self.max_records:
                    self.records.append(record)
                else:
                    self.dropped_records += 1
                stats = self._stats.get(name)
                if stats is None:
                    self._stats[name] = {
                        "count": 1,
                        "total_s": duration,
                        "min_s": duration,
                        "max_s": duration,
                    }
                else:
                    stats["count"] += 1
                    stats["total_s"] += duration
                    stats["min_s"] = min(stats["min_s"], duration)
                    stats["max_s"] = max(stats["max_s"], duration)

    def timed(self, name: Optional[str] = None) -> Callable:
        """Decorator: run the function inside a span (default: its qualname)."""

        def decorate(function: Callable) -> Callable:
            span_name = name or function.__qualname__

            @wraps(function)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return function(*args, **kwargs)

            return wrapper

        return decorate

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate timings by span name (count, total_s, min_s, max_s)."""
        with self._lock:
            return {name: dict(value) for name, value in sorted(self._stats.items())}

    def snapshot(self) -> Dict:
        """JSON-ready view: raw records (capped) plus per-name aggregates."""
        with self._lock:
            return {
                "records": [
                    {
                        "name": record.name,
                        "start_s": record.start_s,
                        "duration_s": record.duration_s,
                        "depth": record.depth,
                        "parent": record.parent,
                    }
                    for record in self.records
                ],
                "dropped_records": self.dropped_records,
                "stats": {
                    name: dict(value) for name, value in sorted(self._stats.items())
                },
            }

    def reset(self) -> None:
        """Forget all finished spans (active spans keep running)."""
        with self._lock:
            self.records.clear()
            self.dropped_records = 0
            self._stats.clear()
            self._epoch = time.perf_counter()


#: The process-global tracer every instrumented module shares.
TRACER = Tracer()


def span(name: str):
    """Time a named block on the default tracer (context manager)."""
    return TRACER.span(name)


def timed(name: Optional[str] = None) -> Callable:
    """Decorator timing a function on the default tracer."""
    return TRACER.timed(name)


def stats() -> Dict[str, Dict[str, float]]:
    """Aggregate span timings from the default tracer."""
    return TRACER.stats()


def reset() -> None:
    """Reset the default tracer."""
    TRACER.reset()


@contextmanager
def profile(path: Optional[str]) -> Iterator[None]:
    """cProfile a block and dump ``.pstats`` output to ``path``.

    A falsy path disables profiling, so callers can pass the CLI argument
    straight through: ``with profile(args.profile): run()``.
    """
    if not path:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
