"""Run-scoped structured logging for the repro stack.

All diagnostics flow through the ``repro.*`` logger hierarchy; paper-figure
tables and series stay on plain stdout (see :mod:`repro.analysis.reporting`).
As a library, repro emits nothing: the package installs a ``NullHandler`` on
the ``repro`` root logger.  Entry points (the CLI, the benchmark harness)
call :func:`configure_logging` to attach a real handler.

The level is resolved in priority order:

1. an explicit ``level`` argument (the CLI's ``--log-level``),
2. the ``REPRO_LOG`` environment variable (e.g. ``REPRO_LOG=DEBUG``),
3. ``WARNING``.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, TextIO, Union

#: Environment variable consulted when no explicit level is given.
ENV_VAR = "REPRO_LOG"

#: Name of the hierarchy root every repro logger hangs off.
ROOT_LOGGER_NAME = "repro"

#: One-line human format: time, level, logger, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s :: %(message)s"
DATE_FORMAT = "%H:%M:%S"

_LEVEL_NAMES = ("CRITICAL", "ERROR", "WARNING", "INFO", "DEBUG")

# Library default: stay silent unless an entry point configures a handler.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger inside the ``repro.*`` hierarchy.

    Pass a module's ``__name__`` (already ``repro.<pkg>.<mod>``) or a short
    suffix like ``"sim.engine"``; both land under the ``repro`` root.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def resolve_level(level: Optional[Union[int, str]] = None) -> int:
    """Resolve a level argument / REPRO_LOG env var / default to an int."""
    if level is None:
        level = os.environ.get(ENV_VAR) or logging.WARNING
    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    if name not in _LEVEL_NAMES:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(_LEVEL_NAMES)}"
        )
    return getattr(logging, name)


def configure_logging(
    level: Optional[Union[int, str]] = None,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Attach (or retune) the single stream handler on the ``repro`` root.

    Idempotent: calling again replaces the previous handler, so tests and
    long-lived sessions can reconfigure freely.  Diagnostics go to stderr by
    default, keeping stdout clean for figure tables.

    Returns:
        The configured ``repro`` root logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = resolve_level(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(resolved)
    root.propagate = False
    return root
