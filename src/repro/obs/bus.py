"""The live telemetry bus: streaming run/worker frames *during* execution.

Everything else in :mod:`repro.obs` is batch-oriented — spans, metrics, and
timeline events are collected while a run executes and only surface when the
run report is written at exit.  The bus is the streaming complement: a
channel over which the :class:`~repro.runner.monte_carlo.MonteCarloRunner`
(and its worker processes) publish small, typed *frames* while the
experiment is still running:

* ``scenario.started`` / ``scenario.finished`` — sweep size, task count,
  worker count (published by the parent);
* ``run.started`` / ``run.finished`` — one Monte-Carlo repetition beginning
  /completing, with its wall time (and, from parallel workers, the full
  observability capture the parent merges incrementally);
* ``worker.online`` / ``worker.failed`` — pool worker lifecycle;
* ``heartbeat`` — periodic liveness pings from a daemon thread in every
  worker, so a stalled or SIGKILLed worker is *detected* (missed
  heartbeats) instead of hanging the parent forever.

Frames fan out to in-process subscribers (:meth:`TelemetryBus.subscribe`):
the CLI's ``--live-status`` attaches a :class:`LiveStatus` renderer that
prints periodic progress lines with per-scenario ETA and worker health;
tests attach a :class:`BusRecorder` and assert on the captured transcript.

Transport
---------
In-process publishers call :meth:`TelemetryBus.publish` directly
(synchronous dispatch, no queue).  Parallel workers publish through a
:class:`BusChannel` — a picklable wrapper around a
``multiprocessing.Queue`` handed to the pool initializer — and the parent
drains the queue while it waits for results, dispatching each frame to the
same subscribers.  The bus never blocks the hot path: publishing is a dict
construction plus either a list iteration (in-process) or one
``queue.put`` (worker).

The process-global :data:`DEFAULT_BUS` (``default_bus()``) is what the CLI
and the runner share; tests build private buses to keep transcripts out of
each other's way.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger

_LOG = get_logger(__name__)

# -- The frame vocabulary -----------------------------------------------------

SCENARIO_STARTED = "scenario.started"  #: Sweep resolved; tasks about to run.
SCENARIO_FINISHED = "scenario.finished"  #: Every task merged.
RUN_STARTED = "run.started"  #: One Monte-Carlo repetition began.
RUN_FINISHED = "run.finished"  #: One repetition completed (carries wall_s).
WORKER_ONLINE = "worker.online"  #: A pool worker initialized.
WORKER_FAILED = "worker.failed"  #: A worker was declared dead (heartbeats).
HEARTBEAT = "heartbeat"  #: Periodic liveness ping from a worker thread.

#: Every kind the bus accepts; :meth:`TelemetryBus.publish` rejects others so
#: typos surface at the call site.
FRAME_KINDS = frozenset(
    {
        SCENARIO_STARTED,
        SCENARIO_FINISHED,
        RUN_STARTED,
        RUN_FINISHED,
        WORKER_ONLINE,
        WORKER_FAILED,
        HEARTBEAT,
    }
)

#: The parent process publishes under this worker id.
MAIN_WORKER = "main"

#: Default seconds between worker heartbeat frames.
DEFAULT_HEARTBEAT_S = 0.5

#: Default seconds of heartbeat silence before a worker counts as stalled.
DEFAULT_STALL_TIMEOUT_S = 30.0

#: Default seconds between live-status progress lines.
DEFAULT_STATUS_INTERVAL_S = 2.0

_FRAMES_PUBLISHED = _metrics.counter("bus.frames_published")
_FRAMES_DROPPED = _metrics.counter("bus.frames_dropped")
_WORKERS_ONLINE = _metrics.gauge("bus.workers_online")


@dataclass(frozen=True)
class Frame:
    """One telemetry frame.

    Attributes:
        kind: One of the module-level kind constants (:data:`FRAME_KINDS`).
        worker: Publisher identity — :data:`MAIN_WORKER` for the parent,
            ``"worker-<pid>"`` for pool processes.
        seq: Publisher-local sequence number (gap detection per worker).
        wall_unix: Publish wall-clock time (``time.time()``).
        payload: JSON-ready frame detail (task indices, wall times, counts).
            ``run.finished`` frames from parallel workers additionally carry
            the repetition's sample and observability capture for the
            parent's incremental merge.
    """

    kind: str
    worker: str
    seq: int
    wall_unix: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (transcripts, tests).  Non-JSON payload entries
        (samples, snapshots) are the caller's to exclude."""
        return {
            "kind": self.kind,
            "worker": self.worker,
            "seq": self.seq,
            "wall_unix": self.wall_unix,
            "payload": dict(self.payload),
        }


class BusChannel:
    """Picklable worker->parent frame transport (a multiprocessing queue).

    Built by :meth:`TelemetryBus.open_channel` from the pool's start-method
    context and handed to workers through the pool initializer — the only
    pickling path a ``multiprocessing.Queue`` supports.
    """

    def __init__(self, queue) -> None:
        self._queue = queue

    def put(self, frame: Frame) -> None:
        self._queue.put(frame)

    def get(self, timeout_s: float) -> Optional[Frame]:
        """One frame, or None after ``timeout_s`` of silence."""
        import queue as _queue

        try:
            return self._queue.get(timeout=timeout_s)
        except _queue.Empty:
            return None

    def close(self) -> None:
        self._queue.close()


class WorkerPublisher:
    """Worker-side frame factory bound to one channel + worker identity."""

    def __init__(self, channel: BusChannel, worker: str) -> None:
        self.channel = channel
        self.worker = worker
        self._seq = 0
        self._lock = threading.Lock()  # Main thread + heartbeat thread.

    def publish(self, kind: str, **payload: Any) -> None:
        if kind not in FRAME_KINDS:
            raise ValueError(f"unknown frame kind {kind!r}")
        with self._lock:
            seq = self._seq
            self._seq += 1
        self.channel.put(
            Frame(
                kind=kind,
                worker=self.worker,
                seq=seq,
                wall_unix=time.time(),
                payload=payload,
            )
        )

    def start_heartbeats(
        self, interval_s: float, status: Callable[[], Dict[str, Any]]
    ) -> threading.Thread:
        """Spawn the daemon heartbeat thread (dies with the worker process).

        ``status`` supplies the heartbeat payload (current task, runs done)
        and is called from the heartbeat thread — it must be cheap and
        thread-safe.  The thread is what makes SIGKILL *detectable*: it
        stops pinging the instant the process dies, even mid-kernel.
        """

        def beat() -> None:
            while True:
                time.sleep(interval_s)
                try:
                    self.publish(HEARTBEAT, **status())
                except Exception:  # pragma: no cover - queue torn down at exit
                    return

        thread = threading.Thread(target=beat, daemon=True, name="bus-heartbeat")
        thread.start()
        return thread


class BusRecorder:
    """Subscriber that captures the frame transcript (tests, debugging)."""

    def __init__(self, keep_payloads: bool = True) -> None:
        self.frames: List[Frame] = []
        self.keep_payloads = keep_payloads

    def __call__(self, frame: Frame) -> None:
        if not self.keep_payloads:
            frame = Frame(
                kind=frame.kind,
                worker=frame.worker,
                seq=frame.seq,
                wall_unix=frame.wall_unix,
            )
        self.frames.append(frame)

    def kinds(self) -> List[str]:
        return [frame.kind for frame in self.frames]

    def count(self, kind: str) -> int:
        return sum(1 for frame in self.frames if frame.kind == kind)

    def transcript(self) -> List[Dict[str, Any]]:
        """JSON-ready transcript with heavy payload entries stripped."""
        heavy = {"sample", "trace", "metrics", "events"}
        records = []
        for frame in self.frames:
            record = frame.to_dict()
            record["payload"] = {
                key: value
                for key, value in record["payload"].items()
                if key not in heavy
            }
            records.append(record)
        return records


class LiveStatus:
    """Progress renderer: periodic one-line status with ETA + worker health.

    Subscribed to a bus by ``--live-status``; consumes frames to track per-
    scenario task progress and per-worker heartbeat freshness, and renders
    at most one line per ``interval_s`` to ``stream`` (stderr by default —
    figure tables own stdout).
    """

    def __init__(
        self,
        stream=None,
        interval_s: float = DEFAULT_STATUS_INTERVAL_S,
        stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.stall_timeout_s = stall_timeout_s
        self.scenario: Optional[str] = None
        self.total_tasks = 0
        self.done_tasks = 0
        self.workers = 0
        self.started_unix: Optional[float] = None
        self.last_render_unix = 0.0
        self.lines_rendered = 0
        self._last_seen: Dict[str, float] = {}
        self._failed: List[str] = []

    # -- frame consumption ---------------------------------------------------

    def __call__(self, frame: Frame) -> None:
        if frame.worker != MAIN_WORKER:
            self._last_seen[frame.worker] = frame.wall_unix
        if frame.kind == SCENARIO_STARTED:
            self.scenario = frame.payload.get("scenario")
            self.total_tasks = int(frame.payload.get("tasks", 0))
            self.workers = int(frame.payload.get("workers", 0))
            self.done_tasks = 0
            self.started_unix = frame.wall_unix
            self._last_seen.clear()
            self._failed = []
            self.render(force=True)
        elif frame.kind == RUN_FINISHED:
            self.done_tasks += 1
            self.render()
        elif frame.kind == WORKER_FAILED:
            self._failed.append(frame.worker)
            self.render(force=True)
        elif frame.kind == SCENARIO_FINISHED:
            self.render(force=True)

    # -- rendering -----------------------------------------------------------

    def eta_s(self, now_unix: Optional[float] = None) -> Optional[float]:
        """Rate-based remaining-seconds estimate; None before any progress."""
        if not self.done_tasks or self.started_unix is None:
            return None
        now = time.time() if now_unix is None else now_unix
        elapsed = max(now - self.started_unix, 1e-9)
        remaining = max(self.total_tasks - self.done_tasks, 0)
        return elapsed / self.done_tasks * remaining

    def stale_workers(self, now_unix: Optional[float] = None) -> List[str]:
        """Workers whose last frame is older than the stall timeout."""
        now = time.time() if now_unix is None else now_unix
        return sorted(
            worker
            for worker, seen in self._last_seen.items()
            if now - seen > self.stall_timeout_s and worker not in self._failed
        )

    def status_line(self, now_unix: Optional[float] = None) -> str:
        now = time.time() if now_unix is None else now_unix
        scenario = self.scenario or "?"
        if self.total_tasks:
            percent = 100.0 * self.done_tasks / self.total_tasks
            progress = f"{self.done_tasks}/{self.total_tasks} ({percent:.0f}%)"
        else:
            progress = f"{self.done_tasks} runs"
        eta = self.eta_s(now)
        eta_text = f" eta {eta:.0f}s" if eta is not None else ""
        parts = [f"[live] {scenario}: {progress}{eta_text}"]
        if self.workers > 1:
            stale = self.stale_workers(now)
            health = f"{self.workers} workers"
            if stale:
                health += f", {len(stale)} stalled ({', '.join(stale)})"
            if self._failed:
                health += f", {len(self._failed)} failed"
            parts.append(health)
        return " | ".join(parts)

    def render(self, force: bool = False) -> None:
        now = time.time()
        if not force and now - self.last_render_unix < self.interval_s:
            return
        self.last_render_unix = now
        self.lines_rendered += 1
        print(self.status_line(now), file=self.stream, flush=True)


class TelemetryBus:
    """The parent-side hub: publish, subscribe, drain, summarize.

    One bus is one telemetry domain: the runner publishes scenario/run
    frames into it, parallel drains feed worker frames through it, and
    every subscriber sees the merged stream in arrival order.  The bus also
    keeps the accounting the schema-3 run report's ``bus`` section exposes:
    frame counts by kind, workers seen, declared failures.

    Thread-compat: publish/drain happen on the parent's main thread; the
    lock only guards subscriber mutation against dispatch.
    """

    def __init__(
        self,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        if stall_timeout_s <= heartbeat_s:
            raise ValueError(
                f"stall_timeout_s ({stall_timeout_s}) must exceed "
                f"heartbeat_s ({heartbeat_s})"
            )
        self.heartbeat_s = heartbeat_s
        self.stall_timeout_s = stall_timeout_s
        self.live = False
        #: Sticky: live mode was on at some point since the last reset, so
        #: the run report's ``bus.live`` stays truthful even though the CLI
        #: disables live rendering before writing the report.
        self.was_live = False
        self.status: Optional[LiveStatus] = None
        self._lock = threading.Lock()
        self._subscribers: List[Callable[[Frame], None]] = []
        self._seq = 0
        self.frames_by_kind: Dict[str, int] = {}
        self.workers_seen: Dict[str, Dict[str, float]] = {}
        self.failed_workers: List[Dict[str, Any]] = []
        self.scenarios: List[str] = []

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, subscriber: Callable[[Frame], None]) -> None:
        with self._lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Callable[[Frame], None]) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def active(self) -> bool:
        """Whether any consumer wants frames (live mode or a subscriber)."""
        return self.live or bool(self._subscribers)

    def enable_live(
        self,
        stream=None,
        interval_s: float = DEFAULT_STATUS_INTERVAL_S,
    ) -> LiveStatus:
        """Turn on live mode with a :class:`LiveStatus` renderer attached."""
        self.live = True
        self.was_live = True
        if self.status is None:
            self.status = LiveStatus(
                stream=stream,
                interval_s=interval_s,
                stall_timeout_s=self.stall_timeout_s,
            )
            self.subscribe(self.status)
        return self.status

    def disable_live(self) -> None:
        self.live = False
        if self.status is not None:
            self.unsubscribe(self.status)
            self.status = None

    # -- publishing ----------------------------------------------------------

    def publish(self, kind: str, worker: str = MAIN_WORKER, **payload: Any) -> Frame:
        """Publish one in-process frame; returns it after dispatch."""
        if kind not in FRAME_KINDS:
            raise ValueError(f"unknown frame kind {kind!r}")
        with self._lock:
            seq = self._seq
            self._seq += 1
        frame = Frame(
            kind=kind, worker=worker, seq=seq, wall_unix=time.time(),
            payload=payload,
        )
        self.dispatch(frame)
        return frame

    def dispatch(self, frame: Frame) -> None:
        """Account a frame and fan it out to every subscriber.

        A subscriber that raises is dropped from the dispatch (and the drop
        counted) rather than poisoning the runner's wait loop.
        """
        _FRAMES_PUBLISHED.inc()
        self.frames_by_kind[frame.kind] = self.frames_by_kind.get(frame.kind, 0) + 1
        if frame.worker != MAIN_WORKER:
            entry = self.workers_seen.setdefault(
                frame.worker, {"frames": 0, "last_seen_unix": 0.0}
            )
            entry["frames"] += 1
            entry["last_seen_unix"] = frame.wall_unix
            _WORKERS_ONLINE.set(len(self.workers_seen) - len(self.failed_workers))
        if frame.kind == SCENARIO_STARTED:
            scenario = frame.payload.get("scenario")
            if scenario:
                self.scenarios.append(scenario)
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(frame)
            except Exception:
                _FRAMES_DROPPED.inc()
                _LOG.exception("bus subscriber failed; dropping it")
                self.unsubscribe(subscriber)

    # -- parallel transport --------------------------------------------------

    def open_channel(self, mp_context) -> BusChannel:
        """A queue-backed channel for worker publishers (pool initargs)."""
        return BusChannel(mp_context.Queue())

    def drain(self, channel: BusChannel, timeout_s: float) -> List[Frame]:
        """Pull queued worker frames and dispatch them; at most one
        ``timeout_s`` wait (on an empty queue), then everything pending."""
        frames: List[Frame] = []
        frame = channel.get(timeout_s)
        while frame is not None:
            self.dispatch(frame)
            frames.append(frame)
            frame = channel.get(0.0)
        return frames

    # -- failure accounting ----------------------------------------------------

    def record_worker_failure(
        self, worker: str, reason: str, lost_tasks: Tuple[Tuple[int, int], ...] = ()
    ) -> None:
        """Declare a worker dead: counted, reported, and published as a frame."""
        self.failed_workers.append(
            {
                "worker": worker,
                "reason": reason,
                "lost_tasks": [list(task) for task in lost_tasks],
            }
        )
        _metrics.counter("runner.worker_failures").inc()
        self.publish(WORKER_FAILED, worker=worker, reason=reason,
                     lost_tasks=len(lost_tasks))

    def heartbeat_age_s(self, worker: str, now_unix: Optional[float] = None) -> float:
        """Seconds since ``worker`` last published anything (inf if never)."""
        entry = self.workers_seen.get(worker)
        if entry is None:
            return float("inf")
        now = time.time() if now_unix is None else now_unix
        return now - entry["last_seen_unix"]

    def stale_workers(self, now_unix: Optional[float] = None) -> List[str]:
        """Workers silent past the stall timeout and not yet declared failed."""
        now = time.time() if now_unix is None else now_unix
        failed = {entry["worker"] for entry in self.failed_workers}
        return sorted(
            worker
            for worker in self.workers_seen
            if worker not in failed
            and self.heartbeat_age_s(worker, now) > self.stall_timeout_s
        )

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready ``bus`` section of a schema-3 run report."""
        return {
            "live": self.live or self.was_live,
            "frames_total": sum(self.frames_by_kind.values()),
            "frames_by_kind": dict(sorted(self.frames_by_kind.items())),
            "workers": {
                worker: dict(entry)
                for worker, entry in sorted(self.workers_seen.items())
            },
            "failed_workers": [dict(entry) for entry in self.failed_workers],
            "scenarios": list(self.scenarios),
        }

    def reset(self) -> None:
        """Forget accumulated accounting (subscribers and mode survive)."""
        self.frames_by_kind.clear()
        self.workers_seen.clear()
        self.failed_workers.clear()
        self.scenarios.clear()
        self.was_live = self.live
        self._seq = 0


#: The process-global bus the CLI and the runner share.
DEFAULT_BUS = TelemetryBus()


def default_bus() -> TelemetryBus:
    """The process-default :class:`TelemetryBus`."""
    return DEFAULT_BUS


def bus_summary() -> Dict[str, Any]:
    """The default bus's run-report section (see :mod:`repro.obs.report`)."""
    return DEFAULT_BUS.summary()


def empty_bus_summary() -> Dict[str, Any]:
    """The ``bus`` section of a report from before the bus existed
    (schema 1/2 upgrades)."""
    return {
        "live": False,
        "frames_total": 0,
        "frames_by_kind": {},
        "workers": {},
        "failed_workers": [],
        "scenarios": [],
    }
