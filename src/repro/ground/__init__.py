"""Ground segment: sites, terminals, stations, and the city database.

* :mod:`repro.ground.sites` — ground sites (user terminals, ground stations)
  with cached ECEF positions and elevation masks.
* :mod:`repro.ground.cities` — the paper's 21-city database (top-20 most
  populous cities, one per country, plus Melbourne) and Taipei, the Fig. 2
  receiver location.
* :mod:`repro.ground.gsaas` — ground-station-as-a-service pools modelling the
  AWS/Azure rent-a-station offerings the paper's design relies on.
"""

from repro.ground.cities import CITIES, City, TAIPEI, city_by_name, top_cities
from repro.ground.sites import GroundSite, GroundStation, UserTerminal

__all__ = [
    "GroundSite",
    "GroundStation",
    "UserTerminal",
    "City",
    "CITIES",
    "TAIPEI",
    "city_by_name",
    "top_cities",
]
