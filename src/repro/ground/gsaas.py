"""Ground-station-as-a-service (GSaaS) pools.

The paper's §3.1 design assumes parties can rent downlink capacity from
cloud ground-station networks (AWS Ground Station, Azure Orbital) instead of
building their own gateways.  A :class:`GroundStationPool` models one such
provider: a set of station sites, per-minute pricing, and a rental operation
that produces :class:`~repro.ground.sites.GroundStation` records bound to a
renting party.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ground.sites import GroundStation

#: Approximate AWS Ground Station site locations (public region list):
#: (name, latitude, longitude).
AWS_LIKE_SITES: Sequence[Tuple[str, float, float]] = (
    ("oregon", 45.52, -122.68),
    ("ohio", 40.0, -83.0),
    ("bahrain", 26.07, 50.55),
    ("stockholm", 59.33, 18.07),
    ("ireland", 53.35, -6.26),
    ("seoul", 37.57, 126.98),
    ("sydney", -33.87, 151.21),
    ("capetown", -33.92, 18.42),
    ("hawaii", 21.31, -157.86),
    ("singapore", 1.35, 103.82),
    ("punta-arenas", -53.16, -70.91),
    ("sao-paulo", -23.55, -46.63),
)


class PoolExhaustedError(RuntimeError):
    """Raised when a pool has no free antenna slots at a requested site."""


@dataclass
class GroundStationPool:
    """A rentable pool of ground stations (the GSaaS model).

    Attributes:
        provider: Provider name (for billing records).
        sites: (name, lat, lon) tuples of available station locations.
        antennas_per_site: How many simultaneous rentals each site supports.
        price_per_minute: Rental price, in the market's currency units.
    """

    provider: str = "aws-like"
    sites: Sequence[Tuple[str, float, float]] = AWS_LIKE_SITES
    antennas_per_site: int = 2
    price_per_minute: float = 10.0
    _rentals: Dict[str, List[str]] = field(default_factory=dict)

    def available_antennas(self, site_name: str) -> int:
        """Remaining free antenna slots at a site."""
        used = len(self._rentals.get(site_name, []))
        return self.antennas_per_site - used

    def rent(
        self,
        party: str,
        site_name: str,
        min_elevation_deg: float = 10.0,
        capacity_mbps: float = 10_000.0,
    ) -> GroundStation:
        """Rent one antenna at a site for a party.

        Raises:
            KeyError: If the site is unknown.
            PoolExhaustedError: If every antenna at the site is rented.
        """
        for name, lat, lon in self.sites:
            if name == site_name:
                break
        else:
            raise KeyError(f"unknown GSaaS site: {site_name!r}")
        if self.available_antennas(site_name) <= 0:
            raise PoolExhaustedError(
                f"no free antennas at {site_name!r} "
                f"(all {self.antennas_per_site} rented)"
            )
        self._rentals.setdefault(site_name, []).append(party)
        slot = len(self._rentals[site_name])
        return GroundStation(
            name=f"{self.provider}:{site_name}#{slot}",
            latitude_deg=lat,
            longitude_deg=lon,
            min_elevation_deg=min_elevation_deg,
            party=party,
            capacity_mbps=capacity_mbps,
            rented=True,
        )

    def rent_nearest(
        self,
        party: str,
        latitude_deg: float,
        longitude_deg: float,
        min_elevation_deg: float = 10.0,
    ) -> GroundStation:
        """Rent an antenna at the available site nearest a target location.

        Distance is great-circle on a unit sphere; ties break toward the
        earlier site in the provider's list.

        Raises:
            PoolExhaustedError: If the provider has no free antennas anywhere.
        """
        import math

        def distance(site: Tuple[str, float, float]) -> float:
            _, lat, lon = site
            lat1, lon1 = math.radians(latitude_deg), math.radians(longitude_deg)
            lat2, lon2 = math.radians(lat), math.radians(lon)
            return math.acos(
                min(
                    1.0,
                    math.sin(lat1) * math.sin(lat2)
                    + math.cos(lat1) * math.cos(lat2) * math.cos(lon1 - lon2),
                )
            )

        candidates = [
            site for site in self.sites if self.available_antennas(site[0]) > 0
        ]
        if not candidates:
            raise PoolExhaustedError(f"provider {self.provider!r} fully rented")
        best = min(candidates, key=distance)
        return self.rent(party, best[0], min_elevation_deg=min_elevation_deg)

    def rental_cost(self, minutes: float) -> float:
        """Cost of renting one antenna for ``minutes``."""
        if minutes < 0.0:
            raise ValueError(f"minutes must be non-negative, got {minutes}")
        return minutes * self.price_per_minute

    def rentals_by_party(self) -> Dict[str, int]:
        """Map party -> number of antennas currently rented."""
        counts: Dict[str, int] = {}
        for parties in self._rentals.values():
            for party in parties:
                counts[party] = counts.get(party, 0) + 1
        return counts
