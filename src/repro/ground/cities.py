"""City database for the paper's experiments.

The paper's methodology (§2, §3.2): "the top 20 most populated cities,
limited to one per country. We add Melbourne, Australia, to ensure
representation from all major continents."  The exact list is reconstructed
from that rule using UN World Urbanization Prospects agglomeration estimates;
populations are in millions and used only as coverage weights, so modest
disagreement between population sources does not change any result shape.

Taipei is included separately as the Fig. 2 receiver location ("a receiver at
a central location in Taipei, Taiwan").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import DEFAULT_MIN_ELEVATION_DEG
from repro.ground.sites import UserTerminal


@dataclass(frozen=True)
class City:
    """A city with coordinates and an agglomeration population estimate."""

    name: str
    country: str
    latitude_deg: float
    longitude_deg: float
    population_millions: float

    def terminal(
        self, min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG, party: str = ""
    ) -> UserTerminal:
        """Place a user terminal at the city center."""
        return UserTerminal(
            name=self.name,
            latitude_deg=self.latitude_deg,
            longitude_deg=self.longitude_deg,
            min_elevation_deg=min_elevation_deg,
            party=party,
        )


#: The paper's 21 cities: top-20 most populous (one per country) + Melbourne,
#: ordered by population so ``CITIES[:n]`` reproduces the Fig. 3 sweep of
#: "one to 21 cities".
CITIES: Sequence[City] = (
    City("Tokyo", "Japan", 35.6762, 139.6503, 37.19),
    City("Delhi", "India", 28.6139, 77.2090, 32.94),
    City("Shanghai", "China", 31.2304, 121.4737, 29.21),
    City("Dhaka", "Bangladesh", 23.8103, 90.4125, 23.21),
    City("Sao Paulo", "Brazil", -23.5505, -46.6333, 22.62),
    City("Mexico City", "Mexico", 19.4326, -99.1332, 22.28),
    City("Cairo", "Egypt", 30.0444, 31.2357, 22.18),
    City("New York", "United States", 40.7128, -74.0060, 18.82),
    City("Karachi", "Pakistan", 24.8607, 67.0011, 17.65),
    City("Kinshasa", "DR Congo", -4.4419, 15.2663, 16.32),
    City("Lagos", "Nigeria", 6.5244, 3.3792, 15.95),
    City("Istanbul", "Turkey", 41.0082, 28.9784, 15.85),
    City("Buenos Aires", "Argentina", -34.6037, -58.3816, 15.49),
    City("Manila", "Philippines", 14.5995, 120.9842, 14.67),
    City("Moscow", "Russia", 55.7558, 37.6173, 12.68),
    City("Jakarta", "Indonesia", -6.2088, 106.8456, 11.25),
    City("Lima", "Peru", -12.0464, -77.0428, 11.20),
    City("Bangkok", "Thailand", 13.7563, 100.5018, 11.07),
    City("Seoul", "South Korea", 37.5665, 126.9780, 9.99),
    City("London", "United Kingdom", 51.5074, -0.1278, 9.65),
    City("Melbourne", "Australia", -37.8136, 144.9631, 5.32),
)

#: The Fig. 2 receiver location: central Taipei, Taiwan.
TAIPEI = City("Taipei", "Taiwan", 25.0330, 121.5654, 7.05)


def city_by_name(name: str) -> City:
    """Look a city up by (case-insensitive) name.

    Raises:
        KeyError: If the city is not in the database.
    """
    lowered = name.lower()
    if lowered == TAIPEI.name.lower():
        return TAIPEI
    for city in CITIES:
        if city.name.lower() == lowered:
            return city
    raise KeyError(f"unknown city: {name!r}")


def top_cities(count: int) -> List[City]:
    """The ``count`` most populous cities of the database (Fig. 3 sweep).

    Raises:
        ValueError: If ``count`` is outside [1, len(CITIES)].
    """
    if not 1 <= count <= len(CITIES):
        raise ValueError(
            f"count must be in [1, {len(CITIES)}], got {count}"
        )
    return list(CITIES[:count])


def terminals_for_cities(
    cities: Sequence[City],
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG,
) -> List[UserTerminal]:
    """Place one user terminal at each city center."""
    return [city.terminal(min_elevation_deg=min_elevation_deg) for city in cities]


def population_weights(cities: Sequence[City]) -> List[float]:
    """Normalized population weights over a set of cities (sum to 1)."""
    total = sum(city.population_millions for city in cities)
    if total <= 0.0:
        raise ValueError("total population must be positive")
    return [city.population_millions / total for city in cities]
