"""Ground sites: user terminals and ground stations.

A :class:`GroundSite` is a fixed point on Earth with an elevation mask; the
two concrete kinds differ in role, not geometry:

* A :class:`UserTerminal` is a traffic source/sink owned by a consumer (or by
  a party's customers).
* A :class:`GroundStation` is the party-operated downlink point of the
  paper's transparent bent-pipe architecture; user signals are repeated by
  the satellite down to a ground station of the *same party* (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG
from repro.orbits.frames import geodetic_to_ecef


@dataclass(frozen=True)
class GroundSite:
    """A fixed site on Earth.

    Attributes:
        name: Identifier (unique within a simulation).
        latitude_deg: Geodetic latitude, degrees north.
        longitude_deg: Longitude, degrees east.
        altitude_m: Height above the WGS-84 ellipsoid, meters.
        min_elevation_deg: Elevation mask; satellites below it are invisible.
    """

    name: str
    latitude_deg: float
    longitude_deg: float
    altitude_m: float = 0.0
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 360.0:
            raise ValueError(f"longitude out of range: {self.longitude_deg}")
        if not 0.0 <= self.min_elevation_deg < 90.0:
            raise ValueError(
                f"elevation mask must be in [0, 90), got {self.min_elevation_deg}"
            )

    @property
    def position_ecef(self) -> np.ndarray:
        """ECEF position of the site, meters (shape (3,))."""
        return geodetic_to_ecef(self.latitude_deg, self.longitude_deg, self.altitude_m)

    @property
    def unit_ecef(self) -> np.ndarray:
        """Unit vector from Earth's center through the site (ECEF)."""
        position = self.position_ecef
        return position / np.linalg.norm(position)


@dataclass(frozen=True)
class UserTerminal(GroundSite):
    """A consumer terminal: generates demand toward the network.

    Attributes:
        party: Owning MP-LEO participant, or "" for an independent consumer.
        demand_mbps: Nominal downstream demand when a satellite is overhead.
    """

    party: str = ""
    demand_mbps: float = 100.0


@dataclass(frozen=True)
class GroundStation(GroundSite):
    """A party-operated gateway that terminates bent-pipe downlinks.

    Attributes:
        party: Operating MP-LEO participant.
        capacity_mbps: Aggregate feeder-link capacity of the station.
        rented: True when the station is rented from a ground-station-as-a-
            service provider rather than owned outright (affects economics,
            not geometry).
    """

    party: str = ""
    capacity_mbps: float = 10_000.0
    rented: bool = False
