"""ISL-capable bent-pipe session engine (the §4 variant, end to end).

:class:`IslBentPipeSimulator` extends the baseline
:class:`~repro.sim.engine.BentPipeSimulator` with inter-satellite
forwarding: a satellite may serve a terminal when it can reach a ground
station *of the terminal's party* either directly or over ISL hops.  All
other engine rules (owner priority, capacity limits, session extraction)
are inherited unchanged, so baseline-vs-ISL comparisons isolate exactly the
architectural difference the paper discusses.

Cost note: eligibility needs the pairwise ISL matrix at every time step —
O(N^2 * T).  Fine for the tens-to-hundreds of satellites the engine-level
experiments use; the pure-coverage ISL analysis in
:mod:`repro.links.isl` is the right tool at megaconstellation scale.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constellation.satellite import Constellation
from repro.ground.sites import GroundStation, UserTerminal
from repro.links.isl import (
    DEFAULT_GRAZING_ALTITUDE_M,
    DEFAULT_MAX_RANGE_M,
    isl_visibility,
    relayable_with_isl,
)
from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid
from repro.sim.engine import BentPipeSimulator
from repro.sim.traffic import DemandModel


class IslBentPipeSimulator(BentPipeSimulator):
    """Bent-pipe engine with inter-satellite forwarding.

    Args:
        max_isl_range_m: Maximum ISL link range.
        max_hops: Optional cap on forwarding hops (None = unlimited).
        grazing_altitude_m: Line-of-sight clearance altitude.
        (Remaining arguments as in :class:`BentPipeSimulator`.)
    """

    def __init__(
        self,
        constellation: Constellation,
        terminals: Sequence[UserTerminal],
        stations: Sequence[GroundStation],
        grid: TimeGrid,
        demand: Optional[Sequence[DemandModel]] = None,
        chunk_size: int = 2048,
        max_isl_range_m: float = DEFAULT_MAX_RANGE_M,
        max_hops: Optional[int] = None,
        grazing_altitude_m: float = DEFAULT_GRAZING_ALTITUDE_M,
    ) -> None:
        super().__init__(
            constellation, terminals, stations, grid,
            demand=demand, chunk_size=chunk_size,
        )
        if max_isl_range_m <= 0.0:
            raise ValueError("max ISL range must be positive")
        if max_hops is not None and max_hops < 1:
            raise ValueError("max hops must be at least 1 (or None)")
        self.max_isl_range_m = max_isl_range_m
        self.max_hops = max_hops
        self.grazing_altitude_m = grazing_altitude_m

    def _relay_eligibility(self) -> Tuple[np.ndarray, np.ndarray]:
        """Eligibility with ISL forwarding folded in.

        Returns the same (terminal_vis, relayable) pair as the base class;
        only the relayable tensor gains the ISL-reachable entries.
        """
        terminal_vis = self._engine.visibility(self.constellation, self.terminals)
        station_vis = self._engine.visibility(self.constellation, self.stations)
        station_parties = [station.party for station in self.stations]
        terminal_parties = [terminal.party for terminal in self.terminals]
        parties = sorted(
            {party for party in terminal_parties if party}
        )

        # Station visibility per party: (P, N, T).
        per_party_station_vis = {}
        for party in parties:
            member = [
                index
                for index, station_party in enumerate(station_parties)
                if station_party == party
            ]
            if member:
                per_party_station_vis[party] = station_vis[member].any(axis=0)

        n_times = terminal_vis.shape[2]
        propagator = BatchPropagator(self.constellation.elements)
        positions = propagator.positions_eci(self.grid.times_s)  # (N, T, 3)

        # Satellite "can reach a party's station" per step, with forwarding.
        reach = {
            party: np.zeros(per_party_station_vis[party].shape, dtype=bool)
            for party in per_party_station_vis
        }
        any_terminal_vis = terminal_vis.any(axis=0)  # (N, T)
        for step in range(n_times):
            # Skip steps where no terminal sees any satellite at all.
            if not any_terminal_vis[:, step].any():
                for party in reach:
                    reach[party][:, step] = per_party_station_vis[party][:, step]
                continue
            feasible = isl_visibility(
                positions[:, step, :],
                max_range_m=self.max_isl_range_m,
                grazing_altitude_m=self.grazing_altitude_m,
            )
            all_sats_visible = np.ones(feasible.shape[0], dtype=bool)
            for party, station_mask in per_party_station_vis.items():
                reach[party][:, step] = relayable_with_isl(
                    all_sats_visible,
                    station_mask[:, step],
                    feasible,
                    max_hops=self.max_hops,
                )

        relayable = np.zeros_like(terminal_vis)
        for terminal_index, party in enumerate(terminal_parties):
            if party not in reach:
                continue
            relayable[terminal_index] = terminal_vis[terminal_index] & reach[party]
        return terminal_vis, relayable
