"""Satellite-to-ground downlink scheduling.

The paper's lineage (its authors' L2D2 / "Transmitting, Fast and Slow"
work, cited as [39, 45, 46]) treats ground-station scheduling as a core
satellite-network substrate: many satellites accumulate data, few stations
can receive, and each station antenna serves one satellite at a time.
MP-LEO inherits the problem on the feeder side — a party's rented GSaaS
antennas must be scheduled across every satellite carrying its traffic.

This module provides a time-stepped scheduler over visibility masks with
pluggable policies, plus the throughput/latency/fairness metrics scheduling
papers report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import timeline as obs_timeline
from repro.sim.clock import TimeGrid
from repro.sim.events import intervals_from_mask


class SchedulingPolicy(enum.Enum):
    """Which visible satellite a free antenna picks."""

    MAX_BACKLOG = "max_backlog"  # Drain the fullest buffer first.
    ROUND_ROBIN = "round_robin"  # Rotate for fairness.
    FIRST_VISIBLE = "first_visible"  # Naive baseline: lowest index wins.


@dataclass(frozen=True)
class DownlinkScheduleResult:
    """Outcome of one scheduling run."""

    grid: TimeGrid
    downlinked_megabits: np.ndarray  # (N,) per satellite.
    remaining_backlog_megabits: np.ndarray  # (N,) at horizon end.
    generated_megabits: np.ndarray  # (N,) total produced.
    station_busy_fraction: np.ndarray  # (S,) antenna utilization.
    assignment: np.ndarray  # (S, T) satellite index served, -1 if idle.

    @property
    def total_downlinked_megabits(self) -> float:
        return float(self.downlinked_megabits.sum())

    @property
    def delivery_fraction(self) -> float:
        """Fraction of generated data that reached the ground."""
        generated = float(self.generated_megabits.sum())
        if generated == 0.0:
            return 1.0
        return self.total_downlinked_megabits / generated

    def fairness_index(self) -> float:
        """Jain's index over per-satellite delivery fractions."""
        with np.errstate(invalid="ignore", divide="ignore"):
            fractions = np.where(
                self.generated_megabits > 0.0,
                self.downlinked_megabits / self.generated_megabits,
                1.0,
            )
        total = fractions.sum()
        squares = (fractions**2).sum()
        if squares == 0.0:
            return 1.0
        return float(total**2 / (fractions.size * squares))


class DownlinkScheduler:
    """Schedules station antennas over satellites on a time grid.

    Args:
        visibility: Boolean (S, N, T) — station s sees satellite n at step t
            (compute with :class:`~repro.sim.visibility.VisibilityEngine`
            using the stations as sites).
        grid: The matching time grid.
        downlink_rate_mbps: Drain rate while a satellite is being served.
        generation_rate_mbps: (N,) or scalar — how fast each satellite
            accumulates data to downlink.
        policy: Antenna assignment policy.

    Raises:
        ValueError: On shape mismatches or non-positive rates.
    """

    def __init__(
        self,
        visibility: np.ndarray,
        grid: TimeGrid,
        downlink_rate_mbps: float = 500.0,
        generation_rate_mbps=10.0,
        policy: SchedulingPolicy = SchedulingPolicy.MAX_BACKLOG,
    ) -> None:
        self.visibility = np.asarray(visibility, dtype=bool)
        if self.visibility.ndim != 3:
            raise ValueError(
                f"visibility must be (S, N, T), got {self.visibility.shape}"
            )
        if self.visibility.shape[2] != grid.count:
            raise ValueError(
                f"visibility has {self.visibility.shape[2]} steps, grid has "
                f"{grid.count}"
            )
        if downlink_rate_mbps <= 0.0:
            raise ValueError("downlink rate must be positive")
        self.grid = grid
        self.downlink_rate_mbps = downlink_rate_mbps
        n_sats = self.visibility.shape[1]
        generation = np.broadcast_to(
            np.asarray(generation_rate_mbps, dtype=np.float64), (n_sats,)
        ).copy()
        if np.any(generation < 0.0):
            raise ValueError("generation rates must be non-negative")
        self.generation_rate_mbps = generation
        self.policy = policy

    def run(self) -> DownlinkScheduleResult:
        """Run the schedule over the whole horizon."""
        n_stations, n_sats, n_times = self.visibility.shape
        step_s = self.grid.step_s
        backlog = np.zeros(n_sats)
        downlinked = np.zeros(n_sats)
        assignment = np.full((n_stations, n_times), -1, dtype=np.int64)
        round_robin_cursor = 0

        for step in range(n_times):
            backlog += self.generation_rate_mbps * step_s
            claimed = np.zeros(n_sats, dtype=bool)  # One antenna per sat.
            for station in range(n_stations):
                candidates = np.flatnonzero(
                    self.visibility[station, :, step] & ~claimed & (backlog > 0.0)
                )
                if candidates.size == 0:
                    continue
                if self.policy is SchedulingPolicy.MAX_BACKLOG:
                    chosen = candidates[int(np.argmax(backlog[candidates]))]
                elif self.policy is SchedulingPolicy.ROUND_ROBIN:
                    # First candidate at or after the rotating cursor.
                    shifted = (candidates - round_robin_cursor) % n_sats
                    chosen = candidates[int(np.argmin(shifted))]
                    round_robin_cursor = (int(chosen) + 1) % n_sats
                else:
                    chosen = candidates[0]
                drained = min(backlog[chosen], self.downlink_rate_mbps * step_s)
                backlog[chosen] -= drained
                downlinked[chosen] += drained
                claimed[chosen] = True
                assignment[station, step] = chosen

        self._emit_timeline_events(assignment)
        generated = self.generation_rate_mbps * self.grid.duration_s
        return DownlinkScheduleResult(
            grid=self.grid,
            downlinked_megabits=downlinked,
            remaining_backlog_megabits=backlog,
            generated_megabits=generated,
            station_busy_fraction=(assignment >= 0).mean(axis=1),
            assignment=assignment,
        )


    def _emit_timeline_events(self, assignment: np.ndarray) -> None:
        """Narrate the antenna schedule onto the shared simulation timeline.

        One windowed ``allocation.grant`` per contiguous (station, satellite)
        serving interval, plus an instant ``handover`` whenever a station
        retargets between consecutive steps.  Stations are indexed (the
        scheduler sees only visibility rows), so tracks are labeled
        ``station-<index>``.
        """
        step_s = self.grid.step_s
        times = self.grid.times_s
        for station_index in range(assignment.shape[0]):
            row = assignment[station_index]
            station = f"station-{station_index}"
            for sat_index in np.unique(row[row >= 0]):
                mask = row == sat_index
                for start_s, stop_s in intervals_from_mask(
                    mask, step_s, self.grid.start_s
                ):
                    obs_timeline.emit(
                        obs_timeline.ALLOC_GRANT,
                        start_s,
                        station,
                        duration_s=stop_s - start_s,
                        satellite=int(sat_index),
                        policy=self.policy.value,
                    )
            before, after = row[:-1], row[1:]
            for step in np.flatnonzero(
                (before >= 0) & (after >= 0) & (before != after)
            ):
                obs_timeline.emit(
                    obs_timeline.HANDOVER,
                    float(times[step + 1]),
                    station,
                    from_sat=int(before[step]),
                    to_sat=int(after[step]),
                )


def compare_policies(
    visibility: np.ndarray,
    grid: TimeGrid,
    downlink_rate_mbps: float = 500.0,
    generation_rate_mbps=10.0,
) -> Dict[SchedulingPolicy, DownlinkScheduleResult]:
    """Run every policy on the same inputs (for ablations)."""
    return {
        policy: DownlinkScheduler(
            visibility,
            grid,
            downlink_rate_mbps=downlink_rate_mbps,
            generation_rate_mbps=generation_rate_mbps,
            policy=policy,
        ).run()
        for policy in SchedulingPolicy
    }
