"""Satellite-to-ground downlink scheduling.

The paper's lineage (its authors' L2D2 / "Transmitting, Fast and Slow"
work, cited as [39, 45, 46]) treats ground-station scheduling as a core
satellite-network substrate: many satellites accumulate data, few stations
can receive, and each station antenna serves one satellite at a time.
MP-LEO inherits the problem on the feeder side — a party's rented GSaaS
antennas must be scheduled across every satellite carrying its traffic.

This module provides a time-stepped scheduler over visibility masks with
pluggable policies, plus the throughput/latency/fairness metrics scheduling
papers report.

Two front-ends share one decision core (:func:`_assign_step`):

* :class:`DownlinkScheduler` reads a dense boolean (S, N, T) tensor — the
  grid engine's representation;
* :class:`IntervalDownlinkScheduler` sweeps the analytic (rise, set)
  contact windows of a :class:`~repro.sim.intervals.ContactIntervals`,
  maintaining each station's candidate set incrementally from sorted edge
  events — O(windows) memory, no dense tensor.  Decisions still happen at
  grid cadence, so by the interval engine's resampling identity
  (membership ``rise <= t < set`` at a grid instant equals the grid mask)
  its assignments, drains, and backlogs are **bit-identical** to the grid
  scheduler run on the resampled masks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import timeline as obs_timeline
from repro.sim.clock import TimeGrid
from repro.sim.events import intervals_from_mask
from repro.sim.intervals import ContactIntervals


class SchedulingPolicy(enum.Enum):
    """Which visible satellite a free antenna picks."""

    MAX_BACKLOG = "max_backlog"  # Drain the fullest buffer first.
    ROUND_ROBIN = "round_robin"  # Rotate for fairness.
    FIRST_VISIBLE = "first_visible"  # Naive baseline: lowest index wins.


@dataclass(frozen=True)
class DownlinkScheduleResult:
    """Outcome of one scheduling run."""

    grid: TimeGrid
    downlinked_megabits: np.ndarray  # (N,) per satellite.
    remaining_backlog_megabits: np.ndarray  # (N,) at horizon end.
    generated_megabits: np.ndarray  # (N,) total produced.
    station_busy_fraction: np.ndarray  # (S,) antenna utilization.
    assignment: np.ndarray  # (S, T) satellite index served, -1 if idle.

    @property
    def total_downlinked_megabits(self) -> float:
        return float(self.downlinked_megabits.sum())

    @property
    def delivery_fraction(self) -> float:
        """Fraction of generated data that reached the ground."""
        generated = float(self.generated_megabits.sum())
        if generated == 0.0:
            return 1.0
        return self.total_downlinked_megabits / generated

    def fairness_index(self) -> float:
        """Jain's index over per-satellite delivery fractions."""
        with np.errstate(invalid="ignore", divide="ignore"):
            fractions = np.where(
                self.generated_megabits > 0.0,
                self.downlinked_megabits / self.generated_megabits,
                1.0,
            )
        total = fractions.sum()
        squares = (fractions**2).sum()
        if squares == 0.0:
            return 1.0
        return float(total**2 / (fractions.size * squares))


class DownlinkScheduler:
    """Schedules station antennas over satellites on a time grid.

    Args:
        visibility: Boolean (S, N, T) — station s sees satellite n at step t
            (compute with :class:`~repro.sim.visibility.VisibilityEngine`
            using the stations as sites).
        grid: The matching time grid.
        downlink_rate_mbps: Drain rate while a satellite is being served.
        generation_rate_mbps: (N,) or scalar — how fast each satellite
            accumulates data to downlink.
        policy: Antenna assignment policy.

    Raises:
        ValueError: On shape mismatches or non-positive rates.
    """

    def __init__(
        self,
        visibility: np.ndarray,
        grid: TimeGrid,
        downlink_rate_mbps: float = 500.0,
        generation_rate_mbps=10.0,
        policy: SchedulingPolicy = SchedulingPolicy.MAX_BACKLOG,
    ) -> None:
        self.visibility = np.asarray(visibility, dtype=bool)
        if self.visibility.ndim != 3:
            raise ValueError(
                f"visibility must be (S, N, T), got {self.visibility.shape}"
            )
        if self.visibility.shape[2] != grid.count:
            raise ValueError(
                f"visibility has {self.visibility.shape[2]} steps, grid has "
                f"{grid.count}"
            )
        if downlink_rate_mbps <= 0.0:
            raise ValueError("downlink rate must be positive")
        self.grid = grid
        self.downlink_rate_mbps = downlink_rate_mbps
        n_sats = self.visibility.shape[1]
        generation = np.broadcast_to(
            np.asarray(generation_rate_mbps, dtype=np.float64), (n_sats,)
        ).copy()
        if np.any(generation < 0.0):
            raise ValueError("generation rates must be non-negative")
        self.generation_rate_mbps = generation
        self.policy = policy

    def run(self) -> DownlinkScheduleResult:
        """Run the schedule over the whole horizon."""
        n_stations, n_sats, n_times = self.visibility.shape
        step_s = self.grid.step_s
        backlog = np.zeros(n_sats)
        downlinked = np.zeros(n_sats)
        assignment = np.full((n_stations, n_times), -1, dtype=np.int64)
        round_robin_cursor = 0

        for step in range(n_times):
            backlog += self.generation_rate_mbps * step_s
            round_robin_cursor = _assign_step(
                lambda station: self.visibility[station, :, step],
                n_stations, n_sats, step, step_s,
                backlog, downlinked, assignment,
                self.policy, self.downlink_rate_mbps, round_robin_cursor,
            )

        _emit_timeline_events(assignment, self.grid, self.policy)
        generated = self.generation_rate_mbps * self.grid.duration_s
        return DownlinkScheduleResult(
            grid=self.grid,
            downlinked_megabits=downlinked,
            remaining_backlog_megabits=backlog,
            generated_megabits=generated,
            station_busy_fraction=(assignment >= 0).mean(axis=1),
            assignment=assignment,
        )


class IntervalDownlinkScheduler:
    """Event-sweep downlink scheduler over analytic contact windows.

    The intervals-engine sibling of :class:`DownlinkScheduler`: instead of
    indexing a dense (S, N, T) tensor it maintains per-(station, satellite)
    overlap counts from the sorted rise/set edge queues — a pair is a
    candidate at time ``t`` while its count is positive, i.e. while some
    window satisfies ``rise <= t < set``.  Because that membership test at
    a grid instant equals the resampled grid mask (the interval engine's
    resampling identity), and the per-step policy loop is literally the
    same code (:func:`_assign_step`), the resulting schedule is
    bit-identical to the grid scheduler's on the same windows.

    Args:
        contacts: Contact windows with the *stations* as sites (compute
            with :func:`~repro.sim.intervals.find_contact_intervals` using
            the stations as the site list).
        grid: The decision grid (same cadence the grid scheduler steps at).
        downlink_rate_mbps: Drain rate while a satellite is being served.
        generation_rate_mbps: (N,) or scalar accumulation rate.
        policy: Antenna assignment policy.
    """

    def __init__(
        self,
        contacts: ContactIntervals,
        grid: TimeGrid,
        downlink_rate_mbps: float = 500.0,
        generation_rate_mbps=10.0,
        policy: SchedulingPolicy = SchedulingPolicy.MAX_BACKLOG,
    ) -> None:
        if not isinstance(contacts, ContactIntervals):
            raise ValueError(
                f"contacts must be ContactIntervals, got {type(contacts).__name__}"
            )
        if downlink_rate_mbps <= 0.0:
            raise ValueError("downlink rate must be positive")
        self.contacts = contacts
        self.grid = grid
        self.downlink_rate_mbps = downlink_rate_mbps
        generation = np.broadcast_to(
            np.asarray(generation_rate_mbps, dtype=np.float64),
            (contacts.n_satellites,),
        ).copy()
        if np.any(generation < 0.0):
            raise ValueError("generation rates must be non-negative")
        self.generation_rate_mbps = generation
        self.policy = policy

    def run(self) -> DownlinkScheduleResult:
        """Run the schedule over the whole horizon (O(windows) memory)."""
        contacts = self.contacts
        n_stations = contacts.n_sites
        n_sats = contacts.n_satellites
        n_times = self.grid.count
        times = self.grid.times_s
        step_s = self.grid.step_s
        backlog = np.zeros(n_sats)
        downlinked = np.zeros(n_sats)
        assignment = np.full((n_stations, n_times), -1, dtype=np.int64)
        round_robin_cursor = 0

        # Sorted edge queues.  Raw windows of one pair may touch after
        # refinement, so candidacy is an overlap *count*, not a flag.
        n_windows = contacts.n_contacts
        pair_of_window = np.repeat(
            np.arange(n_stations * n_sats, dtype=np.int64),
            np.diff(contacts.pair_offsets),
        )
        rise_order = np.argsort(contacts.rise_s, kind="stable")
        set_order = np.argsort(contacts.set_s, kind="stable")
        rise_times = contacts.rise_s[rise_order]
        set_times = contacts.set_s[set_order]
        rise_pairs = pair_of_window[rise_order]
        set_pairs = pair_of_window[set_order]
        active = np.zeros((n_stations, n_sats), dtype=np.int64)
        next_rise = 0
        next_set = 0

        for step in range(n_times):
            t = times[step]
            while next_rise < n_windows and rise_times[next_rise] <= t:
                pair = int(rise_pairs[next_rise])
                active[pair // n_sats, pair % n_sats] += 1
                next_rise += 1
            while next_set < n_windows and set_times[next_set] <= t:
                pair = int(set_pairs[next_set])
                active[pair // n_sats, pair % n_sats] -= 1
                next_set += 1
            backlog += self.generation_rate_mbps * step_s
            round_robin_cursor = _assign_step(
                lambda station: active[station] > 0,
                n_stations, n_sats, step, step_s,
                backlog, downlinked, assignment,
                self.policy, self.downlink_rate_mbps, round_robin_cursor,
            )

        _emit_timeline_events(assignment, self.grid, self.policy)
        generated = self.generation_rate_mbps * self.grid.duration_s
        return DownlinkScheduleResult(
            grid=self.grid,
            downlinked_megabits=downlinked,
            remaining_backlog_megabits=backlog,
            generated_megabits=generated,
            station_busy_fraction=(assignment >= 0).mean(axis=1),
            assignment=assignment,
        )


def _assign_step(
    station_candidates,
    n_stations: int,
    n_sats: int,
    step: int,
    step_s: float,
    backlog: np.ndarray,
    downlinked: np.ndarray,
    assignment: np.ndarray,
    policy: SchedulingPolicy,
    downlink_rate_mbps: float,
    round_robin_cursor: int,
) -> int:
    """One decision step shared by both scheduler front-ends.

    ``station_candidates(station)`` yields the boolean (N,) visibility of
    one station at this step; everything else — claiming, policy choice,
    drain — is representation-independent, which is what makes the two
    schedulers bit-identical by construction.  Returns the advanced
    round-robin cursor.
    """
    claimed = np.zeros(n_sats, dtype=bool)  # One antenna per sat.
    for station in range(n_stations):
        candidates = np.flatnonzero(
            station_candidates(station) & ~claimed & (backlog > 0.0)
        )
        if candidates.size == 0:
            continue
        if policy is SchedulingPolicy.MAX_BACKLOG:
            chosen = candidates[int(np.argmax(backlog[candidates]))]
        elif policy is SchedulingPolicy.ROUND_ROBIN:
            # First candidate at or after the rotating cursor.
            shifted = (candidates - round_robin_cursor) % n_sats
            chosen = candidates[int(np.argmin(shifted))]
            round_robin_cursor = (int(chosen) + 1) % n_sats
        else:
            chosen = candidates[0]
        drained = min(backlog[chosen], downlink_rate_mbps * step_s)
        backlog[chosen] -= drained
        downlinked[chosen] += drained
        claimed[chosen] = True
        assignment[station, step] = chosen
    return round_robin_cursor


def _emit_timeline_events(
    assignment: np.ndarray, grid: TimeGrid, policy: SchedulingPolicy
) -> None:
    """Narrate the antenna schedule onto the shared simulation timeline.

    One windowed ``allocation.grant`` per contiguous (station, satellite)
    serving interval, plus an instant ``handover`` whenever a station
    retargets between consecutive steps.  Stations are indexed (the
    scheduler sees only visibility rows), so tracks are labeled
    ``station-<index>``.
    """
    step_s = grid.step_s
    times = grid.times_s
    for station_index in range(assignment.shape[0]):
        row = assignment[station_index]
        station = f"station-{station_index}"
        for sat_index in np.unique(row[row >= 0]):
            mask = row == sat_index
            for start_s, stop_s in intervals_from_mask(
                mask, step_s, grid.start_s
            ):
                obs_timeline.emit(
                    obs_timeline.ALLOC_GRANT,
                    start_s,
                    station,
                    duration_s=stop_s - start_s,
                    satellite=int(sat_index),
                    policy=policy.value,
                )
        before, after = row[:-1], row[1:]
        for step in np.flatnonzero(
            (before >= 0) & (after >= 0) & (before != after)
        ):
            obs_timeline.emit(
                obs_timeline.HANDOVER,
                float(times[step + 1]),
                station,
                from_sat=int(before[step]),
                to_sat=int(after[step]),
            )


def compare_policies(
    visibility,
    grid: TimeGrid,
    downlink_rate_mbps: float = 500.0,
    generation_rate_mbps=10.0,
) -> Dict[SchedulingPolicy, DownlinkScheduleResult]:
    """Run every policy on the same inputs (for ablations).

    ``visibility`` may be a dense (S, N, T) boolean tensor or a
    :class:`~repro.sim.intervals.ContactIntervals`; the matching scheduler
    front-end is picked automatically, so ablations switch engines by
    switching the artifact they pass.
    """
    scheduler_cls = (
        IntervalDownlinkScheduler
        if isinstance(visibility, ContactIntervals)
        else DownlinkScheduler
    )
    return {
        policy: scheduler_cls(
            visibility,
            grid,
            downlink_rate_mbps=downlink_rate_mbps,
            generation_rate_mbps=generation_rate_mbps,
            policy=policy,
        ).run()
        for policy in SchedulingPolicy
    }
