"""Satellite network simulator (the CosmicBeats-equivalent substrate).

* :mod:`repro.sim.clock` — simulation time grids.
* :mod:`repro.sim.visibility` — vectorized satellite-ground visibility.
* :mod:`repro.sim.coverage` — coverage timelines and gap statistics.
* :mod:`repro.sim.capacity` — satellite utilization / idle-time accounting.
* :mod:`repro.sim.engine` — event-driven bent-pipe session simulator.
* :mod:`repro.sim.traffic` — workload generation for the event simulator.
* :mod:`repro.sim.contacts` — contact plans and pass statistics.
* :mod:`repro.sim.intervals` — analytic (rise, set) contact windows and
  the interval algebra behind the event-driven engine.
* :mod:`repro.sim.scheduling` — satellite-to-ground downlink scheduling
  with pluggable antenna-assignment policies.
* :mod:`repro.sim.isl_engine` — the bent-pipe engine with inter-satellite
  forwarding (§4 variant).
"""

from repro.sim.clock import TimeGrid
from repro.sim.coverage import (
    CoverageStats,
    CoverageTimeline,
    coverage_stats,
    gap_lengths_s,
    population_weighted_coverage_fraction,
)
from repro.sim.intervals import (
    ContactIntervals,
    IntervalSet,
    find_contact_intervals,
)
from repro.sim.visibility import VisibilityEngine, visibility_matrix

__all__ = [
    "TimeGrid",
    "VisibilityEngine",
    "visibility_matrix",
    "ContactIntervals",
    "IntervalSet",
    "find_contact_intervals",
    "CoverageTimeline",
    "CoverageStats",
    "coverage_stats",
    "gap_lengths_s",
    "population_weighted_coverage_fraction",
]
