"""Satellite utilization and idle-time accounting.

The paper's Fig. 3 measures "each satellite's idle time, i.e., times when it
is not connected to a user terminal."  A satellite is *active* at a time step
when at least one user terminal is inside its footprint, and *idle*
otherwise.  With the spare-capacity sharing of MP-LEO the same accounting
splits an active satellite's time between serving its owner's terminals and
serving other parties' terminals.

Every accountant here has two front-ends: one over a dense (S, N, T)
visibility tensor (grid engine) and an ``*_intervals`` sibling over
:class:`~repro.sim.intervals.ContactIntervals` (intervals engine).  The
interval variants measure continuous time via union sweeps instead of
counting samples, so they agree with the grid within the usual one-scan-step
contract rather than bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.sim.clock import TimeGrid
from repro.sim.intervals import ContactIntervals


@dataclass(frozen=True)
class UtilizationStats:
    """Per-constellation utilization summary."""

    mean_idle_fraction: float
    mean_active_fraction: float
    per_satellite_idle_fraction: np.ndarray  # (N,)

    @property
    def mean_idle_percent(self) -> float:
        return 100.0 * self.mean_idle_fraction


def utilization_from_visibility(visibility: np.ndarray) -> UtilizationStats:
    """Utilization statistics from a visibility tensor.

    Args:
        visibility: Boolean tensor of shape (S, N, T) — terminal s sees
            satellite n at time t.

    Returns:
        :class:`UtilizationStats`; a satellite is active when any terminal
        sees it.
    """
    visibility = np.asarray(visibility, dtype=bool)
    if visibility.ndim != 3:
        raise ValueError(f"visibility must be (S, N, T), got {visibility.shape}")
    active = visibility.any(axis=0)  # (N, T)
    active_fraction = active.mean(axis=1)  # (N,)
    idle_fraction = 1.0 - active_fraction
    return UtilizationStats(
        mean_idle_fraction=float(idle_fraction.mean()),
        mean_active_fraction=float(active_fraction.mean()),
        per_satellite_idle_fraction=idle_fraction,
    )


def utilization_from_intervals(contacts: ContactIntervals) -> UtilizationStats:
    """Utilization statistics from analytic contact windows.

    The continuous-time analogue of :func:`utilization_from_visibility`:
    a satellite is active while any terminal's contact window covers the
    instant, measured exactly by a per-satellite union sweep.
    """
    active_fraction = contacts.satellite_active_fractions()
    idle_fraction = 1.0 - active_fraction
    return UtilizationStats(
        mean_idle_fraction=float(idle_fraction.mean()) if idle_fraction.size else 0.0,
        mean_active_fraction=(
            float(active_fraction.mean()) if active_fraction.size else 0.0
        ),
        per_satellite_idle_fraction=idle_fraction,
    )


@dataclass(frozen=True)
class SpareCapacityLedger:
    """Split of each satellite's active time between own-party and others.

    Attributes:
        own_fraction: (N,) fraction of the horizon each satellite serves its
            owner's terminals.
        spare_fraction: (N,) fraction serving only other parties' terminals
            (the capacity MP-LEO participants trade).
        idle_fraction: (N,) fraction covering no terminal at all.
    """

    own_fraction: np.ndarray
    spare_fraction: np.ndarray
    idle_fraction: np.ndarray

    def __post_init__(self) -> None:
        total = self.own_fraction + self.spare_fraction + self.idle_fraction
        if not np.allclose(total, 1.0):
            raise ValueError("fractions must sum to 1 per satellite")


def spare_capacity_split(
    visibility: np.ndarray,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
) -> SpareCapacityLedger:
    """Split satellite time into own-use / spare-use / idle.

    Args:
        visibility: Boolean (S, N, T) tensor.
        terminal_parties: Party owning each terminal (length S).
        satellite_parties: Party owning each satellite (length N).

    A time step counts as *own use* when at least one of the owner's
    terminals is visible (the owner has priority on its own satellite,
    matching the paper's "offer their spare capacity ... when not in use by
    the contributor's devices").  It counts as *spare use* when only other
    parties' terminals are visible.
    """
    visibility = np.asarray(visibility, dtype=bool)
    if visibility.ndim != 3:
        raise ValueError(f"visibility must be (S, N, T), got {visibility.shape}")
    site_count, sat_count, _ = visibility.shape
    if len(terminal_parties) != site_count:
        raise ValueError(
            f"need {site_count} terminal parties, got {len(terminal_parties)}"
        )
    if len(satellite_parties) != sat_count:
        raise ValueError(
            f"need {sat_count} satellite parties, got {len(satellite_parties)}"
        )

    terminal_party_array = np.array(terminal_parties)
    own_fraction = np.empty(sat_count)
    spare_fraction = np.empty(sat_count)
    idle_fraction = np.empty(sat_count)
    for sat_index, sat_party in enumerate(satellite_parties):
        own_terminals = terminal_party_array == sat_party
        sat_visibility = visibility[:, sat_index, :]  # (S, T)
        own_active = (
            sat_visibility[own_terminals].any(axis=0)
            if own_terminals.any()
            else np.zeros(sat_visibility.shape[1], dtype=bool)
        )
        any_active = sat_visibility.any(axis=0)
        spare_active = any_active & ~own_active
        own_fraction[sat_index] = own_active.mean()
        spare_fraction[sat_index] = spare_active.mean()
        idle_fraction[sat_index] = 1.0 - any_active.mean()
    return SpareCapacityLedger(own_fraction, spare_fraction, idle_fraction)


def spare_capacity_split_intervals(
    contacts: ContactIntervals,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
) -> SpareCapacityLedger:
    """Interval-native own-use / spare-use / idle split.

    Same semantics as :func:`spare_capacity_split` in continuous time.
    Because the owner's serving time is a subset of the any-terminal
    serving time, spare time is measured as the difference of the two
    union sweeps — no explicit ``any & ~own`` mask is needed.
    """
    if len(terminal_parties) != contacts.n_sites:
        raise ValueError(
            f"need {contacts.n_sites} terminal parties, got {len(terminal_parties)}"
        )
    if len(satellite_parties) != contacts.n_satellites:
        raise ValueError(
            f"need {contacts.n_satellites} satellite parties,"
            f" got {len(satellite_parties)}"
        )
    span = contacts.span_s
    terminal_party_array = np.array(terminal_parties)
    sat_count = contacts.n_satellites
    own_fraction = np.zeros(sat_count)
    spare_fraction = np.zeros(sat_count)
    idle_fraction = np.ones(sat_count)
    if span == 0.0:
        return SpareCapacityLedger(
            np.zeros(sat_count), np.zeros(sat_count), np.ones(sat_count)
        )
    for sat_index, sat_party in enumerate(satellite_parties):
        own_terminals = np.flatnonzero(terminal_party_array == sat_party)
        any_s = contacts.satellite_union(sat_index).total_s
        own_s = (
            contacts.satellite_union(sat_index, site_indices=own_terminals).total_s
            if own_terminals.size
            else 0.0
        )
        own_fraction[sat_index] = own_s / span
        spare_fraction[sat_index] = (any_s - own_s) / span
        idle_fraction[sat_index] = 1.0 - any_s / span
    return SpareCapacityLedger(own_fraction, spare_fraction, idle_fraction)


def idle_time_hours(
    visibility: np.ndarray, grid: TimeGrid
) -> np.ndarray:
    """Per-satellite idle time in hours over the grid horizon."""
    stats = utilization_from_visibility(visibility)
    return stats.per_satellite_idle_fraction * grid.duration_s / 3600.0


def idle_time_hours_from_intervals(contacts: ContactIntervals) -> np.ndarray:
    """Per-satellite idle time in hours from analytic contact windows."""
    stats = utilization_from_intervals(contacts)
    return stats.per_satellite_idle_fraction * contacts.span_s / 3600.0


def party_capacity_shares(
    visibility: np.ndarray,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Per-party summary of the spare-capacity economy.

    Returns:
        Map party -> {"own": .., "spare_provided": .., "idle": ..} where each
        value is the mean fraction over the party's satellites.  Parties with
        no satellites are omitted.
    """
    ledger = spare_capacity_split(visibility, terminal_parties, satellite_parties)
    return _shares_from_ledger(ledger, satellite_parties)


def party_capacity_shares_intervals(
    contacts: ContactIntervals,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Interval-native :func:`party_capacity_shares`."""
    ledger = spare_capacity_split_intervals(
        contacts, terminal_parties, satellite_parties
    )
    return _shares_from_ledger(ledger, satellite_parties)


def _shares_from_ledger(
    ledger: SpareCapacityLedger, satellite_parties: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    shares: Dict[str, Dict[str, float]] = {}
    parties = np.array(satellite_parties)
    for party in sorted(set(satellite_parties)):
        member = parties == party
        shares[party] = {
            "own": float(ledger.own_fraction[member].mean()),
            "spare_provided": float(ledger.spare_fraction[member].mean()),
            "idle": float(ledger.idle_fraction[member].mean()),
        }
    return shares
