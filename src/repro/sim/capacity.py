"""Satellite utilization and idle-time accounting.

The paper's Fig. 3 measures "each satellite's idle time, i.e., times when it
is not connected to a user terminal."  A satellite is *active* at a time step
when at least one user terminal is inside its footprint, and *idle*
otherwise.  With the spare-capacity sharing of MP-LEO the same accounting
splits an active satellite's time between serving its owner's terminals and
serving other parties' terminals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.sim.clock import TimeGrid


@dataclass(frozen=True)
class UtilizationStats:
    """Per-constellation utilization summary."""

    mean_idle_fraction: float
    mean_active_fraction: float
    per_satellite_idle_fraction: np.ndarray  # (N,)

    @property
    def mean_idle_percent(self) -> float:
        return 100.0 * self.mean_idle_fraction


def utilization_from_visibility(visibility: np.ndarray) -> UtilizationStats:
    """Utilization statistics from a visibility tensor.

    Args:
        visibility: Boolean tensor of shape (S, N, T) — terminal s sees
            satellite n at time t.

    Returns:
        :class:`UtilizationStats`; a satellite is active when any terminal
        sees it.
    """
    visibility = np.asarray(visibility, dtype=bool)
    if visibility.ndim != 3:
        raise ValueError(f"visibility must be (S, N, T), got {visibility.shape}")
    active = visibility.any(axis=0)  # (N, T)
    active_fraction = active.mean(axis=1)  # (N,)
    idle_fraction = 1.0 - active_fraction
    return UtilizationStats(
        mean_idle_fraction=float(idle_fraction.mean()),
        mean_active_fraction=float(active_fraction.mean()),
        per_satellite_idle_fraction=idle_fraction,
    )


@dataclass(frozen=True)
class SpareCapacityLedger:
    """Split of each satellite's active time between own-party and others.

    Attributes:
        own_fraction: (N,) fraction of the horizon each satellite serves its
            owner's terminals.
        spare_fraction: (N,) fraction serving only other parties' terminals
            (the capacity MP-LEO participants trade).
        idle_fraction: (N,) fraction covering no terminal at all.
    """

    own_fraction: np.ndarray
    spare_fraction: np.ndarray
    idle_fraction: np.ndarray

    def __post_init__(self) -> None:
        total = self.own_fraction + self.spare_fraction + self.idle_fraction
        if not np.allclose(total, 1.0):
            raise ValueError("fractions must sum to 1 per satellite")


def spare_capacity_split(
    visibility: np.ndarray,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
) -> SpareCapacityLedger:
    """Split satellite time into own-use / spare-use / idle.

    Args:
        visibility: Boolean (S, N, T) tensor.
        terminal_parties: Party owning each terminal (length S).
        satellite_parties: Party owning each satellite (length N).

    A time step counts as *own use* when at least one of the owner's
    terminals is visible (the owner has priority on its own satellite,
    matching the paper's "offer their spare capacity ... when not in use by
    the contributor's devices").  It counts as *spare use* when only other
    parties' terminals are visible.
    """
    visibility = np.asarray(visibility, dtype=bool)
    if visibility.ndim != 3:
        raise ValueError(f"visibility must be (S, N, T), got {visibility.shape}")
    site_count, sat_count, _ = visibility.shape
    if len(terminal_parties) != site_count:
        raise ValueError(
            f"need {site_count} terminal parties, got {len(terminal_parties)}"
        )
    if len(satellite_parties) != sat_count:
        raise ValueError(
            f"need {sat_count} satellite parties, got {len(satellite_parties)}"
        )

    terminal_party_array = np.array(terminal_parties)
    own_fraction = np.empty(sat_count)
    spare_fraction = np.empty(sat_count)
    idle_fraction = np.empty(sat_count)
    for sat_index, sat_party in enumerate(satellite_parties):
        own_terminals = terminal_party_array == sat_party
        sat_visibility = visibility[:, sat_index, :]  # (S, T)
        own_active = (
            sat_visibility[own_terminals].any(axis=0)
            if own_terminals.any()
            else np.zeros(sat_visibility.shape[1], dtype=bool)
        )
        any_active = sat_visibility.any(axis=0)
        spare_active = any_active & ~own_active
        own_fraction[sat_index] = own_active.mean()
        spare_fraction[sat_index] = spare_active.mean()
        idle_fraction[sat_index] = 1.0 - any_active.mean()
    return SpareCapacityLedger(own_fraction, spare_fraction, idle_fraction)


def idle_time_hours(
    visibility: np.ndarray, grid: TimeGrid
) -> np.ndarray:
    """Per-satellite idle time in hours over the grid horizon."""
    stats = utilization_from_visibility(visibility)
    return stats.per_satellite_idle_fraction * grid.duration_s / 3600.0


def party_capacity_shares(
    visibility: np.ndarray,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Per-party summary of the spare-capacity economy.

    Returns:
        Map party -> {"own": .., "spare_provided": .., "idle": ..} where each
        value is the mean fraction over the party's satellites.  Parties with
        no satellites are omitted.
    """
    ledger = spare_capacity_split(visibility, terminal_parties, satellite_parties)
    shares: Dict[str, Dict[str, float]] = {}
    parties = np.array(satellite_parties)
    for party in sorted(set(satellite_parties)):
        member = parties == party
        shares[party] = {
            "own": float(ledger.own_fraction[member].mean()),
            "spare_provided": float(ledger.spare_fraction[member].mean()),
            "idle": float(ledger.idle_fraction[member].mean()),
        }
    return shares
