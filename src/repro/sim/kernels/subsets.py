"""Subset-query batch kernels over the packed visibility tensor.

Attrition / withdrawal / skew trajectories evaluate coverage for *many*
satellite subsets of one fleet (12+ per arm in ``ablation_failures``).
Re-running a full visibility build per composition — or even gathering
from the full-pool tensor when only 500 of 4400+ satellites matter — pays
for geometry the queries never touch.  :class:`SubsetQuery` precomputes
one per-(site, satellite) contribution structure, the packed bit rows of
exactly the fleet under study, and then answers weighted-city coverage,
idle capacity, and k-coverage for arbitrary subsets via
popcount-on-masked-rows through the active kernel backend
(:mod:`repro.sim.backends`).

Two construction paths, bit-identical by the kernel layer's contract:

* :meth:`SubsetQuery.from_visibility` gathers fleet rows out of an
  already-built full-pool tensor (free when the cache is warm);
* :meth:`SubsetQuery.build` streams a fleet-scoped build through
  :func:`repro.sim.kernels.plan_stream` — on the all-circular fast path
  the per-satellite trig is elementwise, so the fleet-scoped rows match
  the full-pool rows bit for bit (pinned by tests/sim/test_subsets.py).

Query semantics mirror :class:`repro.sim.visibility.PackedVisibility`
exactly (including empty-subset behaviour); the brute-force agreement
tests compare both against unpacked boolean reductions.

The interval-native equivalent is
:class:`repro.sim.intervals.IntervalSubsetQuery`, built over a
fleet-restricted CSR window structure and answered by incremental event
sweeps.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.orbits.propagator import BatchPropagator
from repro.sim import backends
from repro.sim.clock import TimeGrid
from repro.sim.kernels import SiteGeometry, plan_stream, stream_packed_bits


def _as_sorted_fleet(fleet) -> np.ndarray:
    """Normalize a fleet selection to a sorted intp array."""
    array = np.sort(np.asarray(fleet, dtype=np.intp).reshape(-1))
    if array.size > 1 and np.any(array[1:] == array[:-1]):
        raise ValueError("fleet indices must be unique")
    return array


class SubsetQuery:
    """Precomputed packed rows of one fleet; cheap arbitrary-subset queries.

    ``fleet`` is None when the query spans the whole pool (subset indices
    are then raw pool indices); otherwise it is the sorted pool-index
    array the packed rows were gathered/built for, and every queried
    subset must be drawn from it.
    """

    def __init__(
        self,
        packed: np.ndarray,
        n_times: int,
        fleet: Optional[np.ndarray] = None,
    ) -> None:
        if packed.ndim != 3 or packed.dtype != np.uint8:
            raise ValueError(
                f"packed must be (S, F, B) uint8, got {packed.dtype} "
                f"{packed.shape}"
            )
        if fleet is not None and fleet.size != packed.shape[1]:
            raise ValueError(
                f"fleet has {fleet.size} indices but packed holds "
                f"{packed.shape[1]} satellite rows"
            )
        self.packed = packed
        self.n_times = int(n_times)
        self.fleet = fleet

    # -- construction ------------------------------------------------------

    @classmethod
    def from_visibility(cls, visibility, fleet=None) -> "SubsetQuery":
        """Gather fleet rows from a built tensor (zero-copy when pool-wide).

        Gathering is exact by construction: the rows are the very bytes
        the full build produced.
        """
        if fleet is None:
            return cls(visibility.packed, visibility.n_times, None)
        fleet = _as_sorted_fleet(fleet)
        rows = np.ascontiguousarray(visibility.packed[:, fleet, :])
        return cls(rows, visibility.n_times, fleet)

    @classmethod
    def build(
        cls,
        propagator: BatchPropagator,
        geometry: SiteGeometry,
        grid: TimeGrid,
        fleet,
        chunk_size: Optional[int] = None,
        cull: bool = True,
    ) -> "SubsetQuery":
        """Stream a fleet-scoped packed build — skips the rest of the pool.

        Orders of magnitude cheaper than a full-pool build when the fleet
        is small (the einsum and trig scale with the fleet, not the pool).
        """
        fleet = _as_sorted_fleet(fleet)
        plan = plan_stream(
            propagator.subset(fleet), geometry, grid,
            chunk_size=chunk_size, cull=cull, pack=True,
        )
        packed = stream_packed_bits(plan)
        return cls(packed, grid.count, fleet)

    # -- indexing ----------------------------------------------------------

    @property
    def n_sites(self) -> int:
        return self.packed.shape[0]

    @property
    def n_satellites(self) -> int:
        """Satellites held by the precompute (the fleet size)."""
        return self.packed.shape[1]

    def _rows_for(self, subset) -> np.ndarray:
        """Map pool-index subsets to local packed rows (identity pool-wide)."""
        if subset is None:
            return np.arange(self.n_satellites, dtype=np.intp)
        subset = np.asarray(subset, dtype=np.intp).reshape(-1)
        if self.fleet is None:
            return subset
        local = np.searchsorted(self.fleet, subset)
        local = np.minimum(local, self.fleet.size - 1) if self.fleet.size else local
        if subset.size and (
            self.fleet.size == 0 or not np.array_equal(self.fleet[local], subset)
        ):
            raise KeyError("subset contains satellites outside the fleet")
        return local

    # -- queries -----------------------------------------------------------

    def coverage_fractions(self, subset=None) -> np.ndarray:
        """Covered fraction per site (S,) for one satellite subset."""
        local = self._rows_for(subset)
        if local.size == 0:
            return np.zeros(self.n_sites)
        rows = self.packed[:, local, :]
        counts = backends.default_backend().or_popcount(rows, axis=1)
        return counts / float(self.n_times)

    def satellite_active_fractions(
        self, subset=None, site_indices=None
    ) -> np.ndarray:
        """Active fraction per subset satellite (any selected site visible)."""
        local = self._rows_for(subset)
        rows = self.packed
        if site_indices is not None:
            rows = rows[np.asarray(site_indices, dtype=np.intp).reshape(-1)]
        rows = rows[:, local, :]
        if rows.shape[0] == 0 or rows.shape[1] == 0:
            return np.zeros(rows.shape[1])
        counts = backends.default_backend().or_popcount(rows, axis=0)
        return counts / float(self.n_times)

    def visible_counts(self, site_index: int, subset=None) -> np.ndarray:
        """Per-step visible-satellite counts (T,) at one site."""
        local = self._rows_for(subset)
        if local.size == 0:
            return np.zeros(self.n_times, dtype=np.int64)
        rows = self.packed[int(site_index), local, :]
        bits = np.unpackbits(rows, axis=1)[:, : self.n_times]
        return bits.sum(axis=0, dtype=np.int64)

    def k_coverage_fraction(self, site_index: int, k: int, subset=None) -> float:
        """Fraction of steps with >= k subset satellites visible at a site."""
        if self.n_times == 0:
            return 0.0
        counts = self.visible_counts(site_index, subset)
        return float(np.count_nonzero(counts >= int(k)) / self.n_times)


def query_for_sites(
    query: SubsetQuery, site_indices: Sequence[int]
) -> SubsetQuery:
    """A site-restricted view of a query (shares the packed rows)."""
    rows = query.packed[np.asarray(site_indices, dtype=np.intp).reshape(-1)]
    return SubsetQuery(rows, query.n_times, query.fleet)
