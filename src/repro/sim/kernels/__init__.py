"""Fused, chunk-streaming visibility kernels with geometric pair culling.

The figure experiments never need the full ``(S, N, T)`` visibility tensor:
every reduction the paper uses — site coverage (``any`` over satellites),
satellite activity (``any`` over sites), visible counts, and the bit-packed
Monte-Carlo pool — is a single pass over the time axis.  The kernels here
hold exactly one ``(S, N, chunk)`` slab at a time, so peak memory scales
with the chunk size, not the horizon: O(S·N·chunk) instead of O(S·N·T).
For the full synthetic Starlink pool at the 22 experiment sites over one
week, that is tens of MB of transients instead of a ~0.5 GB boolean tensor
plus GB-scale float64 intermediates.

Bit-identity contract
---------------------
Streaming must not change a single bit relative to the materialized
reference (:meth:`repro.sim.visibility.VisibilityEngine.visibility`): the
golden figures compare at rtol 1e-6 and one flipped visibility bit moves a
coverage fraction by 1/T.  Three rules keep the guarantee (pinned by
tests/sim/test_kernels.py and the ``oracle.fused`` validation check):

* the dot-product einsum always runs at the full ``(S, N, chunk)`` shape
  with the exact signature of the reference path — BLAS summation geometry
  (and hence the last ulp) depends on operand shapes, so culled satellites
  are *zeroed in the operand*, never removed from it;
* satellite culling only skips *propagation* (the per-chunk trig), and only
  on the all-circular fast path, where per-element results are independent
  of batch membership (the general Kepler path iterates to a batch-global
  tolerance, so a subset could converge in a different iteration count);
* chunking the time axis is bit-neutral: each time sample is an independent
  batched-GEMM slice (pinned by the chunk-invariance tests).

The threshold compare itself is routed through :mod:`repro.sim.backends`
(an elementwise ``>=``, so every admissible backend is bit-identical —
the ``oracle.backends`` validation check enforces it).  Subset-query
batch kernels over the packed tensor live in
:mod:`repro.sim.kernels.subsets`.

Geometric pair culling
----------------------
A satellite with inclination *i* never exceeds geocentric latitude
``lambda_max = asin(|sin i|)`` (J2 secular drift changes RAAN, perigee and
phase — never the inclination), and a ground site sits at fixed geocentric
latitude ``phi``.  The central angle between their geocentric unit vectors
is therefore at least ``max(|phi| - lambda_max, 0)``, which upper-bounds
the achievable dot product by the cosine of that gap.  Pairs whose bound
falls short of the visibility threshold (minus a float-safety margin) can
*never* see each other — a 53 deg shell never covers a 75 deg-latitude
site — so their satellites need no propagation at all when no site can
reach them.  The bound is conservative: culling changes which work is
*skipped*, never the results.
"""

from __future__ import annotations

import weakref
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_logger, metrics
from repro.obs.trace import span
from repro.orbits.frames import gmst_rad
from repro.orbits.propagator import BatchPropagator
from repro.ground.sites import GroundSite
from repro.sim import backends
from repro.sim.clock import TimeGrid

_LOG = get_logger(__name__)

#: Smallest default streaming chunk (time samples per slab).  The float64
#: dot-product slab is the peak allocation — (S, N, chunk) · 8 bytes — so
#: 64 samples keeps a full-pool build (22 × 4408) under ~100 MB of
#: transients while staying wide enough (~300k elements per einsum) for
#: BLAS efficiency.  Multiple of 8 so packed chunks land on byte
#: boundaries.
DEFAULT_STREAM_CHUNK = 64

#: Largest default streaming chunk.  Small constellations hit per-chunk
#: Python/dispatch overhead long before memory matters, so the adaptive
#: default below widens the chunk until the slab reaches
#: :data:`TARGET_SLAB_BYTES` or this cap.
MAX_STREAM_CHUNK = 2048

#: Boolean-slab byte budget the adaptive default chunk aims for.  The
#: accompanying float64 dot slab is 8x this, so the default's transient
#: peak stays in the tens of megabytes for any population.
TARGET_SLAB_BYTES = 4 * 2**20


def default_chunk_size(n_sites: int, n_satellites: int) -> int:
    """Adaptive chunk for callers that don't pick one.

    Sized so the (S, N, chunk) boolean slab is ~:data:`TARGET_SLAB_BYTES`,
    clamped to [:data:`DEFAULT_STREAM_CHUNK`, :data:`MAX_STREAM_CHUNK`] and
    kept a multiple of 8.  Chunking is bit-neutral (the fused oracle pins
    it), so the default is purely a time/memory trade: full-pool runs get
    small memory-bounded slabs, tiny design-sweep constellations get wide
    slabs that amortize per-chunk overhead.
    """
    pairs = n_sites * n_satellites
    if pairs <= 0:
        return MAX_STREAM_CHUNK
    chunk = TARGET_SLAB_BYTES // pairs // 8 * 8
    return int(min(MAX_STREAM_CHUNK, max(DEFAULT_STREAM_CHUNK, chunk)))

#: Float-safety margin subtracted from the threshold before declaring a
#: pair infeasible.  The geometric bound is exact in real arithmetic; the
#: margin absorbs the ~1e-15 rounding of the cos/arcsin chain with six
#: orders of magnitude to spare.
CULL_COS_MARGIN = 1e-9

_PAIRS_CULLED = metrics.counter("sim.visibility.culled_pairs")
_SATS_CULLED = metrics.counter("sim.visibility.culled_satellites")
_CULL_FRACTION = metrics.gauge("sim.visibility.cull_fraction")

# Kernel introspection (ISSUE 6): stream traffic and cull efficiency.
# Counters only ever read slab metadata (shape/nbytes) and plan scalars —
# never array contents — so they cannot perturb the bit-identity contract.
_SLABS_STREAMED = metrics.counter("sim.kernels.slabs_streamed")
_SLAB_BYTES = metrics.counter("sim.kernels.slab_bytes")
_PAIRS_EVALUATED = metrics.counter("sim.kernels.pairs_evaluated")
_CULL_RATIO = metrics.gauge("sim.kernels.cull_ratio")
_THRESH_HITS = metrics.counter("sim.kernels.threshold_cache.hits")
_THRESH_MISSES = metrics.counter("sim.kernels.threshold_cache.misses")
_THRESH_EVICTIONS = metrics.counter("sim.kernels.threshold_cache.evictions")

# Shared with repro.sim.visibility (get-or-create by name returns the same
# instruments; visibility.py cannot be imported here — it imports us).
_PAIRS = metrics.counter("sim.visibility.pairs")
_SAMPLES_TOTAL = metrics.counter("sim.visibility.pair_samples")
_SAMPLES_VISIBLE = metrics.counter("sim.visibility.pair_samples_visible")
_PASS_RATE = metrics.gauge("sim.visibility.mask_pass_rate")


def record_visibility_metrics(
    n_sites: int, n_sats: int, n_times: int, visible_samples: int
) -> None:
    """Account one visibility computation: pair counts and mask pass rate."""
    pairs = n_sites * n_sats
    samples = pairs * n_times
    _PAIRS.inc(pairs)
    _SAMPLES_TOTAL.inc(samples)
    _SAMPLES_VISIBLE.inc(visible_samples)
    if samples:
        _PASS_RATE.set(visible_samples / samples)
    _LOG.debug(
        "visibility: %d sites x %d sats x %d steps, mask pass rate %.4f",
        n_sites, n_sats, n_times, visible_samples / samples if samples else 0.0,
    )


def coverage_cos_thresholds(
    orbital_radii_m: np.ndarray,
    site_radii_m: np.ndarray,
    min_elevation_deg: np.ndarray,
) -> np.ndarray:
    """Vectorized cos(psi) thresholds for (site, satellite) pairs.

    Args:
        orbital_radii_m: (N,) satellite orbital radii.
        site_radii_m: (S,) geocentric site radii.
        min_elevation_deg: (S,) per-site elevation masks.

    Returns:
        (S, N) array of cosine thresholds: a satellite is visible from a site
        when the dot product of their geocentric unit vectors meets or
        exceeds the threshold.
    """
    radii = np.asarray(orbital_radii_m, dtype=np.float64)[None, :]
    site_radii = np.asarray(site_radii_m, dtype=np.float64)[:, None]
    masks = np.radians(np.asarray(min_elevation_deg, dtype=np.float64))[:, None]
    if np.any(radii <= site_radii):
        raise ValueError("orbital radius must exceed the site radius")
    psi = np.arccos(np.clip(site_radii / radii * np.cos(masks), -1.0, 1.0)) - masks
    return np.cos(psi)


def site_radii_m(sites: Sequence[GroundSite]) -> np.ndarray:
    """Batched geocentric site radii (S,).

    The einsum self-dot + sqrt reproduces ``np.linalg.norm`` on each row
    bit-for-bit (same three products, same summation order) without the
    per-site Python loop; ``np.linalg.norm(positions, axis=1)`` does *not*
    (it squares via a different reduction), which matters because the
    radii feed the visibility thresholds the goldens pin.
    """
    if not sites:
        return np.zeros(0, dtype=np.float64)
    positions = np.stack([site.position_ecef for site in sites])
    return np.sqrt(np.einsum("sk,sk->s", positions, positions, optimize=True))


class SiteGeometry:
    """Precomputed site-side geometry for one (sites, grid) pair.

    Everything the visibility kernels need from the ground segment —
    stacked ECEF unit vectors, geocentric radii, elevation masks, the
    per-grid ECI unit tracks, and the per-propagator cos thresholds — is
    fixed per experiment while the constellation sample varies, so
    :class:`~repro.experiments.common.ExperimentContext` caches instances
    across Monte-Carlo runs.

    The ECI track is built lazily (:meth:`prime_track`) because one-shot
    callers are better served computing chunk slices on the fly; cached
    contexts prime it once and every later build slices it for free.
    """

    def __init__(self, sites: Sequence[GroundSite], grid: TimeGrid) -> None:
        self.sites: Tuple[GroundSite, ...] = tuple(sites)
        self.grid = grid
        self.radii_m = site_radii_m(self.sites)
        if self.sites:
            self.unit_ecef = np.stack([site.unit_ecef for site in self.sites])
            self.min_elevation_deg = np.array(
                [site.min_elevation_deg for site in self.sites]
            )
        else:
            self.unit_ecef = np.zeros((0, 3))
            self.min_elevation_deg = np.zeros(0)
        #: Geocentric site latitudes (S,), for the pair-culling bound.
        self.latitude_rad = np.arcsin(np.clip(self.unit_ecef[:, 2], -1.0, 1.0))
        self._track: Optional[np.ndarray] = None
        # Thresholds depend on the propagator's radii; weak keying lets a
        # cached geometry serve many pool rebuilds without pinning
        # propagators alive.
        self._thresholds: "weakref.WeakKeyDictionary[BatchPropagator, np.ndarray]"
        self._thresholds = weakref.WeakKeyDictionary()

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def thresholds(self, propagator: BatchPropagator) -> np.ndarray:
        """Cached (S, N) cos thresholds for this propagator's radii."""
        cached = self._thresholds.get(propagator)
        if cached is None:
            _THRESH_MISSES.inc()
            cached = coverage_cos_thresholds(
                propagator.semi_major_axis_m, self.radii_m, self.min_elevation_deg
            )
            self._thresholds[propagator] = cached
            # The weak-keyed entry dies with the propagator; account it.
            weakref.finalize(propagator, _THRESH_EVICTIONS.inc)
        else:
            _THRESH_HITS.inc()
        return cached

    def units_eci(self, times_s: np.ndarray) -> np.ndarray:
        """Site geocentric unit directions in ECI at each time: (S, T, 3)."""
        theta = gmst_rad(times_s, self.grid.gmst_at_epoch_rad)  # (T,)
        cos_t = np.cos(theta)
        sin_t = np.sin(theta)
        x = self.unit_ecef[:, 0][:, None]
        y = self.unit_ecef[:, 1][:, None]
        out = np.empty((self.n_sites, times_s.size, 3))
        # ECEF -> ECI is a rotation by +theta about z.
        out[..., 0] = cos_t * x - sin_t * y
        out[..., 1] = sin_t * x + cos_t * y
        out[..., 2] = self.unit_ecef[:, 2][:, None]
        return out

    def prime_track(self) -> np.ndarray:
        """Build (and cache) the full (S, T, 3) ECI unit track for the grid."""
        if self._track is None:
            self._track = self.units_eci(self.grid.times_s)
            self._track.flags.writeable = False
        return self._track

    @property
    def track_primed(self) -> bool:
        return self._track is not None

    def units_chunk(self, offset: int, times_s: np.ndarray) -> np.ndarray:
        """Unit track for one chunk, contiguous: (S, Tc, 3).

        Slicing the primed track yields the same per-element values as
        computing the chunk directly (the trig is elementwise); the copy to
        contiguous layout keeps the einsum operand layout — and therefore
        its bits — independent of whether a track cache was present.
        """
        if self._track is None:
            return self.units_eci(times_s)
        return np.ascontiguousarray(
            self._track[:, offset : offset + times_s.size, :]
        )


def pair_cull_mask(
    propagator: BatchPropagator,
    geometry: SiteGeometry,
    thresholds: Optional[np.ndarray] = None,
    margin: float = CULL_COS_MARGIN,
) -> np.ndarray:
    """(S, N) feasibility: False where a pair can never see each other.

    Upper-bounds each pair's achievable dot product by
    ``cos(max(|site_latitude| - asin(|sin i|), 0))`` (latitudes can align
    in longitude at best) and compares against the visibility threshold
    minus ``margin``.  Conservative by construction: a False entry is a
    mathematical guarantee of zero visibility over any horizon.
    """
    if thresholds is None:
        thresholds = geometry.thresholds(propagator)
    sat_lat_max = np.arcsin(np.clip(np.abs(np.sin(propagator.inclination_rad)), 0.0, 1.0))
    gap = np.maximum(
        np.abs(geometry.latitude_rad)[:, None] - sat_lat_max[None, :], 0.0
    )  # (S, N) minimum central angle
    return np.cos(gap) >= thresholds - margin


class StreamPlan:
    """One resolved streaming computation: operands, chunking, culling.

    Built by :func:`plan_stream`; consumed by :func:`iter_slabs` and the
    ``stream_*`` kernels.  ``active_indices`` is None when every satellite
    propagates (culling off, not applicable, or nothing to cull).
    """

    __slots__ = (
        "propagator", "geometry", "grid", "chunk_size", "thresholds",
        "feasible", "active_indices", "active_propagator", "culled_pairs",
        "culled_satellites", "cull_applied",
    )

    def __init__(self, propagator, geometry, grid, chunk_size, thresholds,
                 feasible, active_indices, active_propagator, culled_pairs,
                 culled_satellites, cull_applied) -> None:
        self.propagator = propagator
        self.geometry = geometry
        self.grid = grid
        self.chunk_size = chunk_size
        self.thresholds = thresholds
        self.feasible = feasible
        self.active_indices = active_indices
        self.active_propagator = active_propagator
        self.culled_pairs = culled_pairs
        self.culled_satellites = culled_satellites
        self.cull_applied = cull_applied

    @property
    def n_sites(self) -> int:
        return self.geometry.n_sites

    @property
    def n_satellites(self) -> int:
        return self.propagator.count

    @property
    def nothing_visible(self) -> bool:
        """True when culling proved no pair can ever connect."""
        return self.cull_applied and self.active_propagator is None


def plan_stream(
    propagator: BatchPropagator,
    geometry: SiteGeometry,
    grid: TimeGrid,
    chunk_size: Optional[int] = None,
    cull: bool = True,
    pack: bool = False,
) -> StreamPlan:
    """Resolve chunking and culling for one streaming computation.

    Args:
        propagator: The constellation to stream (callers adapt element
            lists / Constellations via the visibility layer).
        geometry: Precomputed site geometry (its grid must match ``grid``).
        grid: The time grid to stream over.
        chunk_size: Time samples per slab (default: adaptive, see
            :func:`default_chunk_size`); rounded down to a multiple of 8
            when ``pack`` so packed chunks land on byte boundaries.
        cull: Enable the geometric pair cull.  Infeasible pairs are always
            *counted*; propagation is only skipped on the all-circular fast
            path (see the module docstring's bit-identity contract).
        pack: Round the chunk for bit packing.
    """
    if chunk_size is None:
        chunk_size = default_chunk_size(geometry.n_sites, propagator.count)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if pack:
        chunk_size = max(8, chunk_size // 8 * 8)
    thresholds = geometry.thresholds(propagator)

    feasible = None
    active_indices = None
    active_propagator = propagator
    culled_pairs = 0
    culled_satellites = 0
    cull_applied = False
    if cull:
        feasible = pair_cull_mask(propagator, geometry, thresholds)
        culled_pairs = int(np.count_nonzero(~feasible))
        # Skipping propagation for a subset is only bit-safe on the
        # circular fast path (elementwise trig, no batch-global Kepler
        # iteration); see BatchPropagator.all_circular.
        if culled_pairs and propagator.all_circular:
            reachable = feasible.any(axis=0)  # (N,) any site could connect
            culled_satellites = int(np.count_nonzero(~reachable))
            if culled_satellites:
                cull_applied = True
                active = np.flatnonzero(reachable)
                if active.size:
                    active_indices = active
                    active_propagator = propagator.subset(active)
                else:
                    active_propagator = None
    _PAIRS_CULLED.inc(culled_pairs)
    _SATS_CULLED.inc(culled_satellites)
    pairs = geometry.n_sites * propagator.count
    _PAIRS_EVALUATED.inc(pairs - culled_pairs)
    _CULL_FRACTION.set(culled_pairs / pairs if pairs else 0.0)
    _CULL_RATIO.set(culled_pairs / pairs if pairs else 0.0)
    if culled_satellites:
        _LOG.debug(
            "pair cull: %d/%d pairs infeasible, %d/%d satellites skip propagation",
            culled_pairs, pairs, culled_satellites, propagator.count,
        )
    return StreamPlan(
        propagator=propagator,
        geometry=geometry,
        grid=grid,
        chunk_size=chunk_size,
        thresholds=thresholds,
        feasible=feasible,
        active_indices=active_indices,
        active_propagator=active_propagator,
        culled_pairs=culled_pairs,
        culled_satellites=culled_satellites,
        cull_applied=cull_applied,
    )


def iter_slabs(plan: StreamPlan) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield (time_offset, boolean slab (S, N, Tc)) per chunk, in order.

    The slab is freshly computed per chunk and owned by the consumer until
    the next iteration; only one slab (plus its float64 dot-product twin)
    is alive at a time.  Culled satellites appear as all-False rows: their
    unit-vector columns are zeroed in the full-shape einsum operand, and a
    zero dot product never reaches a threshold (thresholds of cullable
    pairs are strictly positive — see :func:`pair_cull_mask`).
    """
    if plan.nothing_visible:
        for offset, chunk_times in _chunk_offsets(plan):
            slab = np.zeros(
                (plan.n_sites, plan.n_satellites, chunk_times.size), dtype=bool
            )
            _SLABS_STREAMED.inc()
            _SLAB_BYTES.inc(slab.nbytes)
            yield offset, slab
        return
    thresholds = plan.thresholds[:, :, None]
    for offset, chunk_times in _chunk_offsets(plan):
        if plan.active_indices is None:
            sat_units = plan.active_propagator.unit_positions_eci_unspanned(
                chunk_times
            )
        else:
            sat_units = np.zeros((plan.n_satellites, chunk_times.size, 3))
            sat_units[plan.active_indices] = (
                plan.active_propagator.unit_positions_eci_unspanned(chunk_times)
            )
        site_units = plan.geometry.units_chunk(offset, chunk_times)
        dots = np.einsum("ntk,stk->snt", sat_units, site_units, optimize=True)
        # Threshold+reduce via the active kernel backend; an elementwise
        # float64 compare, so every admissible backend is bit-identical.
        slab = backends.default_backend().threshold_slab(dots, thresholds)
        # Release the float64 slab before yielding: it is 8x the boolean
        # slab and would otherwise stay alive across the next chunk's
        # einsum, doubling the transient peak.
        del dots
        _SLABS_STREAMED.inc()
        _SLAB_BYTES.inc(slab.nbytes)
        yield offset, slab


def _chunk_offsets(plan: StreamPlan) -> Iterator[Tuple[int, np.ndarray]]:
    offset = 0
    for chunk_times in plan.grid.chunks(plan.chunk_size):
        yield offset, chunk_times
        offset += chunk_times.size


def stream_site_coverage(plan: StreamPlan) -> np.ndarray:
    """Per-site coverage mask (S, T): any satellite visible, streamed."""
    coverage = np.zeros((plan.n_sites, plan.grid.count), dtype=bool)
    visible_samples = 0
    with span("visibility.stream"):
        for offset, slab in iter_slabs(plan):
            np.any(slab, axis=1, out=coverage[:, offset : offset + slab.shape[2]])
            visible_samples += int(np.count_nonzero(slab))
    _finish(plan, visible_samples)
    return coverage


def stream_satellite_activity(plan: StreamPlan) -> np.ndarray:
    """Per-satellite activity mask (N, T): any site visible, streamed."""
    activity = np.zeros((plan.n_satellites, plan.grid.count), dtype=bool)
    visible_samples = 0
    with span("visibility.stream"):
        for offset, slab in iter_slabs(plan):
            np.any(slab, axis=0, out=activity[:, offset : offset + slab.shape[2]])
            visible_samples += int(np.count_nonzero(slab))
    _finish(plan, visible_samples)
    return activity


def stream_visible_counts(plan: StreamPlan) -> np.ndarray:
    """Visible-satellite counts per site per time (S, T), streamed.

    Accumulates into uint16 (uint32 for constellations past 65535
    satellites) — the count axis is bounded by N, not T, so the narrow
    dtype is exact and keeps the output 4-8x smaller than int64.
    """
    dtype = np.uint16 if plan.n_satellites < 2**16 else np.uint32
    counts = np.zeros((plan.n_sites, plan.grid.count), dtype=dtype)
    visible_samples = 0
    with span("visibility.stream"):
        for offset, slab in iter_slabs(plan):
            counts[:, offset : offset + slab.shape[2]] = slab.sum(
                axis=1, dtype=dtype
            )
            visible_samples += int(np.count_nonzero(slab))
    _finish(plan, visible_samples)
    return counts


def stream_packed_bits(
    plan: StreamPlan, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Bit-pack the visibility tensor along time, chunk by chunk.

    Returns uint8 of shape (S, N, ceil(T/8)); the final partial byte is
    zero-padded (padding reads "not visible").  ``out`` lets callers pack
    straight into preallocated storage — the parallel runner passes a view
    of a ``multiprocessing.shared_memory`` segment, so the pool tensor is
    born shared instead of being copied into a segment afterwards.

    Requires a plan built with ``pack=True`` (chunk a multiple of 8, so
    every chunk lands on a byte boundary).
    """
    if plan.chunk_size % 8:
        raise ValueError("packing needs a plan built with pack=True")
    n_bytes = (plan.grid.count + 7) // 8
    shape = (plan.n_sites, plan.n_satellites, n_bytes)
    if out is None:
        # empty + sequential fill, not np.zeros: the packed tensor is a
        # long-lived cache read by thousands of gather calls, and calloc's
        # lazily faulted pages (first touched in the scattered per-chunk
        # write order below) map poorly — downstream reductions measure
        # ~1.8x slower than on a sequentially first-touched buffer.
        out = np.empty(shape, dtype=np.uint8)
        out.fill(0)
    else:
        if out.shape != shape or out.dtype != np.uint8:
            raise ValueError(
                f"out must be uint8 of shape {shape}, "
                f"got {out.dtype} {out.shape}"
            )
        out[:] = 0
    visible_samples = 0
    with span("visibility.pack"):
        for offset, slab in iter_slabs(plan):
            chunk_packed = np.packbits(slab, axis=2)
            byte_offset = offset // 8
            out[:, :, byte_offset : byte_offset + chunk_packed.shape[2]] = (
                chunk_packed
            )
            visible_samples += int(np.count_nonzero(slab))
    _finish(plan, visible_samples)
    return out


def _finish(plan: StreamPlan, visible_samples: int) -> None:
    record_visibility_metrics(
        plan.n_sites, plan.n_satellites, plan.grid.count, visible_samples
    )


# Imported last: the submodule depends on the names above.  Exposed as an
# attribute so `kernels.subsets` works after `import repro.sim.kernels`.
from repro.sim.kernels import subsets as subsets  # noqa: E402,F401
