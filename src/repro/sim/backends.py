"""Pluggable compiled backends for the three hot kernel inner loops.

The kernel layer has exactly three inner loops worth compiling — the
threshold+reduce slab comparison (:func:`repro.sim.kernels.iter_slabs`),
the interval event-sweep accumulation
(:func:`repro.sim.intervals.grouped_union_seconds`), and the subset
popcount reduction (:class:`repro.sim.visibility.PackedVisibility` and the
subset-query kernels).  Each is routed through a process-wide *backend*
object so an optional compiled implementation (numba) can replace the
numpy reference without any call-site knowing.

Bit-identity contract
---------------------
A backend is only admissible if it reproduces the numpy reference
**bit for bit** — the goldens pin figure tables at rtol 1e-6, and one
flipped visibility bit moves a coverage fraction by 1/T.  The three ops
were chosen because identity is provable, not just observed:

* ``threshold_slab`` is an elementwise ``>=`` on float64 — no summation,
  so there is no accumulation order to differ on;
* ``or_popcount`` is pure integer arithmetic (bitwise OR + table lookup +
  integer sum) — exact in any evaluation order;
* ``sweep_accumulate`` receives the *already lexsorted* event stream (the
  sort stays in numpy so tie order is fixed once) and accumulates
  inter-event float64 spans **in array order per group**, exactly the
  order ``np.bincount`` adds its weights — a sequential compiled loop
  performs the same additions in the same order.

The ``oracle.backends`` check in ``repro validate`` enforces this for
every backend importable in the running environment; the numpy backend is
additionally checked against straight-line numpy expressions so the
routing layer itself cannot drift.

Selection
---------
``repro --kernel-backend {numpy,numba}`` or ``REPRO_KERNEL_BACKEND`` pick
the process default (numpy when unset).  The knob is an execution detail,
never an experiment parameter: it does not appear in
:class:`~repro.experiments.common.ExperimentConfig`, cache keys, or
goldens, because results are bit-identical by contract.  Parallel workers
inherit the parent's choice through the pool initializer.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Optional

import numpy as np

from repro.obs import get_logger

_LOG = get_logger(__name__)

#: Environment variable consulted for the initial process default.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Per-byte popcount lookup (shared with :mod:`repro.sim.visibility`).
POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint32
)


class NumpyBackend:
    """The reference backend: straight numpy, always available."""

    name = "numpy"

    @staticmethod
    def is_available() -> bool:
        return True

    @staticmethod
    def unavailable_reason() -> Optional[str]:
        return None

    def threshold_slab(self, dots: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Elementwise ``dots >= thresholds`` (thresholds broadcast)."""
        return dots >= thresholds

    def or_popcount(self, rows: np.ndarray, axis: int) -> np.ndarray:
        """OR-reduce packed uint8 rows over ``axis``, then popcount per row.

        ``rows`` is ``(A, K, B)`` uint8; the reduction axis (0 or 1) is
        collapsed and the surviving ``(rows, B)`` bytes are popcounted and
        summed to int64 bit counts.  Callers guarantee a non-empty
        reduction axis.
        """
        packed_or = np.bitwise_or.reduce(rows, axis=axis)
        return POPCOUNT_TABLE[packed_or].sum(axis=1).astype(np.int64)

    def sweep_accumulate(
        self,
        times: np.ndarray,
        deltas: np.ndarray,
        groups: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        """Accumulate covered seconds from a lexsorted +1/-1 event stream.

        Inputs are already sorted by (group, time, delta); each group's
        deltas sum to zero, so one global cumsum never carries a positive
        count across a group boundary.
        """
        count = np.cumsum(deltas)
        same = groups[1:] == groups[:-1]
        covered = np.where(
            same & (count[:-1] > 0), times[1:] - times[:-1], 0.0
        )
        return np.bincount(groups[:-1], weights=covered, minlength=n_groups)


class NumbaBackend:
    """Optional ``numba.njit`` backend for the same three loops.

    Lazily imports and compiles on first use; :meth:`is_available` never
    raises, so callers can probe without a hard dependency.  Worth
    installing when subset sweeps dominate (large Monte-Carlo attrition /
    withdrawal trajectories) — the compiled popcount fuses the OR, lookup
    and sum without materializing the ``(rows, B)`` intermediate, and the
    sweep loop skips the four temporaries of the numpy path.
    """

    name = "numba"

    def __init__(self) -> None:
        self._kernels = None
        self._lock = threading.Lock()

    @staticmethod
    def is_available() -> bool:
        try:
            import numba  # noqa: F401
        except Exception:
            return False
        return True

    @staticmethod
    def unavailable_reason() -> Optional[str]:
        try:
            import numba  # noqa: F401
        except Exception as error:
            return f"{type(error).__name__}: {error}"
        return None

    def _compiled(self):
        """Compile the jit kernels once (thread-safe, import-gated)."""
        if self._kernels is not None:
            return self._kernels
        with self._lock:
            if self._kernels is not None:
                return self._kernels
            import numba

            @numba.njit(cache=False)
            def threshold_slab(dots, thresholds, out):
                n_sites, n_sats, n_times = dots.shape
                for s in range(n_sites):
                    for n in range(n_sats):
                        limit = thresholds[s, n, 0]
                        for t in range(n_times):
                            out[s, n, t] = dots[s, n, t] >= limit
                return out

            @numba.njit(cache=False)
            def or_popcount_rows(rows, table, out):
                # rows: (A, K, B) uint8, reduce over K.
                n_rows, n_reduce, n_bytes = rows.shape
                for a in range(n_rows):
                    total = numba.int64(0)
                    for b in range(n_bytes):
                        merged = numba.uint8(0)
                        for k in range(n_reduce):
                            merged |= rows[a, k, b]
                        total += table[merged]
                    out[a] = total
                return out

            @numba.njit(cache=False)
            def sweep_accumulate(times, deltas, groups, out):
                # Same additions, same order as np.bincount's weighted
                # pass: sequential in array index, per-group bins.
                count = numba.int64(0)
                for i in range(times.size - 1):
                    count += deltas[i]
                    if groups[i + 1] == groups[i] and count > 0:
                        out[groups[i]] += times[i + 1] - times[i]
                return out

            self._kernels = (threshold_slab, or_popcount_rows, sweep_accumulate)
        return self._kernels

    def threshold_slab(self, dots: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        kernel, _, _ = self._compiled()
        dots = np.ascontiguousarray(dots)
        thresholds = np.ascontiguousarray(
            np.broadcast_to(thresholds, (dots.shape[0], dots.shape[1], 1))
        )
        out = np.empty(dots.shape, dtype=np.bool_)
        return kernel(dots, thresholds, out)

    def or_popcount(self, rows: np.ndarray, axis: int) -> np.ndarray:
        _, kernel, _ = self._compiled()
        if axis == 0:
            rows = rows.transpose(1, 0, 2)
        elif axis != 1:
            raise ValueError(f"axis must be 0 or 1, got {axis}")
        rows = np.ascontiguousarray(rows)
        out = np.empty(rows.shape[0], dtype=np.int64)
        table = POPCOUNT_TABLE.astype(np.int64)
        return kernel(rows, table, out)

    def sweep_accumulate(
        self,
        times: np.ndarray,
        deltas: np.ndarray,
        groups: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        _, _, kernel = self._compiled()
        out = np.zeros(n_groups, dtype=np.float64)
        if times.size == 0:
            return out
        return kernel(
            np.ascontiguousarray(times, dtype=np.float64),
            np.ascontiguousarray(deltas, dtype=np.int64),
            np.ascontiguousarray(groups, dtype=np.int64),
            out,
        )


_BACKENDS = {
    NumpyBackend.name: NumpyBackend(),
    NumbaBackend.name: NumbaBackend(),
}

_DEFAULT_NAME: Optional[str] = None  # Resolved lazily (env) on first use.
_DEFAULT_LOCK = threading.Lock()


def backend_names() -> tuple:
    """Registered backend names, available or not."""
    return tuple(_BACKENDS)


def available_backends() -> Dict[str, bool]:
    """Mapping of backend name -> importable in this environment."""
    return {name: backend.is_available() for name, backend in _BACKENDS.items()}


def get_backend(name: str):
    """Look up a backend by name, verifying availability.

    Raises:
        ValueError: Unknown name.
        RuntimeError: Known but not importable here (e.g. numba missing).
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r} (choose from {sorted(_BACKENDS)})"
        )
    if not backend.is_available():
        raise RuntimeError(
            f"kernel backend {name!r} is not available: "
            f"{backend.unavailable_reason()}"
        )
    return backend


def set_default_backend(name: str):
    """Set the process-wide default backend (validates availability)."""
    global _DEFAULT_NAME
    backend = get_backend(name)
    with _DEFAULT_LOCK:
        _DEFAULT_NAME = name
    _LOG.info("kernel backend set to %s", name)
    return backend


def default_backend_name() -> str:
    """The active default backend name (env-resolved on first call)."""
    global _DEFAULT_NAME
    if _DEFAULT_NAME is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_NAME is None:
                requested = os.environ.get(ENV_VAR, "").strip()
                if requested:
                    get_backend(requested)  # Raise early on bad values.
                    _DEFAULT_NAME = requested
                    _LOG.info(
                        "kernel backend %s selected via %s", requested, ENV_VAR
                    )
                else:
                    _DEFAULT_NAME = NumpyBackend.name
    return _DEFAULT_NAME


def default_backend():
    """The active default backend object."""
    return _BACKENDS[default_backend_name()]


@contextmanager
def use_backend(name: str):
    """Temporarily switch the process default (tests, oracle checks)."""
    global _DEFAULT_NAME
    previous = default_backend_name()
    set_default_backend(name)
    try:
        yield _BACKENDS[name]
    finally:
        with _DEFAULT_LOCK:
            _DEFAULT_NAME = previous
